open Tact_core
open Tact_replica

type usage = {
  u_name : string;
  u_kind : [ `Op | `Query ];
  u_affects : (string * float * float) list;
  u_depends : (string * Bounds.t) list;
}

let of_op_class (c : 'a Spec.op_class) ~args =
  {
    u_name = Spec.class_name c;
    u_kind = `Op;
    u_affects = List.concat_map (Spec.class_affects c) args;
    u_depends = List.concat_map (Spec.class_depends c) args;
  }

let of_query (q : 'a Spec.query) ~args =
  {
    u_name = Spec.query_name q;
    u_kind = `Query;
    u_affects = [];
    u_depends = List.concat_map (Spec.query_depends q) args;
  }

let usage ~name ?(kind = `Op) ?(affects = []) ?(depends = []) () =
  { u_name = name; u_kind = kind; u_affects = affects; u_depends = depends }

(* ------------------------------------------------------------------ *)

let codes =
  [
    ("TA001", Diagnostic.Error, "conit bound negative or NaN");
    ("TA002", Diagnostic.Error, "duplicate conit declaration");
    ("TA003", Diagnostic.Error, "proportional budget weights malformed");
    ("TA004", Diagnostic.Error, "gossip plan targets out of range");
    ("TA005", Diagnostic.Warning, "relative NE bound with zero baseline");
    ("TA006", Diagnostic.Warning, "ST bound below the anti-entropy period");
    ("TA007", Diagnostic.Warning, "finite ST bound with no anti-entropy");
    ("TA008", Diagnostic.Warning, "ST bound below the network round-trip floor");
    ("TA009", Diagnostic.Warning, "zero OE bound under stability commitment");
    ("TA010", Diagnostic.Info, "unconstrained conit declaration");
    ("TA011", Diagnostic.Error, "NE bound unenforceable: share below one write's weight");
    ("TA012", Diagnostic.Warning, "OE bound below a single write's order weight");
    ("TA013", Diagnostic.Warning, "dead conit: declared but never affected");
    ("TA014", Diagnostic.Warning, "dead conit: bounded but never depended on");
    ("TA015", Diagnostic.Warning, "undeclared conit referenced by a spec");
    ("TA016", Diagnostic.Error, "invalid weight or dependency bound in a spec");
  ]

let severity_of code =
  match List.find_opt (fun (c, _, _) -> String.equal c code) codes with
  | Some (_, sev, _) -> sev
  | None -> invalid_arg ("Analyzer.severity_of: unknown code " ^ code)

let diag code ~subject ~hint fmt =
  Printf.ksprintf
    (fun message ->
      Diagnostic.make ~code ~severity:(severity_of code) ~subject ~message ~hint)
    fmt

let bad_bound x = x < 0.0 || Float.is_nan x
let finite x = x < infinity && not (Float.is_nan x)

(* The smallest per-peer share any sender may consume of a receiver's NE
   budget, under the configured allocation policy — the level at which a
   single write's nweight must fit for pushes to keep the bound without
   blocking the writer. *)
let min_share ~n (policy : Tact_protocols.Budget.policy) bound =
  if n <= 1 then infinity
  else begin
    let m = ref infinity in
    for self = 0 to n - 1 do
      for receiver = 0 to n - 1 do
        if self <> receiver then begin
          let s =
            Tact_protocols.Budget.share policy ~bound ~n ~self ~receiver
              ~rates:(Array.make n 0.0)
          in
          if s < !m then m := s
        end
      done
    done;
    !m
  end

let analyze ~n ?topology ?usages (config : Config.t) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let conits = config.Config.conits in
  let declared name =
    List.exists (fun (c : Conit.t) -> String.equal c.Conit.name name) conits
  in
  (* --- declaration shape ------------------------------------------- *)
  List.iter
    (fun (c : Conit.t) ->
      if
        bad_bound c.ne_bound || bad_bound c.ne_rel_bound || bad_bound c.oe_bound
        || bad_bound c.st_bound
        || Float.is_nan c.initial_value
      then
        emit
          (diag "TA001" ~subject:c.name
             ~hint:"bounds must be non-negative reals (infinity = unconstrained)"
             "conit %S declares a negative or NaN bound" c.name);
      if Conit.is_unconstrained c then
        emit
          (diag "TA010" ~subject:c.name
             ~hint:
               "drop the declaration or give it a bound; an undeclared conit \
                is already unconstrained"
             "conit %S is declared with every bound infinite — the declaration \
              promises nothing"
             c.name))
    conits;
  let names = List.map (fun (c : Conit.t) -> c.Conit.name) conits in
  let dups =
    List.filter
      (fun name -> List.length (List.filter (String.equal name) names) > 1)
      (List.sort_uniq String.compare names)
  in
  List.iter
    (fun name ->
      emit
        (diag "TA002" ~subject:name
           ~hint:"merge the declarations; the runtime keeps only the first"
           "conit %S is declared more than once" name))
    dups;
  (* --- budget policy ----------------------------------------------- *)
  (match config.Config.budget_policy with
  | Tact_protocols.Budget.Proportional rates ->
    let bad =
      Array.length rates <> n
      || Array.exists (fun r -> r < 0.0 || Float.is_nan r) rates
      || (n > 1 && Array.for_all (fun r -> r = 0.0) rates)
    in
    if bad then
      emit
        (diag "TA003" ~subject:"budget_policy"
           ~hint:
             "supply one non-negative rate per replica with a positive total"
           "proportional budget weights are malformed for n = %d (length %d)" n
           (Array.length rates))
  | Tact_protocols.Budget.Even | Tact_protocols.Budget.Adaptive -> ());
  (* --- gossip plan -------------------------------------------------- *)
  (match Config.bad_gossip_plan ~n config with
  | Some (i, j) ->
    emit
      (diag "TA004" ~subject:"gossip_plan"
         ~hint:"plans must return peer ids in 0..n-1, excluding the replica itself"
         "gossip plan for replica %d targets %d (n = %d)" i j n)
  | None -> ());
  (* --- per-conit schedule checks ------------------------------------ *)
  let min_rtt =
    match topology with
    | Some (topo : Tact_sim.Topology.t) when n > 1 ->
      let m = ref infinity in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let rtt = topo.Tact_sim.Topology.latency i j +. topo.latency j i in
            if rtt < !m then m := rtt
          end
        done
      done;
      Some !m
    | Some _ | None -> None
  in
  let check_st ~subject ~source st =
    if finite st then begin
      (match config.Config.antientropy_period with
      | Some period when st < period ->
        emit
          (diag "TA006" ~subject
             ~hint:
               "lower antientropy_period below the ST bound or expect a pull \
                per access"
             "%s requires staleness <= %gs but anti-entropy only runs every \
              %gs — the bound can never be met proactively"
             source st period)
      | Some _ -> ()
      | None ->
        if n > 1 then
          emit
            (diag "TA007" ~subject
               ~hint:"set antientropy_period so covers advance in the background"
               "%s requires staleness <= %gs but no anti-entropy period is \
                configured — every access must pull on demand"
               source st));
      match min_rtt with
      | Some rtt when st < rtt && n > 1 ->
        emit
          (diag "TA008" ~subject
             ~hint:"no pull round can complete inside the bound; loosen it"
             "%s requires staleness <= %gs, below the fastest peer round-trip \
              (%gs)"
             source st rtt)
      | Some _ | None -> ()
    end
  in
  let check_oe ~subject ~source oe =
    if oe = 0.0 && n > 1 then
      match config.Config.commit_scheme with
      | Config.Stability ->
        emit
          (diag "TA009" ~subject
             ~hint:
               "stability commitment needs every origin's cover to advance — \
                one unreachable replica blocks the access; consider Primary \
                commitment"
             "%s requires zero order error under Stability commitment" source)
      | Config.Primary _ -> ()
  in
  List.iter
    (fun (c : Conit.t) ->
      if finite c.ne_rel_bound && c.initial_value = 0.0 then
        emit
          (diag "TA005" ~subject:c.name
             ~hint:
               "relative error is measured against the conit's value; give \
                initial_value the true starting value (e.g. seats on the \
                flight) or use an absolute bound"
             "conit %S declares relative NE %g with a zero baseline — the \
              per-peer budget starts at zero and every early write degenerates \
              into a sync round"
             c.name c.ne_rel_bound);
      check_st ~subject:c.name
        ~source:(Printf.sprintf "conit %S" c.name)
        c.st_bound;
      check_oe ~subject:c.name
        ~source:(Printf.sprintf "conit %S" c.name)
        c.oe_bound)
    conits;
  (* --- usage-dependent checks --------------------------------------- *)
  (match usages with
  | None -> ()
  | Some usages ->
    let max_tbl = Hashtbl.create 16 in
    let bump tbl key v =
      let cur =
        match Hashtbl.find_opt tbl key with Some x -> x | None -> 0.0
      in
      if v > cur then Hashtbl.replace tbl key v
    in
    let affected = Hashtbl.create 16 and depended = Hashtbl.create 16 in
    List.iter
      (fun u ->
        List.iter
          (fun (conit, nw, ow) ->
            if Float.is_nan nw || Float.is_nan ow || ow < 0.0 then
              emit
                (diag "TA016" ~subject:conit
                   ~hint:
                     "nweights are real deltas; oweights are non-negative \
                      order costs"
                   "%s %S declares an invalid weight on conit %S (nweight %g, \
                    oweight %g)"
                   (match u.u_kind with `Op -> "op class" | `Query -> "query")
                   u.u_name conit nw ow)
            else begin
              if nw <> 0.0 || ow <> 0.0 then Hashtbl.replace affected conit ();
              bump max_tbl ("n:" ^ conit) (Float.abs nw);
              bump max_tbl ("o:" ^ conit) ow
            end;
            if not (declared conit) then
              emit
                (diag "TA015" ~subject:conit
                   ~hint:
                     "declare the conit in Config.conits; an undeclared conit \
                      is unconstrained and maintained only reactively"
                   "%s %S affects undeclared conit %S"
                   (match u.u_kind with `Op -> "op class" | `Query -> "query")
                   u.u_name conit))
          u.u_affects;
        List.iter
          (fun (conit, (b : Bounds.t)) ->
            Hashtbl.replace depended conit ();
            if
              bad_bound b.ne || bad_bound b.ne_rel || bad_bound b.oe
              || bad_bound b.st
            then
              emit
                (diag "TA016" ~subject:conit
                   ~hint:"dependency bounds must be non-negative reals"
                   "%s %S declares a negative or NaN dependency bound on conit \
                    %S"
                   (match u.u_kind with `Op -> "op class" | `Query -> "query")
                   u.u_name conit)
            else begin
              check_st ~subject:conit
                ~source:
                  (Printf.sprintf "dependency of %S on conit %S" u.u_name conit)
                b.st;
              check_oe ~subject:conit
                ~source:
                  (Printf.sprintf "dependency of %S on conit %S" u.u_name conit)
                b.oe;
              let max_ow =
                match Hashtbl.find_opt max_tbl ("o:" ^ conit) with
                | Some v -> v
                | None -> 0.0
              in
              if finite b.oe && max_ow > b.oe then
                emit
                  (diag "TA012" ~subject:conit
                     ~hint:
                       "a single tentative write already exceeds the bound, \
                        making the access commit-synchronous; loosen the \
                        bound or shrink the write's oweight"
                     "dependency of %S bounds order error on conit %S at %g \
                      but one write carries oweight %g"
                     u.u_name conit b.oe max_ow)
            end;
            if not (declared conit) && finite b.ne then
              emit
                (diag "TA015" ~subject:conit
                   ~hint:
                     "declare the conit with an NE bound so pushes maintain \
                      it; an undeclared conit forces a pull round per access"
                   "%s %S depends on undeclared conit %S with a finite NE \
                    bound"
                   (match u.u_kind with `Op -> "op class" | `Query -> "query")
                   u.u_name conit))
          u.u_depends)
      usages;
    (* Declared-vs-used cross checks. *)
    List.iter
      (fun (c : Conit.t) ->
        let is_affected = Hashtbl.mem affected c.Conit.name in
        let is_depended = Hashtbl.mem depended c.Conit.name in
        if not is_affected then
          emit
            (diag "TA013" ~subject:c.name
               ~hint:"no op class puts weight on it; drop it or fix the specs"
               "conit %S is declared but no spec affects it — its value can \
                never move"
               c.name)
        else if (not is_depended) && not (Conit.is_unconstrained c) then
          emit
            (diag "TA014" ~subject:c.name
               ~hint:
                 "pushes will pay to maintain the bound although nothing reads \
                  under it; drop the bound or add the dependency"
               "conit %S carries a finite bound but no spec depends on it"
               c.name);
        (* NE enforceability: one write's weight must fit in the smallest
           per-peer share of the bound (Section 5.2 splits an absolute bound
           x as x/(n-1) under even allocation). *)
        if finite c.ne_bound && n > 1 then begin
          (* A malformed Proportional policy already got TA003; analyze the
             share as if even rather than indexing a bad rates array. *)
          let policy =
            match config.Config.budget_policy with
            | Tact_protocols.Budget.Proportional rates
              when Array.length rates <> n
                   || Array.exists (fun r -> r < 0.0 || Float.is_nan r) rates
                   || Array.for_all (fun r -> r = 0.0) rates ->
              Tact_protocols.Budget.Even
            | p -> p
          in
          let share = min_share ~n policy c.ne_bound in
          let max_nw =
            match Hashtbl.find_opt max_tbl ("n:" ^ c.name) with
            | Some v -> v
            | None -> 0.0
          in
          if max_nw > share then
            emit
              (diag "TA011" ~subject:c.name
                 ~hint:
                   "every such write instantly exhausts the per-peer budget \
                    and blocks for a sync round; loosen the bound, shrink the \
                    write weight, or reduce n"
                 "conit %S bounds NE at %g, a per-peer share of %g under the \
                  %s policy, but a single write carries |nweight| %g"
                 c.name c.ne_bound share
                 (Tact_protocols.Budget.policy_name config.Config.budget_policy)
                 max_nw)
        end)
      conits);
  Diagnostic.sort !out
