type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  hint : string;
}

let make ~code ~severity ~subject ~message ~hint =
  { code; severity; subject; message; hint }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> String.compare a.subject b.subject
    | c -> c)
  | c -> c

let sort ds = List.sort compare ds

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let to_string d =
  Printf.sprintf "%s %s [%s]: %s (hint: %s)" d.code
    (severity_to_string d.severity)
    d.subject d.message d.hint

let render ds =
  String.concat "\n" (List.map to_string (sort ds))

let summary ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error)
    (count Warning) (count Info)
