(** Structured diagnostics emitted by the conit-spec analyzer.

    Every diagnostic carries a stable code ([TA001]...), a severity, the
    subject it is about (usually a conit name), a message describing what is
    wrong and a hint describing how to fix it.  Errors mean the declared
    specification cannot work as written (enforcement degenerates or state is
    rejected at runtime); warnings mean it works but degenerates into
    synchronous rounds or wasted maintenance; infos are observations.
    [doc/ANALYSIS.md] lists every code. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  subject : string;  (** conit name, policy, or "" for whole-config findings *)
  message : string;
  hint : string;
}

val make :
  code:string ->
  severity:severity ->
  subject:string ->
  message:string ->
  hint:string ->
  t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Errors first, then by code, then by subject. *)

val sort : t list -> t list
val errors : t list -> t list
val has_errors : t list -> bool

val to_string : t -> string
(** ["TA003 error [conit]: message (hint: ...)"]. *)

val render : t list -> string
(** Sorted, one per line. *)

val summary : t list -> string
(** ["2 error(s), 1 warning(s), 0 info"]. *)
