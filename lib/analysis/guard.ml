let verbose () =
  match Sys.getenv_opt "TACT_ANALYZE" with
  | Some ("0" | "") | None -> false
  | Some _ -> true

let check ~n ?topology ?usages config =
  Analyzer.analyze ~n ?topology ?usages config

let hook ~n config =
  let ds = Analyzer.analyze ~n config in
  if verbose () && ds <> [] then
    prerr_endline
      (Printf.sprintf "tact-analyze: %s\n%s" (Diagnostic.summary ds)
         (Diagnostic.render ds));
  if Diagnostic.has_errors ds then
    invalid_arg
      (Printf.sprintf "Config.analyze: %s\n%s"
         (Diagnostic.summary ds)
         (Diagnostic.render (Diagnostic.errors ds)))

let install () = Tact_replica.Config.set_analyze_hook (Some hook)
let uninstall () = Tact_replica.Config.set_analyze_hook None

let with_installed f =
  install ();
  Fun.protect ~finally:uninstall f
