(** Hooking the analyzer into {!Tact_replica.System.create}.

    [tact_analysis] depends on [tact_replica], so the dependency is inverted:
    {!install} registers {!Tact_replica.Config.set_analyze_hook}, and every
    subsequent [System.create] runs the config-only analysis (no usages or
    topology — those require application cooperation via {!check}).  Errors
    reject the configuration with [Invalid_argument]; warnings and infos are
    printed to stderr only when the [TACT_ANALYZE] environment variable is
    set to a non-empty value other than ["0"].  Every in-tree example
    installs the guard at startup. *)

val check :
  n:int ->
  ?topology:Tact_sim.Topology.t ->
  ?usages:Analyzer.usage list ->
  Tact_replica.Config.t ->
  Diagnostic.t list
(** Full analysis, including the usage- and topology-dependent checks.
    Alias for {!Analyzer.analyze}. *)

val install : unit -> unit
(** Register the hook.  Idempotent; latest installation wins. *)

val uninstall : unit -> unit

val with_installed : (unit -> 'a) -> 'a
(** Run [f] with the hook installed, uninstalling afterwards even on raise —
    what tests use so the hook does not leak across suites. *)
