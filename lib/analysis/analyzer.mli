(** Static analysis of a conit specification against its deployment.

    [analyze] is a pure pass over a {!Tact_replica.Config.t}, the system size,
    and optionally the topology and the application's op-class/query
    declarations.  It emits {!Diagnostic.t} values for configurations that are
    malformed (errors) or that will technically work but degenerate — e.g. an
    absolute NE bound whose per-peer share [x/(n-1)] is smaller than a single
    write's weight, which turns every access into a synchronous round
    (Section 5.2 of the paper).  [doc/ANALYSIS.md] documents every code. *)

type usage = {
  u_name : string;
  u_kind : [ `Op | `Query ];
  u_affects : (string * float * float) list;
      (** [(conit, nweight, oweight)] triples this op may contribute *)
  u_depends : (string * Tact_core.Bounds.t) list;
      (** per-access consistency requirements this op/query declares *)
}
(** What one op class or query does to the conits, evaluated over
    representative arguments.  The analyzer sees weights only through these
    samples, so feed it arguments that exercise the extremes (e.g. the
    largest purchase an op accepts). *)

val of_op_class : 'a Tact_replica.Spec.op_class -> args:'a list -> usage
(** Evaluate the class's [affects]/[depends] functions over sample [args]. *)

val of_query : 'a Tact_replica.Spec.query -> args:'a list -> usage

val usage :
  name:string ->
  ?kind:[ `Op | `Query ] ->
  ?affects:(string * float * float) list ->
  ?depends:(string * Tact_core.Bounds.t) list ->
  unit ->
  usage
(** Build a usage directly, for specs not written with {!Tact_replica.Spec}. *)

val codes : (string * Diagnostic.severity * string) list
(** Every diagnostic code the analyzer can emit, with its severity and a
    one-line description.  Stable; tests and [doc/ANALYSIS.md] enumerate it. *)

val analyze :
  n:int ->
  ?topology:Tact_sim.Topology.t ->
  ?usages:usage list ->
  Tact_replica.Config.t ->
  Diagnostic.t list
(** Analyze a configuration for a system of [n] replicas.  [topology] enables
    the round-trip staleness floor check (TA008); [usages] enables the
    weight-vs-budget and liveness checks (TA011–TA016).  Returns sorted
    diagnostics; empty means clean. *)
