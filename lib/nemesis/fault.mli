(** Typed fault actions and timed schedules — the vocabulary of the nemesis
    DSL (doc/FAULTS.md).

    A {!schedule} is a list of timed disturbance events plus a [quiet_after]
    horizon.  Installing a schedule also installs an unconditional quiescent
    tail at [quiet_after] that lifts {e every} disturbance ({!clear_all}):
    partitions heal, crashed replicas recover, loss/duplication/delay knobs
    reset.  The tail is not an event, so shrinking a failing schedule can
    drop disturbances but can never drop the heal — a run that only fails
    because the network never heals is not a counterexample.

    Stochastic actions (loss, duplication) carry their own rng seed
    ([salt]): the draw stream an action installs depends only on the action,
    so dropping neighbouring events during shrinking, or replaying the
    schedule from JSON, reproduces it exactly. *)

type action =
  | Cut of int list * int list  (** symmetric partition between two groups *)
  | Cut_oneway of int list * int list
      (** asymmetric: first group's messages to the second are dropped *)
  | Heal_between of int list * int list
  | Heal_all
  | Crash of int
  | Recover of int
  | Recover_all
  | Global_loss of { rate : float; salt : int }
      (** set the global loss knob (rate 0 disables) *)
  | Link_loss of { src : int; dst : int; rate : float; salt : int }
  | Duplication of { rate : float; salt : int }
  | Delay_factor of float  (** scale all message delays (1.0 = nominal) *)
  | Bandwidth_factor of float  (** scale link bandwidth (1.0 = nominal) *)

type event = { at : float; action : action }

type schedule = {
  events : event list;  (** disturbances, any order; [install] honours [at] *)
  quiet_after : float;  (** when {!clear_all} lifts every disturbance *)
}

val describe : action -> string

val apply : Tact_replica.System.t -> action -> unit
(** Apply one action immediately. *)

val clear_all : Tact_replica.System.t -> unit
(** Lift every disturbance: heal all partitions, recover all replicas, reset
    loss/duplication/delay/bandwidth knobs. *)

val fault_label : Tact_sim.Engine.label
(** Engine label ([actor = -1], tag ["fault"]) of installed fault events. *)

val install : Tact_replica.System.t -> schedule -> unit
(** Schedule every event plus the quiescent tail on the system's engine.
    Call before running. *)

val apply_sharded : Tact_replica.Sharded.t -> action -> unit
(** Apply one global action to a sharded system: group and replica ids are
    projected onto each shard's subscribers (renumbered locally), global
    knobs hit every shard's net with the rng salt offset by the shard id
    (shard 0 keeps the raw salt, preserving 1-shard identity). *)

val clear_all_sharded : Tact_replica.Sharded.t -> unit

val install_sharded : Tact_replica.Sharded.t -> schedule -> unit
(** {!install} for sharded systems: every shard's engine gets its own copy
    of each event applying only that shard's projection, so fault events
    stay shard-local even when shards drain on different pool domains. *)

val disturbance_scope : action -> int list option
(** The replicas an action can disturb: [None] for heals and recoveries
    (never disturb), [Some []] for global knobs (everyone), [Some rs]
    otherwise.  Feeds the interest-set-aware O6
    ({!Oracle.check_unavailability_sharded}). *)

val validate : n:int -> schedule -> string list
(** Well-formedness errors: replica ids and groups in range, rates within
    [0, 1], factors positive, event times in [0, quiet_after). *)

val schedule_to_json : schedule -> Tact_check.Json.t
val schedule_of_json : Tact_check.Json.t -> schedule option
val event_to_json : event -> Tact_check.Json.t
val event_of_json : Tact_check.Json.t -> event option
