(** Randomized fault campaigns: fan hundreds of seeded runs across the
    work-stealing domain pool, oracle-check every run, and shrink failures
    into replayable counterexamples.

    Determinism contract (asserted by the test suite, mirroring the
    explorer's): for a fixed [master_seed] and [runs], the campaign executes
    the same runs with the same verdicts regardless of [jobs] — per-run
    seeds are drawn before fan-out, each run is a pure function of its seed,
    and results are collected in input order.  The {!summary.digest} string
    folds every per-run outcome, so equal digests witness the contract.

    The optional [budget_check] is consulted between fixed-size batches
    (never inside a run), so a wall-clock budget can stop a campaign early
    without perturbing any run that does execute. *)

type config = {
  master_seed : int;
  runs : int;
  jobs : int;
  mutation : Mutation.t;  (** planted bug to enable ([Off] for real runs) *)
  max_shrunk : int;  (** shrink at most this many failures (shrinking re-runs
                         the schedule quadratically) *)
  budget_check : (unit -> bool) option;
      (** polled between batches; [false] stops the campaign early *)
}

val default : config
(** seed 1, 100 runs, 1 job, no mutation, 3 shrunk failures, no budget. *)

type outcome = {
  run_seed : int;
  violations : string list;
  fingerprint : Tact_check.Fingerprint.t;
  schedule_events : int;
  ops : int;
  timeouts : int;
  dropped : int;
}

type summary = {
  attempted : int;
  completed : int;  (** < [attempted] only when the budget stopped early *)
  outcomes : outcome list;
  failures : Counterexample.t list;
  digest : string;  (** deterministic digest of all outcomes, jobs-invariant *)
}

val derive_seeds : master_seed:int -> runs:int -> int list
(** The per-run seed sequence (exposed for the CLI's [run] command). *)

val one_run : mutation:Mutation.t -> int -> outcome * Fault.schedule
(** Execute a single seeded run: derive the plan, sample its fault schedule,
    run, oracle-check. *)

val run : config -> summary
