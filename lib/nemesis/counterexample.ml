module Json = Tact_check.Json
module Fingerprint = Tact_check.Fingerprint

type t = {
  seed : int;
  mutation : Mutation.t;
  events : Fault.event list;
  quiet_after : float;
  violations : string list;
  fingerprint : Fingerprint.t;
}

let version = 1

let run_with ~seed ~mutation schedule =
  let p = Sample.plan ~seed in
  Runner.execute ~mutate:(Mutation.apply mutation) p schedule

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

(* Greedy delta-debugging over the disturbance events, then schedule
   shortening.  Dropping an event never perturbs the others: fault events
   are installed at absolute times and stochastic knobs are self-seeded
   (Fault), so each subset executes exactly as it would standalone.  The
   quiescent tail is appended by the runner, not stored — shrinking cannot
   "succeed" by deleting the heal. *)
let minimize ~seed ~mutation ~quiet_after events =
  let fails ~quiet_after events =
    (run_with ~seed ~mutation { Fault.events; quiet_after }).Runner.violations
    <> []
  in
  let rec shrink events =
    let n = List.length events in
    let rec try_drop i =
      if i >= n then events
      else
        let without = List.filteri (fun j _ -> j <> i) events in
        if fails ~quiet_after without then shrink without else try_drop (i + 1)
    in
    try_drop 0
  in
  let events =
    if fails ~quiet_after events then shrink events else events
  in
  (* Shorten: pull the quiescent tail right after the last disturbance, so
     the minimal schedule also has a minimal active window. *)
  let last =
    List.fold_left
      (fun acc (e : Fault.event) -> Float.max acc e.Fault.at)
      0.0 events
  in
  let tight = last +. 0.5 in
  if tight < quiet_after && fails ~quiet_after:tight events then (events, tight)
  else (events, quiet_after)

let of_failure ~seed ~mutation ~(schedule : Fault.schedule) =
  let events, quiet_after =
    minimize ~seed ~mutation ~quiet_after:schedule.Fault.quiet_after
      schedule.Fault.events
  in
  let r = run_with ~seed ~mutation { Fault.events; quiet_after } in
  {
    seed;
    mutation;
    events;
    quiet_after;
    violations = r.Runner.violations;
    fingerprint = r.Runner.fingerprint;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let to_json t =
  Json.Obj
    [
      ("version", Json.Num (float_of_int version));
      ("seed", Json.Num (float_of_int t.seed));
      ("mutation", Json.Str (Mutation.to_string t.mutation));
      ("quiet_after", Json.Num t.quiet_after);
      ("events", Json.Arr (List.map Fault.event_to_json t.events));
      ("violations", Json.Arr (List.map (fun v -> Json.Str v) t.violations));
      ("final_fingerprint", Json.Str (Fingerprint.to_hex t.fingerprint));
    ]

let of_json j =
  let ( let* ) x f = match x with Some v -> f v | None -> Error "malformed counterexample" in
  let* v = Option.bind (Json.member "version" j) Json.to_int in
  if v <> version then
    Error (Printf.sprintf "unsupported counterexample version %d (expected %d)" v version)
  else
    let* seed = Option.bind (Json.member "seed" j) Json.to_int in
    let* mutation =
      Option.bind
        (Option.bind (Json.member "mutation" j) Json.to_str)
        Mutation.of_string
    in
    let* quiet_after = Option.bind (Json.member "quiet_after" j) Json.to_float in
    let* items = Option.bind (Json.member "events" j) Json.to_list in
    let* events =
      List.fold_right
        (fun item acc ->
          Option.bind acc (fun acc ->
              Option.map (fun e -> e :: acc) (Fault.event_of_json item)))
        items (Some [])
    in
    let* viol_items = Option.bind (Json.member "violations" j) Json.to_list in
    let* violations =
      List.fold_right
        (fun item acc ->
          Option.bind acc (fun acc ->
              Option.map (fun s -> s :: acc) (Json.to_str item)))
        viol_items (Some [])
    in
    let* fp_hex = Option.bind (Json.member "final_fingerprint" j) Json.to_str in
    let* fingerprint = Fingerprint.of_hex fp_hex in
    Ok { seed; mutation; events; quiet_after; violations; fingerprint }

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | contents -> Result.bind (Json.parse contents) of_json

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_verdict = {
  result : Runner.result;
  reproduced : bool;
  fingerprint_match : bool;
}

let replay t =
  let result =
    run_with ~seed:t.seed ~mutation:t.mutation
      { Fault.events = t.events; quiet_after = t.quiet_after }
  in
  {
    result;
    reproduced = result.Runner.violations <> [];
    fingerprint_match = Fingerprint.equal result.Runner.fingerprint t.fingerprint;
  }
