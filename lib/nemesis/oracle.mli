(** The two nemesis-specific oracles, O5 and O6 (doc/FAULTS.md), layered on
    top of the reused O1-O4 from {!Tact_check.Oracle}. *)

type op_obs = {
  o_index : int;
  o_rid : int;
  o_submit : float;
  o_deadline : float option;
  o_read : bool;
  mutable o_completions : int;  (** times the client's [k] fired *)
  mutable o_timeouts : int;  (** times [on_timeout] fired *)
}
(** Per-client-operation completion accounting, maintained by {!Runner}. *)

val describe_op : op_obs -> string

val check_liveness :
  Tact_replica.System.t -> op_obs list -> string list
(** O5: after the quiescent tail plus drain, every replica is up with no
    parked accesses, all replicas converge (vectors and database images),
    and every operation completed {e exactly} once — a result or a timeout,
    never neither, never both. *)

val check_unavailability :
  schedule:Fault.schedule -> slack:float -> op_obs list -> string list
(** O6: every timeout must be attributable to a fault — its parked window
    [submit, deadline] must intersect the disturbance envelope
    [first event, quiet_after + slack].  Sampled deadlines are generous
    enough that fault-free runs never time out, so an unexcused timeout is a
    bounds-machinery bug, not workload bad luck. *)

val check_liveness_sharded :
  Tact_replica.Sharded.t -> op_obs list -> string list
(** O5 for sharded systems: up/parked checks per shard instance,
    convergence via the interest-set-aware O3
    ({!Tact_check.Oracle.check_converged_sharded}, including the cross-shard
    containment audit), completion accounting unchanged. *)

val check_unavailability_sharded :
  sh:Tact_replica.Sharded.t ->
  schedule:Fault.schedule ->
  slack:float ->
  op_obs list ->
  string list
(** O6, interest-set-aware: a timeout is excused only by a disturbance whose
    footprint ({!Fault.disturbance_scope}) reaches a replica sharing a shard
    with the timed-out one (or a global knob) — a fault confined to shards
    outside its interest set cannot have parked the access.  Strictly
    stronger than {!check_unavailability}. *)
