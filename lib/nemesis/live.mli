(** Nemesis against live processes: interpret the fault DSL at the real
    network seam instead of the simulator.

    {!Fault.apply} programs {!Tact_sim.Net}; this module programs the
    {!Tact_transport.Faulty} decorator a {!Tact_transport.Serve} process
    sends through.  The same {!Fault.schedule} JSON drives both, so a
    counterexample found in simulation replays byte-for-byte against real
    sockets (and the CI serve-smoke job does exactly that).

    A schedule is written for the whole system; every process installs it
    verbatim and applies only its own projection — its outgoing links, its
    own crash/recover — which together reproduce the simulator's
    drop-at-the-directed-link-at-send-time semantics. *)

val apply : Tact_transport.Serve.t -> Fault.action -> unit
(** Apply this process's projection of one action immediately.
    [Bandwidth_factor] has no live analog (the kernel owns the pipe) and is
    a no-op, so simulator schedules still install.  Stochastic knobs offset
    their salt by the process id: each replica's outgoing stream is
    independent, deterministically. *)

val clear_all : Tact_transport.Serve.t -> unit
(** Lift every disturbance on this process: heal the decorator, recover the
    replica. *)

val install : ?trace:(string -> unit) -> Tact_transport.Serve.t -> Fault.schedule -> unit
(** Schedule every event on the process's event loop, plus the quiescent
    tail ({!clear_all}) at [quiet_after] — same contract as
    {!Fault.install}.  [trace] (default silent) receives one line per fired
    event. *)
