open Tact_store
open Tact_replica

type result = {
  violations : string list;
  fingerprint : Tact_check.Fingerprint.t;
  ops : int;
  timeouts : int;
  messages : int;
  dropped : int;
}

let client_label rid = { Tact_sim.Engine.actor = rid; tag = "client" }

let install_op sys (op : Sample.op) obs =
  Tact_sim.Engine.at (System.engine sys) ~label:(client_label op.Sample.op_rid)
    ~time:op.Sample.op_time (fun () ->
      let r = System.replica sys op.Sample.op_rid in
      let on_timeout () = obs.Oracle.o_timeouts <- obs.Oracle.o_timeouts + 1 in
      match op.Sample.op_kind with
      | Sample.Write_op { conit; nweight; oweight } ->
        Replica.submit_write ?deadline:op.Sample.op_deadline ~on_timeout r
          ~deps:[]
          ~affects:[ { Write.conit; nweight; oweight } ]
          ~op:(Op.Add (conit, nweight))
          ~k:(fun _ -> obs.Oracle.o_completions <- obs.Oracle.o_completions + 1)
      | Sample.Read_op { deps } ->
        Replica.submit_read ?deadline:op.Sample.op_deadline ~on_timeout r ~deps
          ~f:(fun db ->
            match deps with
            | (c, _) :: _ -> Db.get db c
            | [] -> Value.Nil)
          ~k:(fun _ -> obs.Oracle.o_completions <- obs.Oracle.o_completions + 1))

let observe (op : Sample.op) i =
  {
    Oracle.o_index = i;
    o_rid = op.Sample.op_rid;
    o_submit = op.Sample.op_time;
    o_deadline = op.Sample.op_deadline;
    o_read = (match op.Sample.op_kind with Sample.Read_op _ -> true | _ -> false);
    o_completions = 0;
    o_timeouts = 0;
  }

(* Post-heal catch-up allowance for the O6 envelope: a couple of retry ticks
   plus anti-entropy rounds after the quiescent tail. *)
let catchup_slack (p : Sample.plan) =
  (2.0 *. p.Sample.config.Config.retry_period)
  +. (match p.Sample.config.Config.antientropy_period with
     | Some a -> 2.0 *. a
     | None -> 0.0)
  +. 1.0

let execute ?(mutate = Fun.id) (p : Sample.plan) (schedule : Fault.schedule) =
  let config = mutate p.Sample.config in
  let sys =
    System.create ~seed:p.Sample.seed ~jitter:p.Sample.jitter ~loss:0.0
      ~topology:p.Sample.topology ~config ()
  in
  let obs = List.mapi (fun i op -> observe op i) p.Sample.ops in
  List.iter2 (fun op o -> install_op sys op o) p.Sample.ops obs;
  Fault.install sys schedule;
  System.run ~until:(p.Sample.quiet_after +. p.Sample.drain) sys;
  let checks = p.Sample.config in
  let ext =
    match checks.Config.commit_scheme with
    | Config.Stability -> true
    | Config.Primary _ -> false
  in
  let violations =
    Tact_check.Oracle.check_bounds ~lcp:false sys
    @ Tact_check.Oracle.check_committed ~prefix:true ~ext ~causal:true sys
    @ Tact_check.Oracle.check_theorem1 sys
    @ Oracle.check_liveness sys obs
    @ Oracle.check_unavailability ~schedule ~slack:(catchup_slack p) obs
  in
  let stats = System.traffic sys in
  {
    violations;
    fingerprint =
      Tact_check.Fingerprint.state sys
        ~now:(Tact_sim.Engine.now (System.engine sys))
        [||];
    ops = List.length p.Sample.ops;
    timeouts = List.fold_left (fun a o -> a + o.Oracle.o_timeouts) 0 obs;
    messages = stats.Tact_sim.Net.messages;
    dropped = stats.Tact_sim.Net.dropped;
  }
