open Tact_replica

type t = Off | Crash_replay | Oe_slack of float

let apply = function
  | Off -> Fun.id
  | Crash_replay -> fun c -> { c with Config.fault_crash_replay = true }
  | Oe_slack s -> fun c -> { c with Config.fault_oe_slack = s }

let to_string = function
  | Off -> "off"
  | Crash_replay -> "crash_replay"
  | Oe_slack s -> Printf.sprintf "oe_slack:%g" s

let of_string s =
  if String.equal s "off" then Some Off
  else if String.equal s "crash_replay" then Some Crash_replay
  else if String.starts_with ~prefix:"oe_slack:" s then
    Option.map
      (fun f -> Oe_slack f)
      (float_of_string_opt
         (String.sub s 9 (String.length s - 9)))
  else None
