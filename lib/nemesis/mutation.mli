(** Serializable planted-bug selectors for fuzzer self-tests.

    A campaign (and its counterexamples) may run against a deliberately
    broken configuration to prove the harness detects, shrinks and replays
    the failure.  The selector is stored in the counterexample JSON so
    replay applies the same bug. *)

type t =
  | Off  (** real configuration — the default *)
  | Crash_replay  (** enable [Config.fault_crash_replay] *)
  | Oe_slack of float  (** set [Config.fault_oe_slack] *)

val apply : t -> Tact_replica.Config.t -> Tact_replica.Config.t

val to_string : t -> string
(** ["off"], ["crash_replay"], ["oe_slack:<x>"]. *)

val of_string : string -> t option
