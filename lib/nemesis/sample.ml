open Tact_util
open Tact_core
open Tact_replica

type op_kind =
  | Write_op of { conit : string; nweight : float; oweight : float }
  | Read_op of { deps : (string * Bounds.t) list }

type op = {
  op_rid : int;
  op_time : float;
  op_kind : op_kind;
  op_deadline : float option;
}

type plan = {
  seed : int;
  n : int;
  topology : Tact_sim.Topology.t;
  jitter : float;
  config : Config.t;
  ops : op list;
  horizon : float;
  quiet_after : float;
  drain : float;
}

let conit_names = [| "x"; "y" |]

(* A sampled conit: each dimension independently constrained or free.  Only
   absolute NE bounds (never relative) and the default Even budget policy, so
   the Theorem-1 oracle stays sound over every sampled configuration. *)
let sample_conit rng name =
  let maybe p lo hi =
    if Prng.float rng 1.0 < p then Some (Prng.uniform_in rng ~lo ~hi) else None
  in
  let ne_bound = maybe 0.5 3.0 8.0 in
  let oe_bound = maybe 0.4 2.0 6.0 in
  let st_bound = maybe 0.5 0.6 2.0 in
  Conit.declare ?ne_bound ?oe_bound ?st_bound name

(* Request exactly the declared bounds, so every sampled read is satisfiable
   once the replicas synchronise (no vacuously impossible bounds). *)
let bounds_for (c : Conit.t) =
  let finite x = if x < infinity then Some x else None in
  match (finite c.ne_bound, finite c.oe_bound, finite c.st_bound) with
  | None, None, None -> Bounds.weak
  | ne, oe, st -> Bounds.make ?ne ?oe ?st ()

let sample_ops rng ~n ~horizon ~conits =
  let count = 8 + Prng.int rng 16 in
  List.init count (fun _ ->
      let op_rid = Prng.int rng n in
      let op_time = 0.1 +. Prng.float rng (horizon -. 0.1) in
      if Prng.float rng 1.0 < 0.65 then
        let conit = Prng.pick rng conit_names in
        {
          op_rid;
          op_time;
          op_kind =
            Write_op
              {
                conit;
                nweight = 0.5 +. Prng.float rng 1.5;
                oweight = 1.0;
              };
          op_deadline = None;
        }
      else
        let deps =
          let pick1 = Prng.pick rng conits in
          let deps = [ (pick1.Conit.name, bounds_for pick1) ] in
          if Prng.bool rng then
            let pick2 = Prng.pick rng conits in
            if String.equal pick2.Conit.name pick1.Conit.name then deps
            else (pick2.Conit.name, bounds_for pick2) :: deps
          else deps
        in
        {
          op_rid;
          op_time;
          op_kind = Read_op { deps };
          (* Generous: several retry periods plus many RTTs, so a fault-free
             run never times out (the O6 oracle relies on this). *)
          op_deadline = Some (op_time +. 2.0 +. Prng.float rng 4.0);
        })

let plan ~seed =
  let rng = Prng.create ~seed in
  let n = 2 + Prng.int rng 3 in
  let latency = Prng.uniform_in rng ~lo:0.02 ~hi:0.08 in
  let topology =
    if Prng.bool rng then
      Tact_sim.Topology.uniform ~n ~latency ~bandwidth:1e8
    else Tact_sim.Topology.star ~n ~spoke:latency ~bandwidth:1e8
  in
  let jitter = Prng.pick rng [| 0.0; 0.05; 0.1 |] in
  let conits = Array.map (sample_conit rng) conit_names in
  let commit_scheme =
    if Prng.float rng 1.0 < 0.7 then Config.Stability
    else Config.Primary (Prng.int rng n)
  in
  let config =
    {
      Config.default with
      Config.conits = Array.to_list conits;
      commit_scheme;
      antientropy_period = Some (Prng.uniform_in rng ~lo:0.3 ~hi:0.8);
      retry_period = Prng.uniform_in rng ~lo:0.4 ~hi:0.8;
    }
  in
  let horizon = 6.0 +. Prng.float rng 6.0 in
  let quiet_after = horizon +. 1.0 +. Prng.float rng 2.0 in
  let ops = sample_ops rng ~n ~horizon ~conits in
  { seed; n; topology; jitter; config; ops; horizon; quiet_after; drain = 30.0 }

(* ------------------------------------------------------------------ *)
(* Fault-schedule sampling                                             *)

let sample_fragment rng ~n ~horizon =
  let start = Prng.uniform_in rng ~lo:0.2 ~hi:(horizon *. 0.7) in
  let room = horizon -. start in
  match Prng.int rng 9 with
  | 0 ->
    let period = Prng.uniform_in rng ~lo:1.0 ~hi:2.5 in
    let rounds =
      max 1 (min (1 + Prng.int rng 3) (int_of_float (room /. period)))
    in
    Gen.rolling_partition rng ~n ~start ~period ~rounds
  | 1 ->
    Gen.asymmetric_partition rng ~n ~start
      ~duration:(Prng.uniform_in rng ~lo:1.0 ~hi:(Float.max 1.01 room))
  | 2 ->
    let period = Prng.uniform_in rng ~lo:0.6 ~hi:1.6 in
    let flaps = max 1 (min (2 + Prng.int rng 3) (int_of_float (room /. period))) in
    Gen.flapping_link rng ~n ~start ~period ~flaps
  | 3 ->
    Gen.crash_storm rng ~n ~start ~horizon
      ~mean_uptime:(Prng.uniform_in rng ~lo:1.0 ~hi:(horizon /. 2.0))
      ~mean_downtime:(Prng.uniform_in rng ~lo:0.5 ~hi:2.0)
  | 4 ->
    Gen.loss_burst rng ~start
      ~duration:(Prng.uniform_in rng ~lo:1.0 ~hi:(Float.max 1.01 room))
      ~rate:(Prng.uniform_in rng ~lo:0.1 ~hi:0.6)
  | 5 ->
    Gen.link_loss_burst rng ~n ~start
      ~duration:(Prng.uniform_in rng ~lo:1.0 ~hi:(Float.max 1.01 room))
      ~rate:(Prng.uniform_in rng ~lo:0.3 ~hi:0.9)
  | 6 ->
    Gen.duplication_storm rng ~start
      ~duration:(Prng.uniform_in rng ~lo:2.0 ~hi:(Float.max 2.01 room))
      ~rate:(Prng.uniform_in rng ~lo:0.1 ~hi:0.5)
  | 7 ->
    Gen.delay_spike rng ~start
      ~duration:(Prng.uniform_in rng ~lo:1.0 ~hi:(Float.max 1.01 room))
      ~factor:(Prng.uniform_in rng ~lo:2.0 ~hi:8.0)
  | _ ->
    Gen.bandwidth_squeeze rng ~start
      ~duration:(Prng.uniform_in rng ~lo:1.0 ~hi:(Float.max 1.01 room))
      ~factor:(Prng.uniform_in rng ~lo:0.05 ~hi:0.5)

let faults rng (p : plan) =
  let fragments =
    List.init
      (1 + Prng.int rng 3)
      (fun _ -> sample_fragment rng ~n:p.n ~horizon:p.horizon)
  in
  let events =
    List.filter
      (fun (e : Fault.event) -> e.Fault.at < p.quiet_after -. 0.25)
      (Gen.compose fragments)
  in
  { Fault.events; quiet_after = p.quiet_after }
