(** Deterministic sampling of workload + topology + configuration plans and
    fault schedules for campaign runs.

    A {!plan} is a pure function of its seed, so counterexamples only need to
    record the seed (plus the shrunk fault events) to replay exactly.  Plans
    stay inside the soundness envelope of the reused oracles: only absolute
    NE bounds under the Even budget policy (Theorem 1), reads requesting
    exactly the declared conit bounds (always satisfiable), and generous read
    deadlines so fault-free runs never time out. *)

type op_kind =
  | Write_op of { conit : string; nweight : float; oweight : float }
  | Read_op of { deps : (string * Tact_core.Bounds.t) list }

type op = {
  op_rid : int;
  op_time : float;
  op_kind : op_kind;
  op_deadline : float option;  (** absolute; reads only *)
}

type plan = {
  seed : int;
  n : int;  (** 2-4 replicas *)
  topology : Tact_sim.Topology.t;
  jitter : float;
  config : Tact_replica.Config.t;
  ops : op list;
  horizon : float;  (** last client submission before this time *)
  quiet_after : float;  (** disturbances lifted here ({!Fault.install}) *)
  drain : float;  (** extra virtual time to run after [quiet_after] *)
}

val plan : seed:int -> plan
(** Derive the full plan from the seed. *)

val faults : Tact_util.Prng.t -> plan -> Fault.schedule
(** Sample 1-3 composed disturbance fragments sized to the plan's horizon. *)
