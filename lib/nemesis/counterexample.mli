(** Shrunk, replayable fault-campaign counterexamples.

    A counterexample stores the run's master seed (the whole workload +
    topology + configuration plan re-derives from it — {!Sample.plan}), the
    planted-bug selector, and the {e shrunk} disturbance events.  Replay is
    exact: plans are pure functions of the seed and fault knobs are
    self-seeded, so the recorded violations and final-state fingerprint
    reproduce bit-for-bit. *)

type t = {
  seed : int;
  mutation : Mutation.t;
  events : Fault.event list;
  quiet_after : float;
  violations : string list;
  fingerprint : Tact_check.Fingerprint.t;
}

val minimize :
  seed:int ->
  mutation:Mutation.t ->
  quiet_after:float ->
  Fault.event list ->
  Fault.event list * float
(** Greedy delta-debugging: drop any single disturbance whose removal still
    violates, to a local minimum; then tighten [quiet_after] down to just
    after the last surviving disturbance if the violation persists.  Returns
    the events unchanged if the input does not fail. *)

val of_failure :
  seed:int -> mutation:Mutation.t -> schedule:Fault.schedule -> t
(** Minimize a failing run and record the shrunk run's violations and
    fingerprint. *)

val to_json : t -> Tact_check.Json.t
val of_json : Tact_check.Json.t -> (t, string) result
val save : path:string -> t -> unit
val load : path:string -> (t, string) result

type replay_verdict = {
  result : Runner.result;
  reproduced : bool;  (** violations observed again *)
  fingerprint_match : bool;  (** final state identical to the recorded one *)
}

val replay : t -> replay_verdict
