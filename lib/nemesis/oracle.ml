open Tact_replica

type op_obs = {
  o_index : int;
  o_rid : int;
  o_submit : float;
  o_deadline : float option;
  o_read : bool;
  mutable o_completions : int;
  mutable o_timeouts : int;
}

let describe_op o =
  Printf.sprintf "%s #%d at replica %d (submit %g%s)"
    (if o.o_read then "read" else "write")
    o.o_index o.o_rid o.o_submit
    (match o.o_deadline with
    | Some d -> Printf.sprintf ", deadline %g" d
    | None -> "")

(* O5 (liveness): after the quiescent tail plus drain, the system has fully
   recovered — every replica is up with nothing parked, all replicas agree
   (vectors and database images), and every client heard back exactly once:
   zero completions is a stuck access, more than one is a replayed one. *)
let check_liveness sys obs =
  let n = System.size sys in
  let issues = ref [] in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    if not (Replica.is_up r) then
      issues := Printf.sprintf "liveness: replica %d still down after heal" i
                :: !issues;
    let parked = Replica.pending_count r in
    if parked > 0 then
      issues :=
        Printf.sprintf
          "liveness: replica %d still has %d parked accesses after heal" i
          parked
        :: !issues
  done;
  let convergence =
    List.map (fun v -> "liveness: " ^ v) (Tact_check.Oracle.check_converged sys)
  in
  let completions =
    List.filter_map
      (fun o ->
        let total = o.o_completions + o.o_timeouts in
        if total = 1 then None
        else if total = 0 then
          Some
            (Printf.sprintf "liveness: %s never completed nor timed out"
               (describe_op o))
        else
          Some
            (Printf.sprintf
               "liveness: %s completed %d times (%d results, %d timeouts) — \
                expected exactly one"
               (describe_op o) total o.o_completions o.o_timeouts))
      obs
  in
  List.rev !issues @ convergence @ completions

(* O5 for sharded systems: up/parked checks run per shard instance (a
   replica serving several shards must recover all of them), convergence is
   the interest-set-aware O3 (per-shard agreement plus the cross-shard
   containment audit), and completion accounting is unchanged — a client
   heard back exactly once no matter which shard served it. *)
let check_liveness_sharded sh obs =
  let issues = ref [] in
  Sharded.iter_subs sh (fun s sys ->
      let members = Sharded.members sh s in
      for li = 0 to System.size sys - 1 do
        let r = System.replica sys li in
        let g = members.(li) in
        if not (Replica.is_up r) then
          issues :=
            Printf.sprintf
              "liveness: replica %d still down in shard %d after heal" g s
            :: !issues;
        let parked = Replica.pending_count r in
        if parked > 0 then
          issues :=
            Printf.sprintf
              "liveness: replica %d still has %d parked accesses in shard %d \
               after heal"
              g parked s
            :: !issues
      done);
  let convergence =
    List.map
      (fun v -> "liveness: " ^ v)
      (Tact_check.Oracle.check_converged_sharded sh)
  in
  let completions =
    List.filter_map
      (fun o ->
        let total = o.o_completions + o.o_timeouts in
        if total = 1 then None
        else if total = 0 then
          Some
            (Printf.sprintf "liveness: %s never completed nor timed out"
               (describe_op o))
        else
          Some
            (Printf.sprintf
               "liveness: %s completed %d times (%d results, %d timeouts) — \
                expected exactly one"
               (describe_op o) total o.o_completions o.o_timeouts))
      obs
  in
  List.rev !issues @ convergence @ completions

(* O6 (bound violations with unavailability accounting): a bounded access
   that times out trades consistency for availability — legitimate exactly
   when a fault could have parked it.  The disturbance envelope is
   approximated as [first event time, quiet_after + slack] ([slack] covers
   post-heal catch-up: retries, pulls, round trips).  A timeout whose parked
   window [submit, deadline] misses the envelope had no fault to blame: the
   deadline generosity invariant of the sampled workloads (Sample) means the
   bounds machinery itself failed to serve in time.  Served accesses are
   never excused — the runner checks them against O1 unconditionally. *)
let check_unavailability ~(schedule : Fault.schedule) ~slack obs =
  let fault_lo =
    List.fold_left
      (fun acc (e : Fault.event) -> Float.min acc e.Fault.at)
      infinity schedule.Fault.events
  in
  let fault_hi = schedule.Fault.quiet_after +. slack in
  List.filter_map
    (fun o ->
      if o.o_timeouts = 0 then None
      else
        let deadline =
          match o.o_deadline with Some d -> d | None -> infinity
        in
        let overlaps = fault_lo <= deadline && o.o_submit <= fault_hi in
        if overlaps then None
        else
          Some
            (Printf.sprintf
               "unavailability: %s timed out outside any fault window \
                (faults span [%g, %g])"
               (describe_op o) fault_lo fault_hi))
    obs

(* O6, interest-set-aware: a timeout is excused only by a disturbance that
   could actually reach the timed-out replica — one whose footprint
   ({!Fault.disturbance_scope}) intersects the replicas sharing a shard with
   it (its sync peers), or a global knob.  A fault confined to shards the
   replica does not subscribe to cannot have parked its access, so the
   timeout stays a bounds-machinery bug even if the fault overlapped in
   time.  Strictly stronger than {!check_unavailability}. *)
let check_unavailability_sharded ~sh ~(schedule : Fault.schedule) ~slack obs =
  let n = Sharded.size sh in
  (* peers.(r).(x): do r and x share a shard? *)
  let peers = Array.init n (fun _ -> Array.make n false) in
  Sharded.iter_subs sh (fun s _ ->
      let members = Sharded.members sh s in
      Array.iter
        (fun a -> Array.iter (fun b -> peers.(a).(b) <- true) members)
        members);
  let relevant rid (e : Fault.event) =
    match Fault.disturbance_scope e.Fault.action with
    | None -> false
    | Some [] -> true
    | Some rs -> List.exists (fun x -> x >= 0 && x < n && peers.(rid).(x)) rs
  in
  let fault_hi = schedule.Fault.quiet_after +. slack in
  List.filter_map
    (fun o ->
      if o.o_timeouts = 0 then None
      else
        let fault_lo =
          List.fold_left
            (fun acc (e : Fault.event) ->
              if relevant o.o_rid e then Float.min acc e.Fault.at else acc)
            infinity schedule.Fault.events
        in
        let deadline =
          match o.o_deadline with Some d -> d | None -> infinity
        in
        let overlaps = fault_lo <= deadline && o.o_submit <= fault_hi in
        if overlaps then None
        else
          Some
            (Printf.sprintf
               "unavailability: %s timed out with no fault reaching its \
                interest set (relevant faults span [%g, %g])"
               (describe_op o) fault_lo fault_hi))
    obs
