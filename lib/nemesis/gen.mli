(** Composable fault-schedule generators.

    Each generator draws every random choice from the [Prng.t] it is handed
    (a schedule is a pure function of its seeds) and returns a disturbance
    fragment; {!compose} merges fragments into one time-sorted event list.
    None of the generators emits a final heal — the runner's quiescent tail
    ({!Fault.install}) lifts whatever is still in force at [quiet_after]. *)

val rolling_partition :
  Tact_util.Prng.t ->
  n:int ->
  start:float ->
  period:float ->
  rounds:int ->
  Fault.event list
(** Isolate one node per round, rolling around the ring: the previous victim
    heals as the next is cut. *)

val asymmetric_partition :
  Tact_util.Prng.t -> n:int -> start:float -> duration:float -> Fault.event list
(** One random one-way group cut (messages A->B drop, B->A flow), healed
    after [duration]. *)

val flapping_link :
  Tact_util.Prng.t ->
  n:int ->
  start:float ->
  period:float ->
  flaps:int ->
  Fault.event list
(** A random node pair cut and healed [flaps] times at half-period cadence. *)

val crash_storm :
  Tact_util.Prng.t ->
  n:int ->
  start:float ->
  horizon:float ->
  mean_uptime:float ->
  mean_downtime:float ->
  Fault.event list
(** Poisson crash/recover process over random replicas until [horizon];
    replicas still down at the horizon recover with the quiescent tail. *)

val loss_burst :
  Tact_util.Prng.t -> start:float -> duration:float -> rate:float -> Fault.event list

val link_loss_burst :
  Tact_util.Prng.t ->
  n:int ->
  start:float ->
  duration:float ->
  rate:float ->
  Fault.event list
(** Loss on one random directed link only. *)

val duplication_storm :
  Tact_util.Prng.t -> start:float -> duration:float -> rate:float -> Fault.event list

val delay_spike :
  Tact_util.Prng.t -> start:float -> duration:float -> factor:float -> Fault.event list

val bandwidth_squeeze :
  Tact_util.Prng.t -> start:float -> duration:float -> factor:float -> Fault.event list

val compose : Fault.event list list -> Fault.event list
(** Merge fragments, stable-sorted by time. *)
