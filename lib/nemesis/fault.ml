open Tact_replica

type action =
  | Cut of int list * int list
  | Cut_oneway of int list * int list
  | Heal_between of int list * int list
  | Heal_all
  | Crash of int
  | Recover of int
  | Recover_all
  | Global_loss of { rate : float; salt : int }
  | Link_loss of { src : int; dst : int; rate : float; salt : int }
  | Duplication of { rate : float; salt : int }
  | Delay_factor of float
  | Bandwidth_factor of float

type event = { at : float; action : action }
type schedule = { events : event list; quiet_after : float }

let group_to_string g =
  "{" ^ String.concat "," (List.map string_of_int g) ^ "}"

let describe = function
  | Cut (a, b) ->
    Printf.sprintf "cut %s|%s" (group_to_string a) (group_to_string b)
  | Cut_oneway (a, b) ->
    Printf.sprintf "cut-oneway %s->%s" (group_to_string a) (group_to_string b)
  | Heal_between (a, b) ->
    Printf.sprintf "heal %s|%s" (group_to_string a) (group_to_string b)
  | Heal_all -> "heal-all"
  | Crash r -> Printf.sprintf "crash %d" r
  | Recover r -> Printf.sprintf "recover %d" r
  | Recover_all -> "recover-all"
  | Global_loss { rate; _ } -> Printf.sprintf "loss %.2f" rate
  | Link_loss { src; dst; rate; _ } ->
    Printf.sprintf "link-loss %d->%d %.2f" src dst rate
  | Duplication { rate; _ } -> Printf.sprintf "duplication %.2f" rate
  | Delay_factor f -> Printf.sprintf "delay x%.2f" f
  | Bandwidth_factor f -> Printf.sprintf "bandwidth x%.2f" f

(* Stochastic knobs carry their own seed ([salt]): the rng an action installs
   depends only on the action itself, so dropping neighbouring events during
   shrinking (or replaying from JSON) never perturbs its draw sequence. *)
let knob_rng ~salt ~rate =
  if rate <= 0.0 then None else Some (Tact_util.Prng.create ~seed:salt, rate)

let apply sys action =
  let net = System.net sys in
  match action with
  | Cut (a, b) -> Tact_sim.Net.partition net a b
  | Cut_oneway (a, b) -> Tact_sim.Net.partition_oneway net a b
  | Heal_between (a, b) -> Tact_sim.Net.heal_between net a b
  | Heal_all -> Tact_sim.Net.heal net
  | Crash r -> Replica.crash (System.replica sys r)
  | Recover r -> Replica.recover (System.replica sys r)
  | Recover_all ->
    for r = 0 to System.size sys - 1 do
      Replica.recover (System.replica sys r)
    done
  | Global_loss { rate; salt } ->
    Tact_sim.Net.set_loss net (knob_rng ~salt ~rate)
  | Link_loss { src; dst; rate; salt } ->
    Tact_sim.Net.set_link_loss net ~src ~dst (knob_rng ~salt ~rate)
  | Duplication { rate; salt } ->
    Tact_sim.Net.set_duplication net (knob_rng ~salt ~rate)
  | Delay_factor f -> Tact_sim.Net.set_delay_factor net f
  | Bandwidth_factor f -> Tact_sim.Net.set_bandwidth_factor net f

let clear_all sys =
  let net = System.net sys in
  let n = System.size sys in
  Tact_sim.Net.heal net;
  Tact_sim.Net.set_loss net None;
  Tact_sim.Net.set_duplication net None;
  Tact_sim.Net.set_delay_factor net 1.0;
  Tact_sim.Net.set_bandwidth_factor net 1.0;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then Tact_sim.Net.set_link_loss net ~src ~dst None
    done
  done;
  for r = 0 to n - 1 do
    Replica.recover (System.replica sys r)
  done

(* ------------------------------------------------------------------ *)
(* Sharded systems                                                     *)

(* A global action projected onto one shard's sub-system: group and replica
   ids are filtered to the shard's subscribers and renumbered locally, so a
   fault never reaches a replica through a shard it does not serve.  Global
   knobs (loss, duplication, delay, bandwidth) apply to every shard's net;
   their rng salt is offset by the shard id (shard 0 keeps the raw salt, so
   a 1-shard system replays the unsharded draw stream exactly). *)
let apply_in_shard sh s sys action =
  let net = System.net sys in
  let mem r = Sharded.subscribed sh ~shard:s r in
  let loc r =
    match Sharded.local_id sh ~shard:s r with
    | Some l -> l
    | None -> invalid_arg "Fault.apply_in_shard: non-member replica"
  in
  let proj g = List.filter_map (fun r -> if mem r then Some (loc r) else None) g in
  let on_groups f a b =
    let a' = proj a and b' = proj b in
    if a' <> [] && b' <> [] then f a' b'
  in
  match action with
  | Cut (a, b) -> on_groups (Tact_sim.Net.partition net) a b
  | Cut_oneway (a, b) -> on_groups (Tact_sim.Net.partition_oneway net) a b
  | Heal_between (a, b) -> on_groups (Tact_sim.Net.heal_between net) a b
  | Heal_all -> Tact_sim.Net.heal net
  | Crash r -> if mem r then Replica.crash (System.replica sys (loc r))
  | Recover r -> if mem r then Replica.recover (System.replica sys (loc r))
  | Recover_all ->
    for l = 0 to System.size sys - 1 do
      Replica.recover (System.replica sys l)
    done
  | Global_loss { rate; salt } ->
    Tact_sim.Net.set_loss net (knob_rng ~salt:(salt + s) ~rate)
  | Link_loss { src; dst; rate; salt } ->
    if mem src && mem dst then
      Tact_sim.Net.set_link_loss net ~src:(loc src) ~dst:(loc dst)
        (knob_rng ~salt:(salt + s) ~rate)
  | Duplication { rate; salt } ->
    Tact_sim.Net.set_duplication net (knob_rng ~salt:(salt + s) ~rate)
  | Delay_factor f -> Tact_sim.Net.set_delay_factor net f
  | Bandwidth_factor f -> Tact_sim.Net.set_bandwidth_factor net f

let apply_sharded sh action =
  Sharded.iter_subs sh (fun s sys -> apply_in_shard sh s sys action)

let clear_all_sharded sh = Sharded.iter_subs sh (fun _ sys -> clear_all sys)

(* The disturbance footprint of an action: [None] for heals and recoveries
   (they cannot cause a timeout), [Some []] for global knobs (every replica
   is exposed), [Some rs] for faults touching specific replicas.  The
   interest-set-aware O6 uses this to refuse excusing a timeout by a fault
   that could not reach the timed-out replica's shards. *)
let disturbance_scope = function
  | Heal_between _ | Heal_all | Recover _ | Recover_all -> None
  | Cut (a, b) | Cut_oneway (a, b) -> Some (a @ b)
  | Crash r -> Some [ r ]
  | Link_loss { src; dst; _ } -> Some [ src; dst ]
  | Global_loss _ | Duplication _ | Delay_factor _ | Bandwidth_factor _ ->
    Some []

let fault_label = { Tact_sim.Engine.actor = -1; tag = "fault" }

let install sys sched =
  List.iter
    (fun e ->
      Tact_sim.Engine.at (System.engine sys) ~label:fault_label ~time:e.at
        (fun () -> apply sys e.action))
    sched.events;
  (* The quiescent tail is not an event of the schedule: it is installed
     unconditionally so that shrinking can never "find" a failure by deleting
     the heal — after [quiet_after] every disturbance is lifted. *)
  Tact_sim.Engine.at (System.engine sys) ~label:fault_label
    ~time:sched.quiet_after (fun () -> clear_all sys)

(* Each shard's engine gets its own copy of every event, applying only that
   shard's projection — shards may be drained on different pool domains, so
   a fault event running on shard A's engine must never touch shard B's
   state. *)
let install_sharded sh sched =
  Sharded.iter_subs sh (fun s sys ->
      List.iter
        (fun e ->
          Tact_sim.Engine.at (System.engine sys) ~label:fault_label ~time:e.at
            (fun () -> apply_in_shard sh s sys e.action))
        sched.events;
      Tact_sim.Engine.at (System.engine sys) ~label:fault_label
        ~time:sched.quiet_after (fun () -> clear_all sys))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let bad_rate r = Float.is_nan r || r < 0.0 || r > 1.0
let bad_group ~n g = g = [] || List.exists (fun i -> i < 0 || i >= n) g
let bad_rid ~n r = r < 0 || r >= n

let action_errors ~n action =
  let err fmt = Printf.ksprintf (fun m -> [ m ]) fmt in
  match action with
  | Cut (a, b) | Cut_oneway (a, b) | Heal_between (a, b) ->
    if bad_group ~n a || bad_group ~n b then
      err "%s: node group out of range (n = %d)" (describe action) n
    else []
  | Heal_all | Recover_all -> []
  | Crash r | Recover r ->
    if bad_rid ~n r then err "%s: not a replica id (n = %d)" (describe action) n
    else []
  | Global_loss { rate; _ } | Duplication { rate; _ } ->
    if bad_rate rate then err "%s: rate outside [0, 1]" (describe action)
    else []
  | Link_loss { src; dst; rate; _ } ->
    if bad_rid ~n src || bad_rid ~n dst then
      err "%s: endpoint out of range (n = %d)" (describe action) n
    else if bad_rate rate then err "%s: rate outside [0, 1]" (describe action)
    else []
  | Delay_factor f | Bandwidth_factor f ->
    if Float.is_nan f || f <= 0.0 then
      err "%s: factor must be positive" (describe action)
    else []

let validate ~n sched =
  let errs =
    List.concat_map
      (fun e ->
        let base = action_errors ~n e.action in
        if Float.is_nan e.at || e.at < 0.0 then
          Printf.sprintf "%s: negative event time %g" (describe e.action) e.at
          :: base
        else if e.at >= sched.quiet_after then
          Printf.sprintf "%s: event at %g not before quiet_after %g"
            (describe e.action) e.at sched.quiet_after
          :: base
        else base)
      sched.events
  in
  if sched.quiet_after <= 0.0 || Float.is_nan sched.quiet_after then
    "quiet_after must be positive" :: errs
  else errs

(* ------------------------------------------------------------------ *)
(* JSON round-trip (the counterexample payload)                        *)

module Json = Tact_check.Json

let action_to_json action =
  let group g = Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) g) in
  let num x = Json.Num x in
  let int i = num (float_of_int i) in
  match action with
  | Cut (a, b) -> Json.Obj [ ("t", Json.Str "cut"); ("a", group a); ("b", group b) ]
  | Cut_oneway (a, b) ->
    Json.Obj [ ("t", Json.Str "cut1"); ("a", group a); ("b", group b) ]
  | Heal_between (a, b) ->
    Json.Obj [ ("t", Json.Str "healb"); ("a", group a); ("b", group b) ]
  | Heal_all -> Json.Obj [ ("t", Json.Str "heal") ]
  | Crash r -> Json.Obj [ ("t", Json.Str "crash"); ("r", int r) ]
  | Recover r -> Json.Obj [ ("t", Json.Str "recover"); ("r", int r) ]
  | Recover_all -> Json.Obj [ ("t", Json.Str "recover_all") ]
  | Global_loss { rate; salt } ->
    Json.Obj [ ("t", Json.Str "loss"); ("rate", num rate); ("salt", int salt) ]
  | Link_loss { src; dst; rate; salt } ->
    Json.Obj
      [
        ("t", Json.Str "link_loss");
        ("src", int src);
        ("dst", int dst);
        ("rate", num rate);
        ("salt", int salt);
      ]
  | Duplication { rate; salt } ->
    Json.Obj [ ("t", Json.Str "dup"); ("rate", num rate); ("salt", int salt) ]
  | Delay_factor f -> Json.Obj [ ("t", Json.Str "delay"); ("f", num f) ]
  | Bandwidth_factor f -> Json.Obj [ ("t", Json.Str "bw"); ("f", num f) ]

let event_to_json e =
  match action_to_json e.action with
  | Json.Obj fields -> Json.Obj (("at", Json.Num e.at) :: fields)
  | j -> j

let ( let* ) x f = match x with Some v -> f v | None -> None

let group_of_json j =
  let* items = Json.to_list j in
  List.fold_right
    (fun item acc ->
      let* acc = acc in
      let* i = Json.to_int item in
      Some (i :: acc))
    items (Some [])

let action_of_json j =
  let* tag = Option.bind (Json.member "t" j) Json.to_str in
  let groups k =
    let* a = Option.bind (Json.member "a" j) group_of_json in
    let* b = Option.bind (Json.member "b" j) group_of_json in
    Some (k a b)
  in
  let rid k = Option.bind (Option.bind (Json.member "r" j) Json.to_int) k in
  let rated k =
    let* rate = Option.bind (Json.member "rate" j) Json.to_float in
    let* salt = Option.bind (Json.member "salt" j) Json.to_int in
    k ~rate ~salt
  in
  match tag with
  | "cut" -> groups (fun a b -> Cut (a, b))
  | "cut1" -> groups (fun a b -> Cut_oneway (a, b))
  | "healb" -> groups (fun a b -> Heal_between (a, b))
  | "heal" -> Some Heal_all
  | "crash" -> rid (fun r -> Some (Crash r))
  | "recover" -> rid (fun r -> Some (Recover r))
  | "recover_all" -> Some Recover_all
  | "loss" -> rated (fun ~rate ~salt -> Some (Global_loss { rate; salt }))
  | "link_loss" ->
    rated (fun ~rate ~salt ->
        let* src = Option.bind (Json.member "src" j) Json.to_int in
        let* dst = Option.bind (Json.member "dst" j) Json.to_int in
        Some (Link_loss { src; dst; rate; salt }))
  | "dup" -> rated (fun ~rate ~salt -> Some (Duplication { rate; salt }))
  | "delay" ->
    Option.bind (Option.bind (Json.member "f" j) Json.to_float) (fun f ->
        Some (Delay_factor f))
  | "bw" ->
    Option.bind (Option.bind (Json.member "f" j) Json.to_float) (fun f ->
        Some (Bandwidth_factor f))
  | _ -> None

let event_of_json j =
  let* at = Option.bind (Json.member "at" j) Json.to_float in
  let* action = action_of_json j in
  Some { at; action }

let schedule_to_json s =
  Json.Obj
    [
      ("quiet_after", Json.Num s.quiet_after);
      ("events", Json.Arr (List.map event_to_json s.events));
    ]

let schedule_of_json j =
  let* quiet_after = Option.bind (Json.member "quiet_after" j) Json.to_float in
  let* items = Option.bind (Json.member "events" j) Json.to_list in
  let* events =
    List.fold_right
      (fun item acc ->
        let* acc = acc in
        let* e = event_of_json item in
        Some (e :: acc))
      items (Some [])
  in
  Some { events; quiet_after }
