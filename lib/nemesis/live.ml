open Tact_util
open Tact_transport
module Replica = Tact_replica.Replica

let knob rate salt = if rate > 0.0 then Some (Prng.create ~seed:salt, rate) else None

let apply srv (action : Fault.action) =
  let fy = Serve.faulty srv in
  let me = Serve.id srv in
  match action with
  | Fault.Cut (ga, gb) -> Faulty.partition fy ga gb
  | Fault.Cut_oneway (ga, gb) -> Faulty.partition_oneway fy ga gb
  | Fault.Heal_between (ga, gb) -> Faulty.heal_between fy ga gb
  | Fault.Heal_all -> Faulty.heal fy
  | Fault.Crash i -> if i = me then Replica.crash (Serve.replica srv)
  | Fault.Recover i -> if i = me then Replica.recover (Serve.replica srv)
  | Fault.Recover_all ->
    if not (Replica.is_up (Serve.replica srv)) then Replica.recover (Serve.replica srv)
  | Fault.Global_loss { rate; salt } -> Faulty.set_loss fy (knob rate (salt + me))
  | Fault.Link_loss { src; dst; rate; salt } ->
    if src = me then Faulty.set_link_loss fy ~dst (knob rate salt)
  | Fault.Duplication { rate; salt } -> Faulty.set_duplication fy (knob rate (salt + me))
  | Fault.Delay_factor f -> Faulty.set_delay_factor fy f
  | Fault.Bandwidth_factor _ -> ()

let clear_all srv =
  Faulty.clear_all (Serve.faulty srv);
  if not (Replica.is_up (Serve.replica srv)) then Replica.recover (Serve.replica srv)

let install ?(trace = fun _ -> ()) srv (sched : Fault.schedule) =
  let loop = Serve.loop srv in
  List.iter
    (fun { Fault.at; action } ->
      Loop.schedule loop ~tag:"fault" ~delay:at (fun () ->
          trace (Printf.sprintf "[%d] fault @%.2f: %s" (Serve.id srv) at
                   (Fault.describe action));
          apply srv action))
    sched.Fault.events;
  Loop.schedule loop ~tag:"fault" ~delay:sched.Fault.quiet_after (fun () ->
      trace
        (Printf.sprintf "[%d] fault @%.2f: heal-all (quiescent tail)" (Serve.id srv)
           sched.Fault.quiet_after);
      clear_all srv)
