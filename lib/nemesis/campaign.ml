open Tact_util

type config = {
  master_seed : int;
  runs : int;
  jobs : int;
  mutation : Mutation.t;
  max_shrunk : int;
  budget_check : (unit -> bool) option;
}

let default =
  {
    master_seed = 1;
    runs = 100;
    jobs = 1;
    mutation = Mutation.Off;
    max_shrunk = 3;
    budget_check = None;
  }

type outcome = {
  run_seed : int;
  violations : string list;
  fingerprint : Tact_check.Fingerprint.t;
  schedule_events : int;
  ops : int;
  timeouts : int;
  dropped : int;
}

type summary = {
  attempted : int;
  completed : int;
  outcomes : outcome list;  (** completed runs, in seed-derivation order *)
  failures : Counterexample.t list;
      (** minimized, at most [max_shrunk], in run order *)
  digest : string;
}

(* Per-run seeds are drawn sequentially from the master stream before any
   fan-out, so the set of runs is independent of [jobs]. *)
let derive_seeds ~master_seed ~runs =
  let g = Prng.create ~seed:master_seed in
  List.init runs (fun _ -> Int64.to_int (Prng.bits64 g) land 0x3FFFFFFFFFFFFF)

let one_run ~mutation run_seed =
  let g = Prng.create ~seed:run_seed in
  let fault_rng = Prng.split g in
  let p = Sample.plan ~seed:run_seed in
  let schedule = Sample.faults fault_rng p in
  let r = Runner.execute ~mutate:(Mutation.apply mutation) p schedule in
  ( {
      run_seed;
      violations = r.Runner.violations;
      fingerprint = r.Runner.fingerprint;
      schedule_events = List.length schedule.Fault.events;
      ops = r.Runner.ops;
      timeouts = r.Runner.timeouts;
      dropped = r.Runner.dropped;
    },
    schedule )

(* FNV-1a over the ordered per-run results: equal digests mean the campaign
   saw identical runs with identical verdicts — the jobs-independence
   contract is asserted on this string. *)
let digest_outcomes outcomes =
  let h = ref 0xcbf29ce484222325L in
  let mix_byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) 0x100000001b3L
  in
  let mix_string s = String.iter (fun c -> mix_byte (Char.code c)) s in
  List.iter
    (fun o ->
      mix_string (string_of_int o.run_seed);
      mix_string (Tact_check.Fingerprint.to_hex o.fingerprint);
      mix_string (string_of_int (List.length o.violations)))
    outcomes;
  Printf.sprintf "%016Lx" !h

let rec batches k = function
  | [] -> []
  | xs ->
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (n - 1) (x :: acc) rest
    in
    let batch, rest = take k [] xs in
    batch :: batches k rest

let run cfg =
  let seeds = derive_seeds ~master_seed:cfg.master_seed ~runs:cfg.runs in
  let batch_size = max 1 (cfg.jobs * 4) in
  let results =
    Pool.with_pool ~jobs:cfg.jobs (fun pool ->
        let out = ref [] in
        let stopped = ref false in
        List.iter
          (fun batch ->
            if not !stopped then begin
              out :=
                Pool.map_list pool (one_run ~mutation:cfg.mutation) batch
                :: !out;
              (* The budget gate sits between fixed-size batches so a fixed
                 seed always executes a whole number of identical batches —
                 wall-clock never changes what any single run does. *)
              match cfg.budget_check with
              | Some keep_going when not (keep_going ()) -> stopped := true
              | _ -> ()
            end)
          (batches batch_size seeds);
        List.concat (List.rev !out))
  in
  let outcomes = List.map fst results in
  let failures_raw =
    List.filter (fun (o, _) -> o.violations <> []) results
  in
  let failures =
    List.filteri (fun i _ -> i < cfg.max_shrunk) failures_raw
    |> List.map (fun (o, schedule) ->
           Counterexample.of_failure ~seed:o.run_seed ~mutation:cfg.mutation
             ~schedule)
  in
  {
    attempted = cfg.runs;
    completed = List.length outcomes;
    outcomes;
    failures;
    digest = digest_outcomes outcomes;
  }
