open Tact_util

(* Every generator draws from an explicit [Prng.t] and returns plain events;
   [compose] merges fragments into one time-sorted disturbance list.  Salts
   for stochastic knobs are drawn here, once, so the events are self-seeding
   (see Fault). *)

let salt rng = Prng.int rng 0x3FFFFFFF

(* A random non-empty proper subset of [0, n), with its complement. *)
let split_groups rng ~n =
  let k = 1 + Prng.int rng (n - 1) in
  let ids = Array.init n Fun.id in
  Prng.shuffle rng ids;
  let a = Array.to_list (Array.sub ids 0 k) in
  let b = Array.to_list (Array.sub ids k (n - k)) in
  (List.sort Int.compare a, List.sort Int.compare b)

(* Isolate one node per round, moving around the ring: heal the previous
   victim just before cutting the next, so the partition "rolls". *)
let rolling_partition rng ~n ~start ~period ~rounds =
  let first = Prng.int rng n in
  let events = ref [] in
  for r = 0 to rounds - 1 do
    let victim = (first + r) mod n in
    let t = start +. (float_of_int r *. period) in
    let rest = List.filter (fun i -> i <> victim) (List.init n Fun.id) in
    if r > 0 then begin
      let prev = (first + r - 1) mod n in
      let prev_rest = List.filter (fun i -> i <> prev) (List.init n Fun.id) in
      events :=
        { Fault.at = t; action = Fault.Heal_between ([ prev ], prev_rest) }
        :: !events
    end;
    events :=
      { Fault.at = t +. (period /. 100.0); action = Fault.Cut ([ victim ], rest) }
      :: !events
  done;
  (* Final victim heals with the quiescent tail. *)
  List.rev !events

let asymmetric_partition rng ~n ~start ~duration =
  let a, b = split_groups rng ~n in
  [
    { Fault.at = start; action = Fault.Cut_oneway (a, b) };
    { Fault.at = start +. duration; action = Fault.Heal_between (a, b) };
  ]

(* One link pair alternating cut/heal every [period]. *)
let flapping_link rng ~n ~start ~period ~flaps =
  let a = Prng.int rng n in
  let b = (a + 1 + Prng.int rng (n - 1)) mod n in
  List.concat
    (List.init flaps (fun i ->
         let t = start +. (float_of_int i *. period) in
         [
           { Fault.at = t; action = Fault.Cut ([ a ], [ b ]) };
           {
             Fault.at = t +. (period /. 2.0);
             action = Fault.Heal_between ([ a ], [ b ]);
           };
         ]))

(* Crash a random replica, keep it down for an exponential holding time,
   recover, repeat — overlapping storms across replicas are possible and
   intended. *)
let crash_storm rng ~n ~start ~horizon ~mean_uptime ~mean_downtime =
  let events = ref [] in
  let t = ref (start +. Prng.exponential rng ~mean:mean_uptime) in
  while !t < horizon do
    let victim = Prng.int rng n in
    let down = Prng.exponential rng ~mean:mean_downtime in
    events := { Fault.at = !t; action = Fault.Crash victim } :: !events;
    let recover_at = !t +. down in
    if recover_at < horizon then
      events := { Fault.at = recover_at; action = Fault.Recover victim } :: !events;
    (* Replicas still down at the horizon recover with the quiescent tail. *)
    t := !t +. Prng.exponential rng ~mean:mean_uptime
  done;
  List.rev !events

let loss_burst rng ~start ~duration ~rate =
  [
    { Fault.at = start; action = Fault.Global_loss { rate; salt = salt rng } };
    { Fault.at = start +. duration; action = Fault.Global_loss { rate = 0.0; salt = 0 } };
  ]

let link_loss_burst rng ~n ~start ~duration ~rate =
  let src = Prng.int rng n in
  let dst = (src + 1 + Prng.int rng (n - 1)) mod n in
  [
    {
      Fault.at = start;
      action = Fault.Link_loss { src; dst; rate; salt = salt rng };
    };
    {
      Fault.at = start +. duration;
      action = Fault.Link_loss { src; dst; rate = 0.0; salt = 0 };
    };
  ]

let duplication_storm rng ~start ~duration ~rate =
  [
    { Fault.at = start; action = Fault.Duplication { rate; salt = salt rng } };
    { Fault.at = start +. duration; action = Fault.Duplication { rate = 0.0; salt = 0 } };
  ]

let delay_spike _rng ~start ~duration ~factor =
  [
    { Fault.at = start; action = Fault.Delay_factor factor };
    { Fault.at = start +. duration; action = Fault.Delay_factor 1.0 };
  ]

let bandwidth_squeeze _rng ~start ~duration ~factor =
  [
    { Fault.at = start; action = Fault.Bandwidth_factor factor };
    { Fault.at = start +. duration; action = Fault.Bandwidth_factor 1.0 };
  ]

let compose fragments =
  List.stable_sort
    (fun (a : Fault.event) b -> Float.compare a.Fault.at b.Fault.at)
    (List.concat fragments)
