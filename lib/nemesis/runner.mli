(** Execute one sampled plan under one fault schedule and check every
    oracle: the reused O1 (bounds), O2 (committed order, [ext] only under
    Stability commitment), O4 (Theorem 1), plus the nemesis O5 (liveness,
    which subsumes O3 convergence) and O6 (unavailability accounting).

    The run is a pure function of [(plan, schedule, mutate)] — the system is
    built jitter-seeded from the plan's seed, loss-free at the {!System}
    level (loss is injected only through fault events), and every stochastic
    fault knob is self-seeded. *)

type result = {
  violations : string list;  (** empty = passed every oracle *)
  fingerprint : Tact_check.Fingerprint.t;  (** final state digest *)
  ops : int;
  timeouts : int;
  messages : int;
  dropped : int;
}

val execute :
  ?mutate:(Tact_replica.Config.t -> Tact_replica.Config.t) ->
  Sample.plan ->
  Fault.schedule ->
  result
(** [mutate] (default identity) transforms the configuration just before the
    system is built — the hook the mutation tests use to enable planted bugs
    ([fault_crash_replay], [fault_oe_slack]).  Oracle parameters (declared
    conits, commit scheme) are always taken from the {e unmutated} plan. *)
