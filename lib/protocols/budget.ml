type policy = Even | Proportional of float array | Adaptive

let proportional_share ~bound ~n ~self ~receiver rates =
  let total = ref 0.0 in
  Array.iteri (fun j r -> if j <> receiver then total := !total +. r) rates;
  if !total <= 0.0 then bound /. float_of_int (n - 1)
  else bound *. rates.(self) /. !total

let share policy ~bound ~n ~self ~receiver ~rates =
  assert (n > 1 && self <> receiver);
  if Float.equal bound infinity then infinity
  else
    match policy with
    | Even -> bound /. float_of_int (n - 1)
    | Proportional static -> proportional_share ~bound ~n ~self ~receiver static
    | Adaptive -> proportional_share ~bound ~n ~self ~receiver rates

let policy_name = function
  | Even -> "even"
  | Proportional _ -> "proportional"
  | Adaptive -> "adaptive"
