(** ECG reference histories (Section 3.2).

    An ECG history is a serial history over all accesses accepted by the
    system that is compatible with both external order (a returns to its user
    before b is submitted ⇒ a precedes b) and causal order (a is in the local
    history of b's originating replica when b is accepted ⇒ a precedes b).
    Consistency of the continuous model is defined as distance between local
    histories and some ECG history.

    In a simulation with a global clock, ordering all writes by
    [(accept_time, origin, seq)] yields one canonical ECG history: external
    order is respected because a write's accept time never exceeds its return
    time, and causal order is respected because writes propagate only after
    acceptance.  The two compatibility predicates below let tests check this
    rather than assume it. *)

val canonical : Tact_store.Write.t list -> Tact_store.Write.t list
(** Sort by the canonical timestamp order. *)

val actual_prefix :
  all:Tact_store.Write.t list ->
  return_time:(Tact_store.Write.id -> float) ->
  stime:float ->
  observed:(Tact_store.Write.id -> bool) ->
  Tact_store.Write.t list
(** The writes that {e must} precede an access submitted at [stime] in every
    ECG history: those that returned to their users strictly before [stime]
    (external order) plus those the access's replica had already seen (causal
    order).  Using this most-permissive prefix makes the per-access bound
    check a necessary condition that our protocols also achieve; see
    EXPERIMENTS.md §verification. *)

val is_prefix :
  Tact_store.Write.t list -> Tact_store.Write.t list -> bool
(** [is_prefix shorter longer]: is the first write sequence an id-for-id
    prefix of the second?  The committed-prefix oracle uses this pairwise
    across replicas (1SR: all committed orders agree up to length). *)

val externally_compatible :
  order:Tact_store.Write.t list -> return_time:(Tact_store.Write.id -> float) -> bool
(** Does the given serial order respect external order among writes?  (If
    [a] returned before [b] was accepted, [a] must precede [b].) *)

val causally_compatible :
  order:Tact_store.Write.t list ->
  accept_vector:(Tact_store.Write.id -> Tact_store.Version_vector.t) ->
  bool
(** Does the given serial order respect causal order?  [accept_vector w] is
    the originating replica's version vector at the moment [w] was accepted;
    [a] causally precedes [b] iff [b]'s accept vector covers [a]. *)
