open Tact_store

let canonical writes = List.sort Write.ts_compare writes

let actual_prefix ~all ~return_time ~stime ~observed =
  canonical
    (List.filter
       (fun w -> return_time w.Write.id < stime || observed w.Write.id)
       all)

let is_prefix shorter longer =
  let rec go s l =
    match (s, l) with
    | [], _ -> true
    | _ :: _, [] -> false
    | ws :: s', wl :: l' ->
      Write.compare_id ws.Write.id wl.Write.id = 0 && go s' l'
  in
  go shorter longer

let externally_compatible ~order ~return_time =
  (* O(n^2) pairwise check — this is a test oracle, not protocol code. *)
  let arr = Array.of_list order in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* arr.(i) precedes arr.(j); violated iff arr.(j) returned before
         arr.(i) was accepted. *)
      if return_time arr.(j).Write.id < arr.(i).Write.accept_time then ok := false
    done
  done;
  !ok

let causally_compatible ~order ~accept_vector =
  let arr = Array.of_list order in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* arr.(j) follows arr.(i) in the order; violated iff arr.(i)'s accept
         vector already covered arr.(j) (i.e. arr.(j) causally precedes
         arr.(i)). *)
      let vi = accept_vector arr.(i).Write.id in
      let idj = arr.(j).Write.id in
      if Version_vector.covers vi ~origin:idj.Write.origin ~seq:idj.Write.seq then
        ok := false
    done
  done;
  !ok
