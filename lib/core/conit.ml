type t = {
  name : string;
  ne_bound : float;
  ne_rel_bound : float;
  oe_bound : float;
  st_bound : float;
  initial_value : float;
}

let declare ?(ne_bound = infinity) ?(ne_rel_bound = infinity) ?(oe_bound = infinity)
    ?(st_bound = infinity) ?(initial_value = 0.0) name =
  { name; ne_bound; ne_rel_bound; oe_bound; st_bound; initial_value }

let unconstrained name = declare name

let is_unconstrained c =
  Float.equal c.ne_bound infinity
  && Float.equal c.ne_rel_bound infinity
  && Float.equal c.oe_bound infinity
  && Float.equal c.st_bound infinity
