(** Conit declarations.

    A conit is logically a function from database state to a real number
    (Section 3.2), but applications never write that function down: under the
    weight-specification discipline of Section 3.4, a conit's value is the
    accumulated numerical weight of the writes affecting it, and the conit
    itself is identified by a symbolic name (e.g. ["AllMsg"],
    ["MsgFromFriends"]).

    A declaration optionally fixes the {e system-wide} numerical-error bound
    that the proactive push protocol maintains for the conit.  Per-access NE
    requirements no looser than the declared bound are then satisfied without
    blocking; tighter one-off requirements trigger an on-demand pull.

    Declared order-error and staleness bounds record the application's
    standing OE/ST requirements on the conit.  Enforcement of those two
    metrics is reactive (commit-driving pulls at access time), so the
    declared values do not change protocol behaviour; they are validated by
    {!Tact_replica.Config.validate} and audited by the static analyzer,
    which checks them against the anti-entropy schedule and topology. *)

type t = {
  name : string;
  ne_bound : float;  (** system-wide absolute NE maintained by pushes *)
  ne_rel_bound : float;  (** system-wide relative NE maintained by pushes *)
  oe_bound : float;  (** standing order-error requirement (analyzed, not pushed) *)
  st_bound : float;  (** standing staleness requirement (analyzed, not pushed) *)
  initial_value : float;
      (** the conit's value over the initial database (e.g. seats initially
          available on a flight); accumulated write weights are offsets from
          this base.  Only relative error depends on it. *)
}

val declare :
  ?ne_bound:float ->
  ?ne_rel_bound:float ->
  ?oe_bound:float ->
  ?st_bound:float ->
  ?initial_value:float ->
  string ->
  t
(** Unspecified bounds are unconstrained; [initial_value] defaults to 0. *)

val unconstrained : string -> t

val is_unconstrained : t -> bool
(** True when every declared bound is infinite — the declaration names the
    conit but promises nothing. *)
