(** Access records: everything the verification harness needs to check, after
    the fact, that an access was served within its declared bounds.

    Replicas emit one record per served access.  The omniscient checker (which
    sees every write accepted anywhere, with acceptance and return times)
    recomputes the true NE/OE/ST of each depended-on conit against the
    reference history and compares with the bounds — this is how integration
    tests establish that the protocols enforce the model. *)

type kind =
  | Read
  | Write_access of Tact_store.Write.id

type dep = { conit : string; bound : Bounds.t }

type t = {
  kind : kind;
  replica : int;  (** originating replica *)
  submit_time : float;
  serve_time : float;
      (** when the replica served it: a read's evaluation instant, a write's
          acceptance instant (>= submit when the access blocked on bounds) *)
  return_time : float;
      (** when the result returned to the client; equals [serve_time] except
          for writes delayed by the numerical-error push protocol *)
  deps : dep list;
  observed_vector : Tact_store.Version_vector.t;
      (** the replica's version vector at service time — identifies the
          observed prefix history *)
  observed_tentative : Tact_store.Write.id list;
      (** ids of the tentative suffix at service time, in local order *)
  observed_local : Tact_store.Write.id list Lazy.t;
      (** the full local history order at service time (committed prefix then
          tentative suffix) — input to the definitional order-error check.
          Lazy: replicas capture it as an O(1) cursor into the write log's
          append-only commit journal (plus the tentative ids); forcing it
          expands the cursor.  The expansion is stable — the journal is never
          truncated — so verification may force it long after the fact. *)
  observed_result : Tact_store.Value.t;
}

val depends_on : t -> string -> bool
val bound_for : t -> string -> Bounds.t option
