type t = { ne : float; ne_rel : float; oe : float; st : float }

let weak = { ne = infinity; ne_rel = infinity; oe = infinity; st = infinity }
let strong = { ne = 0.0; ne_rel = 0.0; oe = 0.0; st = 0.0 }

let make ?(ne = infinity) ?(ne_rel = infinity) ?(oe = infinity) ?(st = infinity) () =
  { ne; ne_rel; oe; st }

let is_strong b = Float.equal b.ne 0.0 && Float.equal b.oe 0.0
let is_weak b = b = weak

let within ~ne ~ne_rel ~oe ~st b =
  ne <= b.ne && ne_rel <= b.ne_rel && oe <= b.oe && st <= b.st

let tighten a b =
  {
    ne = Float.min a.ne b.ne;
    ne_rel = Float.min a.ne_rel b.ne_rel;
    oe = Float.min a.oe b.oe;
    st = Float.min a.st b.st;
  }

let comp_to_string x =
  if Float.equal x infinity then "inf" else Printf.sprintf "%g" x

let to_string b =
  Printf.sprintf "(ne=%s ne_rel=%s oe=%s st=%s)" (comp_to_string b.ne)
    (comp_to_string b.ne_rel) (comp_to_string b.oe) (comp_to_string b.st)
