type kind = Read | Write_access of Tact_store.Write.id

type dep = { conit : string; bound : Bounds.t }

type t = {
  kind : kind;
  replica : int;
  submit_time : float;
  serve_time : float;
  return_time : float;
  deps : dep list;
  observed_vector : Tact_store.Version_vector.t;
  observed_tentative : Tact_store.Write.id list;
  observed_local : Tact_store.Write.id list Lazy.t;
  observed_result : Tact_store.Value.t;
}

let dep_for t conit = List.find_opt (fun d -> String.equal d.conit conit) t.deps
let depends_on t conit = Option.is_some (dep_for t conit)
let bound_for t conit = Option.map (fun d -> d.bound) (dep_for t conit)
