open Tact_store

let value history conit =
  List.fold_left (fun acc w -> acc +. Write.nweight w conit) 0.0 history

let numerical_error ~actual ~observed conit =
  Float.abs (value actual conit -. value observed conit)

let relative_error ~actual ~observed conit =
  let av = value actual conit in
  let err = Float.abs (av -. value observed conit) in
  if Float.equal err 0.0 then 0.0
  else if Float.equal av 0.0 then infinity
  else err /. Float.abs av

let projection history conit = List.filter (fun w -> Write.affects_conit w conit) history

let order_error_lcp ~ecg ~local conit =
  let ecg_proj = projection ecg conit in
  let local_proj = projection local conit in
  (* Walk both projections; beyond the first divergence, every remaining local
     write counts with its oweight. *)
  let rec beyond_lcp e l =
    match (e, l) with
    | _, [] -> []
    | [], l -> l
    | we :: e', wl :: l' ->
      if we.Write.id = wl.Write.id then beyond_lcp e' l' else l
  in
  List.fold_left
    (fun acc w -> acc +. Write.oweight w conit)
    0.0
    (beyond_lcp ecg_proj local_proj)

let order_error_tentative ~tentative conit =
  List.fold_left
    (fun acc w -> if Write.affects_conit w conit then acc +. Write.oweight w conit else acc)
    0.0 tentative

let staleness ~now ~unseen conit =
  List.fold_left
    (fun acc w ->
      if Write.affects_conit w conit then Float.max acc (now -. w.Write.accept_time)
      else acc)
    0.0 unseen
