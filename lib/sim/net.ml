type stats = { messages : int; bytes : int; dropped : int }

type t = {
  engine : Engine.t;
  topo : Topology.t;
  jitter : (Tact_util.Prng.t * float) option;
  loss : (Tact_util.Prng.t * float) option;
  queued : bool;
  link_free : (int * int, float) Hashtbl.t;  (* per directed link: time the
                                                transmitter frees up *)
  link_traffic : (int * int, int ref * int ref) Hashtbl.t;  (* msgs, bytes *)
  cut : (int * int, unit) Hashtbl.t;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped : int;
}

let create engine topo ?jitter ?loss ?(queued = false) () =
  {
    engine;
    topo;
    jitter;
    loss;
    queued;
    link_free = Hashtbl.create 7;
    link_traffic = Hashtbl.create 7;
    cut = Hashtbl.create 7;
    messages = 0;
    bytes = 0;
    dropped = 0;
  }

let engine t = t.engine
let size t = t.topo.Topology.n

let partitioned t a b = Hashtbl.mem t.cut (a, b)

let lossy t =
  match t.loss with
  | None -> false
  | Some (rng, rate) -> Tact_util.Prng.float rng 1.0 < rate

let send t ~src ~dst ~size deliver =
  if partitioned t src dst || lossy t then t.dropped <- t.dropped + 1
  else begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + size;
    (let msgs, bts =
       match Hashtbl.find_opt t.link_traffic (src, dst) with
       | Some cell -> cell
       | None ->
         let cell = (ref 0, ref 0) in
         Hashtbl.replace t.link_traffic (src, dst) cell;
         cell
     in
     incr msgs;
     bts := !bts + size);
    let base =
      if t.queued && src <> dst then begin
        (* FIFO link: wait for earlier messages to finish serialising. *)
        let now = Engine.now t.engine in
        let free =
          match Hashtbl.find_opt t.link_free (src, dst) with
          | Some f -> Float.max f now
          | None -> now
        in
        let ser = float_of_int size /. t.topo.Topology.bandwidth src dst in
        Hashtbl.replace t.link_free (src, dst) (free +. ser);
        (free -. now) +. ser +. t.topo.Topology.latency src dst
      end
      else Topology.delay t.topo ~src ~dst ~size
    in
    let delay =
      match t.jitter with
      | None -> base
      | Some (rng, frac) -> base +. Tact_util.Prng.float rng (frac *. base)
    in
    Engine.schedule t.engine
      ~label:{ Engine.actor = dst; tag = "deliver" }
      ~delay deliver
  end

let partition t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            Hashtbl.replace t.cut (a, b) ();
            Hashtbl.replace t.cut (b, a) ()
          end)
        group_b)
    group_a

let heal t = Hashtbl.reset t.cut

let stats t = { messages = t.messages; bytes = t.bytes; dropped = t.dropped }

let traffic_where t pred =
  (* lint: allow hashtbl-fold — commutative sum over links *)
  Hashtbl.fold
    (fun (src, dst) (msgs, bts) (acc : stats) ->
      if pred ~src ~dst then
        { acc with messages = acc.messages + !msgs; bytes = acc.bytes + !bts }
      else acc)
    t.link_traffic
    ({ messages = 0; bytes = 0; dropped = 0 } : stats)

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.link_traffic
