type stats = {
  messages : int;
  bytes : int;
  dropped : int;
  dropped_loss : int;
  dropped_cut : int;
  max_message : int;
}

let zero_stats =
  { messages = 0; bytes = 0; dropped = 0; dropped_loss = 0; dropped_cut = 0;
    max_message = 0 }

(* Per directed link counters, including drops (satellite: traffic_where used
   to read [dropped = 0] because drops were only counted globally). *)
type link_counters = {
  mutable lc_messages : int;
  mutable lc_bytes : int;
  mutable lc_dropped : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  jitter : (Tact_util.Prng.t * float) option;
  mutable loss : (Tact_util.Prng.t * float) option;
  queued : bool;
  link_free : (int * int, float) Hashtbl.t;  (* per directed link: time the
                                                transmitter frees up *)
  link_traffic : (int * int, link_counters) Hashtbl.t;
  cut : (int * int, unit) Hashtbl.t;
  link_loss : (int * int, Tact_util.Prng.t * float) Hashtbl.t;
  mutable duplication : (Tact_util.Prng.t * float) option;
  mutable delay_factor : float;
  mutable bandwidth_factor : float;
  mutable messages : int;
  mutable bytes : int;
  mutable dropped_loss : int;
  mutable dropped_cut : int;
  mutable max_message : int;
}

let create engine topo ?jitter ?loss ?(queued = false) () =
  {
    engine;
    topo;
    jitter;
    loss;
    queued;
    link_free = Hashtbl.create 7;
    link_traffic = Hashtbl.create 7;
    cut = Hashtbl.create 7;
    link_loss = Hashtbl.create 7;
    duplication = None;
    delay_factor = 1.0;
    bandwidth_factor = 1.0;
    messages = 0;
    bytes = 0;
    dropped_loss = 0;
    dropped_cut = 0;
    max_message = 0;
  }

let engine t = t.engine
let size t = t.topo.Topology.n

let partitioned t a b = Hashtbl.mem t.cut (a, b)

let set_loss t loss = t.loss <- loss

let set_link_loss t ~src ~dst loss =
  match loss with
  | None -> Hashtbl.remove t.link_loss (src, dst)
  | Some l -> Hashtbl.replace t.link_loss (src, dst) l

let set_duplication t dup = t.duplication <- dup

let set_delay_factor t f = t.delay_factor <- f
let set_bandwidth_factor t f = t.bandwidth_factor <- f

let draw = function
  | None -> false
  | Some (rng, rate) -> Tact_util.Prng.float rng 1.0 < rate

let lossy t ~src ~dst =
  (* Evaluate both knobs unconditionally so each rng stream advances exactly
     once per message regardless of the other knob's draw. *)
  let global = draw t.loss in
  let per_link = draw (Hashtbl.find_opt t.link_loss (src, dst)) in
  global || per_link

let counters t src dst =
  match Hashtbl.find_opt t.link_traffic (src, dst) with
  | Some c -> c
  | None ->
    let c = { lc_messages = 0; lc_bytes = 0; lc_dropped = 0 } in
    Hashtbl.replace t.link_traffic (src, dst) c;
    c

let record_drop t src dst ~cut =
  let c = counters t src dst in
  c.lc_dropped <- c.lc_dropped + 1;
  if cut then t.dropped_cut <- t.dropped_cut + 1
  else t.dropped_loss <- t.dropped_loss + 1

let record_sent t src dst ~size =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + size;
  if size > t.max_message then t.max_message <- size;
  let c = counters t src dst in
  c.lc_messages <- c.lc_messages + 1;
  c.lc_bytes <- c.lc_bytes + size

let base_delay t ~src ~dst ~size =
  if t.queued && src <> dst then begin
    (* FIFO link: wait for earlier messages to finish serialising. *)
    let now = Engine.now t.engine in
    let free =
      match Hashtbl.find_opt t.link_free (src, dst) with
      | Some f -> Float.max f now
      | None -> now
    in
    let bw = t.topo.Topology.bandwidth src dst *. t.bandwidth_factor in
    let ser = float_of_int size /. bw in
    Hashtbl.replace t.link_free (src, dst) (free +. ser);
    (free -. now) +. ser +. (t.topo.Topology.latency src dst *. t.delay_factor)
  end
  else if t.delay_factor = 1.0 && t.bandwidth_factor = 1.0 then
    (* Fast path: bit-identical to the historical behaviour when no fault
       generator has touched the factors. *)
    Topology.delay t.topo ~src ~dst ~size
  else if src = dst then 0.0
  else
    (t.topo.Topology.latency src dst
    +. float_of_int size /. (t.topo.Topology.bandwidth src dst *. t.bandwidth_factor))
    *. t.delay_factor

let send t ~src ~dst ~size deliver =
  if partitioned t src dst then record_drop t src dst ~cut:true
  else if lossy t ~src ~dst then record_drop t src dst ~cut:false
  else begin
    record_sent t src dst ~size;
    let base = base_delay t ~src ~dst ~size in
    let delay =
      match t.jitter with
      | None -> base
      | Some (rng, frac) -> base +. Tact_util.Prng.float rng (frac *. base)
    in
    Engine.schedule t.engine
      ~label:{ Engine.actor = dst; tag = "deliver" }
      ~delay deliver;
    match t.duplication with
    | Some (rng, rate) when Tact_util.Prng.float rng 1.0 < rate ->
      (* Duplicate delivery: the copy takes a distinct (longer) path so the
         receiver sees the same payload twice, out of order with other
         traffic.  Counted as real traffic on the link. *)
      record_sent t src dst ~size;
      let extra = Tact_util.Prng.float rng 1.0 in
      let dup_delay = (delay *. (1.0 +. extra)) +. 1e-9 in
      Engine.schedule t.engine
        ~label:{ Engine.actor = dst; tag = "deliver" }
        ~delay:dup_delay deliver
    | _ -> ()
  end

let partition t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b then begin
            Hashtbl.replace t.cut (a, b) ();
            Hashtbl.replace t.cut (b, a) ()
          end)
        group_b)
    group_a

let partition_oneway t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b -> if a <> b then Hashtbl.replace t.cut (a, b) ())
        group_b)
    group_a

let heal_between t group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Hashtbl.remove t.cut (a, b);
          Hashtbl.remove t.cut (b, a))
        group_b)
    group_a

let heal t =
  let all = List.init (size t) Fun.id in
  heal_between t all all

let stats t =
  {
    messages = t.messages;
    bytes = t.bytes;
    dropped = t.dropped_loss + t.dropped_cut;
    dropped_loss = t.dropped_loss;
    dropped_cut = t.dropped_cut;
    max_message = t.max_message;
  }

let traffic_where t pred =
  (* lint: allow hashtbl-fold — commutative sum over links *)
  Hashtbl.fold
    (fun (src, dst) c (acc : stats) ->
      if pred ~src ~dst then
        {
          acc with
          messages = acc.messages + c.lc_messages;
          bytes = acc.bytes + c.lc_bytes;
          dropped = acc.dropped + c.lc_dropped;
        }
      else acc)
    t.link_traffic zero_stats

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  t.dropped_loss <- 0;
  t.dropped_cut <- 0;
  t.max_message <- 0;
  Hashtbl.reset t.link_traffic
