(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  All replica logic,
    client workloads and network deliveries run as events: closures scheduled
    at a virtual time.  Execution is single-threaded and deterministic —
    simultaneous events fire in scheduling order.

    This is the repo's substitute for the paper's wide-area testbed: "time"
    below is simulated wall-clock time, which is exactly the timebase in which
    the paper defines staleness and external order.

    {2 Choice points}

    Every queued event is a potential {e choice point}.  By default the engine
    dispatches in strict (time, insertion-seq) order; installing a scheduler
    strategy with {!set_scheduler} instead presents all pending events at each
    step and lets the strategy pick which fires next.  Firing an event later
    than its scheduled time models network/scheduling delay, so the clock
    advances to [max clock event_time] and never runs backwards.  This is the
    hook the systematic interleaving checker ([lib/check]) drives. *)

type t

type label = { actor : int; tag : string }
(** Provenance of an event, attached at scheduling time: [actor] is the
    replica id the event acts on (-1 when not replica-specific) and [tag] a
    short kind such as ["deliver"], ["gossip"], ["retry"], ["deadline"],
    ["client"].  Labels feed the checker's independence (commutativity)
    heuristic and make traces readable; they never affect execution. *)

type choice = {
  c_time : float;  (** virtual time the event was scheduled for *)
  c_seq : int;  (** unique insertion sequence number *)
  c_label : label option;
}

type scheduler = now:float -> choice array -> int
(** A strategy: given the current clock and the pending events sorted by
    (time, seq) — index 0 is the default-order choice — return the index of
    the event to dispatch next. *)

exception Runaway of int
(** Raised by {!run} when the [max_events] budget is reached, {e before}
    dispatching the next event (which stays queued, so a catching caller can
    resume).  Carries the number of events executed so far. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : ?label:label -> t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk [delay] seconds from now.  [delay] must be >= 0. *)

val at : ?label:label -> t -> time:float -> (unit -> unit) -> unit
(** Run the thunk at absolute virtual [time] (>= now). *)

val every :
  ?label:label -> t -> period:float -> ?jitter:(unit -> float) ->
  (unit -> bool) -> unit
(** Periodic event: the thunk runs every [period] (+ optional jitter) seconds
    for as long as it returns [true].  The net delay [period + jitter ()] is
    clamped at 0, so a negative jitter draw larger than the period delays by
    nothing rather than tripping the negative-delay guard. *)

val set_scheduler : t -> scheduler option -> unit
(** Install ([Some]) or remove ([None]) a scheduler strategy.  Queued events
    carry over across the switch.  With a strategy installed, {!run} consults
    it at every dispatch; without one, strict (time, seq) order applies. *)

val pending_choices : t -> choice array
(** Snapshot of all queued events, sorted by (time, seq).  Purely
    observational. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when the queue is empty or when every
    remaining event lies beyond [until] (the clock then advances to [until]).
    Raises {!Runaway} before dispatching event number [max_events + 1]. *)

val events_executed : t -> int

val run_group :
  ?pool:Tact_util.Pool.t -> ?until:float -> ?max_events:int -> t array -> unit
(** Drain several {e independent} engines — engines whose events share no
    mutable state (each driving its own network and replicas, as the shards
    of {!Tact_replica.Sharded} do).  Without a pool, runs each engine with
    {!run} in array order; with one, dispatches them across the pool's
    worker domains.  Because the engines are independent, the parallel
    schedule cannot perturb any engine's internal event order: results are
    bit-identical to the sequential run at any pool size.  An exception
    (including {!Runaway}) from the lowest-index failing engine is re-raised,
    matching sequential behaviour. *)
