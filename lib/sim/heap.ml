type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* Dummy filler entry; never observed because len bounds all reads. *)
    let filler = t.data.(0) in
    let ndata = Array.make ncap filler in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end

let push t ~time ~seq value =
  let entry = { time; seq; value } in
  if Array.length t.data = 0 then t.data <- Array.make 16 entry else grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.seq, top.value)
  end

let peek_time t = if t.len = 0 then None else Some t.data.(0).time

let iter f t =
  for i = 0 to t.len - 1 do
    let e = t.data.(i) in
    f ~time:e.time ~seq:e.seq e.value
  done
