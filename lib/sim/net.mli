(** Message-passing network on top of the event engine.

    Provides point-to-point delivery with topology-derived delay plus optional
    jitter, full traffic accounting (the raw material of the paper's overhead
    figures), and failure injection: link or node partitions (symmetric or
    one-way) that silently drop messages until healed, per-message loss and
    duplication, and delay/bandwidth degradation — the primitives behind the
    nemesis fault-schedule DSL (doc/FAULTS.md). *)

type t

type stats = {
  messages : int;
  bytes : int;
  dropped : int;  (** total messages lost, [dropped_loss + dropped_cut] *)
  dropped_loss : int;  (** dropped by the loss knobs (global or per-link) *)
  dropped_cut : int;  (** dropped because the directed link was partitioned *)
  max_message : int;
      (** largest single message sent (bytes) — a proxy for the peak frame
          size of batched anti-entropy.  Tracked globally only; reads 0 from
          {!traffic_where}. *)
}

val create :
  Engine.t ->
  Topology.t ->
  ?jitter:(Tact_util.Prng.t * float) ->
  ?loss:(Tact_util.Prng.t * float) ->
  ?queued:bool ->
  unit ->
  t
(** [jitter = (rng, frac)] adds a uniform [0, frac * delay) random extra
    delay to every message.  [loss = (rng, rate)] drops each message
    independently with probability [rate] — the protocol layers must (and do)
    tolerate this via acknowledgement-driven retransmission and retry
    rounds.  [queued] (default false) models each directed link as a FIFO
    with finite bandwidth: a message must wait for the link to finish
    serialising earlier ones, so bursts experience queueing delay instead of
    transmitting in parallel. *)

val engine : t -> Engine.t
val size : t -> int
(** Number of nodes in the topology. *)

val send : t -> src:int -> dst:int -> size:int -> (unit -> unit) -> unit
(** Deliver [deliver] at the destination after the link delay.  Messages on
    the same link are NOT ordered (models independent datagrams / parallel
    connections); protocol layers must tolerate reordering.  Dropped silently
    if the pair is partitioned at send time. *)

val partition : t -> int list -> int list -> unit
(** Cut all links between the two node groups (both directions). *)

val partition_oneway : t -> int list -> int list -> unit
(** Cut only the [a -> b] direction for every [a] in the first group and [b]
    in the second: [b]'s messages still reach [a].  Models asymmetric
    wide-area failures (e.g. a broken return path). *)

val heal_between : t -> int list -> int list -> unit
(** Remove any cut (either direction, however installed) between the two
    groups, leaving other partitions in place. *)

val heal : t -> unit
(** Remove all partitions ([heal_between] over all node pairs). *)

val partitioned : t -> int -> int -> bool

val set_loss : t -> (Tact_util.Prng.t * float) option -> unit
(** Replace the global loss knob at runtime ([None] disables it). *)

val set_link_loss : t -> src:int -> dst:int -> (Tact_util.Prng.t * float) option -> unit
(** Per-directed-link loss rate, drawn independently of the global knob.  A
    message is dropped if either knob fires; both rng streams advance exactly
    once per message so schedules stay deterministic. *)

val set_duplication : t -> (Tact_util.Prng.t * float) option -> unit
(** With probability [rate], deliver each (non-dropped) message a second
    time, strictly later than the original copy.  Protocol layers must be
    idempotent under duplication. *)

val set_delay_factor : t -> float -> unit
(** Scale every subsequent message's delay by the factor (delay spike when
    > 1).  Factor 1.0 restores the exact original timing. *)

val set_bandwidth_factor : t -> float -> unit
(** Scale the topology bandwidth seen by subsequent messages (squeeze when
    < 1).  Factor 1.0 restores the exact original timing. *)

val stats : t -> stats

val traffic_where : t -> (src:int -> dst:int -> bool) -> stats
(** Aggregate traffic over the directed links matching the predicate — e.g.
    split WAN from LAN bytes in a clustered topology.  Per-link [dropped] is
    the total for that link; the loss/cut split is only tracked globally, so
    [dropped_loss]/[dropped_cut] read 0 here. *)

val reset_stats : t -> unit
