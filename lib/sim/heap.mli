(** Binary min-heap keyed by [(time, tiebreak)] — the event queue of the
    discrete-event engine.  The integer tiebreak (insertion sequence) makes
    execution order of simultaneous events deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] when empty. *)

val peek_time : 'a t -> float option

val iter : (time:float -> seq:int -> 'a -> unit) -> 'a t -> unit
(** Visit every queued element in unspecified (heap-internal) order. *)
