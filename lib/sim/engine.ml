type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  mutable last_dispatch : float * int;  (* (time, seq) of the last event fired *)
}

let create () =
  { queue = Heap.create (); clock = 0.0; seq = 0; executed = 0;
    last_dispatch = (neg_infinity, 0) }

let now t = t.clock

let at t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock);
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq thunk

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.clock +. delay) thunk

let every t ~period ?(jitter = fun () -> 0.0) thunk =
  let rec tick () =
    if thunk () then schedule t ~delay:(period +. jitter ()) tick
  in
  schedule t ~delay:(period +. jitter ()) tick

let run ?(until = infinity) ?(max_events = 200_000_000) t =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until ->
      (* Leave future events queued; advance the clock to the horizon so that
         staleness measured at the end of a run is well defined. *)
      t.clock <- until;
      continue := false
    | Some _ ->
      (match Heap.pop t.queue with
      | None -> continue := false
      | Some (time, seq, thunk) ->
        if Tact_util.Sanitize.enabled () then begin
          (* Dispatch must be totally ordered by (time, insertion seq) — a
             heap defect here would silently reorder protocol steps. *)
          let lt, ls = t.last_dispatch in
          if time < lt || (time = lt && seq <= ls) then
            Tact_util.Sanitize.violation ~ctx:"engine"
              "event (t=%g, seq=%d) dispatched after (t=%g, seq=%d)" time seq
              lt ls;
          t.last_dispatch <- (time, seq)
        end;
        t.clock <- time;
        t.executed <- t.executed + 1;
        if t.executed > max_events then
          (* lint: allow naked-failwith — runaway-simulation guard *)
          failwith "Engine.run: max_events exceeded (runaway simulation?)";
        thunk ())
  done

let events_executed t = t.executed
