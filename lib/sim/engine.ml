(* Two queue representations back the same engine.  The default mode keeps
   events in a binary heap and dispatches strictly by (time, seq) — the fast
   path every simulation uses.  When a scheduler strategy is installed
   (Tact_check's systematic explorer), events move to a flat list and each
   dispatch becomes a visible choice point: the strategy is shown every
   pending event and picks which fires next.  Firing an event later than its
   scheduled time models scheduling/propagation delay, so the clock advances
   to max(clock, event time) and never runs backwards. *)

type label = { actor : int; tag : string }

type choice = { c_time : float; c_seq : int; c_label : label option }

type scheduler = now:float -> choice array -> int

exception Runaway of int

type entry = {
  e_time : float;
  e_seq : int;
  e_label : label option;
  e_thunk : unit -> unit;
}

type t = {
  queue : (label option * (unit -> unit)) Heap.t;
  mutable pending : entry list;  (* chooser mode only; unordered *)
  mutable chooser : scheduler option;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  mutable last_dispatch : float * int;  (* (time, seq) of the last event fired *)
}

let create () =
  { queue = Heap.create (); pending = []; chooser = None; clock = 0.0;
    seq = 0; executed = 0; last_dispatch = (neg_infinity, 0) }

let now t = t.clock

let at ?label t ~time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock);
  t.seq <- t.seq + 1;
  match t.chooser with
  | None -> Heap.push t.queue ~time ~seq:t.seq (label, thunk)
  | Some _ ->
    t.pending <-
      { e_time = time; e_seq = t.seq; e_label = label; e_thunk = thunk }
      :: t.pending

let schedule ?label t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  at ?label t ~time:(t.clock +. delay) thunk

let every ?label t ~period ?(jitter = fun () -> 0.0) thunk =
  (* Jitter may be negative; clamp the net delay at zero so a draw larger
     than the period cannot reach the negative-delay guard in [schedule]. *)
  let delay () = Float.max 0.0 (period +. jitter ()) in
  let rec tick () = if thunk () then schedule ?label t ~delay:(delay ()) tick in
  schedule ?label t ~delay:(delay ()) tick

let set_scheduler t s =
  (* Migrate queued events between representations so the switch is legal at
     any quiescent point (between run calls / before scheduling workload). *)
  (match (t.chooser, s) with
  | None, Some _ ->
    let rec drain () =
      match Heap.pop t.queue with
      | None -> ()
      | Some (time, seq, (label, thunk)) ->
        t.pending <-
          { e_time = time; e_seq = seq; e_label = label; e_thunk = thunk }
          :: t.pending;
        drain ()
    in
    drain ()
  | Some _, None ->
    List.iter
      (fun e -> Heap.push t.queue ~time:e.e_time ~seq:e.e_seq (e.e_label, e.e_thunk))
      t.pending;
    t.pending <- []
  | None, None | Some _, Some _ -> ());
  t.chooser <- s

let entry_before a b =
  a.e_time < b.e_time || (a.e_time = b.e_time && a.e_seq < b.e_seq)

let sorted_pending t =
  List.sort (fun a b -> if entry_before a b then -1 else 1) t.pending

let to_choice e = { c_time = e.e_time; c_seq = e.e_seq; c_label = e.e_label }

let pending_choices t =
  match t.chooser with
  | Some _ -> Array.of_list (List.map to_choice (sorted_pending t))
  | None ->
    let acc = ref [] in
    Heap.iter
      (fun ~time ~seq (label, _) ->
        acc := { c_time = time; c_seq = seq; c_label = label } :: !acc)
      t.queue;
    let arr = Array.of_list !acc in
    Array.sort
      (fun a b ->
        match Float.compare a.c_time b.c_time with
        | 0 -> Int.compare a.c_seq b.c_seq
        | c -> c)
      arr;
    arr

(* Default mode: strict (time, seq) dispatch out of the heap. *)
let run_heap ~until ~max_events t =
  let continue = ref true in
  while !continue do
    match Heap.peek_time t.queue with
    | None -> continue := false
    | Some time when time > until ->
      (* Leave future events queued; advance the clock to the horizon so that
         staleness measured at the end of a run is well defined. *)
      t.clock <- until;
      continue := false
    | Some _ ->
      (* Runaway guard: raise before dispatch, leaving the offending event
         queued — a caller that catches [Runaway] can resume the run. *)
      if t.executed >= max_events then raise (Runaway t.executed);
      (match Heap.pop t.queue with
      | None -> continue := false
      | Some (time, seq, (_, thunk)) ->
        if Tact_util.Sanitize.enabled () then begin
          (* Dispatch must be totally ordered by (time, insertion seq) — a
             heap defect here would silently reorder protocol steps. *)
          let lt, ls = t.last_dispatch in
          if time < lt || (time = lt && seq <= ls) then
            Tact_util.Sanitize.violation ~ctx:"engine"
              "event (t=%g, seq=%d) dispatched after (t=%g, seq=%d)" time seq
              lt ls;
          t.last_dispatch <- (time, seq)
        end;
        t.clock <- time;
        t.executed <- t.executed + 1;
        thunk ())
  done

(* Chooser mode: every dispatch is a choice point.  The strategy sees all
   pending events within the horizon, sorted by (time, seq) — index 0 is the
   default-order choice — and returns the index to fire.  Firing an event
   whose time is behind the clock models it having been delayed; the clock
   never moves backwards.  The sanitizer's dispatch-order audit is off here:
   relaxing that total order is precisely the point. *)
let run_choosing ~until ~max_events t f =
  let continue = ref true in
  while !continue do
    let ready = List.filter (fun e -> e.e_time <= until) (sorted_pending t) in
    match ready with
    | [] ->
      (match t.pending with
      | [] -> ()
      | _ :: _ -> if until > t.clock then t.clock <- until);
      continue := false
    | _ :: _ ->
      if t.executed >= max_events then raise (Runaway t.executed);
      let arr = Array.of_list ready in
      let idx = f ~now:t.clock (Array.map to_choice arr) in
      if idx < 0 || idx >= Array.length arr then
        invalid_arg
          (Printf.sprintf "Engine.run: scheduler chose %d of %d pending events"
             idx (Array.length arr));
      let chosen = arr.(idx) in
      t.pending <- List.filter (fun e -> e.e_seq <> chosen.e_seq) t.pending;
      t.clock <- Float.max t.clock chosen.e_time;
      t.executed <- t.executed + 1;
      chosen.e_thunk ()
  done

let run ?(until = infinity) ?(max_events = 200_000_000) t =
  match t.chooser with
  | None -> run_heap ~until ~max_events t
  | Some f -> run_choosing ~until ~max_events t f

let events_executed t = t.executed

(* Drain several independent engines — same semantics as running each with
   {!run} in array order.  Engines share no mutable state (each drives its
   own net/replicas), so dispatching them across pool workers cannot change
   any engine's event order: parallel outcomes are bit-identical to
   sequential ones.  Exceptions surface for the lowest-index failing engine,
   matching the sequential order (Pool.map_array awaits in input order). *)
let run_group ?pool ?until ?max_events engines =
  match pool with
  | Some p when Array.length engines > 1 ->
    ignore (Tact_util.Pool.map_array p (fun t -> run ?until ?max_events t) engines)
  | _ -> Array.iter (fun t -> run ?until ?max_events t) engines
