(* Blank out comments and string/char literals, preserving line structure.
   Records each comment's text and starting line so allow-annotations survive
   the stripping.  Handles nested comments, escaped quotes, CRLF line
   endings, [{id|...|id}] quoted strings (ids may contain underscores;
   bodies may contain [|}]-lookalikes shorter than the real delimiter), and
   string/quoted-string literals *inside* comments — the OCaml lexer scans
   those too, so a ["*)"] or [{|*)|}] in a comment does not end it. *)

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let comments = ref [] in
  let line = ref 1 in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 0 in
      let continue = ref true in
      (* consume one already-bumped char into the comment text *)
      let eat () =
        Buffer.add_char buf src.[!i];
        blank !i;
        incr i
      in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2;
          if !depth = 0 then continue := false
        end
        else if c = '"' then begin
          (* the compiler lexes string literals inside comments, so a ["*)"]
             must not end the comment *)
          eat ();
          let instr = ref true in
          while !instr && !i < n do
            let c = src.[!i] in
            bump c;
            if c = '\\' && !i + 1 < n then begin
              bump src.[!i + 1];
              eat ();
              eat ()
            end
            else begin
              eat ();
              if c = '"' then instr := false
            end
          done
        end
        else if c = '{' && !i + 1 < n then begin
          (* likewise [{id|...|id}] quoted strings inside comments *)
          let j = ref (!i + 1) in
          while
            !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_')
          do
            incr j
          done;
          if !j < n && src.[!j] = '|' then begin
            let delim = "|" ^ String.sub src (!i + 1) (!j - !i - 1) ^ "}" in
            let dlen = String.length delim in
            let fin = ref (!j + 1) in
            while
              !fin + dlen <= n
              && not (String.equal (String.sub src !fin dlen) delim)
            do
              incr fin
            done;
            let stop = min n (!fin + dlen) in
            eat ();
            while !i < stop do
              bump src.[!i];
              eat ()
            done
          end
          else eat ()
        end
        else if
          c = '\''
          && !i + 2 < n
          && src.[!i + 1] <> '\\'
          && src.[!i + 2] = '\''
          && not (!i > 0 && is_ident_char src.[!i - 1])
        then begin
          (* char literals too: [(* '"' *)] must not open a string *)
          bump src.[!i + 1];
          eat ();
          eat ();
          eat ()
        end
        else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
          (* ['\n'], ['\\'], ['\123'], ['\x41'] — only with the closing
             quote in reach, so a stray [' \ ] cannot overrun the comment *)
          let close = ref (-1) in
          let k = ref (!i + 2) in
          while !close < 0 && !k < n && !k <= !i + 6 do
            if src.[!k] = '\'' then close := !k else incr k
          done;
          match !close with
          | -1 -> eat ()
          | stop ->
            eat ();
            while !i <= stop do
              bump src.[!i];
              eat ()
            done
        end
        else eat ()
      done;
      comments := (start_line, Buffer.contents buf) :: !comments
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '\\' && !i + 1 < n then begin
          (* the escaped character may itself be a newline (string
             line-continuation): it must still advance the line counter, or
             every comment recorded after it lands one line short and
             allow-annotations stop covering their targets.  A CRLF
             continuation escapes the CR; the LF that follows is consumed by
             the ordinary branch on the next iteration and counted there. *)
          bump src.[!i + 1];
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i;
          if c = '"' then continue := false
        end
      done
    end
    else if c = '{' && !i + 1 < n then begin
      (* quoted string {id|...|id}; the id is lowercase letters and
         underscores (OCaml manual: quoted-string-id) *)
      let j = ref (!i + 1) in
      while !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_') do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let delim = "|" ^ String.sub src (!i + 1) (!j - !i - 1) ^ "}" in
        let dlen = String.length delim in
        let fin = ref (!j + 1) in
        while
          !fin + dlen <= n && not (String.equal (String.sub src !fin dlen) delim)
        do
          incr fin
        done;
        let stop = min n (!fin + dlen) in
        while !i < stop do
          bump src.[!i];
          blank !i;
          incr i
        done
      end
      else begin
        incr i
      end
    end
    else if
      c = '\''
      && !i + 2 < n
      && (src.[!i + 1] <> '\\' && src.[!i + 2] = '\'')
      && not (!i > 0 && is_ident_char src.[!i - 1])
    then begin
      (* plain char literal — but not the prime in [x'] or a type variable *)
      bump src.[!i + 1];
      blank !i;
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 3
    end
    else if c = '\'' && !i + 1 < n && src.[!i + 1] = '\\' then begin
      (* escaped char literal '\n', '\\', '\123', '\x41' *)
      blank !i;
      incr i;
      let continue = ref true in
      while !continue && !i < n do
        let c = src.[!i] in
        bump c;
        blank !i;
        incr i;
        if c = '\'' then continue := false
      done
    end
    else begin
      bump c;
      incr i
    end
  done;
  (Bytes.to_string out, !comments)
