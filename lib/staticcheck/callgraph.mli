(** Value-level call graph derived from {!Summary} reference adjacency.

    A node is one top-level definition (the module-toplevel pseudo-def is
    [""]); an edge [src -> dst] exists when [src]'s body references [dst].
    Every reference counts as a call edge — conservative, but it lets
    effect summaries flow through stdlib higher-order code
    ([List.iter bump xs] makes [bump] a callee) without closure analysis.
    Functions applied out of record fields or ref cells are not edges;
    Summary records those as escapes and the effect pass widens instead. *)

type node = { cg_dir : string; cg_mod : string; cg_def : string }

val key : node -> string
(** Stable unique key, ["dir//Mod//def"]. *)

val label : node -> string
(** Human label, ["lib/sim/Engine.dispatch"]; [""] renders as
    [(toplevel)]. *)

val compare_node : node -> node -> int

val target_node : Graph.t -> Summary.t -> Summary.vref -> node option
(** The definition a reference resolves to, when it names one in the
    loaded universe ([Self], or [Proj] into a loaded module).  [None] for
    locals, externals, bare module references, and paths that name a
    global or type rather than a definition. *)

type t

val build : Graph.t -> t

val nodes : t -> node list
(** All nodes, sorted by {!key}. *)

val succs : t -> node -> (node * Location.t) list
(** Callees of a node with the location of the first referencing site,
    sorted by callee key.  [[]] for unknown nodes. *)

val mem : t -> node -> bool

val sccs : t -> node list list
(** Strongly connected components in bottom-up order: when an SCC appears,
    every SCC it can reach has already appeared (callees before callers),
    which is exactly the propagation order of the effect fixpoint. *)

val resolve_symbol : t -> string -> node list
(** Nodes matching a user-supplied name: full label
    (["lib/sim/Engine.dispatch"]), ["Module.def"], or bare ["def"]. *)

val dot : t -> string
(** Graphviz rendering of the whole graph, deterministic output. *)
