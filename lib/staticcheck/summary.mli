(** Per-module summaries: a scope-aware walk of one parsetree.

    The walk resolves every value reference to a {!target} — tracking local
    bindings (so a shadowed name never reports), module aliases
    ([module S = Stdlib]), library wrapper prefixes ([Tact_util.Pool] and
    [open Tact_util]), and nested modules — and records the facts the
    downstream passes consume: module-level mutable state, Pool escape
    points with everything referenced or mutated inside the submitted task,
    and exact float (in)equalities. *)

type target =
  | Local  (** bound in an enclosing pattern / a shadowing definition *)
  | Self of string  (** a top-level value of this module (dotted if nested) *)
  | Proj of { p_dir : string; p_mod : string; p_path : string }
      (** another project module; [p_path] may be [""] (a bare module
          reference, e.g. an [open]) or dotted (["State.make"]) *)
  | Extern of string list
      (** unresolved / outside the project: stdlib, compiler-libs, or a
          module the loader has not seen.  The full dotted path, head
          first; a bare unbound value is a one-element list. *)

type vref = {
  r_target : target;
  r_loc : Location.t;
  r_def : string;  (** enclosing top-level definition, [""] at toplevel *)
}

type mutation = {
  mu_op : string;  (** [":="], ["<-"], ["incr"], ["Hashtbl.replace"], ... *)
  mu_name : string;  (** source name of the mutated identifier *)
  mu_target : target;
  mu_captured : bool;  (** bound outside the task closure but locally *)
  mu_def : string;  (** enclosing top-level definition *)
  mu_loc : Location.t;
}

type escape = {
  esc_def : string;  (** enclosing top-level definition *)
  esc_what : string;
      (** what was applied: [".field"] for a record-field function,
          ["!name"] for a function read out of a ref cell *)
  esc_loc : Location.t;
}
(** A higher-order escape: a function value fetched out of a mutable
    container and applied.  The effect fixpoint cannot resolve the callee,
    so the enclosing definition widens to ⊤ (SA053). *)

type pool_site = {
  ps_fn : string;  (** ["submit"], ["post"] or ["map_list"] *)
  ps_def : string;  (** enclosing top-level definition *)
  ps_loc : Location.t;
  ps_refs : vref list;  (** references inside the task argument *)
  ps_mutations : mutation list;  (** mutations inside the task argument *)
  ps_escapes : escape list;  (** higher-order escapes inside the task *)
  ps_handles : bool;  (** the task body contains a try-handler *)
}

type mutable_global = {
  mg_name : string;  (** dotted when defined in a nested module *)
  mg_creator : string;  (** ["ref"], ["Hashtbl.create"], ... *)
  mg_sync : bool;  (** created through a [Sync.*] wrapper *)
  mg_loc : Location.t;
}

type float_eq = {
  fe_op : string;  (** ["="] or ["<>"] *)
  fe_def : string;
  fe_loc : Location.t;
}

type t = {
  sum_source : Loader.source;
  sum_defs : string list;  (** top-level value names, dotted when nested *)
  sum_def_lines : (string * int) list;
      (** definition name -> 1-based start line, in source order *)
  sum_globals : mutable_global list;
  sum_refs : vref list;  (** every non-local reference, in source order *)
  sum_mutations : mutation list;
      (** every [Self]/[Proj] non-[Sync] mutation in the module, whether or
          not it sits inside a pool task — the raw material for
          [Global_mutation] effect atoms *)
  sum_handlers : string list;
      (** definitions containing a [try] handler, sorted — these absorb
          the [Raises] atoms of their callees *)
  sum_escapes : escape list;  (** higher-order escapes, in source order *)
  sum_pool_sites : pool_site list;
  sum_float_eqs : float_eq list;
}

val of_source : Loader.t -> Loader.source -> t
(** Summarize one parsed source against the loaded universe (used for
    reference resolution).  A source that failed to parse yields an empty
    summary. *)

val target_module : target -> string option
(** The module component of a reference, when there is one: [Proj] gives
    [p_mod], [Extern] gives the head when the path has a tail. *)
