type layer = { l_name : string; l_dirs : string list; l_deps : string list }

type rules = {
  layers : layer list;
  restricts : (string * string list) list;  (* project module -> layers *)
  externals : (string * string list) list;  (* external module -> layers *)
}

let split_ws s =
  List.filter (fun t -> String.length t > 0) (String.split_on_char ' ' s)

let split_arrow tokens =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | "->" :: rest -> (List.rev acc, rest)
    | t :: rest -> go (t :: acc) rest
  in
  go [] tokens

let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let err lno msg =
    Error (Printf.sprintf "layering.rules:%d: %s" lno msg)
  in
  let rec go lno acc = function
    | [] ->
      Ok
        {
          layers = List.rev acc.layers;
          restricts = List.rev acc.restricts;
          externals = List.rev acc.externals;
        }
    | line :: rest -> (
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.map (fun c -> if c = '\t' then ' ' else c) line in
      match split_ws (String.trim line) with
      | [] -> go (lno + 1) acc rest
      | "layer" :: name :: spec ->
        let dirs, deps = split_arrow spec in
        if dirs = [] then err lno ("layer " ^ name ^ " declares no directory")
        else
          go (lno + 1)
            { acc with
              layers = { l_name = name; l_dirs = dirs; l_deps = deps }
                       :: acc.layers }
            rest
      | "restrict" :: m :: spec ->
        let pre, layers = split_arrow spec in
        if pre <> [] then err lno "restrict takes one module, then -> LAYERS"
        else go (lno + 1) { acc with restricts = (m, layers) :: acc.restricts } rest
      | "external" :: m :: spec ->
        let pre, layers = split_arrow spec in
        if pre <> [] then err lno "external takes one module, then -> LAYERS"
        else go (lno + 1) { acc with externals = (m, layers) :: acc.externals } rest
      | tok :: _ -> err lno ("unknown declaration " ^ tok))
  in
  go 1 { layers = []; restricts = []; externals = [] } lines

let load_rules path =
  match open_in_bin path with
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse_rules text
  | exception Sys_error e -> Error e

let layer_of rules dir =
  List.find_map
    (fun l -> if List.mem dir l.l_dirs then Some l.l_name else None)
    rules.layers

let allowed rules ~src_layer ~dst_layer =
  String.equal src_layer dst_layer
  ||
  match List.find_opt (fun l -> String.equal l.l_name src_layer) rules.layers with
  | None -> false
  | Some l -> List.mem "*" l.l_deps || List.mem dst_layer l.l_deps

let run rules graph =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      let path = src.Loader.s_path in
      match layer_of rules src.Loader.s_dir with
      | None ->
        add
          (Report.finding ~rule_id:"SA013" ~path
             ~loc:Location.none ~context:"unmapped"
             (Printf.sprintf
                "directory %s is not assigned to any layer in the rules file"
                src.Loader.s_dir))
      | Some src_layer ->
        List.iter
          (fun (r : Summary.vref) ->
            let ctxt m = (if String.equal r.r_def "" then "(toplevel)" else r.r_def) ^ ":" ^ m in
            match r.r_target with
            | Summary.Proj { p_dir; p_mod; _ }
              when not (String.equal p_dir src.Loader.s_dir) -> (
              (match layer_of rules p_dir with
              | Some dst_layer when not (allowed rules ~src_layer ~dst_layer) ->
                add
                  (Report.finding ~rule_id:"SA010" ~path ~loc:r.r_loc
                     ~context:(ctxt (if String.equal p_mod "" then p_dir else p_mod))
                     (Printf.sprintf
                        "layer %s may not depend on layer %s (reference to \
                         %s under %s)"
                        src_layer dst_layer
                        (if String.equal p_mod "" then p_dir else p_mod)
                        p_dir))
              | _ -> ());
              match List.assoc_opt p_mod rules.restricts with
              | Some layers when not (List.mem src_layer layers) ->
                add
                  (Report.finding ~rule_id:"SA011" ~path ~loc:r.r_loc
                     ~context:(ctxt p_mod)
                     (Printf.sprintf
                        "module %s is restricted to layers [%s]; %s is not \
                         among them"
                        p_mod (String.concat " " layers) src_layer))
              | _ -> ())
            | Summary.Extern (head :: _) -> (
              (* a restricted project module that resolution could not pin
                 to a directory (partial loads, fixtures) still counts *)
              (match List.assoc_opt head rules.restricts with
              | Some layers when not (List.mem src_layer layers) ->
                add
                  (Report.finding ~rule_id:"SA011" ~path ~loc:r.r_loc
                     ~context:(ctxt head)
                     (Printf.sprintf
                        "module %s is restricted to layers [%s]; %s is not \
                         among them"
                        head (String.concat " " layers) src_layer))
              | _ -> ());
              match List.assoc_opt head rules.externals with
              | Some layers when not (List.mem src_layer layers) ->
                add
                  (Report.finding ~rule_id:"SA012" ~path ~loc:r.r_loc
                     ~context:(ctxt head)
                     (Printf.sprintf
                        "external module %s is restricted to layers [%s]; %s \
                         is not among them"
                        head (String.concat " " layers) src_layer))
              | _ -> ())
            | _ -> ())
          s.sum_refs)
    (Graph.summaries graph);
  Report.dedup !findings
