module SSet = Set.Make (String)

let util_dir dir = String.equal dir "lib/util"

let lib_dir dir =
  String.length dir >= 4 && String.equal (String.sub dir 0 4) "lib/"

(* The last component of a dotted value path ("State.make" -> "make"),
   used to line references up against [sum_defs]/[sum_globals] entries. *)
let resolve_def (s : Summary.t) path =
  if Graph.defines s path then Some path
  else
    match String.rindex_opt path '.' with
    | Some i ->
      let tail = String.sub path (i + 1) (String.length path - i - 1) in
      if Graph.defines s tail then Some tail else None
    | None -> None

let resolve_global (s : Summary.t) path =
  match Graph.mutable_global s path with
  | Some g -> Some g
  | None -> (
    match String.rindex_opt path '.' with
    | Some i ->
      Graph.mutable_global s
        (String.sub path (i + 1) (String.length path - i - 1))
    | None -> None)

(* Walk the reference graph task-first: every (module, definition) node the
   task can call is visited once; mutable globals spotted along the way are
   reported against the pool site that reaches them. *)
let trace graph (site_sum : Summary.t) (site : Summary.pool_site) =
  let src = site_sum.sum_source in
  let findings = ref [] in
  let flag rule ~mod_label ~(g : Summary.mutable_global) ~hops =
    let via =
      match hops with
      | [] -> ""
      | h -> " via " ^ String.concat " -> " (List.rev h)
    in
    findings :=
      Report.finding ~rule_id:rule ~path:src.Loader.s_path ~loc:site.ps_loc
        ~context:(Printf.sprintf "def:%s:%s" site.ps_def
                    (if String.equal mod_label "" then g.mg_name
                     else mod_label ^ "." ^ g.mg_name))
        (Printf.sprintf
           "Pool.%s task in %s reaches mutable %s %s (%s)%s; route it \
            through Sync or confine it to the task"
           site.ps_fn
           (if String.equal site.ps_def "" then "(toplevel)" else site.ps_def)
           g.mg_creator
           (if String.equal mod_label "" then g.mg_name
            else mod_label ^ "." ^ g.mg_name)
           (Printf.sprintf "defined at line %d"
              g.mg_loc.Location.loc_start.Lexing.pos_lnum)
           via)
      :: !findings
  in
  let visited = ref SSet.empty in
  let rec visit (s : Summary.t) (refs : Summary.vref list) hops =
    List.iter
      (fun (r : Summary.vref) ->
        match r.r_target with
        | Summary.Local | Summary.Extern _ -> ()
        | Summary.Self path -> follow s path hops
        | Summary.Proj { p_dir; p_mod; p_path } ->
          if not (util_dir p_dir) then
            match Graph.find graph ~dir:p_dir ~modname:p_mod with
            | None -> ()
            | Some dst ->
              if String.equal p_path "" then ()
              else follow dst (p_mod ^ "." ^ p_path) hops)
      refs
  and follow (s : Summary.t) dotted hops =
    let dir = s.sum_source.Loader.s_dir in
    if util_dir dir then ()
    else
      let local =
        (* strip a leading module qualifier added for cross-module hops *)
        match String.index_opt dotted '.' with
        | Some i
          when String.equal
                 (String.sub dotted 0 i)
                 s.sum_source.Loader.s_module ->
          String.sub dotted (i + 1) (String.length dotted - i - 1)
        | _ -> dotted
      in
      (match resolve_global s local with
      | Some g ->
        let mod_label =
          if s == site_sum then "" else s.sum_source.Loader.s_module
        in
        flag "SA020" ~mod_label ~g ~hops
      | None -> ());
      match resolve_def s local with
      | None -> ()
      | Some def ->
        let key =
          s.sum_source.Loader.s_dir ^ "//" ^ s.sum_source.Loader.s_module
          ^ "//" ^ def
        in
        if not (SSet.mem key !visited) then begin
          visited := SSet.add key !visited;
          let node =
            { Graph.n_dir = s.sum_source.Loader.s_dir;
              n_mod = s.sum_source.Loader.s_module }
          in
          visit s (Graph.value_refs graph node def) (def :: hops)
        end
  in
  (* Direct mutations inside the task body. *)
  List.iter
    (fun (m : Summary.mutation) ->
      match m.mu_target with
      | Summary.Local when m.mu_captured ->
        findings :=
          Report.finding ~rule_id:"SA021" ~path:src.Loader.s_path ~loc:m.mu_loc
            ~context:(Printf.sprintf "def:%s:%s" site.ps_def m.mu_name)
            (Printf.sprintf
               "Pool.%s task captures %s and mutates it with %s; every \
                worker shares the closure, so this races"
               site.ps_fn m.mu_name m.mu_op)
          :: !findings
      | _ -> ())
    site.ps_mutations;
  (* Everything the task references, transitively. *)
  visit site_sum site.ps_refs [];
  !findings

let run graph =
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let dir = s.sum_source.Loader.s_dir in
      if not (util_dir dir) then begin
        (* SA030: module-level mutable state as such, lib/ only. *)
        if lib_dir dir then
          List.iter
            (fun (g : Summary.mutable_global) ->
              if not g.mg_sync then
                findings :=
                  Report.finding ~rule_id:"SA030" ~path:s.sum_source.Loader.s_path
                    ~loc:g.mg_loc
                    ~context:("def:" ^ g.mg_name)
                    (Printf.sprintf
                       "module-level mutable state (%s %s) couples callers \
                        through hidden shared memory; prefer explicit state \
                        or a Sync wrapper"
                       g.mg_creator g.mg_name)
                  :: !findings)
            s.sum_globals;
        List.iter
          (fun site -> findings := trace graph s site @ !findings)
          s.sum_pool_sites
      end)
    (Graph.summaries graph);
  Report.dedup !findings
