(** The checked-in findings baseline.

    A baseline file holds one {!Report.key} per line ([#] comments and
    blank lines ignored).  Keys carry no line numbers, so baselined
    findings survive unrelated code motion; [--update-baseline] rewrites
    the file sorted and de-duplicated, which keeps regeneration
    deterministic. *)

type t

val empty : t
val of_keys : string list -> t
val load : string -> t
(** Missing file = empty baseline. *)

val mem : t -> Report.finding -> bool
val keys : t -> string list  (** sorted, unique *)

val stale : t -> Report.finding list -> string list
(** Baseline keys matching no current finding, sorted — entries that have
    rotted and should be pruned ([--update-baseline] does). *)

val save : string -> Report.finding list -> unit
(** Write the findings' keys as a baseline file. *)

val render : Report.finding list -> string
(** The file contents [save] writes. *)
