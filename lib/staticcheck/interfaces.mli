(** Dead exported API (SA004) over the parsed [.mli] interfaces.

    [run ~analyzed graph] flags every value exported by a module under one
    of the [analyzed] directories that no *other* module in [graph]'s
    universe references.  Build the graph over the full reference universe
    (lib/bin/bench plus test/examples) so test-only consumers keep an
    export alive.  Modules that receive bare module references (opens,
    unresolved aliases, includes) from elsewhere are skipped — those can
    use any export without naming it.  Broken interfaces are reported as
    SA001 on the [.mli] path. *)

val run : analyzed:string list -> Graph.t -> Report.finding list
