(** The domain-race pass.

    From every [Pool.submit]/[Pool.post]/[Pool.map_list] call site the pass
    walks the value-level reference graph of the submitted task and flags
    mutable state that parallel tasks can reach without going through the
    [Sync] wrappers in [lib/util/sync.ml]:

    - [SA020] a module-level mutable value (of this module or another
      project module) mutated or reachable from inside a pool task;
    - [SA021] a locally bound mutable value captured by the task closure
      and mutated inside it;
    - [SA030] module-level mutable state as such (the scope-aware
      replacement of the textual [module-state] rule), under [lib/] but
      outside [lib/util].

    Everything defined under [lib/util] is the sanctioned concurrency
    boundary and is never traversed or flagged. *)

val run : Graph.t -> Report.finding list
