module SSet = Set.Make (String)

type t = SSet.t

let empty = SSet.empty
let of_keys keys = SSet.of_list (List.map String.trim keys)

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if String.length line = 0 || line.[0] = '#' then None
           else Some line)
    |> SSet.of_list
  end

let mem t f = SSet.mem (Report.key f) t
let keys t = SSet.elements t

let stale t findings =
  let current = SSet.of_list (List.map Report.key findings) in
  SSet.elements (SSet.diff t current)

let render findings =
  let keys =
    SSet.elements (SSet.of_list (List.map Report.key findings))
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# tact_analyze baseline: one accepted finding key per line.\n\
     # Regenerate with: dune exec bin/tact_analyze.exe -- --update-baseline\n";
  List.iter
    (fun k ->
      Buffer.add_string b k;
      Buffer.add_char b '\n')
    keys;
  Buffer.contents b

let save path findings =
  let oc = open_out_bin path in
  output_string oc (render findings);
  close_out oc
