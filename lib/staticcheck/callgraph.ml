(* Value-level call graph over the loaded universe.

   Nodes are (dir, module, definition) triples; an edge src -> dst exists
   when src's body references dst (the reference adjacency recorded by
   Summary).  Treating every reference as a call edge is deliberately
   conservative in the useful direction: [List.iter bump xs] makes [bump] a
   callee even though the application happens inside the stdlib, so effect
   summaries flow through higher-order code without any closure analysis.
   The cases that genuinely defeat this scheme — applying a function read
   out of a record field or a ref cell — are recorded by Summary as
   escapes and widened by the effect pass instead. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type node = { cg_dir : string; cg_mod : string; cg_def : string }

let key n = n.cg_dir ^ "//" ^ n.cg_mod ^ "//" ^ n.cg_def

let label n =
  n.cg_dir ^ "/" ^ n.cg_mod ^ "."
  ^ (if String.equal n.cg_def "" then "(toplevel)" else n.cg_def)

let compare_node a b = String.compare (key a) (key b)

type t = {
  cg_nodes : node list;  (* sorted by key *)
  cg_succ : (node * Location.t) list SMap.t;  (* key -> sorted callees *)
}

(* Same tail-matching as the race pass: a dotted path names a definition
   either exactly ("State.make" for a nested module) or by its last
   component. *)
let resolve_def (s : Summary.t) path =
  if Graph.defines s path then Some path
  else
    match String.rindex_opt path '.' with
    | Some i ->
      let tail = String.sub path (i + 1) (String.length path - i - 1) in
      if Graph.defines s tail then Some tail else None
    | None -> None

let target_node graph (s : Summary.t) (r : Summary.vref) =
  let src = s.Summary.sum_source in
  match r.Summary.r_target with
  | Summary.Local | Summary.Extern _ -> None
  | Summary.Self path -> (
    match resolve_def s path with
    | Some d ->
      Some
        { cg_dir = src.Loader.s_dir; cg_mod = src.Loader.s_module; cg_def = d }
    | None -> None)
  | Summary.Proj { p_dir; p_mod; p_path } ->
    if String.equal p_path "" then None
    else (
      match Graph.find graph ~dir:p_dir ~modname:p_mod with
      | None -> None
      | Some dst -> (
        match resolve_def dst p_path with
        | Some d -> Some { cg_dir = p_dir; cg_mod = p_mod; cg_def = d }
        | None -> None))

let build graph =
  let nodes = ref SMap.empty in
  let add_node n =
    nodes := SMap.add (key n) n !nodes;
    n
  in
  let edges = ref SMap.empty in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.Summary.sum_source in
      let here def =
        { cg_dir = src.Loader.s_dir;
          cg_mod = src.Loader.s_module;
          cg_def = def }
      in
      ignore (add_node (here ""));
      List.iter (fun d -> ignore (add_node (here d))) s.sum_defs;
      List.iter
        (fun (r : Summary.vref) ->
          let sn = add_node (here r.Summary.r_def) in
          match target_node graph s r with
          | None -> ()
          | Some dst ->
            let dst = add_node dst in
            let sk = key sn in
            let cur =
              match SMap.find_opt sk !edges with
              | Some m -> m
              | None -> SMap.empty
            in
            if not (SMap.mem (key dst) cur) then
              edges :=
                SMap.add sk
                  (SMap.add (key dst) (dst, r.Summary.r_loc) cur)
                  !edges)
        s.sum_refs)
    (Graph.summaries graph);
  {
    cg_nodes = List.map snd (SMap.bindings !nodes);
    cg_succ = SMap.map (fun m -> List.map snd (SMap.bindings m)) !edges;
  }

let nodes t = t.cg_nodes

let succs t n =
  match SMap.find_opt (key n) t.cg_succ with Some l -> l | None -> []

let mem t n = List.exists (fun m -> String.equal (key m) (key n)) t.cg_nodes

(* Tarjan.  Emission order is bottom-up: when an SCC is produced, every SCC
   it can reach has already been produced — exactly the order the effect
   fixpoint wants (callees before callers). *)
let sccs t =
  let counter = ref 0 in
  let idx = ref SMap.empty in
  let low = ref SMap.empty in
  let onstack = ref SSet.empty in
  let stack = ref [] in
  let out = ref [] in
  let rec strong v =
    let vk = key v in
    idx := SMap.add vk !counter !idx;
    low := SMap.add vk !counter !low;
    incr counter;
    stack := v :: !stack;
    onstack := SSet.add vk !onstack;
    List.iter
      (fun (w, _) ->
        let wk = key w in
        match SMap.find_opt wk !idx with
        | None ->
          strong w;
          let lw = SMap.find wk !low and lv = SMap.find vk !low in
          if Int.compare lw lv < 0 then low := SMap.add vk lw !low
        | Some iw ->
          if SSet.mem wk !onstack then
            let lv = SMap.find vk !low in
            if Int.compare iw lv < 0 then low := SMap.add vk iw !low)
      (succs t v);
    if Int.compare (SMap.find vk !low) (SMap.find vk !idx) = 0 then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          onstack := SSet.remove (key w) !onstack;
          if String.equal (key w) vk then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  List.iter (fun v -> if not (SMap.mem (key v) !idx) then strong v) t.cg_nodes;
  List.rev !out

let resolve_symbol t sym =
  List.filter
    (fun n ->
      String.equal (label n) sym
      || String.equal (n.cg_mod ^ "." ^ n.cg_def) sym
      || String.equal n.cg_def sym)
    t.cg_nodes

let dot t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "digraph callgraph {\n";
  Buffer.add_string b "  rankdir=LR;\n  node [shape=box fontsize=9];\n";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" [label=\"%s\"];\n" (key n) (label n)))
    t.cg_nodes;
  SMap.iter
    (fun sk l ->
      List.iter
        (fun (dst, _) ->
          Buffer.add_string b
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" sk (key dst)))
        l)
    t.cg_succ;
  Buffer.add_string b "}\n";
  Buffer.contents b
