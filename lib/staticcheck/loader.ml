type intf = {
  i_path : string;
  i_vals : (string * int) list;
  i_error : (int * int * string) option;
}

type source = {
  s_path : string;
  s_dir : string;
  s_module : string;
  s_ast : Parsetree.structure option;
  s_error : (int * int * string) option;
  s_comments : (int * string) list;
  s_intf : intf option;
}

type t = {
  sources : source list;
  dirs : (string * string list) list;
}

let normalize path = String.concat "/" (String.split_on_char '\\' path)

let dir_of path =
  match String.rindex_opt path '/' with
  | None -> "."
  | Some i -> String.sub path 0 i

let module_of path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

let pos_info (p : Lexing.position) =
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Exported value names (with the line of their [val] item) from a
   signature.  Only top-level [val]s: values re-exported through nested
   modules or module types are out of SA004's scope. *)
let vals_of_signature (sg : Parsetree.signature) =
  List.filter_map
    (fun (item : Parsetree.signature_item) ->
      match item.psig_desc with
      | Psig_value vd ->
        Some (vd.pval_name.txt, vd.pval_name.loc.loc_start.pos_lnum)
      | _ -> None)
    sg

let load_intf ~path src =
  let path = normalize path in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  let vals, error =
    match Parse.interface lexbuf with
    | sg -> (vals_of_signature sg, None)
    | exception Syntaxerr.Error e ->
      let loc = Syntaxerr.location_of_error e in
      let l, c = pos_info loc.Location.loc_start in
      ([], Some (l, c, "syntax error"))
    | exception Lexer.Error (_, loc) ->
      let l, c = pos_info loc.Location.loc_start in
      ([], Some (l, c, "lexer error"))
    | exception _ -> ([], Some (1, 0, "parse error"))
  in
  { i_path = path; i_vals = vals; i_error = error }

let load_string ?intf ~path src =
  let path = normalize path in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  let ast, error =
    match Parse.implementation lexbuf with
    | ast -> (Some ast, None)
    | exception Syntaxerr.Error e ->
      let loc = Syntaxerr.location_of_error e in
      let l, c = pos_info loc.Location.loc_start in
      (None, Some (l, c, "syntax error"))
    | exception Lexer.Error (_, loc) ->
      let l, c = pos_info loc.Location.loc_start in
      (None, Some (l, c, "lexer error"))
    | exception _ -> (None, Some (1, 0, "parse error"))
  in
  let comments = List.rev (snd (Strip.strip src)) in
  let intf =
    match intf with
    | None -> None
    | Some isrc -> Some (load_intf ~path:(path ^ "i") isrc)
  in
  {
    s_path = path;
    s_dir = dir_of path;
    s_module = module_of path;
    s_ast = ast;
    s_error = error;
    s_comments = comments;
    s_intf = intf;
  }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let load_file path =
  let mli = path ^ "i" in
  let intf =
    if Filename.check_suffix path ".ml" && Sys.file_exists mli then
      Some (read_file mli)
    else None
  in
  load_string ?intf ~path (read_file path)

let of_sources sources =
  let sources =
    List.sort (fun a b -> String.compare a.s_path b.s_path) sources
  in
  let dirs =
    List.fold_left
      (fun acc s ->
        let cur = match List.assoc_opt s.s_dir acc with
          | Some ms -> ms
          | None -> []
        in
        (s.s_dir, s.s_module :: cur) :: List.remove_assoc s.s_dir acc)
      [] sources
  in
  let dirs =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun (d, ms) -> (d, List.sort String.compare ms)) dirs)
  in
  { sources; dirs }

let rec walk acc root rel =
  let full = if String.equal root "." then rel else Filename.concat root rel in
  if Sys.file_exists full && Sys.is_directory full then
    Array.fold_left
      (fun acc entry -> walk acc root (rel ^ "/" ^ entry))
      acc
      (let entries = Sys.readdir full in
       Array.sort String.compare entries;
       entries)
  else if Sys.file_exists full && Filename.check_suffix full ".ml" then
    (* pair the implementation with its sibling interface when present *)
    let intf =
      let mli = full ^ "i" in
      if Sys.file_exists mli then Some (read_file mli) else None
    in
    load_string ?intf ~path:rel (read_file full) :: acc
  else acc

let load_dirs ?(root = ".") dirs =
  of_sources (List.fold_left (fun acc d -> walk acc root d) [] dirs)

let modules_in_dir t dir =
  match List.assoc_opt dir t.dirs with Some ms -> ms | None -> []

let find_module t ~dir name =
  List.find_opt
    (fun s -> String.equal s.s_dir dir && String.equal s.s_module name)
    t.sources

let wrapper_dir name =
  let prefix = "Tact_" in
  let plen = String.length prefix in
  if
    String.length name > plen
    && String.equal (String.sub name 0 plen) prefix
  then
    Some ("lib/" ^ String.lowercase_ascii
            (String.sub name plen (String.length name - plen)))
  else None
