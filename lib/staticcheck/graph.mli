(** The cross-module reference graph derived from summaries.

    Two views: module-level edges (one per referencing site, for the
    layering pass and for [tact_analyze --graph] dumps) and value-level
    adjacency (the call graph the race pass traverses). *)

type node = { n_dir : string; n_mod : string }

type edge = {
  e_src : node;
  e_dst : node;
  e_loc : Location.t;
  e_def : string;  (** the definition the reference sits in *)
}

type t

val build : Summary.t list -> t

val summaries : t -> Summary.t list
(** In load order (sorted by path). *)

val find : t -> dir:string -> modname:string -> Summary.t option

val module_edges : t -> edge list
(** One edge per distinct (src, dst) module pair, keeping the first
    referencing location; sorted. *)

val value_refs : t -> node -> string -> Summary.vref list
(** The references recorded inside one top-level definition of a module —
    the adjacency the race pass walks.  [[]] for unknown nodes or defs. *)

val defines : Summary.t -> string -> bool
(** Is the name a top-level definition of the module? *)

val mutable_global : Summary.t -> string -> Summary.mutable_global option
(** The module's (non-[Sync]) mutable global of that name, if any. *)
