(** Textual OCaml source preparation shared by the fast line lint
    ([bin/tact_lint.ml]) and its tests.

    [strip src] blanks out comments and string/char literals in [src] while
    preserving the line structure exactly: the result has the same length and
    the same newline positions as the input, so a pattern match on line [n] of
    the stripped text refers to line [n] of the original file.  Comments are
    returned as [(start_line, text)] pairs so allow-annotations survive the
    stripping.

    Handled syntax: nested [(* ... *)] comments, ["..."] strings with escapes
    (including escaped-newline line continuations and CRLF line endings),
    [{id|...|id}] quoted strings whose delimiter ids may contain underscores
    and whose bodies may contain [|}]-lookalike sequences, and char literals
    (['a'], ['\n'], ['\123']) without swallowing type variables or primes in
    identifiers.  String, quoted-string and char literals {e inside}
    comments are scanned the way the compiler's lexer scans them, so a
    ["*)"] or [{|*)|}] in a comment does not terminate it. *)

val strip : string -> string * (int * string) list
(** [strip src] is [(stripped, comments)]; [comments] is in reverse source
    order, each entry carrying the 1-based line on which the comment opened
    and its text (without the delimiters). *)
