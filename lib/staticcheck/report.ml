type severity = Error | Warning | Info

type rule = { id : string; title : string; advice : string; severity : severity }

let rules =
  [
    { id = "SA001"; title = "syntax-error";
      advice = "the file does not parse; the AST passes cannot see it";
      severity = Error };
    { id = "SA004"; title = "dead-exported-api";
      advice =
        "exported in the .mli but referenced by no other module in the \
         loaded universe (lib/bin/bench plus test/examples); narrow the \
         interface or delete the value";
      severity = Info };
    { id = "SA010"; title = "layer-violation";
      advice =
        "dependency not allowed by analysis/layering.rules; lower layers \
         must not reach up";
      severity = Error };
    { id = "SA011"; title = "restricted-module";
      advice =
        "this project module is restricted to designated layers \
         (analysis/layering.rules `restrict`); route through the sanctioned \
         wrapper instead";
      severity = Error };
    { id = "SA012"; title = "restricted-external";
      advice =
        "this external module is restricted to designated layers \
         (analysis/layering.rules `external`)";
      severity = Error };
    { id = "SA013"; title = "unmapped-file";
      advice =
        "file is under no layer in analysis/layering.rules; add its \
         directory to a layer";
      severity = Warning };
    { id = "SA020"; title = "domain-race";
      advice =
        "module-level mutable state is reachable from a Pool task without \
         going through the Sync wrappers; parallel tasks may race on it";
      severity = Error };
    { id = "SA021"; title = "captured-mutation";
      advice =
        "a Pool task closure mutates state captured from the enclosing \
         scope; use Sync.Cell/Sync.Counter/Sync.Map or return a value";
      severity = Error };
    { id = "SA030"; title = "module-state";
      advice =
        "mutable module-level state breaks re-entrancy; the interleaving \
         checker replays runs in-process, so scope it inside a value";
      severity = Warning };
    { id = "SA040"; title = "polymorphic-compare";
      advice =
        "polymorphic compare; use a typed one (Int.compare, Float.compare, \
         Write.compare_id, ...)";
      severity = Error };
    { id = "SA041"; title = "wall-clock";
      advice =
        "wall-clock read breaks simulation determinism; use the engine's \
         virtual time";
      severity = Error };
    { id = "SA042"; title = "global-random";
      advice =
        "global Random state breaks run-to-run determinism; use a seeded \
         Random.State";
      severity = Error };
    { id = "SA043"; title = "obj-magic";
      advice = "Obj.magic defeats the type system";
      severity = Error };
    { id = "SA044"; title = "float-equal";
      advice =
        "float =/<> against a literal is exact; use Float.equal or an \
         epsilon comparison (metrics/bounds arithmetic accumulates rounding \
         error)";
      severity = Warning };
    { id = "SA050"; title = "det-core-wall-clock";
      advice =
        "a wall-clock read is transitively reachable from the \
         deterministic core (effects.rules `root det`); a replay that \
         consults real time cannot reproduce";
      severity = Error };
    { id = "SA051"; title = "det-core-random";
      advice =
        "unseeded global Random state is transitively reachable from the \
         deterministic core; thread a seeded Random.State instead";
      severity = Error };
    { id = "SA052"; title = "det-core-hashtbl-order";
      advice =
        "Hashtbl iteration order is transitively reachable from the \
         deterministic core; sort keys first or annotate the site \
         order-independent (lint: allow hashtbl-...)";
      severity = Error };
    { id = "SA053"; title = "det-core-widened";
      advice =
        "the effect fixpoint lost track here: a function value read out \
         of a mutable container is applied on a path reachable from the \
         deterministic core, so its effects are unknown (widened to top); \
         this is the analysis' trust seam — verify the stored functions \
         by hand or restructure to direct calls";
      severity = Warning };
    { id = "SA060"; title = "pool-task-blocking-syscall";
      advice =
        "a blocking Unix syscall is reachable from a Pool task body; a \
         blocked worker starves the fixed-size domain pool";
      severity = Error };
    { id = "SA061"; title = "pool-task-blocking-sync";
      advice =
        "Mutex.lock / Condition.wait / Domain spawn-join is reachable \
         from a Pool task body; tasks that block on each other can \
         deadlock the fixed worker set — use the Sync wrappers";
      severity = Error };
    { id = "SA062"; title = "pool-task-raises";
      advice =
        "an unhandled failwith/raise is reachable from a Pool task body; \
         the exception is rethrown at await, cancelling sibling results — \
         catch inside the task if partial results matter";
      severity = Warning };
    { id = "SA063"; title = "entrypoint-exception-escape";
      advice =
        "a failwith/raise chain reaches this bin/ entrypoint with no \
         intervening handler; the tool dies with an uncaught exception \
         instead of a usage message and exit code";
      severity = Warning };
    { id = "SA064"; title = "effect-annotation-drift";
      advice =
        "the definition is declared `(* effects: pure *)` but the \
         inferred summary is not empty; fix the code or drop the \
         annotation — checked documentation must not lie";
      severity = Error };
  ]

let rule id =
  match List.find_opt (fun r -> String.equal r.id id) rules with
  | Some r -> r
  | None -> invalid_arg ("Report.rule: unknown rule id " ^ id)

type finding = {
  f_rule : rule;
  f_path : string;
  f_line : int;
  f_col : int;
  f_context : string;
  f_message : string;
}

let finding ~rule_id ~path ~loc ~context message =
  let p = loc.Location.loc_start in
  {
    f_rule = rule rule_id;
    f_path = path;
    f_line = p.Lexing.pos_lnum;
    f_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    f_context = context;
    f_message = message;
  }

let key f = Printf.sprintf "%s %s %s" f.f_rule.id f.f_path f.f_context

let compare_findings a b =
  match String.compare a.f_path b.f_path with
  | 0 -> (
    match Int.compare a.f_line b.f_line with
    | 0 -> (
      match Int.compare a.f_col b.f_col with
      | 0 -> (
        match String.compare a.f_rule.id b.f_rule.id with
        | 0 -> String.compare a.f_context b.f_context
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let dedup fs =
  let sorted = List.sort compare_findings fs in
  let rec go = function
    | a :: b :: rest
      when String.equal (key a) (key b) && a.f_line = b.f_line
           && a.f_col = b.f_col ->
      go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go sorted

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s\n  %s" f.f_path f.f_line (f.f_col + 1)
    f.f_rule.id f.f_rule.title f.f_message f.f_rule.advice

(* --- JSON -------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let num_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f

  let to_string ?(indent = true) t =
    let buf = Buffer.create 1024 in
    let pad d = if indent then Buffer.add_string buf (String.make (2 * d) ' ') in
    let nl () = if indent then Buffer.add_char buf '\n' in
    let rec go d t =
      match t with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num f -> Buffer.add_string buf (num_to_string f)
      | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
      | Arr [] -> Buffer.add_string buf "[]"
      | Arr xs ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (d + 1);
            go (d + 1) x)
          xs;
        nl ();
        pad d;
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj kvs ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (d + 1);
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            go (d + 1) v)
          kvs;
        nl ();
        pad d;
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf
end

let json_of_finding ~baselined f =
  Json.Obj
    [
      ("rule", Json.Str f.f_rule.id);
      ("title", Json.Str f.f_rule.title);
      ("severity", Json.Str (severity_name f.f_rule.severity));
      ("path", Json.Str f.f_path);
      ("line", Json.Num (float_of_int f.f_line));
      ("col", Json.Num (float_of_int (f.f_col + 1)));
      ("context", Json.Str f.f_context);
      ("message", Json.Str f.f_message);
      ("baselined", Json.Bool (baselined f));
    ]

let json_of ~baselined fs =
  Json.to_string (Json.Arr (List.map (json_of_finding ~baselined) fs))

(* --- SARIF 2.1.0 ------------------------------------------------------- *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let sarif_of ~baselined fs =
  let rule_meta r =
    Json.Obj
      [
        ("id", Json.Str r.id);
        ("name", Json.Str r.title);
        ("shortDescription", Json.Obj [ ("text", Json.Str r.advice) ]);
        ( "defaultConfiguration",
          Json.Obj [ ("level", Json.Str (sarif_level r.severity)) ] );
      ]
  in
  let rule_index r =
    let rec idx i = function
      | [] -> -1
      | x :: rest -> if String.equal x.id r.id then i else idx (i + 1) rest
    in
    idx 0 rules
  in
  let result f =
    Json.Obj
      [
        ("ruleId", Json.Str f.f_rule.id);
        ("ruleIndex", Json.Num (float_of_int (rule_index f.f_rule)));
        ("level", Json.Str (sarif_level f.f_rule.severity));
        ("message", Json.Obj [ ("text", Json.Str f.f_message) ]);
        ( "locations",
          Json.Arr
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      [
                        ( "artifactLocation",
                          Json.Obj [ ("uri", Json.Str f.f_path) ] );
                        ( "region",
                          Json.Obj
                            [
                              ("startLine", Json.Num (float_of_int f.f_line));
                              ( "startColumn",
                                Json.Num (float_of_int (f.f_col + 1)) );
                            ] );
                      ] );
                ];
            ] );
        ( "partialFingerprints",
          Json.Obj [ ("tactAnalyzeKey/v1", Json.Str (key f)) ] );
        ( "baselineState",
          Json.Str (if baselined f then "unchanged" else "new") );
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ( "$schema",
           Json.Str
             "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
         );
         ("version", Json.Str "2.1.0");
         ( "runs",
           Json.Arr
             [
               Json.Obj
                 [
                   ( "tool",
                     Json.Obj
                       [
                         ( "driver",
                           Json.Obj
                             [
                               ("name", Json.Str "tact_analyze");
                               ( "informationUri",
                                 Json.Str "doc/ANALYSIS.md" );
                               ("rules", Json.Arr (List.map rule_meta rules));
                             ] );
                       ] );
                   ("results", Json.Arr (List.map result fs));
                 ];
             ] );
       ])
