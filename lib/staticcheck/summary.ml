module SSet = Set.Make (String)
module SMap = Map.Make (String)

type target =
  | Local
  | Self of string
  | Proj of { p_dir : string; p_mod : string; p_path : string }
  | Extern of string list

type vref = { r_target : target; r_loc : Location.t; r_def : string }

type mutation = {
  mu_op : string;
  mu_name : string;
  mu_target : target;
  mu_captured : bool;
  mu_def : string;
  mu_loc : Location.t;
}

type escape = { esc_def : string; esc_what : string; esc_loc : Location.t }

type pool_site = {
  ps_fn : string;
  ps_def : string;
  ps_loc : Location.t;
  ps_refs : vref list;
  ps_mutations : mutation list;
  ps_escapes : escape list;
  ps_handles : bool;
}

type mutable_global = {
  mg_name : string;
  mg_creator : string;
  mg_sync : bool;
  mg_loc : Location.t;
}

type float_eq = { fe_op : string; fe_def : string; fe_loc : Location.t }

type t = {
  sum_source : Loader.source;
  sum_defs : string list;
  sum_def_lines : (string * int) list;
  sum_globals : mutable_global list;
  sum_refs : vref list;
  sum_mutations : mutation list;
  sum_handlers : string list;
  sum_escapes : escape list;
  sum_pool_sites : pool_site list;
  sum_float_eqs : float_eq list;
}

let target_module = function
  | Proj { p_mod = ""; _ } -> None
  | Proj { p_mod; _ } -> Some p_mod
  | Extern (h :: _ :: _) -> Some h
  | _ -> None

(* --- walker state ------------------------------------------------------ *)

type site_acc = {
  mutable a_refs : vref list;
  mutable a_muts : mutation list;
  mutable a_escs : escape list;
  mutable a_handles : bool;
}

type task = { t_acc : site_acc; t_locals : SSet.t }

type env = {
  vals : SSet.t;  (* locally bound values *)
  mods : SSet.t;  (* locally bound module names (letmodule, functor args) *)
  aliases : string list SMap.t;  (* module alias -> raw target path *)
  opens : string list list;  (* innermost-first opened module paths *)
  prefix : string;  (* nested-module prefix for top-level names, "" or "Sub." *)
  def : string;  (* enclosing top-level definition *)
  task : task option;  (* inside a Pool task argument *)
}

type ctx = {
  loader : Loader.t;
  src : Loader.source;
  mutable defs : SSet.t;  (* top-level value names seen so far, dotted *)
  mutable submodules : SSet.t;  (* nested module names, dotted *)
  mutable def_lines : (string * int) list;
  mutable globals : mutable_global list;
  mutable refs : vref list;
  mutable muts : mutation list;
  mutable handlers : SSet.t;  (* defs containing a try-handler *)
  mutable escapes : escape list;
  mutable sites : pool_site list;
  mutable feqs : float_eq list;
}

let bind_vals env names =
  let vals = List.fold_left (fun s n -> SSet.add n s) env.vals names in
  let task =
    Option.map
      (fun t ->
        { t with
          t_locals = List.fold_left (fun s n -> SSet.add n s) t.t_locals names
        })
      env.task
  in
  { env with vals; task }

let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> Some [ s ]
  | Ldot (t, s) -> (
    match flatten t with Some l -> Some (l @ [ s ]) | None -> None)
  | Lapply _ -> None

let pat_vars (p : Parsetree.pattern) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it p;
  !acc

let is_upper s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* --- reference resolution ---------------------------------------------- *)

let rec resolve ctx env path =
  match path with
  | [] -> Extern []
  | [ x ] when not (is_upper x) ->
    if SSet.mem x env.vals then Local
    else if SSet.mem (env.prefix ^ x) ctx.defs || SSet.mem x ctx.defs then
      Self (if SSet.mem (env.prefix ^ x) ctx.defs then env.prefix ^ x else x)
    else Extern [ x ]
  | m :: rest -> resolve_mod ctx env ~depth:0 m rest

and resolve_mod ctx env ~depth m rest =
  if depth > 8 then Extern (m :: rest)
  else if SSet.mem m env.mods then Local
  else
    match SMap.find_opt m env.aliases with
    | Some target -> (
      match target @ rest with
      | m' :: rest' -> resolve_mod ctx env ~depth:(depth + 1) m' rest'
      | [] -> Extern [ m ])
    | None -> (
      match Loader.wrapper_dir m with
      | Some d -> (
        match rest with
        | [] -> Proj { p_dir = d; p_mod = ""; p_path = "" }
        | sub :: rest2 when is_upper sub ->
          Proj { p_dir = d; p_mod = sub; p_path = String.concat "." rest2 }
        | _ -> Extern (m :: rest))
      | None ->
        if
          SSet.mem (env.prefix ^ m) ctx.submodules || SSet.mem m ctx.submodules
        then Self (String.concat "." (m :: rest))
        else if
          List.mem m (Loader.modules_in_dir ctx.loader ctx.src.Loader.s_dir)
          && not (String.equal m ctx.src.Loader.s_module)
        then
          Proj
            { p_dir = ctx.src.Loader.s_dir;
              p_mod = m;
              p_path = String.concat "." rest }
        else
          let via_open =
            List.find_map
              (fun opath ->
                match opath with
                | [ w ] -> (
                  match Loader.wrapper_dir w with
                  | Some d when List.mem m (Loader.modules_in_dir ctx.loader d)
                    ->
                    Some
                      (Proj
                         { p_dir = d; p_mod = m; p_path = String.concat "." rest })
                  | _ -> None)
                | _ -> None)
              env.opens
          in
          (match via_open with
          | Some t -> t
          | None -> (
            let owners =
              List.filter
                (fun (_, ms) -> List.mem m ms)
                ctx.loader.Loader.dirs
            in
            match owners with
            | [ (d, _) ] ->
              Proj { p_dir = d; p_mod = m; p_path = String.concat "." rest }
            | _ -> Extern (m :: rest))))

let record_ref ctx env lid loc =
  match flatten lid with
  | None -> ()
  | Some path -> (
    match resolve ctx env path with
    | Local -> ()
    | t ->
      let r = { r_target = t; r_loc = loc; r_def = env.def } in
      ctx.refs <- r :: ctx.refs;
      (match env.task with
      | Some tk -> tk.t_acc.a_refs <- r :: tk.t_acc.a_refs
      | None -> ()))

(* --- tables ------------------------------------------------------------ *)

let raw_creators =
  [
    [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Queue"; "create" ];
    [ "Stack"; "create" ]; [ "Buffer"; "create" ]; [ "Bytes"; "create" ];
    [ "Bytes"; "make" ]; [ "Array"; "make" ]; [ "Array"; "init" ];
    [ "Array"; "create_float" ]; [ "Atomic"; "make" ];
  ]

let mutators =
  [
    ("Hashtbl",
     [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Buffer",
     [ "add_string"; "add_char"; "add_bytes"; "add_subbytes"; "add_substring";
       "clear"; "reset"; "truncate" ]);
    ("Bytes", [ "set"; "fill"; "blit"; "blit_string"; "unsafe_set" ]);
    ("Array", [ "set"; "fill"; "blit"; "unsafe_set" ]);
  ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float" ]

let pool_fns = [ "submit"; "post"; "map_list" ]

(* Pool/Sync are recognised by module name, not just by resolved directory,
   so fixtures and partial loads (where lib/util itself is not parsed) still
   see the escape points and the sanctioned wrappers. *)
let pool_call ctx env (f : Parsetree.expression) =
  match f.Parsetree.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | Some path -> (
      match resolve ctx env path with
      | Proj { p_mod = "Pool"; p_path; _ } when List.mem p_path pool_fns ->
        Some p_path
      | Extern [ "Pool"; v ] when List.mem v pool_fns -> Some v
      | _ -> None)
    | None -> None)
  | _ -> None

let sync_target = function
  | Proj { p_mod = "Sync"; _ } -> true
  | Extern ("Sync" :: _) -> true
  | _ -> false

let creator_of ctx env (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_apply (f, _) -> (
    match f.Parsetree.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | Some path -> (
        match resolve ctx env path with
        | Extern p when List.mem p raw_creators ->
          Some (String.concat "." p, false)
        | (Extern ("Sync" :: _) | Proj { p_mod = "Sync"; _ }) as t ->
          let name =
            match t with
            | Extern p -> String.concat "." p
            | Proj { p_path; _ } -> "Sync." ^ p_path
            | _ -> "Sync"
          in
          Some (name, true)
        | _ -> None)
      | None -> None)
    | _ -> None)
  | _ -> None

(* --- expression walk --------------------------------------------------- *)

let record_mutation ctx env op (arg : Parsetree.expression) loc =
  match arg.Parsetree.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | Some path -> (
      let name = String.concat "." path in
      let t = resolve ctx env path in
      let mk captured =
        { mu_op = op; mu_name = name; mu_target = t;
          mu_captured = captured; mu_def = env.def; mu_loc = loc }
      in
      (* module-level state touched from anywhere (task or not): the
         effect pass turns these into Global_mutation atoms *)
      (match t with
      | (Self _ | Proj _) when not (sync_target t) ->
        ctx.muts <- mk false :: ctx.muts
      | _ -> ());
      match env.task with
      | None -> ()
      | Some tk -> (
        let add captured = tk.t_acc.a_muts <- mk captured :: tk.t_acc.a_muts in
        match t with
        | Local ->
          (* bound in the file: racy only if captured from outside the
             task closure rather than created inside it *)
          let base = match path with x :: _ -> x | [] -> "" in
          if not (SSet.mem base tk.t_locals) then add true
        | Self _ | Proj _ -> if not (sync_target t) then add false
        | Extern _ -> ()))
    | None -> ())
  | _ -> ()

let rec walk_expr ctx env (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> record_ref ctx env txt loc
  | Pexp_let (rf, vbs, body) ->
    let names = List.concat_map (fun vb -> pat_vars vb.Parsetree.pvb_pat) vbs in
    let env_rhs = if rf = Asttypes.Recursive then bind_vals env names else env in
    List.iter (fun vb -> walk_expr ctx env_rhs vb.Parsetree.pvb_expr) vbs;
    walk_expr ctx (bind_vals env names) body
  | Pexp_fun (_, dflt, pat, body) ->
    Option.iter (walk_expr ctx env) dflt;
    walk_expr ctx (bind_vals env (pat_vars pat)) body
  | Pexp_function cases -> walk_cases ctx env cases
  | Pexp_match (e0, cases) ->
    walk_expr ctx env e0;
    walk_cases ctx env cases
  | Pexp_try (e0, cases) ->
    (* a def with a handler absorbs the Raises atoms of its callees *)
    ctx.handlers <- SSet.add env.def ctx.handlers;
    (match env.task with
    | Some tk -> tk.t_acc.a_handles <- true
    | None -> ());
    walk_expr ctx env e0;
    walk_cases ctx env cases
  | Pexp_apply (f, args) -> walk_apply ctx env e f args
  | Pexp_for (pat, e1, e2, _, body) ->
    walk_expr ctx env e1;
    walk_expr ctx env e2;
    walk_expr ctx (bind_vals env (pat_vars pat)) body
  | Pexp_letmodule (name, me, body) ->
    let env' =
      match (name.txt, me.Parsetree.pmod_desc) with
      | Some n, Pmod_ident { txt; _ } -> (
        record_module_ref ctx env txt me.Parsetree.pmod_loc;
        match flatten txt with
        | Some p -> { env with aliases = SMap.add n p env.aliases }
        | None -> { env with mods = SSet.add n env.mods })
      | Some n, _ ->
        walk_module_expr ctx env me;
        { env with mods = SSet.add n env.mods }
      | None, _ ->
        walk_module_expr ctx env me;
        env
    in
    walk_expr ctx env' body
  | Pexp_open (od, body) ->
    let env' = push_open ctx env od in
    walk_expr ctx env' body
  | Pexp_letop { let_; ands; body } ->
    walk_expr ctx env let_.pbop_exp;
    List.iter (fun b -> walk_expr ctx env b.Parsetree.pbop_exp) ands;
    let names =
      pat_vars let_.pbop_pat
      @ List.concat_map (fun b -> pat_vars b.Parsetree.pbop_pat) ands
    in
    walk_expr ctx (bind_vals env names) body
  | Pexp_setfield (e1, _, e2) ->
    record_mutation ctx env "<-" e1 e.pexp_loc;
    walk_expr ctx env e1;
    walk_expr ctx env e2
  | Pexp_newtype (_, body) -> walk_expr ctx env body
  | _ -> fallback ctx env e

and fallback ctx env e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ child -> walk_expr ctx env child);
    }
  in
  Ast_iterator.default_iterator.expr it e

and walk_cases ctx env cases =
  List.iter
    (fun (c : Parsetree.case) ->
      let env' = bind_vals env (pat_vars c.pc_lhs) in
      Option.iter (walk_expr ctx env') c.pc_guard;
      walk_expr ctx env' c.pc_rhs)
    cases

and walk_apply ctx env e f args =
  (* higher-order escape: applying a function fetched out of a record field
     or a ref cell — the effect fixpoint cannot see through the container,
     so these sites widen the caller's summary to ⊤ *)
  (let record_escape what =
     let esc =
       { esc_def = env.def; esc_what = what; esc_loc = e.Parsetree.pexp_loc }
     in
     ctx.escapes <- esc :: ctx.escapes;
     match env.task with
     | Some tk -> tk.t_acc.a_escs <- esc :: tk.t_acc.a_escs
     | None -> ()
   in
   match f.Parsetree.pexp_desc with
   | Pexp_field (_, { txt = flid; _ }) ->
     record_escape ("." ^ Longident.last flid)
   | Pexp_apply (g, [ (Asttypes.Nolabel, cell) ]) -> (
     match g.Parsetree.pexp_desc with
     | Pexp_ident { txt = Lident "!"; _ }
       when (not (SSet.mem "!" env.vals)) && not (SSet.mem "!" ctx.defs) ->
       let nm =
         match cell.Parsetree.pexp_desc with
         | Pexp_ident { txt; _ } -> (
           match flatten txt with
           | Some p -> String.concat "." p
           | None -> "?")
         | _ -> "?"
       in
       record_escape ("!" ^ nm)
     | _ -> ())
   | _ -> ());
  (* mutators, the [:=]/[incr]/[decr] forms, and exact float equality *)
  (match f.Parsetree.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match flatten txt with
    | Some path -> (
      let unshadowed x =
        (not (SSet.mem x env.vals)) && not (SSet.mem x ctx.defs)
      in
      (match path with
      | [ (":=" | "incr" | "decr") as op ] when unshadowed op -> (
        match args with
        | (Asttypes.Nolabel, a1) :: _ ->
          record_mutation ctx env op a1 e.Parsetree.pexp_loc
        | _ -> ())
      | [ m; v ]
        when List.exists
               (fun (mm, vs) -> String.equal mm m && List.mem v vs)
               mutators -> (
        match resolve ctx env path with
        | Extern _ -> (
          match args with
          | (Asttypes.Nolabel, a1) :: _ ->
            record_mutation ctx env (m ^ "." ^ v) a1 e.Parsetree.pexp_loc
          | _ -> ())
        | _ -> ())
      | _ -> ());
      match path with
      | [ (("=" | "<>") as op) ] when unshadowed op ->
        let float_operand (a : Parsetree.expression) =
          match a.pexp_desc with
          | Pexp_constant (Pconst_float _) -> true
          | Pexp_ident { txt = Lident c; _ } ->
            List.mem c float_consts && not (SSet.mem c env.vals)
          | _ -> false
        in
        if List.exists (fun (_, a) -> float_operand a) args then
          ctx.feqs <-
            { fe_op = op; fe_def = env.def; fe_loc = e.Parsetree.pexp_loc }
            :: ctx.feqs
      | _ -> ())
    | None -> ())
  | _ -> ());
  match pool_call ctx env f with
  | Some fn when List.length args >= 2 ->
    walk_expr ctx env f;
    List.iteri
      (fun i (_, a) ->
        if i = 1 then begin
          let acc =
            { a_refs = []; a_muts = []; a_escs = []; a_handles = false }
          in
          let tenv =
            { env with task = Some { t_acc = acc; t_locals = SSet.empty } }
          in
          walk_expr ctx tenv a;
          ctx.sites <-
            {
              ps_fn = fn;
              ps_def = env.def;
              ps_loc = e.Parsetree.pexp_loc;
              ps_refs = List.rev acc.a_refs;
              ps_mutations = List.rev acc.a_muts;
              ps_escapes = List.rev acc.a_escs;
              ps_handles = acc.a_handles;
            }
            :: ctx.sites
        end
        else walk_expr ctx env a)
      args
  | _ ->
    walk_expr ctx env f;
    List.iter (fun (_, a) -> walk_expr ctx env a) args

and record_module_ref ctx env lid loc =
  match flatten lid with
  | None -> ()
  | Some path -> (
    match resolve ctx env path with
    | Local -> ()
    | t -> ctx.refs <- { r_target = t; r_loc = loc; r_def = env.def } :: ctx.refs)

and push_open ctx env (od : Parsetree.open_declaration) =
  match od.popen_expr.pmod_desc with
  | Pmod_ident { txt; loc } -> (
    record_module_ref ctx env txt loc;
    match flatten txt with
    | Some p -> { env with opens = p :: env.opens }
    | None -> env)
  | _ ->
    walk_module_expr ctx env od.popen_expr;
    env

and walk_module_expr ctx env (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> record_module_ref ctx env txt me.pmod_loc
  | Pmod_structure items ->
    ignore (walk_structure ctx { env with prefix = env.prefix } items)
  | Pmod_functor (param, body) ->
    let env' =
      match param with
      | Named ({ txt = Some n; _ }, _) -> { env with mods = SSet.add n env.mods }
      | _ -> env
    in
    walk_module_expr ctx env' body
  | Pmod_apply (a, b) ->
    walk_module_expr ctx env a;
    walk_module_expr ctx env b
  | Pmod_apply_unit m -> walk_module_expr ctx env m
  | Pmod_constraint (m, _) -> walk_module_expr ctx env m
  | Pmod_unpack e -> walk_expr ctx env e
  | Pmod_extension _ -> ()

(* --- structure walk ---------------------------------------------------- *)

and walk_item ctx env (item : Parsetree.structure_item) =
  match item.pstr_desc with
  | Pstr_value (rf, vbs) ->
    let names =
      List.concat_map
        (fun vb -> List.map (fun n -> env.prefix ^ n) (pat_vars vb.Parsetree.pvb_pat))
        vbs
    in
    if rf = Asttypes.Recursive then
      ctx.defs <- List.fold_left (fun s n -> SSet.add n s) ctx.defs names;
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        let dname =
          match pat_vars vb.pvb_pat with
          | n :: _ -> env.prefix ^ n
          | [] -> env.prefix ^ "_"
        in
        ctx.def_lines <-
          (dname, vb.pvb_loc.Location.loc_start.Lexing.pos_lnum)
          :: ctx.def_lines;
        (match creator_of ctx env vb.pvb_expr with
        | Some (creator, sync) ->
          ctx.globals <-
            {
              mg_name = dname;
              mg_creator = creator;
              mg_sync = sync;
              mg_loc = vb.pvb_loc;
            }
            :: ctx.globals
        | None -> ());
        walk_expr ctx { env with def = dname } vb.pvb_expr)
      vbs;
    ctx.defs <- List.fold_left (fun s n -> SSet.add n s) ctx.defs names;
    env
  | Pstr_module mb -> walk_module_binding ctx env mb
  | Pstr_recmodule mbs -> List.fold_left (walk_module_binding ctx) env mbs
  | Pstr_open od -> push_open ctx { env with def = "" } od
  | Pstr_eval (e, _) ->
    walk_expr ctx { env with def = "" } e;
    env
  | Pstr_include incl ->
    walk_module_expr ctx env incl.pincl_mod;
    env
  | Pstr_primitive _ | Pstr_type _ | Pstr_typext _ | Pstr_exception _
  | Pstr_modtype _ | Pstr_class _ | Pstr_class_type _ | Pstr_attribute _
  | Pstr_extension _ ->
    env

and walk_module_binding ctx env (mb : Parsetree.module_binding) =
  let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
  ctx.submodules <- SSet.add (env.prefix ^ name) ctx.submodules;
  match mb.pmb_expr.pmod_desc with
  | Pmod_ident { txt; loc } -> (
    record_module_ref ctx { env with def = "" } txt loc;
    match flatten txt with
    | Some p -> { env with aliases = SMap.add name p env.aliases }
    | None -> env)
  | Pmod_structure items ->
    ignore
      (walk_structure ctx
         { env with prefix = env.prefix ^ name ^ "."; def = "" }
         items);
    env
  | _ ->
    walk_module_expr ctx { env with def = "" } mb.pmb_expr;
    env

and walk_structure ctx env items = List.fold_left (walk_item ctx) env items

(* --- entry point ------------------------------------------------------- *)

let empty_env =
  {
    vals = SSet.empty;
    mods = SSet.empty;
    aliases = SMap.empty;
    opens = [];
    prefix = "";
    def = "";
    task = None;
  }

let of_source loader (src : Loader.source) =
  let ctx =
    {
      loader;
      src;
      defs = SSet.empty;
      submodules = SSet.empty;
      def_lines = [];
      globals = [];
      refs = [];
      muts = [];
      handlers = SSet.empty;
      escapes = [];
      sites = [];
      feqs = [];
    }
  in
  (match src.s_ast with
  | Some items -> ignore (walk_structure ctx empty_env items)
  | None -> ());
  {
    sum_source = src;
    sum_defs = SSet.elements ctx.defs;
    sum_def_lines = List.rev ctx.def_lines;
    sum_globals = List.rev ctx.globals;
    sum_refs = List.rev ctx.refs;
    sum_mutations = List.rev ctx.muts;
    sum_handlers = SSet.elements ctx.handlers;
    sum_escapes = List.rev ctx.escapes;
    sum_pool_sites = List.rev ctx.sites;
    sum_float_eqs = List.rev ctx.feqs;
  }
