(** Findings, the SA0xx rule catalogue, and output formats.

    Every pass reports {!finding} values.  A finding's {!key} is stable
    across unrelated edits — rule id, file, and a context token (enclosing
    top-level definition plus the offending symbol), but no line numbers —
    so the checked-in baseline survives code motion.  Renderers: plain text,
    JSON, and SARIF 2.1.0 (for CI artifact upload and code-scanning UIs). *)

type severity = Error | Warning | Info

type rule = {
  id : string;  (** stable "SAxxx" identifier *)
  title : string;  (** short name, kebab-case *)
  advice : string;  (** one-line explanation / fix hint *)
  severity : severity;
}

val rules : rule list
(** The full catalogue, sorted by id.  [doc/ANALYSIS.md] mirrors it. *)

val rule : string -> rule
(** Look up by id.  Raises [Invalid_argument] on an unknown id. *)

type finding = {
  f_rule : rule;
  f_path : string;  (** repo-relative, '/'-separated *)
  f_line : int;  (** 1-based *)
  f_col : int;  (** 0-based, as in compiler locations *)
  f_context : string;  (** stable context token, e.g. ["run_one:Sys.time"] *)
  f_message : string;
}

val finding :
  rule_id:string ->
  path:string ->
  loc:Location.t ->
  context:string ->
  string ->
  finding
(** Build a finding from a compiler location (its start position). *)

val key : finding -> string
(** ["SAxxx path context"] — the baseline identity of the finding. *)

val compare_findings : finding -> finding -> int
(** Order by path, line, column, rule id, context. *)

val dedup : finding list -> finding list
(** Sort and drop findings with identical keys {e and} positions. *)

val to_text : finding -> string
(** ["path:line:col: [SAxxx title] message\n  advice"]. *)

(** Minimal JSON values and printer — enough to emit findings and SARIF
    without an external dependency (mirrors [Tact_check.Json], which lives
    above this library in the layering). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
end

val json_of : baselined:(finding -> bool) -> finding list -> string
(** All findings as a JSON array; each object carries a ["baselined"] flag. *)

val sarif_of : baselined:(finding -> bool) -> finding list -> string
(** SARIF 2.1.0 log: one run, the rule catalogue under
    [tool.driver.rules], one result per finding with a [baselineState] of
    ["unchanged"] (baselined) or ["new"]. *)
