(** The determinism pass: scope-aware replacements for the textual
    wall-clock / global-Random / polymorphic-compare / Obj.magic /
    float-equality rules.

    Because references arrive pre-resolved from {!Summary}, a local
    [let compare] or a shadowed [Random] no longer trips the rules, while
    [module S = Stdlib ... S.compare] does.

    Scoping mirrors the old textual linter: [SA040]–[SA043] fire under
    [lib/] only; [SA044] (exact float equality) on the metrics/bounds
    paths [lib/core], [lib/replica], [lib/protocols] and [lib/check]. *)

val run : Summary.t list -> Report.finding list
