(* Interprocedural effect & purity inference.

   Every definition gets an effect summary: the set of effect atoms its
   body performs directly plus everything reachable through the value-level
   call graph (Callgraph).  Direct atoms come from three places — external
   references classified by the analysis/effects.rules table, mutations of
   module-level state recorded by Summary, and higher-order escapes (a
   function applied out of a record field or ref cell), which widen the
   summary to ⊤ since the callee is unknowable.  Propagation runs bottom-up
   over Tarjan SCCs, so mutual recursion converges in one pass; a
   definition containing a try-handler absorbs the Raises atoms of its
   callees; directories listed as `trust` contribute nothing and are not
   traversed.

   Rule families on top of the fixpoint: SA050-SA053 (nondeterministic
   atoms reachable from the `root det` modules), SA060-SA062 (blocking or
   raising effects reachable from Pool task bodies), SA063 (raise chains
   reaching a bin/ entrypoint unhandled), SA064 (`(* effects: pure *)`
   annotations contradicted by the inferred summary).  Every finding
   carries the full call chain from root to culprit. *)

module SMap = Map.Make (String)

(* --- atoms ------------------------------------------------------------- *)

type atom =
  | Wall_clock
  | Unseeded_random
  | Hashtbl_iter
  | Global_mutation of string
  | Blocking of string
  | Raises of string
  | Domain_spawn
  | Widened of string

let atom_rank = function
  | Wall_clock -> 0
  | Unseeded_random -> 1
  | Hashtbl_iter -> 2
  | Global_mutation _ -> 3
  | Blocking _ -> 4
  | Raises _ -> 5
  | Domain_spawn -> 6
  | Widened _ -> 7

let atom_payload = function
  | Global_mutation s | Blocking s | Raises s | Widened s -> s
  | Wall_clock | Unseeded_random | Hashtbl_iter | Domain_spawn -> ""

let compare_atom a b =
  match Int.compare (atom_rank a) (atom_rank b) with
  | 0 -> String.compare (atom_payload a) (atom_payload b)
  | c -> c

let atom_label = function
  | Wall_clock -> "wall-clock"
  | Unseeded_random -> "random"
  | Hashtbl_iter -> "hashtbl-iter"
  | Global_mutation g -> "mutates:" ^ g
  | Blocking p -> "blocks:" ^ p
  | Raises p -> "raises:" ^ p
  | Domain_spawn -> "domain-spawn"
  | Widened w -> "widened:" ^ w

module AtomSet = Set.Make (struct
  type t = atom

  let compare = compare_atom
end)

module AtomMap = Map.Make (struct
  type t = atom

  let compare = compare_atom
end)

(* --- rules table ------------------------------------------------------- *)

type kind = Wall | Random | Hash | Block | Raise | Domain | Pure

type rules = {
  ru_entries : (string * kind) list;  (* pattern -> kind, first match wins *)
  ru_trust : string list;
  ru_det_roots : (string * string) list;  (* (dir, module) *)
}

let empty_rules = { ru_entries = []; ru_trust = []; ru_det_roots = [] }

let kind_of = function
  | "wall" -> Some Wall
  | "random" -> Some Random
  | "hashtbl" -> Some Hash
  | "block" -> Some Block
  | "raise" -> Some Raise
  | "domain" -> Some Domain
  | _ -> None

let split_ws line =
  let line = String.map (fun c -> if c = '\t' then ' ' else c) line in
  List.filter
    (fun t -> String.length t > 0)
    (String.split_on_char ' ' line)

let parse_rules text =
  let error = ref None in
  let fail lnum msg =
    if Option.is_none !error then
      error := Some (Printf.sprintf "line %d: %s" (lnum + 1) msg)
  in
  let entries = ref [] in
  let trust = ref [] in
  let roots = ref [] in
  List.iteri
    (fun lnum line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | "atom" :: k :: (_ :: _ as pats) -> (
        match kind_of k with
        | Some kind ->
          entries := !entries @ List.map (fun p -> (p, kind)) pats
        | None -> fail lnum ("unknown atom kind " ^ k))
      | [ "atom" ] | [ "atom"; _ ] -> fail lnum "atom needs a kind and patterns"
      | "pure" :: (_ :: _ as pats) ->
        entries := !entries @ List.map (fun p -> (p, Pure)) pats
      | [ "pure" ] -> fail lnum "pure needs patterns"
      | [ "assume"; "pure" ] -> ()
      | "assume" :: _ -> fail lnum "only `assume pure` is supported"
      | "trust" :: (_ :: _ as dirs) -> trust := !trust @ dirs
      | [ "trust" ] -> fail lnum "trust needs directories"
      | "root" :: "det" :: (_ :: _ as specs) ->
        List.iter
          (fun spec ->
            match String.rindex_opt spec '/' with
            | Some i ->
              roots :=
                !roots
                @ [
                    ( String.sub spec 0 i,
                      String.sub spec (i + 1) (String.length spec - i - 1) );
                  ]
            | None -> fail lnum ("root spec must be dir/Module: " ^ spec))
          specs
      | "root" :: _ -> fail lnum "only `root det dir/Module ...` is supported"
      | tok :: _ -> fail lnum ("unknown directive " ^ tok))
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None ->
    Ok { ru_entries = !entries; ru_trust = !trust; ru_det_roots = !roots }

let strip_stdlib path =
  let pre = "Stdlib." in
  let plen = String.length pre in
  if String.length path > plen && String.equal (String.sub path 0 plen) pre
  then String.sub path plen (String.length path - plen)
  else path

let pat_match pat path =
  let plen = String.length pat in
  if plen >= 2 && String.equal (String.sub pat (plen - 2) 2) ".*" then begin
    let prefix = String.sub pat 0 (plen - 2) in
    let flen = String.length prefix in
    String.equal path prefix
    || String.length path > flen + 1
       && String.equal (String.sub path 0 (flen + 1)) (prefix ^ ".")
  end
  else String.equal pat path

(* First matching entry decides; [Pure] stops the scan with no atom, and an
   unmatched path is assumed pure (the `assume pure` default). *)
let classify rules path =
  let path = strip_stdlib path in
  let rec go = function
    | [] -> None
    | (pat, kind) :: rest ->
      if pat_match pat path then
        match kind with
        | Pure -> None
        | Wall -> Some Wall_clock
        | Random -> Some Unseeded_random
        | Hash -> Some Hashtbl_iter
        | Block -> Some (Blocking path)
        | Raise -> Some (Raises path)
        | Domain -> Some Domain_spawn
      else go rest
  in
  go rules.ru_entries

let trusted rules dir = List.exists (String.equal dir) rules.ru_trust

(* --- direct atoms ------------------------------------------------------ *)

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let found = ref false in
  for k = 0 to hn - nn do
    if String.equal (String.sub hay k nn) needle then found := true
  done;
  !found

(* Lines covered by a [(* lint: allow hashtbl-... *)] annotation: the
   comment's own lines plus the line after it ends (same coverage as
   tact_lint).  Hashtbl_iter atoms at covered references are dropped —
   those sites already declared themselves order-independent. *)
let hashtbl_allow_lines (src : Loader.source) =
  List.fold_left
    (fun acc (cline, text) ->
      if contains text "allow" && contains text "hashtbl" then begin
        let last = ref cline in
        String.iter (fun c -> if c = '\n' then incr last) text;
        let rec span acc l = if l > !last + 1 then acc else span (l :: acc) (l + 1) in
        span acc cline
      end
      else acc)
    [] src.Loader.s_comments

let resolve_global (s : Summary.t) path =
  match Graph.mutable_global s path with
  | Some g -> Some g
  | None -> (
    match String.rindex_opt path '.' with
    | Some i ->
      Graph.mutable_global s
        (String.sub path (i + 1) (String.length path - i - 1))
    | None -> None)

(* The external dotted path of a reference for table classification:
   [Extern] paths, and [Proj] paths into modules the loader has not seen
   (those are outside the universe, so the rules table is all we have). *)
let extern_path graph (r : Summary.vref) =
  match r.Summary.r_target with
  | Summary.Extern [] | Summary.Local | Summary.Self _ -> None
  | Summary.Extern p -> Some (String.concat "." p)
  | Summary.Proj { p_dir; p_mod; p_path } -> (
    match Graph.find graph ~dir:p_dir ~modname:p_mod with
    | Some _ -> None
    | None ->
      Some (if String.equal p_path "" then p_mod else p_mod ^ "." ^ p_path))

(* A reference that resolves to a non-Sync mutable global: touching shared
   mutable state is itself an effect (reads are interleaving-dependent). *)
let global_touch graph (s : Summary.t) (r : Summary.vref) =
  match r.Summary.r_target with
  | Summary.Self path -> (
    match resolve_global s path with
    | Some g -> Some (s.sum_source.Loader.s_module ^ "." ^ g.mg_name)
    | None -> None)
  | Summary.Proj { p_dir; p_mod; p_path } when not (String.equal p_path "") -> (
    match Graph.find graph ~dir:p_dir ~modname:p_mod with
    | None -> None
    | Some dst -> (
      match resolve_global dst p_path with
      | Some g -> Some (p_mod ^ "." ^ g.mg_name)
      | None -> None))
  | _ -> None

let canon_mutation graph (s : Summary.t) (mu : Summary.mutation) =
  match mu.Summary.mu_target with
  | Summary.Self path ->
    let name =
      match resolve_global s path with
      | Some g -> g.mg_name
      | None -> path
    in
    Some (s.sum_source.Loader.s_module ^ "." ^ name)
  | Summary.Proj { p_dir; p_mod; p_path } ->
    let name =
      match Graph.find graph ~dir:p_dir ~modname:p_mod with
      | Some dst -> (
        match resolve_global dst p_path with
        | Some g -> g.mg_name
        | None -> p_path)
      | None -> p_path
    in
    Some (p_mod ^ "." ^ name)
  | Summary.Local | Summary.Extern _ -> None

type eff = {
  e_rules : rules;
  e_graph : Graph.t;
  e_cg : Callgraph.t;
  e_direct : (AtomSet.t * Location.t AtomMap.t) SMap.t;
  e_summ : AtomSet.t SMap.t;
}

let direct_of_summary rules graph (s : Summary.t) acc =
  let src = s.Summary.sum_source in
  if trusted rules src.Loader.s_dir then acc
  else begin
    let allow = hashtbl_allow_lines src in
    let acc = ref acc in
    let add def atom loc =
      let k =
        Callgraph.key
          { Callgraph.cg_dir = src.Loader.s_dir;
            cg_mod = src.Loader.s_module;
            cg_def = def }
      in
      acc :=
        SMap.update k
          (function
            | None -> Some (AtomSet.singleton atom, AtomMap.singleton atom loc)
            | Some (set, locs) ->
              Some
                ( AtomSet.add atom set,
                  if AtomMap.mem atom locs then locs
                  else AtomMap.add atom loc locs ))
          !acc
    in
    List.iter
      (fun (r : Summary.vref) ->
        (match extern_path graph r with
        | None -> ()
        | Some p -> (
          match classify rules p with
          | None -> ()
          | Some Hashtbl_iter
            when List.mem r.r_loc.Location.loc_start.Lexing.pos_lnum allow ->
            ()
          | Some a -> add r.r_def a r.r_loc));
        match global_touch graph s r with
        | Some g -> add r.r_def (Global_mutation g) r.r_loc
        | None -> ())
      s.sum_refs;
    List.iter
      (fun (mu : Summary.mutation) ->
        match canon_mutation graph s mu with
        | Some g -> add mu.mu_def (Global_mutation g) mu.mu_loc
        | None -> ())
      s.sum_mutations;
    List.iter
      (fun (esc : Summary.escape) ->
        add esc.esc_def (Widened esc.esc_what) esc.esc_loc)
      s.sum_escapes;
    !acc
  end

(* --- fixpoint ---------------------------------------------------------- *)

let drop_raises set =
  AtomSet.filter (function Raises _ -> false | _ -> true) set

let infer rules graph cg =
  let direct =
    List.fold_left
      (fun acc s -> direct_of_summary rules graph s acc)
      SMap.empty (Graph.summaries graph)
  in
  let direct_atoms k =
    match SMap.find_opt k direct with
    | Some (set, _) -> set
    | None -> AtomSet.empty
  in
  let is_handler (n : Callgraph.node) =
    match Graph.find graph ~dir:n.cg_dir ~modname:n.cg_mod with
    | Some s -> List.exists (String.equal n.cg_def) s.sum_handlers
    | None -> false
  in
  let summ = ref SMap.empty in
  (* Bottom-up over the SCC condensation.  Within an SCC every member
     reaches every other, so the union of member direct atoms and
     out-of-SCC callee summaries is already the fixpoint — one pass. *)
  List.iter
    (fun scc ->
      let base =
        List.fold_left
          (fun b (m : Callgraph.node) ->
            if trusted rules m.cg_dir then b
            else begin
              let b = AtomSet.union b (direct_atoms (Callgraph.key m)) in
              List.fold_left
                (fun b ((w : Callgraph.node), _) ->
                  if trusted rules w.cg_dir then b
                  else
                    match SMap.find_opt (Callgraph.key w) !summ with
                    | Some s -> AtomSet.union b s
                    | None -> b)
                b (Callgraph.succs cg m)
            end)
          AtomSet.empty scc
      in
      List.iter
        (fun (m : Callgraph.node) ->
          let s =
            if trusted rules m.cg_dir then AtomSet.empty
            else if is_handler m then drop_raises base
            else base
          in
          summ := SMap.add (Callgraph.key m) s !summ)
        scc)
    (Callgraph.sccs cg);
  { e_rules = rules; e_graph = graph; e_cg = cg; e_direct = direct;
    e_summ = !summ }

let summary_of eff n =
  match SMap.find_opt (Callgraph.key n) eff.e_summ with
  | Some s -> s
  | None -> AtomSet.empty

let direct_of eff n =
  match SMap.find_opt (Callgraph.key n) eff.e_direct with
  | Some (s, _) -> s
  | None -> AtomSet.empty

let direct_loc eff n atom =
  match SMap.find_opt (Callgraph.key n) eff.e_direct with
  | Some (_, locs) -> AtomMap.find_opt atom locs
  | None -> None

(* --- chains ------------------------------------------------------------ *)

(* Shortest path (BFS) from [start] to a node carrying [atom] directly,
   moving only through nodes whose summary still contains the atom (so a
   Raises chain cannot pass a handler). *)
let chain eff (start : Callgraph.node) atom =
  let carries n =
    AtomSet.mem atom (summary_of eff n) || AtomSet.mem atom (direct_of eff n)
  in
  if not (carries start) then None
  else begin
    let parents = ref SMap.empty in
    let visited = ref (SMap.singleton (Callgraph.key start) ()) in
    let rec reconstruct n acc =
      let acc = n :: acc in
      match SMap.find_opt (Callgraph.key n) !parents with
      | Some p -> reconstruct p acc
      | None -> acc
    in
    let rec bfs frontier =
      match frontier with
      | [] -> None
      | _ -> (
        match
          List.find_opt (fun n -> AtomSet.mem atom (direct_of eff n)) frontier
        with
        | Some hit -> Some (reconstruct hit [])
        | None ->
          let next =
            List.concat_map
              (fun v ->
                List.filter_map
                  (fun ((w : Callgraph.node), _) ->
                    let wk = Callgraph.key w in
                    if SMap.mem wk !visited then None
                    else if trusted eff.e_rules w.cg_dir then None
                    else if not (carries w) then None
                    else begin
                      visited := SMap.add wk () !visited;
                      parents := SMap.add wk v !parents;
                      Some w
                    end)
                  (Callgraph.succs eff.e_cg v))
              frontier
          in
          bfs next)
    in
    bfs [ start ]
  end

let chain_text nodes = String.concat " -> " (List.map Callgraph.label nodes)

(* --- findings ---------------------------------------------------------- *)

let loc_of_line path line =
  let pos =
    { Lexing.pos_fname = path; pos_lnum = line; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

let def_line (s : Summary.t) def =
  match List.assoc_opt def s.sum_def_lines with Some l -> Some l | None -> None

let def_display d = if String.equal d "" then "(toplevel)" else d

let module_path eff (n : Callgraph.node) =
  match Graph.find eff.e_graph ~dir:n.cg_dir ~modname:n.cg_mod with
  | Some s -> s.sum_source.Loader.s_path
  | None -> n.cg_dir ^ "/" ^ String.uncapitalize_ascii n.cg_mod ^ ".ml"

let det_rule = function
  | Wall_clock -> Some ("SA050", "wall-clock")
  | Unseeded_random -> Some ("SA051", "random")
  | Hashtbl_iter -> Some ("SA052", "hashtbl-iter")
  | Widened w -> Some ("SA053", "widened:" ^ w)
  | Global_mutation _ | Blocking _ | Raises _ | Domain_spawn -> None

let det_findings eff =
  let findings = ref [] in
  List.iter
    (fun (dir, modname) ->
      match Graph.find eff.e_graph ~dir ~modname with
      | None -> ()
      | Some rsum ->
        List.iter
          (fun d ->
            let root = { Callgraph.cg_dir = dir; cg_mod = modname; cg_def = d } in
            AtomSet.iter
              (fun a ->
                match det_rule a with
                | None -> ()
                | Some (rule_id, label) -> (
                  match chain eff root a with
                  | None -> ()
                  | Some nodes ->
                    let culprit = List.nth nodes (List.length nodes - 1) in
                    let cpath = module_path eff culprit in
                    let loc =
                      match direct_loc eff culprit a with
                      | Some l -> l
                      | None -> loc_of_line cpath 1
                    in
                    findings :=
                      Report.finding ~rule_id ~path:cpath ~loc
                        ~context:
                          (Printf.sprintf "def:%s:%s"
                             (def_display culprit.cg_def) label)
                        (Printf.sprintf
                           "%s reachable from deterministic root %s via %s"
                           (atom_label a) (Callgraph.label root)
                           (chain_text nodes))
                      :: !findings))
              (summary_of eff root))
          ("" :: rsum.sum_defs))
    eff.e_rules.ru_det_roots;
  !findings

(* Direct atoms of a pool-task body, classified the same way as a
   definition body. *)
let task_direct eff (s : Summary.t) (site : Summary.pool_site) =
  let src = s.Summary.sum_source in
  let allow = hashtbl_allow_lines src in
  let atoms = ref AtomSet.empty in
  let locs = ref AtomMap.empty in
  let add atom loc =
    atoms := AtomSet.add atom !atoms;
    if not (AtomMap.mem atom !locs) then locs := AtomMap.add atom loc !locs
  in
  List.iter
    (fun (r : Summary.vref) ->
      (match extern_path eff.e_graph r with
      | None -> ()
      | Some p -> (
        match classify eff.e_rules p with
        | None -> ()
        | Some Hashtbl_iter
          when List.mem r.r_loc.Location.loc_start.Lexing.pos_lnum allow ->
          ()
        | Some a -> add a r.r_loc));
      match global_touch eff.e_graph s r with
      | Some g -> add (Global_mutation g) r.r_loc
      | None -> ())
    site.ps_refs;
  List.iter
    (fun (mu : Summary.mutation) ->
      match canon_mutation eff.e_graph s mu with
      | Some g -> add (Global_mutation g) mu.mu_loc
      | None -> ())
    site.ps_mutations;
  List.iter
    (fun (esc : Summary.escape) -> add (Widened esc.esc_what) esc.esc_loc)
    site.ps_escapes;
  (!atoms, !locs)

let task_callees eff (s : Summary.t) (site : Summary.pool_site) =
  List.filter_map
    (fun r -> Callgraph.target_node eff.e_graph s r)
    site.ps_refs

let task_summary eff (s : Summary.t) (site : Summary.pool_site) =
  let direct, _ = task_direct eff s site in
  let all =
    List.fold_left
      (fun acc n -> AtomSet.union acc (summary_of eff n))
      direct
      (task_callees eff s site)
  in
  if site.ps_handles then drop_raises all else all

(* How an atom enters a task: directly in the body, or through one of the
   definitions the body references. *)
let task_via eff (s : Summary.t) (site : Summary.pool_site) atom =
  let direct, locs = task_direct eff s site in
  if AtomSet.mem atom direct then
    match AtomMap.find_opt atom locs with
    | Some l ->
      Printf.sprintf "directly in the task body (line %d)"
        l.Location.loc_start.Lexing.pos_lnum
    | None -> "directly in the task body"
  else
    let rec first = function
      | [] -> "through the task body"
      | n :: rest -> (
        match chain eff n atom with
        | Some nodes -> "via " ^ chain_text nodes
        | None -> first rest)
    in
    first (task_callees eff s site)

let pool_findings eff =
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      if not (trusted eff.e_rules src.Loader.s_dir) then
        List.iter
          (fun (site : Summary.pool_site) ->
            let atoms = task_summary eff s site in
            let flag rule_id label message =
              findings :=
                Report.finding ~rule_id ~path:src.Loader.s_path
                  ~loc:site.ps_loc
                  ~context:
                    (Printf.sprintf "def:%s:%s" (def_display site.ps_def)
                       label)
                  message
                :: !findings
            in
            AtomSet.iter
              (fun a ->
                match a with
                | Blocking p
                  when String.length p >= 5
                       && String.equal (String.sub p 0 5) "Unix." ->
                  flag "SA060" p
                    (Printf.sprintf
                       "Pool.%s task in %s can block on %s (%s); a blocked \
                        worker starves the pool"
                       site.ps_fn (def_display site.ps_def) p
                       (task_via eff s site a))
                | Blocking p ->
                  flag "SA061" p
                    (Printf.sprintf
                       "Pool.%s task in %s blocks on %s (%s); tasks that \
                        wait on each other can deadlock the fixed worker \
                        set"
                       site.ps_fn (def_display site.ps_def) p
                       (task_via eff s site a))
                | Domain_spawn ->
                  flag "SA061" "domain-spawn"
                    (Printf.sprintf
                       "Pool.%s task in %s spawns domains (%s); nested \
                        spawn inside the fixed pool oversubscribes or \
                        deadlocks"
                       site.ps_fn (def_display site.ps_def)
                       (task_via eff s site a))
                | _ -> ())
              atoms;
            let raises =
              AtomSet.filter (function Raises _ -> true | _ -> false) atoms
            in
            if not (AtomSet.is_empty raises) then begin
              let labels =
                String.concat ", "
                  (List.map atom_label (AtomSet.elements raises))
              in
              let first = AtomSet.min_elt raises in
              flag "SA062" "raises"
                (Printf.sprintf
                   "Pool.%s task in %s can raise (%s, %s) with no handler \
                    in the task body; the exception is rethrown at await \
                    and cancels sibling results"
                   site.ps_fn (def_display site.ps_def) labels
                   (task_via eff s site first))
            end)
          s.sum_pool_sites)
    (Graph.summaries eff.e_graph);
  !findings

let entry_findings eff =
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      if String.equal src.Loader.s_dir "bin" then begin
        let entries =
          { Callgraph.cg_dir = "bin"; cg_mod = src.Loader.s_module;
            cg_def = "" }
          :: (if List.mem_assoc "_" s.sum_def_lines then
                [ { Callgraph.cg_dir = "bin"; cg_mod = src.Loader.s_module;
                    cg_def = "_" } ]
              else [])
        in
        let raises =
          List.fold_left
            (fun acc n ->
              AtomSet.union acc
                (AtomSet.filter
                   (function Raises _ -> true | _ -> false)
                   (summary_of eff n)))
            AtomSet.empty entries
        in
        if not (AtomSet.is_empty raises) then begin
          let first = AtomSet.min_elt raises in
          let via =
            let rec go = function
              | [] -> "through the entrypoint"
              | n :: rest -> (
                match chain eff n first with
                | Some nodes -> "via " ^ chain_text nodes
                | None -> go rest)
            in
            go entries
          in
          let line =
            match def_line s "_" with
            | Some l -> l
            | None -> 1
          in
          findings :=
            Report.finding ~rule_id:"SA063" ~path:src.Loader.s_path
              ~loc:(loc_of_line src.Loader.s_path line)
              ~context:("entry:" ^ src.Loader.s_module)
              (Printf.sprintf
                 "entrypoint can die on an uncaught exception (%s) %s; wrap \
                  the dispatch in a handler that prints usage and exits"
                 (String.concat ", "
                    (List.map atom_label (AtomSet.elements raises)))
                 via)
            :: !findings
        end
      end)
    (Graph.summaries eff.e_graph);
  !findings

let annot_findings eff =
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      if not (trusted eff.e_rules src.Loader.s_dir) then
        List.iter
          (fun (cline, text) ->
            if contains text "effects: pure" then begin
              let last = ref cline in
              String.iter (fun c -> if c = '\n' then incr last) text;
              match
                List.find_opt
                  (fun (_, l) -> l >= cline && l <= !last + 1)
                  s.sum_def_lines
              with
              | None -> ()
              | Some (d, line) ->
                let n =
                  { Callgraph.cg_dir = src.Loader.s_dir;
                    cg_mod = src.Loader.s_module;
                    cg_def = d }
                in
                let atoms = summary_of eff n in
                if not (AtomSet.is_empty atoms) then begin
                  let first = AtomSet.min_elt atoms in
                  let via =
                    match chain eff n first with
                    | Some nodes -> "; first chain: " ^ chain_text nodes
                    | None -> ""
                  in
                  findings :=
                    Report.finding ~rule_id:"SA064" ~path:src.Loader.s_path
                      ~loc:(loc_of_line src.Loader.s_path line)
                      ~context:(Printf.sprintf "def:%s:effects-pure" d)
                      (Printf.sprintf
                         "%s is declared `effects: pure` but the inferred \
                          summary is {%s}%s"
                         d
                         (String.concat ", "
                            (List.map atom_label (AtomSet.elements atoms)))
                         via)
                    :: !findings
                end
            end)
          src.Loader.s_comments)
    (Graph.summaries eff.e_graph);
  !findings

let run eff =
  Report.dedup
    (det_findings eff @ pool_findings eff @ entry_findings eff
    @ annot_findings eff)

(* --- why --------------------------------------------------------------- *)

let set_text set =
  if AtomSet.is_empty set then "(pure)"
  else String.concat ", " (List.map atom_label (AtomSet.elements set))

let why eff sym =
  match Callgraph.resolve_symbol eff.e_cg sym with
  | [] -> [ Printf.sprintf "no definition matches %S" sym ]
  | nodes ->
    List.concat_map
      (fun n ->
        let head = Callgraph.label n in
        let lines =
          [
            head;
            "  direct:  " ^ set_text (direct_of eff n);
            "  summary: " ^ set_text (summary_of eff n);
          ]
        in
        lines
        @ List.filter_map
            (fun a ->
              match chain eff n a with
              | Some c when List.length c > 1 ->
                Some ("    " ^ atom_label a ^ ": " ^ chain_text c)
              | _ -> None)
            (AtomSet.elements (summary_of eff n)))
      nodes
