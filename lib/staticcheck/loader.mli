(** Parse the tree's [.ml] files into real parsetrees.

    A {!source} carries the repo-relative path, the directory it was found
    under (the layering unit, e.g. ["lib/core"]), the module name derived
    from the filename, and either a parsetree or the parse error.  Loading
    never raises on bad input: a file that does not parse becomes a source
    with [s_ast = None] and the analyzer reports it as SA001.

    When a sibling [.mli] exists it is parsed too ({!intf}): the exported
    [val] names feed the dead-exported-API pass (SA004), and an interface
    that fails to parse is reported like an unparsable implementation. *)

type intf = {
  i_path : string;  (** the [.mli] path *)
  i_vals : (string * int) list;
      (** exported top-level value names with the 1-based line of the
          [val] item, in signature order *)
  i_error : (int * int * string) option;  (** line, col, message *)
}

type source = {
  s_path : string;  (** repo-relative, '/'-separated *)
  s_dir : string;  (** directory component, e.g. ["lib/util"] or ["bin"] *)
  s_module : string;  (** ["Pool"] for [lib/util/pool.ml] *)
  s_ast : Parsetree.structure option;
  s_error : (int * int * string) option;  (** line, col, message *)
  s_comments : (int * string) list;
      (** comments in source order, each with the 1-based line it opened
          on — effect annotations and lint-allow markers live here *)
  s_intf : intf option;  (** sibling [.mli], when one exists *)
}

type t = {
  sources : source list;  (** sorted by path *)
  dirs : (string * string list) list;  (** dir -> sorted module names *)
}

val load_string : ?intf:string -> path:string -> string -> source
(** Parse [src] as if read from [path] (used by tests to inject synthetic
    modules without touching disk).  [intf], when given, is the text of the
    sibling interface, parsed as [path ^ "i"]. *)

val load_file : string -> source

val of_sources : source list -> t
(** Index a source list (sorts, builds the per-directory module table). *)

val load_dirs : ?root:string -> string list -> t
(** Walk each directory recursively, loading every [.ml] file and pairing
    each with its sibling [.mli] when present.  Paths in the result are
    relative to [root] (default ["."]).  Missing directories are skipped
    silently so the analyzer can run on partial checkouts. *)

val modules_in_dir : t -> string -> string list
(** Sorted module names under a directory; [[]] when unknown. *)

val find_module : t -> dir:string -> string -> source option

val wrapper_dir : string -> string option
(** [wrapper_dir "Tact_util"] is [Some "lib/util"]: the dune library
    wrapper-module naming convention used across this repo.  [None] for
    names without the [Tact_] prefix. *)
