(* Dead exported API (SA004): a value exported in a .mli but referenced by
   no *other* module anywhere in the loaded universe — which, for this
   pass, includes test/ and examples/ as reference-only sources, so a
   value used only by tests is still counted as live.

   Conservative by construction: a module that is the target of any bare
   module reference from elsewhere (an [open], a [module X = Mod] alias
   that Summary could not chase into a value path, an [include]) is
   skipped entirely, because such references can reach every export
   without naming it.  An interface that fails to parse is reported as
   SA001 on the .mli path, mirroring implementations. *)

module SSet = Set.Make (String)

let mod_key dir m = dir ^ "//" ^ m

(* prefix match: analyzed dir "lib" covers source dir "lib/store" *)
let under dirs sdir =
  List.exists
    (fun d ->
      String.equal d sdir
      || String.length sdir > String.length d
         && String.equal (String.sub sdir 0 (String.length d + 1)) (d ^ "/"))
    dirs

let run ~analyzed graph =
  let sums = Graph.summaries graph in
  (* One sweep over every reference in the universe: exact value uses and
     bare-module uses, both keyed by target module. *)
  let used = ref SSet.empty in
  let bare = ref SSet.empty in
  List.iter
    (fun (s : Summary.t) ->
      let here = s.sum_source.Loader.s_module in
      let here_dir = s.sum_source.Loader.s_dir in
      List.iter
        (fun (r : Summary.vref) ->
          match r.Summary.r_target with
          | Summary.Proj { p_dir; p_mod; p_path }
            when not
                   (String.equal p_dir here_dir
                   && String.equal p_mod here) ->
            if String.equal p_path "" then
              bare := SSet.add (mod_key p_dir p_mod) !bare
            else
              used := SSet.add (mod_key p_dir p_mod ^ "//" ^ p_path) !used
          | _ -> ())
        s.sum_refs)
    sums;
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      if under analyzed src.Loader.s_dir then
        match src.Loader.s_intf with
        | None -> ()
        | Some intf -> (
          match intf.Loader.i_error with
          | Some (l, c, msg) ->
            findings :=
              Report.finding ~rule_id:"SA001" ~path:intf.Loader.i_path
                ~loc:
                  {
                    Location.loc_start =
                      { Lexing.pos_fname = intf.Loader.i_path; pos_lnum = l;
                        pos_bol = 0; pos_cnum = c };
                    loc_end =
                      { Lexing.pos_fname = intf.Loader.i_path; pos_lnum = l;
                        pos_bol = 0; pos_cnum = c };
                    loc_ghost = false;
                  }
                ~context:"interface" ("interface does not parse: " ^ msg)
              :: !findings
          | None ->
            let mk = mod_key src.Loader.s_dir src.Loader.s_module in
            if not (SSet.mem mk !bare) then
              List.iter
                (fun (name, line) ->
                  if not (SSet.mem (mk ^ "//" ^ name) !used) then
                    findings :=
                      Report.finding ~rule_id:"SA004" ~path:intf.Loader.i_path
                        ~loc:
                          {
                            Location.loc_start =
                              { Lexing.pos_fname = intf.Loader.i_path;
                                pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
                            loc_end =
                              { Lexing.pos_fname = intf.Loader.i_path;
                                pos_lnum = line; pos_bol = 0; pos_cnum = 0 };
                            loc_ghost = false;
                          }
                        ~context:
                          (Printf.sprintf "val:%s.%s" src.Loader.s_module
                             name)
                        (Printf.sprintf
                           "%s.%s is exported but no other module in \
                            lib/bin/bench/test/examples references it"
                           src.Loader.s_module name)
                      :: !findings)
                intf.Loader.i_vals))
    sums;
  Report.dedup !findings
