(** Interprocedural effect & purity inference (SA050-SA064).

    Each definition gets a summary: the {!atom}s its body performs
    directly — external references classified by the
    [analysis/effects.rules] table, module-level mutations, higher-order
    escapes — plus everything reachable through the value-level call
    graph.  Propagation runs bottom-up over Tarjan SCCs (one pass per
    SCC); definitions containing a try-handler absorb the [Raises] atoms
    of their callees; `trust`ed directories contribute nothing and are
    not traversed.  Every finding carries the full root-to-culprit call
    chain. *)

type atom =
  | Wall_clock  (** [Unix.gettimeofday] and friends *)
  | Unseeded_random  (** global [Random] state *)
  | Hashtbl_iter
      (** iteration in [Hashtbl] order, unless the site carries a
          [lint: allow hashtbl-...] annotation *)
  | Global_mutation of string
      (** touches the named non-[Sync] module-level mutable value
          (["Op.registry"]); reads count — they are
          interleaving-dependent *)
  | Blocking of string  (** blocking call, e.g. ["Unix.read"] or
                            ["Mutex.lock"] *)
  | Raises of string  (** reaches ["failwith"] / ["raise"] unhandled *)
  | Domain_spawn
  | Widened of string
      (** ⊤: a function value applied out of a record field ([".body"])
          or ref cell (["!hook"]) — effects unknowable past this point *)

val compare_atom : atom -> atom -> int
val atom_label : atom -> string

module AtomSet : Set.S with type elt = atom

type rules
(** Parsed [analysis/effects.rules]. *)

val empty_rules : rules

val parse_rules : string -> (rules, string) result
(** Parse the rules text.  Directives: [atom <kind> <pat>...] with kinds
    [wall random hashtbl block raise domain], [pure <pat>...],
    [assume pure], [trust <dir>...], [root det <dir/Module>...].  Patterns
    match full dotted external paths ([Stdlib.] prefix stripped); a
    trailing [.*] matches the module and everything under it; the first
    matching entry wins; unmatched externals are assumed pure. *)

type eff

val infer : rules -> Graph.t -> Callgraph.t -> eff
(** Run the fixpoint over the loaded universe. *)

val summary_of : eff -> Callgraph.node -> AtomSet.t
(** Transitive effect summary of one definition (empty = pure). *)

val direct_of : eff -> Callgraph.node -> AtomSet.t
(** Atoms the definition's own body performs, before propagation. *)

val task_summary : eff -> Summary.t -> Summary.pool_site -> AtomSet.t
(** Transitive effects of a Pool task body: direct atoms of the task
    argument plus the summaries of everything it references; [Raises]
    dropped when the body carries its own handler. *)

val chain : eff -> Callgraph.node -> atom -> Callgraph.node list option
(** Shortest call chain from the node to a definition carrying the atom
    directly, moving only through nodes whose summary still contains it
    (a [Raises] chain cannot pass a handler).  [None] if unreachable. *)

val chain_text : Callgraph.node list -> string

val run : eff -> Report.finding list
(** All effect rule families: SA050-SA053 on `root det` modules,
    SA060-SA062 on Pool task bodies, SA063 on bin/ entrypoints, SA064 on
    [(* effects: pure *)] annotations.  Deduped, deterministic order. *)

val why : eff -> string -> string list
(** Human-readable dump for [--why <symbol>]: matching definitions with
    their direct and transitive atoms and one chain per atom. *)
