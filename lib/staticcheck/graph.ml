type node = { n_dir : string; n_mod : string }

type edge = { e_src : node; e_dst : node; e_loc : Location.t; e_def : string }

module SMap = Map.Make (String)

type t = { g_sums : Summary.t list; g_index : Summary.t SMap.t }

let node_key dir m = dir ^ "//" ^ m

let build sums =
  let index =
    List.fold_left
      (fun acc (s : Summary.t) ->
        SMap.add
          (node_key s.sum_source.Loader.s_dir s.sum_source.Loader.s_module)
          s acc)
      SMap.empty sums
  in
  { g_sums = sums; g_index = index }

let summaries t = t.g_sums

let find t ~dir ~modname = SMap.find_opt (node_key dir modname) t.g_index

let module_edges t =
  let seen = ref SMap.empty in
  let edges = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src =
        { n_dir = s.sum_source.Loader.s_dir;
          n_mod = s.sum_source.Loader.s_module }
      in
      List.iter
        (fun (r : Summary.vref) ->
          match r.r_target with
          | Summary.Proj { p_dir; p_mod; _ }
            when not
                   (String.equal p_dir src.n_dir
                   && String.equal p_mod src.n_mod) ->
            let dst = { n_dir = p_dir; n_mod = p_mod } in
            let k = node_key src.n_dir src.n_mod ^ "->" ^ node_key p_dir p_mod in
            if not (SMap.mem k !seen) then begin
              seen := SMap.add k () !seen;
              edges :=
                { e_src = src; e_dst = dst; e_loc = r.r_loc; e_def = r.r_def }
                :: !edges
            end
          | _ -> ())
        s.sum_refs)
    t.g_sums;
  List.sort
    (fun a b ->
      match String.compare (node_key a.e_src.n_dir a.e_src.n_mod)
              (node_key b.e_src.n_dir b.e_src.n_mod) with
      | 0 ->
        String.compare (node_key a.e_dst.n_dir a.e_dst.n_mod)
          (node_key b.e_dst.n_dir b.e_dst.n_mod)
      | c -> c)
    !edges

let value_refs t node def =
  match find t ~dir:node.n_dir ~modname:node.n_mod with
  | None -> []
  | Some s ->
    List.filter (fun (r : Summary.vref) -> String.equal r.r_def def) s.sum_refs

let defines (s : Summary.t) name = List.mem name s.sum_defs

let mutable_global (s : Summary.t) name =
  List.find_opt
    (fun (g : Summary.mutable_global) ->
      String.equal g.mg_name name && not g.mg_sync)
    s.sum_globals
