(* Library directories that are real-time by design: they implement the
   TRANSPORT seam's production side (sockets, deadlines, wall clocks) and
   never run inside a simulation, so the wall-clock rule (SA041) does not
   apply there.  Every other determinism rule (polymorphic compare, global
   Random, Obj.magic) still does. *)
let realtime_dirs = [ "lib/transport" ]

let lib_dir dir =
  String.length dir >= 4 && String.equal (String.sub dir 0 4) "lib/"

let float_dirs = [ "lib/core"; "lib/replica"; "lib/protocols"; "lib/check" ]

let ctxt (r : Summary.vref) tail =
  (if String.equal r.r_def "" then "(toplevel)" else r.r_def) ^ ":" ^ tail

(* [Extern] paths arrive alias-chased, so [module S = Stdlib ... S.compare]
   shows up here as ["Stdlib"; "compare"]. *)
let check_ref ~dir path (r : Summary.vref) =
  match r.r_target with
  | Summary.Extern [ "compare" ] | Summary.Extern [ "Stdlib"; "compare" ] ->
    Some
      (Report.finding ~rule_id:"SA040" ~path ~loc:r.r_loc
         ~context:(ctxt r "compare")
         "polymorphic compare walks arbitrary structure and breaks on \
          functional values; use a typed compare")
  | Summary.Extern (("Unix" | "Stdlib") :: ([ "time" ] | [ "gettimeofday" ]))
  | Summary.Extern [ "Sys"; "time" ]
    when not (List.mem dir realtime_dirs) ->
    Some
      (Report.finding ~rule_id:"SA041" ~path ~loc:r.r_loc
         ~context:(ctxt r "wall-clock")
         "wall-clock read breaks simulation determinism; use the simulated \
          clock")
  | Summary.Extern ("Random" :: tail)
    when tail <> [] && not (String.equal (List.hd tail) "State") ->
    Some
      (Report.finding ~rule_id:"SA042" ~path ~loc:r.r_loc
         ~context:(ctxt r ("Random." ^ String.concat "." tail))
         "global Random state breaks run-to-run determinism; use a seeded \
          Random.State")
  | Summary.Extern [ "Obj"; "magic" ] ->
    Some
      (Report.finding ~rule_id:"SA043" ~path ~loc:r.r_loc
         ~context:(ctxt r "Obj.magic") "Obj.magic defeats the type system")
  | _ -> None

let run sums =
  let findings = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      let src = s.sum_source in
      let path = src.Loader.s_path in
      if lib_dir src.Loader.s_dir then
        List.iter
          (fun r ->
            match check_ref ~dir:src.Loader.s_dir path r with
            | Some f -> findings := f :: !findings
            | None -> ())
          s.sum_refs;
      if List.mem src.Loader.s_dir float_dirs then
        List.iter
          (fun (fe : Summary.float_eq) ->
            findings :=
              Report.finding ~rule_id:"SA044" ~path ~loc:fe.fe_loc
                ~context:
                  ((if String.equal fe.fe_def "" then "(toplevel)"
                    else fe.fe_def)
                  ^ ":" ^ fe.fe_op)
                (Printf.sprintf
                   "exact float (%s) comparison on a metrics/bounds path; \
                    compare against an epsilon"
                   fe.fe_op)
              :: !findings)
          s.sum_float_eqs)
    sums;
  Report.dedup !findings
