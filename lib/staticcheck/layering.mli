(** The layering pass: the architecture as data.

    [analysis/layering.rules] declares the layer table; this pass checks
    every cross-module reference in the graph against it:

    - [SA010] a module references a layer its own layer may not depend on;
    - [SA011] a [restrict]ed project module (e.g. [Pool]) is referenced
      from a layer not on its allow list;
    - [SA012] a [restrict]ed external module (e.g. [Domain], [Unix]) is
      referenced from a layer not on its allow list;
    - [SA013] a file lives under no declared layer.

    Rules file grammar (one declaration per line, [#] comments):
    {v
    layer NAME DIR ... [-> DEP ...]     DEP: layer names, or * for any
    restrict MODULE [-> LAYER ...]      project module, by module name
    external MODULE [-> LAYER ...]      external module, by head name
    v} *)

type rules

val parse_rules : string -> (rules, string) result
(** Parse rules text; the error names the offending line. *)

val load_rules : string -> (rules, string) result
(** Read and parse a rules file. *)

val layer_of : rules -> string -> string option
(** The layer a directory belongs to, if declared. *)

val run : rules -> Graph.t -> Report.finding list
