type t = {
  scenario : string;
  deviations : (int * int) list;
  violations : string list;
  final_fp : Fingerprint.t;
  steps : int;
}

let version = 1

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)

(* Greedy delta-debugging over the deviation map: repeatedly drop any single
   deviation whose removal still yields a violating execution, until no
   single removal does.  Deviations are independent coordinates of the
   schedule (removing one never invalidates the others' step indices — the
   prefix up to the earliest remaining deviation is unchanged), so greedy
   removal is sound, and the small budgets keep the quadratic re-run count
   trivial. *)
let minimize (sc : Scenario.t) deviations =
  let fails ds = (Runner.run sc ~deviations:ds).Runner.violations <> [] in
  let rec shrink ds =
    let n = List.length ds in
    let rec try_drop i =
      if i >= n then ds
      else
        let without = List.filteri (fun j _ -> j <> i) ds in
        if fails without then shrink without else try_drop (i + 1)
    in
    try_drop 0
  in
  if fails deviations then shrink deviations else deviations

let of_result ~scenario ~deviations (r : Runner.result) =
  {
    scenario;
    deviations;
    violations = r.Runner.violations;
    final_fp = r.Runner.final_fp;
    steps = Array.length r.Runner.steps;
  }

(* ------------------------------------------------------------------ *)
(* JSON serialization                                                  *)

let to_json t =
  Json.Obj
    [
      ("version", Json.Num (float_of_int version));
      ("scenario", Json.Str t.scenario);
      ( "deviations",
        Json.Arr
          (List.map
             (fun (step, seq) ->
               Json.Arr
                 [ Json.Num (float_of_int step); Json.Num (float_of_int seq) ])
             t.deviations) );
      ("violations", Json.Arr (List.map (fun v -> Json.Str v) t.violations));
      ("final_fingerprint", Json.Str (Fingerprint.to_hex t.final_fp));
      ("steps", Json.Num (float_of_int t.steps));
    ]

let of_json j =
  let ( let* ) x f = match x with Some v -> f v | None -> Error "malformed trace" in
  let* v = Option.bind (Json.member "version" j) Json.to_int in
  if v <> version then
    Error (Printf.sprintf "unsupported trace version %d (expected %d)" v version)
  else
    let* scenario = Option.bind (Json.member "scenario" j) Json.to_str in
    let* dev_items = Option.bind (Json.member "deviations" j) Json.to_list in
    let* deviations =
      List.fold_right
        (fun item acc ->
          Option.bind acc (fun acc ->
              match Json.to_list item with
              | Some [ s; q ] -> (
                match (Json.to_int s, Json.to_int q) with
                | Some s, Some q -> Some ((s, q) :: acc)
                | _ -> None)
              | _ -> None))
        dev_items (Some [])
    in
    let* viol_items = Option.bind (Json.member "violations" j) Json.to_list in
    let* violations =
      List.fold_right
        (fun item acc -> Option.bind acc (fun acc ->
             Option.map (fun s -> s :: acc) (Json.to_str item)))
        viol_items (Some [])
    in
    let* fp_hex = Option.bind (Json.member "final_fingerprint" j) Json.to_str in
    let* final_fp = Fingerprint.of_hex fp_hex in
    let* steps = Option.bind (Json.member "steps" j) Json.to_int in
    Ok { scenario; deviations; violations; final_fp; steps }

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | contents -> Result.bind (Json.parse contents) of_json

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_verdict = {
  result : Runner.result;
  reproduced : bool;  (* violations observed again *)
  fingerprint_match : bool;  (* final state identical to the recorded one *)
}

let replay ?(sanitize = true) (sc : Scenario.t) t =
  let result = Runner.run ~sanitize sc ~deviations:t.deviations in
  {
    result;
    reproduced = result.Runner.violations <> [];
    fingerprint_match = Fingerprint.equal result.Runner.final_fp t.final_fp;
  }
