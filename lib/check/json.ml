type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec emit b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num x -> Buffer.add_string b (num_to_string x)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        emit b ~indent ~level:(level + 1) x)
      items;
    newline ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        emit b ~indent ~level:(level + 1) x)
      fields;
    newline ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = true) v =
  let b = Buffer.create 256 in
  emit b ~indent ~level:0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c "expected '%c', found '%c'" ch x
  | None -> fail c "expected '%c', found end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c "invalid literal"

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char b '"'; advance c
      | Some '\\' -> Buffer.add_char b '\\'; advance c
      | Some '/' -> Buffer.add_char b '/'; advance c
      | Some 'n' -> Buffer.add_char b '\n'; advance c
      | Some 'r' -> Buffer.add_char b '\r'; advance c
      | Some 't' -> Buffer.add_char b '\t'; advance c
      | Some 'b' -> Buffer.add_char b '\b'; advance c
      | Some 'f' -> Buffer.add_char b '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* Traces are ASCII; encode BMP code points as UTF-8 for robustness. *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
        end
      | _ -> fail c "bad escape");
      go ()
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance c
    | _ -> continue := false
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail c "bad number %S" s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c
        | Some '}' ->
          advance c;
          continue := false
        | _ -> fail c "expected ',' or '}'"
      done;
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c
        | Some ']' ->
          advance c;
          continue := false
        | _ -> fail c "expected ',' or ']'"
      done;
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr items -> Some items | _ -> None
