open Tact_sim

(* A schedule is identified by its deviations from the default (time, seq)
   dispatch order: a sorted [(step, seq)] map saying "at step [step], fire
   the pending event with sequence number [seq] instead of the earliest one".
   Steps not named fire the default choice (index 0).  Because scenarios are
   deterministic, replaying the same deviations reproduces the same execution
   bit for bit — and removing a deviation leaves every earlier step
   untouched, which is what makes greedy trace minimization sound. *)

type step = {
  ready : Engine.choice array;  (* pending events at this step, (time, seq)-sorted *)
  chosen : int;  (* index fired *)
  fp : Fingerprint.t;  (* state hash before the dispatch *)
}

type result = {
  steps : step array;
  sys : Tact_replica.System.t;
  violations : string list;
  final_fp : Fingerprint.t;
  diverged : int;  (* deviations whose seq was absent (perturbed replays) *)
}

let find_seq choices seq =
  let found = ref None in
  Array.iteri
    (fun i (c : Engine.choice) ->
      if Option.is_none !found && c.Engine.c_seq = seq then found := Some i)
    choices;
  !found

let run ?(sanitize = false) (sc : Scenario.t) ~deviations =
  let sys = sc.Scenario.build () in
  let engine = Tact_replica.System.engine sys in
  let steps = ref [] in
  let nsteps = ref 0 in
  let diverged = ref 0 in
  let strategy ~now choices =
    let fp = Fingerprint.state sys ~now choices in
    let idx =
      match List.assoc_opt !nsteps deviations with
      | None -> 0
      | Some seq -> (
        match find_seq choices seq with
        | Some i -> i
        | None ->
          (* The prefix diverged (possible only when replaying a trace whose
             deviations were edited); fall back to default order. *)
          incr diverged;
          0)
    in
    steps := { ready = choices; chosen = idx; fp } :: !steps;
    incr nsteps;
    idx
  in
  let execute () =
    Engine.set_scheduler engine (Some strategy);
    Tact_replica.System.run ~until:sc.Scenario.horizon sys;
    (* Drain to quiescence under plain default order (index 0 under a chooser
       is exactly (time, seq) order, and the chooser path handles the clock
       for events left over from the choice phase whose times are already in
       the past). *)
    Engine.set_scheduler engine (Some (fun ~now:_ _ -> 0));
    Tact_replica.System.run ~until:sc.Scenario.drain sys;
    Engine.set_scheduler engine None
  in
  if sanitize then begin
    let was = Tact_util.Sanitize.enabled () in
    Tact_util.Sanitize.set_enabled true;
    Fun.protect
      ~finally:(fun () -> if not was then Tact_util.Sanitize.clear_forced ())
      execute
  end
  else execute ();
  let violations = Oracle.run sc sys in
  let final_fp =
    Fingerprint.state sys ~now:(Tact_replica.System.now sys) [||]
  in
  {
    steps = Array.of_list (List.rev !steps);
    sys;
    violations;
    final_fp;
    diverged = !diverged;
  }
