open Tact_store

(* FNV-1a, 64-bit.  Not cryptographic — collisions merely make the explorer
   skip a branch it should have taken (dedup is a heuristic; see CHECKING.md).
   Oracles always run on real executions, so a collision can never produce a
   false violation. *)

type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let feed_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h ((i lsr (8 * shift)) land 0xff)
  done;
  !h

let feed_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical x (8 * shift)))
  done;
  !h

let feed_float h x = feed_int64 h (Int64.bits_of_float x)

let feed_string h s =
  let h = ref (feed_int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let feed_bool h b = byte h (if b then 1 else 0)

let feed_id h (id : Write.id) = feed_int (feed_int h id.Write.origin) id.Write.seq

let feed_replica h r =
  let wlog = Tact_replica.Replica.log r in
  let vec = Wlog.vector wlog in
  let h = ref h in
  for o = 0 to Version_vector.size vec - 1 do
    h := feed_int !h (Version_vector.get vec o)
  done;
  List.iter
    (fun (w : Write.t) -> h := feed_id !h w.Write.id)
    (Wlog.committed wlog);
  List.iter (fun id -> h := feed_id !h id) (Wlog.tentative_ids wlog);
  let db = Wlog.db wlog in
  List.iter
    (fun k -> h := feed_string (feed_string !h k) (Value.to_string (Db.get db k)))
    (List.sort String.compare (Db.keys db));
  h := feed_int !h (Tact_replica.Replica.pending_count r);
  h := feed_bool !h (Tact_replica.Replica.is_up r);
  !h

(* Pending events enter the hash as (relative time, actor, tag) — relative so
   that two states differing only by a clock offset can coincide, sorted so
   the hash sees a canonical multiset rather than insertion order. *)
let pending_key ~now (c : Tact_sim.Engine.choice) =
  let actor, tag =
    match c.Tact_sim.Engine.c_label with
    | Some l -> (l.Tact_sim.Engine.actor, l.Tact_sim.Engine.tag)
    | None -> (-1, "")
  in
  (c.Tact_sim.Engine.c_time -. now, actor, tag)

let compare_pending (t1, a1, s1) (t2, a2, s2) =
  match Float.compare t1 t2 with
  | 0 -> ( match Int.compare a1 a2 with 0 -> String.compare s1 s2 | c -> c)
  | c -> c

(* effects: pure — replay dedup relies on the fingerprint being a function
   of the state alone; tact_analyze (SA064) verifies the claim. *)
let state sys ~now pending =
  let h = ref fnv_offset in
  for i = 0 to Tact_replica.System.size sys - 1 do
    h := feed_replica !h (Tact_replica.System.replica sys i)
  done;
  let keys = List.sort compare_pending (List.map (pending_key ~now) (Array.to_list pending)) in
  List.iter
    (fun (dt, actor, tag) ->
      h := feed_string (feed_int (feed_float !h dt) actor) tag)
    keys;
  !h

let to_hex h = Printf.sprintf "0x%016Lx" h

let of_hex s =
  let s = if String.length s > 2 && String.sub s 0 2 = "0x" then String.sub s 2 (String.length s - 2) else s in
  Int64.of_string_opt ("0x" ^ s)

let equal = Int64.equal
