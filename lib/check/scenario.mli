(** Named model-checking scenarios: tiny TACT systems (2-3 replicas, 2
    conits, a handful of client accesses) whose schedule spaces the explorer
    can exhaust, each exercising one enforcement mechanism.

    Scenarios are built jitter- and loss-free with a fixed seed, so an
    execution is a pure function of the scheduler's choices — the property
    replayable counterexamples rest on. *)

type checks = {
  bounds : bool;  (** O1: per-access NE/OE/ST bounds vs the ECG reference *)
  lcp : bool;
      (** O1 extension: also check the definitional (LCP) order-error reading
          — sound under stability commitment only *)
  committed_prefix : bool;
      (** O2: committed orders agree (pairwise prefix) across replicas *)
  ext_compat : bool;
      (** O2: longest committed order is external-order compatible
          (stability commitment only) *)
  causal_compat : bool;  (** O2: committed order is causal-order compatible *)
  converged : bool;  (** O3: quiesced replicas hold equal images *)
  theorem1 : bool;
      (** O4: every access's NE stays within the conit's declared system-wide
          bound (Theorem 1 self-determination) — enable only for absolute-NE
          conits under the Even budget policy, where the share argument is
          sound *)
}

type t = {
  name : string;
  summary : string;
  replicas : int;
  horizon : float;  (** end of the choice-driven phase (virtual seconds) *)
  drain : float;
      (** absolute virtual time to run to under the default scheduler after
          the choice phase, so replicas quiesce before the oracles run *)
  checks : checks;
  build : unit -> Tact_replica.System.t;
      (** fresh deterministic system with the client workload scheduled *)
}

val all_checks : checks
(** Every oracle enabled (adjust with [{ all_checks with ... }]). *)

val all : t list
(** The named catalogue (6 scenarios). *)

val find : string -> t option
