open Tact_sim

type options = {
  depth : int;
  preemptions : int;
  window : float;
  prune : bool;
  dedup : bool;
  max_schedules : int;
}

let default_options =
  {
    depth = 20;
    preemptions = 3;
    window = 0.25;
    prune = true;
    dedup = true;
    max_schedules = 50_000;
  }

let smoke_options =
  {
    default_options with
    depth = 16;
    preemptions = 2;
    window = 0.2;
    max_schedules = 2_000;
  }

type stats = {
  schedules : int;
  deduped : int;
  pruned : int;
  max_steps : int;
  diverged : int;
  exhausted : bool;
}

type outcome = {
  stats : stats;
  counterexample : Counterexample.t option;
}

(* Independence heuristic for the commute-forward (sleep-set-style) pruning:
   two dispatches commute when they act on distinct replicas.  This abstracts
   from the virtual clock (a delayed dispatch observes a later [now]) and
   from shared infrastructure like traffic counters, so it can prune a
   schedule whose clock readings would have differed — a deliberate coverage
   trade documented in doc/CHECKING.md, switchable off with [prune = false].
   It can only ever skip schedules; violations are always judged on real
   executions. *)
let independent (a : Engine.choice) (b : Engine.choice) =
  match (a.Engine.c_label, b.Engine.c_label) with
  | Some la, Some lb ->
    la.Engine.actor >= 0 && lb.Engine.actor >= 0
    && la.Engine.actor <> lb.Engine.actor
  | _ -> false

(* Would deviating to [alt] at step [i] just commute forward?  If the same
   event fires anyway at some later step [j] of this run, and every event
   actually chosen in [i, j) is independent of it, then the deviation
   reorders commuting dispatches and reaches an already-covered state. *)
let commutes_forward (steps : Runner.step array) i (alt : Engine.choice) =
  let n = Array.length steps in
  let rec scan j =
    if j >= n then false
    else
      let st = steps.(j) in
      let chosen = st.Runner.ready.(st.Runner.chosen) in
      if chosen.Engine.c_seq = alt.Engine.c_seq then true
      else independent chosen alt && scan (j + 1)
  in
  scan (i + 1)

let explore ?(options = default_options) (sc : Scenario.t) =
  let visited : (Fingerprint.t * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let schedules = ref 0 in
  let deduped = ref 0 in
  let pruned = ref 0 in
  let max_steps = ref 0 in
  let diverged = ref 0 in
  let counterexample = ref None in
  (* DFS over deviation maps.  Each stack entry is (deviations, floor): the
     schedule to run, and the first step at which it may branch further —
     one past its own last deviation, so alternatives are enumerated exactly
     once across the tree. *)
  let stack = ref [ ([], 0) ] in
  let budget_left () =
    options.max_schedules <= 0 || !schedules < options.max_schedules
  in
  while !stack <> [] && Option.is_none !counterexample && budget_left () do
    match !stack with
    | [] -> ()
    | (deviations, floor) :: rest ->
      stack := rest;
      let r = Runner.run sc ~deviations in
      incr schedules;
      let nsteps = Array.length r.Runner.steps in
      if nsteps > !max_steps then max_steps := nsteps;
      diverged := !diverged + r.Runner.diverged;
      if r.Runner.violations <> [] then begin
        let minimized = Counterexample.minimize sc deviations in
        let final = Runner.run sc ~deviations:minimized in
        counterexample :=
          Some
            (Counterexample.of_result ~scenario:sc.Scenario.name
               ~deviations:minimized final)
      end
      else begin
        let can_deviate = List.length deviations < options.preemptions in
        let children = ref [] in
        if can_deviate then
          for i = floor to Stdlib.min nsteps options.depth - 1 do
            let st = r.Runner.steps.(i) in
            let ready = st.Runner.ready in
            let chosen_seq = ready.(st.Runner.chosen).Engine.c_seq in
            (* The default continuation from this state is witnessed by the
               current run; record it so other paths reaching the same state
               skip it. *)
            if options.dedup then
              Hashtbl.replace visited (st.Runner.fp, chosen_seq) ();
            let t0 = ready.(0).Engine.c_time in
            Array.iteri
              (fun j (c : Engine.choice) ->
                if j <> st.Runner.chosen
                   && c.Engine.c_time <= t0 +. options.window
                then begin
                  let key = (st.Runner.fp, c.Engine.c_seq) in
                  if options.dedup && Hashtbl.mem visited key then
                    incr deduped
                  else if options.prune && commutes_forward r.Runner.steps i c
                  then incr pruned
                  else begin
                    if options.dedup then Hashtbl.replace visited key ();
                    children :=
                      (deviations @ [ (i, c.Engine.c_seq) ], i + 1) :: !children
                  end
                end)
              ready
          done;
        (* Push in reverse so exploration visits earliest-step deviations
           first — counterexamples then surface with short prefixes. *)
        stack := List.rev_append !children !stack
      end
  done;
  {
    stats =
      {
        schedules = !schedules;
        deduped = !deduped;
        pruned = !pruned;
        max_steps = !max_steps;
        diverged = !diverged;
        exhausted = !stack = [] && Option.is_none !counterexample;
      };
    counterexample = !counterexample;
  }
