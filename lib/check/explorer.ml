open Tact_sim
open Tact_util

type options = {
  depth : int;
  preemptions : int;
  window : float;
  prune : bool;
  dedup : bool;
  max_schedules : int;
}

let default_options =
  {
    depth = 20;
    preemptions = 3;
    window = 0.25;
    prune = true;
    dedup = true;
    max_schedules = 50_000;
  }

let smoke_options =
  {
    default_options with
    depth = 16;
    preemptions = 2;
    window = 0.2;
    max_schedules = 2_000;
  }

type stats = {
  schedules : int;
  deduped : int;
  pruned : int;
  max_steps : int;
  diverged : int;
  exhausted : bool;
}

type outcome = {
  stats : stats;
  counterexample : Counterexample.t option;
}

(* ------------------------------------------------------------------ *)
(* Run summaries *)

(* Everything the search needs to know about one execution, distilled from
   [Runner.result] into plain immutable data: whether it violated, how the
   default policy scheduled it (for the commute check), and the deviation
   candidates at every branchable step.  Summaries are what the parallel
   phase memoizes and ships between domains, so they must not retain the
   run's [System.t]. *)

type cand = { cd_seq : int; cd_actor : int (* -1 when unlabelled *) }

type branch = {
  br_step : int;
  br_fp : Fingerprint.t;
  br_default_seq : int; (* event the default policy dispatched here *)
  br_cands : cand list; (* window-filtered alternatives, ready order *)
}

type summary = {
  sm_violated : bool;
  sm_nsteps : int;
  sm_diverged : int;
  sm_sched : (int * int) array; (* per step: dispatched (seq, actor) *)
  sm_branches : branch list; (* branchable steps, ascending *)
}

let choice_actor (c : Engine.choice) =
  match c.Engine.c_label with Some l -> l.Engine.actor | None -> -1

(* [floor] is the first step at which this schedule may branch further —
   one past its own last deviation, so alternatives are enumerated exactly
   once across the tree; [ndeviations] caps preemptions. *)
let summarize ~options ~floor ~ndeviations (r : Runner.result) =
  let nsteps = Array.length r.Runner.steps in
  let sched =
    Array.map
      (fun (st : Runner.step) ->
        let c = st.Runner.ready.(st.Runner.chosen) in
        (c.Engine.c_seq, choice_actor c))
      r.Runner.steps
  in
  let violated = r.Runner.violations <> [] in
  let branches = ref [] in
  if (not violated) && ndeviations < options.preemptions then
    for i = Stdlib.min nsteps options.depth - 1 downto floor do
      let st = r.Runner.steps.(i) in
      let ready = st.Runner.ready in
      let t0 = ready.(0).Engine.c_time in
      let cands = ref [] in
      for j = Array.length ready - 1 downto 0 do
        let c = ready.(j) in
        if j <> st.Runner.chosen && c.Engine.c_time <= t0 +. options.window
        then cands := { cd_seq = c.Engine.c_seq; cd_actor = choice_actor c } :: !cands
      done;
      branches :=
        {
          br_step = i;
          br_fp = st.Runner.fp;
          br_default_seq = ready.(st.Runner.chosen).Engine.c_seq;
          br_cands = !cands;
        }
        :: !branches
    done;
  {
    sm_violated = violated;
    sm_nsteps = nsteps;
    sm_diverged = r.Runner.diverged;
    sm_sched = sched;
    sm_branches = !branches;
  }

(* Would deviating to this candidate just commute forward?  If the same
   event fires anyway at some later step [j] of this run, and every event
   actually dispatched in [i, j) acts on a different replica (the
   independence heuristic: distinct labelled actors — it abstracts from the
   virtual clock and shared infrastructure like traffic counters, a
   deliberate coverage trade documented in doc/CHECKING.md, switchable off
   with [prune = false]), then the deviation reorders commuting dispatches
   and reaches an already-covered state.  It can only ever skip schedules;
   violations are always judged on real executions. *)
let commutes_forward s i (cd : cand) =
  let n = Array.length s.sm_sched in
  let rec scan j =
    if j >= n then false
    else
      let seq, actor = s.sm_sched.(j) in
      if seq = cd.cd_seq then true
      else actor >= 0 && cd.cd_actor >= 0 && actor <> cd.cd_actor && scan (j + 1)
  in
  scan (i + 1)

(* ------------------------------------------------------------------ *)
(* The search proper *)

(* DFS over deviation maps, entirely driven by [get_summary] — the one
   algorithm serves both modes.  Sequentially, [get_summary] executes the
   schedule; in parallel mode it replays the parallel phase's memo table
   (executing only on a miss), which is what makes jobs:N bit-identical to
   jobs:1: the walk below — including every dedup/prune decision and the
   visit order — never depends on how summaries are produced. *)
let dfs ~options ~get_summary =
  let visited : (Fingerprint.t * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let schedules = ref 0 in
  let deduped = ref 0 in
  let pruned = ref 0 in
  let max_steps = ref 0 in
  let diverged = ref 0 in
  let violating = ref None in
  (* Each stack entry is (deviations, floor): the schedule to run, and the
     first step at which it may branch further. *)
  let stack = ref [ ([], 0) ] in
  let budget_left () =
    options.max_schedules <= 0 || !schedules < options.max_schedules
  in
  while !stack <> [] && Option.is_none !violating && budget_left () do
    match !stack with
    | [] -> ()
    | (deviations, floor) :: rest ->
      stack := rest;
      let s = get_summary ~deviations ~floor in
      incr schedules;
      if s.sm_nsteps > !max_steps then max_steps := s.sm_nsteps;
      diverged := !diverged + s.sm_diverged;
      if s.sm_violated then violating := Some deviations
      else begin
        let children = ref [] in
        List.iter
          (fun br ->
            (* The default continuation from this state is witnessed by the
               current run; record it so other paths reaching the same
               state skip it. *)
            if options.dedup then
              Hashtbl.replace visited (br.br_fp, br.br_default_seq) ();
            List.iter
              (fun cd ->
                let key = (br.br_fp, cd.cd_seq) in
                if options.dedup && Hashtbl.mem visited key then
                  incr deduped
                else if options.prune && commutes_forward s br.br_step cd
                then incr pruned
                else begin
                  if options.dedup then Hashtbl.replace visited key ();
                  children :=
                    (deviations @ [ (br.br_step, cd.cd_seq) ], br.br_step + 1)
                    :: !children
                end)
              br.br_cands)
          s.sm_branches;
        (* Push in reverse so exploration visits earliest-step deviations
           first — counterexamples then surface with short prefixes. *)
        stack := List.rev_append !children !stack
      end
  done;
  ( {
      schedules = !schedules;
      deduped = !deduped;
      pruned = !pruned;
      max_steps = !max_steps;
      diverged = !diverged;
      exhausted = !stack = [] && Option.is_none !violating;
    },
    !violating )

(* ------------------------------------------------------------------ *)
(* Parallel phase *)

(* A node's position in the DFS tree, flattened (step, candidate-rank)
   pairs: lexicographic order on these keys — with a proper prefix ordered
   first — is exactly the order the sequential walk visits nodes, which is
   what lets workers compare "who would have been explored first" without
   any sequencing. *)
let key_lt a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la then i < lb
    else if i >= lb then false
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let key_le a b = not (key_lt b a)

(* Optimistically explore the schedule tree with [jobs] workers, memoizing
   a summary of every execution, keyed by its deviation map.

   The shared (fingerprint, event) table maps each continuation to the
   minimal node key that witnessed it, approximating the sequential dedup
   set: a candidate is skipped when some node the sequential walk processes
   no later than this one already recorded it.  Races — a mark arriving
   late, or a mark planted by a node the sequential walk would itself have
   deduped away — can make workers explore a superset or a subset of the
   sequential tree.  Both are harmless: extra summaries are never consulted
   by the replay, and missing ones fall back to a live execution.  The same
   holds for the violation cutoff (nodes ordered after the best known
   violation are not worth executing) and for the execution budget: they
   only bound wasted work, never correctness. *)
let parallel_phase ~options ~jobs sc =
  let table : ((int * int) list, summary) Sync.Map.t =
    Sync.Map.create 4096
  in
  let seen : (Fingerprint.t * int, int array) Sync.Map.t =
    Sync.Map.create 8192
  in
  let executed = Sync.Counter.make () in
  let cutoff : int array option Sync.Cell.t = Sync.Cell.make None in
  let mark k key =
    Sync.Map.update seen k (function
      | Some k0 when key_le k0 key -> Some k0
      | _ -> Some key)
  in
  Pool.with_pool ~jobs (fun pool ->
      let rec explore_node deviations floor key () =
        let beyond_cutoff =
          match Sync.Cell.get cutoff with
          | Some k -> key_lt k key
          | None -> false
        in
        let beyond_budget () =
          options.max_schedules > 0
          && Sync.Counter.get executed >= options.max_schedules
        in
        if beyond_cutoff || beyond_budget () then ()
        else begin
          ignore (Sync.Counter.incr executed);
          let r = Runner.run sc ~deviations in
          let s =
            summarize ~options ~floor ~ndeviations:(List.length deviations) r
          in
          Sync.Map.update table deviations (fun _ -> Some s);
          if s.sm_violated then
            Sync.Cell.update cutoff (function
              | Some k when key_le k key -> Some k
              | _ -> Some key)
          else
            List.iter
              (fun br ->
                if options.dedup then mark (br.br_fp, br.br_default_seq) key;
                List.iteri
                  (fun jrank cd ->
                    let dkey = (br.br_fp, cd.cd_seq) in
                    let skip =
                      (options.dedup
                      &&
                      match Sync.Map.find_opt seen dkey with
                      | Some k0 -> key_le k0 key
                      | None -> false)
                      || (options.prune && commutes_forward s br.br_step cd)
                    in
                    if not skip then begin
                      if options.dedup then mark dkey key;
                      let ckey =
                        Array.append key [| br.br_step; jrank |]
                      in
                      Pool.post pool
                        (explore_node
                           (deviations @ [ (br.br_step, cd.cd_seq) ])
                           (br.br_step + 1) ckey)
                    end)
                  br.br_cands)
              s.sm_branches
        end
      in
      Pool.post pool (explore_node [] 0 [||]);
      Pool.await_idle pool);
  table

(* ------------------------------------------------------------------ *)

let explore ?(options = default_options) ?(jobs = 1) (sc : Scenario.t) =
  let live ~deviations ~floor =
    summarize ~options ~floor ~ndeviations:(List.length deviations)
      (Runner.run sc ~deviations)
  in
  let get_summary =
    if jobs <= 1 then live
    else begin
      let table = parallel_phase ~options ~jobs sc in
      fun ~deviations ~floor ->
        match Sync.Map.find_opt table deviations with
        | Some s -> s
        | None -> live ~deviations ~floor
    end
  in
  let stats, violating = dfs ~options ~get_summary in
  let counterexample =
    match violating with
    | None -> None
    | Some deviations ->
      (* Minimization always replays sequentially, so the counterexample —
         like the verdict and the statistics — is identical at any job
         count. *)
      let minimized = Counterexample.minimize sc deviations in
      let final = Runner.run sc ~deviations:minimized in
      Some
        (Counterexample.of_result ~scenario:sc.Scenario.name
           ~deviations:minimized final)
  in
  { stats; counterexample }
