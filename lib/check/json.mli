(** Minimal JSON values, printer and parser — just enough to serialize and
    replay counterexample traces without pulling in a JSON dependency.

    Numbers are represented as floats (fine here: trace payloads are small
    integers, times and strings).  The printer emits integral floats without
    a decimal point and everything else with round-trip precision. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render; [indent] (default true) pretty-prints with two-space indents. *)

val parse : string -> (t, string) result

(** {2 Accessors} — all return [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
(** Only succeeds on integral numbers. *)

val to_str : t -> string option
val to_list : t -> t list option
