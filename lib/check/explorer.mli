(** Bounded DFS over a scenario's schedule space.

    The explorer runs the default schedule, then systematically deviates: at
    each choice-phase step it considers firing each other pending event (one
    within [window] of the earliest) instead of the default, re-executing the
    scenario from scratch with the extended deviation map — stateless model
    checking in the Verisoft tradition.  Exploration is bounded by [depth]
    (steps at which deviations may be injected), [preemptions] (deviations
    per schedule) and [max_schedules] (total executions).

    Two reduction heuristics, both switchable:

    - {b dedup}: a (state fingerprint, dispatched event) pair already
      witnessed is not explored again — the continuation is a function of
      the state under the deterministic default policy;
    - {b prune}: a deviation that only commutes forward — the same event
      fires later anyway, and everything dispatched in between acts on other
      replicas — is skipped (sleep-set/DPOR-style independence).

    Both can skip schedules a full search would run (fingerprints collide,
    independence ignores the virtual clock, dedup ignores remaining budgets),
    so they trade coverage for speed; they can never produce a false
    violation, because oracles only judge schedules that actually executed.

    On the first violating schedule the explorer minimizes the deviation map
    and returns a replayable counterexample.

    With [jobs > 1] the schedule space is explored by a domain pool in two
    phases: an optimistic parallel sweep memoizes a summary of every
    execution it performs (sharing the dedup set and violation cutoff
    behind sharded locks), then the sequential walk above replays over the
    memo table, re-executing any schedule the sweep missed.  Because the
    walk itself is the same algorithm either way, the verdict, statistics
    and minimized counterexample are bit-identical to [jobs:1]; dedup races
    only shift work between the sweep and the replay. *)

type options = {
  depth : int;  (** branch only at steps < depth *)
  preemptions : int;  (** max deviations per schedule *)
  window : float;
      (** only deviate to events within this much virtual time of the
          earliest pending event *)
  prune : bool;  (** commute-forward (sleep-set-style) pruning *)
  dedup : bool;  (** fingerprint-based state deduplication *)
  max_schedules : int;  (** execution budget; <= 0 means unlimited *)
}

val default_options : options
val smoke_options : options
(** Tighter budgets for the CI smoke alias. *)

type stats = {
  schedules : int;  (** executions run *)
  deduped : int;  (** branches skipped by fingerprint dedup *)
  pruned : int;  (** branches skipped by commute-forward pruning *)
  max_steps : int;  (** longest choice phase seen *)
  diverged : int;  (** replay divergences (should be 0 during exploration) *)
  exhausted : bool;
      (** the bounded space was fully explored (budget not exceeded, no
          violation cut the search short) *)
}

type outcome = {
  stats : stats;
  counterexample : Counterexample.t option;
      (** minimized first violation, if any *)
}

val explore : ?options:options -> ?jobs:int -> Scenario.t -> outcome
(** [jobs] defaults to 1 (fully sequential); [jobs > 1] runs the parallel
    sweep + sequential replay described above. *)
