(** Replayable counterexample traces.

    A counterexample is a scenario name plus the minimized deviation map that
    makes it fail, with the observed violations and a fingerprint of the
    final state.  Because scenarios are deterministic, this is a complete
    encoding of the failing execution: replaying the deviations reproduces
    it bit for bit, which is what the JSON round-trip and the
    [tact_check --replay] flow rely on. *)

type t = {
  scenario : string;
  deviations : (int * int) list;
  violations : string list;
  final_fp : Fingerprint.t;
  steps : int;
}

val minimize : Scenario.t -> (int * int) list -> (int * int) list
(** Greedy delta-debugging: drop every deviation whose removal keeps the
    execution violating, to a local minimum.  Returns the input unchanged if
    it does not actually violate. *)

val of_result :
  scenario:string -> deviations:(int * int) list -> Runner.result -> t

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

type replay_verdict = {
  result : Runner.result;
  reproduced : bool;  (** did the replay violate again? *)
  fingerprint_match : bool;
      (** does the replay's final state match the recorded fingerprint? *)
}

val replay : ?sanitize:bool -> Scenario.t -> t -> replay_verdict
(** Re-execute the trace deterministically; [sanitize] (default true) runs it
    under the runtime invariant sanitizer. *)
