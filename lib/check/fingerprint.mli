(** Canonical state hashing for schedule deduplication.

    A fingerprint digests everything that determines a small system's future
    under the deterministic default scheduler: per-replica log state (version
    vector, committed order, tentative suffix, full database image, parked
    accesses, liveness) plus the multiset of pending engine events keyed by
    (time relative to the clock, actor, tag).

    Fingerprints are a {e pruning heuristic}, not a soundness argument: the
    hash is FNV-1a (collisions possible) and pending-event identity is
    approximated by label + relative time.  A wrong match makes the explorer
    skip a schedule; it can never invent a violation, because oracles only
    run over schedules that actually executed. *)

type t = int64

val state :
  Tact_replica.System.t -> now:float -> Tact_sim.Engine.choice array -> t
(** Hash the system plus its pending events ([now] anchors relative times —
    pass the engine clock). *)

val to_hex : t -> string
val of_hex : string -> t option
val equal : t -> t -> bool
