open Tact_core
open Tact_store
open Tact_replica

type checks = {
  bounds : bool;
  lcp : bool;
  committed_prefix : bool;
  ext_compat : bool;
  causal_compat : bool;
  converged : bool;
  theorem1 : bool;
}

type t = {
  name : string;
  summary : string;
  replicas : int;
  horizon : float;
  drain : float;
  checks : checks;
  build : unit -> System.t;
}

let all_checks =
  {
    bounds = true;
    lcp = true;
    committed_prefix = true;
    ext_compat = true;
    causal_compat = true;
    converged = true;
    theorem1 = true;
  }

(* ------------------------------------------------------------------ *)
(* Workload helpers.  All scenarios are built jitter- and loss-free so a
   schedule is a pure function of the explorer's choices. *)

let make_system ~n ~config =
  System.create ~seed:7 ~jitter:0.0 ~loss:0.0
    ~topology:(Tact_sim.Topology.uniform ~n ~latency:0.05 ~bandwidth:1e9)
    ~config ()

let client_label rid = { Tact_sim.Engine.actor = rid; tag = "client" }

let write_at sys ~time ~rid ~conit ~nw ~ow =
  Tact_sim.Engine.at (System.engine sys) ~label:(client_label rid) ~time
    (fun () ->
      Replica.submit_write (System.replica sys rid) ~deps:[]
        ~affects:[ { Write.conit; nweight = nw; oweight = ow } ]
        ~op:(Op.Add (conit, nw)) ~k:ignore)

let read_at sys ~time ~rid ~deps =
  Tact_sim.Engine.at (System.engine sys) ~label:(client_label rid) ~time
    (fun () ->
      Replica.submit_read (System.replica sys rid) ~deps
        ~f:(fun db ->
          match deps with
          | (c, _) :: _ -> Db.get db c
          | [] -> Value.Nil)
        ~k:ignore)

(* ------------------------------------------------------------------ *)
(* Named scenarios.  Deliberately tiny (2-3 replicas, 2 conits, a handful of
   client accesses): the state space must stay exhaustible within the smoke
   budget while still covering each enforcement mechanism. *)

let ne_budget =
  {
    name = "ne-budget";
    summary =
      "2 replicas, conits x/y with absolute NE bound 4; concurrent writes \
       overflow the per-writer budget and force pushes; NE-bounded reads";
    replicas = 2;
    horizon = 0.9;
    drain = 8.0;
    checks = { all_checks with lcp = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits =
              [ Conit.declare ~ne_bound:4.0 "x"; Conit.declare ~ne_bound:4.0 "y" ];
            antientropy_period = Some 0.4;
            retry_period = 0.6;
          }
        in
        let sys = make_system ~n:2 ~config in
        write_at sys ~time:0.05 ~rid:0 ~conit:"x" ~nw:1.5 ~ow:1.0;
        write_at sys ~time:0.10 ~rid:1 ~conit:"x" ~nw:1.5 ~ow:1.0;
        write_at sys ~time:0.18 ~rid:0 ~conit:"x" ~nw:1.5 ~ow:1.0;
        write_at sys ~time:0.25 ~rid:1 ~conit:"y" ~nw:1.0 ~ow:1.0;
        read_at sys ~time:0.45 ~rid:0 ~deps:[ ("x", Bounds.make ~ne:4.0 ()) ];
        read_at sys ~time:0.55 ~rid:1
          ~deps:[ ("x", Bounds.make ~ne:4.0 ()); ("y", Bounds.make ~ne:4.0 ()) ];
        sys);
  }

let oe_stability =
  {
    name = "oe-stability";
    summary =
      "2 replicas, stability commitment; order-bounded reads must wait for \
       the tentative suffix to commit (checked in both OE readings)";
    replicas = 2;
    horizon = 0.9;
    drain = 8.0;
    checks = { all_checks with theorem1 = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits =
              [ Conit.declare ~oe_bound:2.0 "x"; Conit.declare ~oe_bound:2.0 "y" ];
            antientropy_period = Some 0.4;
            retry_period = 0.6;
          }
        in
        let sys = make_system ~n:2 ~config in
        write_at sys ~time:0.05 ~rid:0 ~conit:"x" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.12 ~rid:1 ~conit:"x" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.20 ~rid:0 ~conit:"y" ~nw:1.0 ~ow:1.0;
        read_at sys ~time:0.50 ~rid:1 ~deps:[ ("x", Bounds.make ~oe:2.0 ()) ];
        read_at sys ~time:0.60 ~rid:0
          ~deps:[ ("x", Bounds.make ~oe:2.0 ()); ("y", Bounds.make ~oe:2.0 ()) ];
        sys);
  }

let primary_commit =
  {
    name = "primary-commit";
    summary =
      "3 replicas, primary (CSN) commitment at replica 0; committed prefixes \
       must agree system-wide and respect causal order (1SR, not EXT)";
    replicas = 3;
    horizon = 0.8;
    drain = 8.0;
    checks = { all_checks with lcp = false; ext_compat = false; theorem1 = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits =
              [ Conit.declare ~oe_bound:2.0 "x"; Conit.declare ~oe_bound:2.0 "y" ];
            commit_scheme = Config.Primary 0;
            antientropy_period = Some 0.5;
            retry_period = 0.6;
          }
        in
        let sys = make_system ~n:3 ~config in
        write_at sys ~time:0.05 ~rid:1 ~conit:"x" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.10 ~rid:2 ~conit:"y" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.18 ~rid:1 ~conit:"y" ~nw:1.0 ~ow:1.0;
        read_at sys ~time:0.55 ~rid:1 ~deps:[ ("x", Bounds.make ~oe:2.0 ()) ];
        sys);
  }

let staleness =
  {
    name = "staleness";
    summary =
      "2 replicas; staleness-bounded reads force pulls from origins whose \
       cover times lag; checks the ST metric against the ECG reference";
    replicas = 2;
    horizon = 1.0;
    drain = 8.0;
    checks = { all_checks with lcp = false; theorem1 = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits =
              [ Conit.declare ~st_bound:0.8 "x"; Conit.declare ~st_bound:0.8 "y" ];
            antientropy_period = Some 0.45;
            retry_period = 0.5;
          }
        in
        let sys = make_system ~n:2 ~config in
        write_at sys ~time:0.05 ~rid:0 ~conit:"x" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.15 ~rid:1 ~conit:"y" ~nw:1.0 ~ow:1.0;
        read_at sys ~time:0.70 ~rid:1 ~deps:[ ("x", Bounds.make ~st:0.8 ()) ];
        read_at sys ~time:0.80 ~rid:0 ~deps:[ ("y", Bounds.make ~st:0.8 ()) ];
        sys);
  }

let mixed =
  {
    name = "mixed";
    summary =
      "3 replicas, one NE-bounded conit and one OE-bounded conit; a read \
       depends on both regimes at once";
    replicas = 3;
    horizon = 0.8;
    drain = 8.0;
    checks = { all_checks with lcp = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits =
              [ Conit.declare ~ne_bound:3.0 "x"; Conit.declare ~oe_bound:1.0 "y" ];
            antientropy_period = Some 0.4;
            retry_period = 0.6;
          }
        in
        let sys = make_system ~n:3 ~config in
        write_at sys ~time:0.05 ~rid:0 ~conit:"x" ~nw:1.0 ~ow:0.0;
        write_at sys ~time:0.10 ~rid:1 ~conit:"y" ~nw:0.5 ~ow:1.0;
        write_at sys ~time:0.15 ~rid:2 ~conit:"x" ~nw:1.0 ~ow:0.0;
        read_at sys ~time:0.50 ~rid:2
          ~deps:[ ("x", Bounds.make ~ne:3.0 ()); ("y", Bounds.make ~oe:1.0 ()) ];
        sys);
  }

let weak_converge =
  {
    name = "weak-converge";
    summary =
      "2 replicas, unconstrained conits: pure eventual consistency — every \
       interleaving must still converge and agree on the committed prefix";
    replicas = 2;
    horizon = 0.6;
    drain = 6.0;
    checks =
      { all_checks with bounds = false; lcp = false; theorem1 = false };
    build =
      (fun () ->
        let config =
          {
            Config.default with
            Config.conits = [ Conit.declare "x"; Conit.declare "y" ];
            antientropy_period = Some 0.25;
            retry_period = 0.5;
          }
        in
        let sys = make_system ~n:2 ~config in
        write_at sys ~time:0.05 ~rid:0 ~conit:"x" ~nw:1.0 ~ow:1.0;
        write_at sys ~time:0.08 ~rid:1 ~conit:"x" ~nw:2.0 ~ow:1.0;
        write_at sys ~time:0.12 ~rid:1 ~conit:"y" ~nw:1.0 ~ow:1.0;
        read_at sys ~time:0.30 ~rid:0 ~deps:[ ("x", Bounds.weak) ];
        sys);
  }

let all =
  [ ne_budget; oe_stability; primary_commit; staleness; mixed; weak_converge ]

let find name = List.find_opt (fun s -> String.equal s.name name) all
