(** Consistency-guarantee oracles, run over a completed (quiesced) execution.

    Four families, toggled per scenario (see {!Scenario.checks}):

    - {b O1 bounds}: every served access respected its requested NE/OE/ST
      bounds, recomputed omnisciently against the ECG reference history
      ({!Tact_replica.Verify}).
    - {b O2 committed order}: replicas pairwise agree on the committed prefix
      (1SR), and the longest committed order is external- and/or causal-order
      compatible ({!Tact_core.Ecg}).
    - {b O3 convergence}: after quiescence all replicas hold equal version
      vectors and equal full database images.
    - {b O4 Theorem 1}: the numerical error any access actually experienced
      stays within the conit's {e declared} system-wide bound — the
      self-determined guarantee of the push protocol — regardless of what the
      access asked for.

    Each violated property yields one human-readable line; the empty list
    means the execution passed.

    The individual checks are exposed so other harnesses (the nemesis
    fault-campaign runner, {!Tact_nemesis.Oracle}) can reuse them outside a
    {!Scenario.t}. *)

val run : Scenario.t -> Tact_replica.System.t -> string list

val check_bounds : lcp:bool -> Tact_replica.System.t -> string list
(** O1: every served access within its requested bounds, vs the ECG. *)

val check_committed :
  prefix:bool -> ext:bool -> causal:bool -> Tact_replica.System.t -> string list
(** O2: pairwise committed-prefix agreement (1SR) and external/causal
    compatibility of the longest committed order. *)

val check_converged : Tact_replica.System.t -> string list
(** O3: equal version vectors and database images after quiescence. *)

val check_converged_sharded : Tact_replica.Sharded.t -> string list
(** O3 for sharded systems, interest-set-aware: within every shard all
    {e subscribed} replicas agree (vectors and databases) — replicas outside
    the interest set are exempt — and no shard's log holds a write whose
    conits route elsewhere ({!Tact_replica.Sharded.shard_leaks}).  The
    second half is what catches the {!Tact_replica.Config.fault_wrong_shard}
    planted routing bug. *)

val check_theorem1 : Tact_replica.System.t -> string list
(** O4: experienced NE within each conit's declared system-wide bound. *)
