(** Execute one schedule of a scenario and judge it with the oracles.

    A schedule is a {e deviation map} [(step, seq) list]: at step [step] of
    the choice phase, fire the pending event with engine sequence number
    [seq]; every unnamed step fires the default — earliest (time, seq) —
    choice.  The empty list is the exact execution [dune runtest] sees.

    The run has two phases: a choice-driven phase up to the scenario horizon
    (each dispatch recorded as a {!step}), then a drain to the scenario's
    [drain] time under default order so replicas quiesce before the oracles
    inspect them. *)

type step = {
  ready : Tact_sim.Engine.choice array;
      (** pending events at this step, sorted by (time, seq); index 0 is the
          default choice *)
  chosen : int;  (** index fired *)
  fp : Fingerprint.t;  (** state fingerprint immediately before the dispatch *)
}

type result = {
  steps : step array;  (** the choice-phase dispatches, in order *)
  sys : Tact_replica.System.t;  (** the quiesced system, for inspection *)
  violations : string list;  (** oracle verdict; empty = passed *)
  final_fp : Fingerprint.t;  (** fingerprint of the quiesced state *)
  diverged : int;
      (** deviations naming a sequence number that was not pending — nonzero
          only when replaying edited traces *)
}

val run : ?sanitize:bool -> Scenario.t -> deviations:(int * int) list -> result
(** Build the scenario fresh and execute it under the given deviations.
    [sanitize] (default false) turns on {!Tact_util.Sanitize} runtime
    invariant auditing for the duration of the run. *)
