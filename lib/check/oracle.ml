open Tact_store
open Tact_replica

let eps = 1e-9

let describe_access (a : Tact_core.Access.t) =
  let kind =
    match a.Tact_core.Access.kind with
    | Tact_core.Access.Read -> "read"
    | Tact_core.Access.Write_access id -> "write " ^ Write.id_to_string id
  in
  Printf.sprintf "%s at replica %d (submit %g, serve %g)" kind
    a.Tact_core.Access.replica a.Tact_core.Access.submit_time
    a.Tact_core.Access.serve_time

(* O1: every served access within its requested per-conit bounds, recomputed
   omnisciently against the ECG reference history. *)
let check_bounds ~lcp sys =
  List.map
    (fun (v : Verify.violation) ->
      Printf.sprintf "bounds: %s violated %s <= %g on conit %s (ne=%g oe=%g st=%g)"
        (describe_access v.Verify.access) v.Verify.dimension v.Verify.bound
        v.Verify.metrics.Verify.conit v.Verify.metrics.Verify.ne
        v.Verify.metrics.Verify.oe_tentative v.Verify.metrics.Verify.st)
    (Verify.check ~lcp ~eps sys)

(* O2: all replicas agree on the committed prefix (1SR), and the longest
   committed order is compatible with external and/or causal order. *)
let check_committed ~prefix ~ext ~causal sys =
  let n = System.size sys in
  let committed i = Wlog.committed (Replica.log (System.replica sys i)) in
  let issues = ref [] in
  if prefix then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let ci = committed i and cj = committed j in
        let s, l, si, li =
          if List.length ci <= List.length cj then (ci, cj, i, j) else (cj, ci, j, i)
        in
        if not (Tact_core.Ecg.is_prefix s l) then
          issues :=
            Printf.sprintf
              "committed-prefix: replica %d's committed order (%d writes) is \
               not a prefix of replica %d's (%d writes)"
              si (List.length s) li (List.length l)
            :: !issues
      done
    done;
  let longest =
    let best = ref [] in
    for i = 0 to n - 1 do
      let c = committed i in
      if List.length c > List.length !best then best := c
    done;
    !best
  in
  if ext && not (Tact_core.Ecg.externally_compatible ~order:longest
                   ~return_time:(System.return_time sys))
  then
    issues := "committed-order: not compatible with external order" :: !issues;
  if causal
     && not (Tact_core.Ecg.causally_compatible ~order:longest
               ~accept_vector:(System.accept_vector sys))
  then
    issues := "committed-order: not compatible with causal order" :: !issues;
  List.rev !issues

(* O3: after quiescence every replica holds the same version vector and the
   same full database image. *)
let check_converged sys =
  let n = System.size sys in
  let vec i = Wlog.vector (Replica.log (System.replica sys i)) in
  let issues = ref [] in
  for i = 1 to n - 1 do
    if not (Version_vector.equal (vec 0) (vec i)) then
      issues :=
        Printf.sprintf "convergence: replica %d vector %s <> replica 0 vector %s"
          i (Version_vector.to_string (vec i)) (Version_vector.to_string (vec 0))
        :: !issues
  done;
  if not (System.converged sys) then
    issues := "convergence: database images differ across replicas" :: !issues;
  List.rev !issues

(* O3, interest-set-aware: convergence is per shard, among that shard's
   subscribers only — a replica outside a shard's interest set holds nothing
   of it and is exempt.  The containment half makes the relaxation sound:
   every write resident in a shard's logs must affect only conits routing to
   that shard, so a cross-shard leak (the planted [fault_wrong_shard] bug)
   cannot hide behind per-shard agreement. *)
let check_converged_sharded sh =
  let issues = ref [] in
  Sharded.iter_subs sh (fun s sys ->
      List.iter
        (fun line -> issues := Printf.sprintf "shard %d: %s" s line :: !issues)
        (List.rev (check_converged sys)));
  List.iter
    (fun (s, r, id, conit) ->
      issues :=
        Printf.sprintf
          "shard-leak: write %s at replica %d affects conit %s of shard %d \
           but sits in shard %d's log"
          (Write.id_to_string id) r conit
          (Tact_store.Shard.route (Sharded.router sh) conit)
          s
        :: !issues)
    (Sharded.shard_leaks sh);
  List.rev !issues

(* O4 (Theorem 1): independent of what any access requested, the NE actually
   experienced never exceeds the conit's declared system-wide bound — the
   bound the push protocol self-determines via per-writer budget shares.
   Sound for absolute-NE conits under the Even policy (each writer's
   outstanding unacked weight fits every peer's share, and shares sum to at
   most the bound); relative-NE shares are estimated locally, so scenarios
   keep [theorem1] off when they use them. *)
let check_theorem1 sys =
  let cfg = System.config sys in
  List.concat_map
    (fun (a : Tact_core.Access.t) ->
      List.filter_map
        (fun (m : Verify.computed) ->
          let declared = Config.conit cfg m.Verify.conit in
          let bound = declared.Tact_core.Conit.ne_bound in
          if bound < infinity && m.Verify.ne > bound +. eps then
            Some
              (Printf.sprintf
                 "theorem1: %s saw ne=%g on conit %s, above the declared \
                  system-wide bound %g"
                 (describe_access a) m.Verify.ne m.Verify.conit bound)
          else None)
        (Verify.access_metrics sys a))
    (System.records sys)

let run (sc : Scenario.t) sys =
  let c = sc.Scenario.checks in
  let bounds =
    if c.Scenario.bounds then check_bounds ~lcp:c.Scenario.lcp sys else []
  in
  let committed =
    if c.Scenario.committed_prefix || c.Scenario.ext_compat
       || c.Scenario.causal_compat
    then
      check_committed ~prefix:c.Scenario.committed_prefix
        ~ext:c.Scenario.ext_compat ~causal:c.Scenario.causal_compat sys
    else []
  in
  let converged = if c.Scenario.converged then check_converged sys else [] in
  let theorem1 = if c.Scenario.theorem1 then check_theorem1 sys else [] in
  bounds @ committed @ converged @ theorem1
