(** The per-peer connection supervisor: a pure state machine.

    {!Tcp} owns the sockets and clocks; this module owns the policy —
    connect deadlines, bounded retries with exponential backoff and
    decorrelated jitter, half-open detection, and the
    reconnect-implies-resync rule.  Purity is the point: the whole failure
    policy is table-testable with a seeded {!Tact_util.Prng} and hand-picked
    clocks (test/test_supervisor.ml), no sockets in sight. *)

type state =
  | Down of { attempt : int; prev_delay : float; until : float }
      (** waiting out a backoff delay; dial when [now >= until] *)
  | Dialing of { attempt : int; deadline : float; prev_delay : float }
  | Up of { last_rx : float; probed : bool }
      (** [probed]: a half-open probe is outstanding *)
  | Parked of { probe_at : float }
      (** retry budget exhausted — degrade gracefully, probe once per
          backoff cap.  The replica keeps serving within declared bounds;
          outgoing traffic to this peer is parked, not dropped. *)

type event =
  | Tick  (** time advanced (the caller's supervision timer) *)
  | Dial_ok
  | Dial_failed
  | Rx  (** bytes arrived from the peer *)
  | Io_failed  (** read/write error or deadline on the live connection *)

type action =
  | Dial
  | Hang_up
  | Send_probe  (** half-open check: an empty keepalive frame *)
  | Resync
      (** connection established — trigger a protocol resync pull; the
          peer's {!Tact_store.Batch.plan} picks delta vs snapshot *)

type knobs = {
  connect_timeout : float;
  backoff_base : float;
  backoff_cap : float;
  retry_limit : int;  (** 0 = unbounded *)
  half_open_after : float;
  io_timeout : float;
}

val knobs_of_config : Tact_replica.Config.transport_knobs -> knobs

val initial : state
(** [Down] with no delay: the first [Tick] dials immediately. *)

val backoff_delay : knobs -> Tact_util.Prng.t -> prev_delay:float -> float
(** The decorrelated-jitter schedule:
    [min cap (uniform base (3 * prev_delay))], or the base itself when
    [prev_delay <= 0] (first retry).  Exposed for the table tests. *)

val step : knobs -> Tact_util.Prng.t -> state -> event -> now:float -> state * action list
(** One transition.  Total: stale events (a late failure for a connection
    already abandoned, a dial result while parked) are absorbed without
    action. *)

val is_up : state -> bool
val is_parked : state -> bool
val to_string : state -> string
