(** The hardened TCP/Unix-socket backend — the production instance of the
    {!Tact_store.Transport} seam (doc/TRANSPORT.md).

    Topology: every replica dials every peer and accepts from every peer;
    the connection this node dials to X carries its frames to X (and X's
    probe acks back), while X's frames arrive on the connection X dialed
    here.  Each dialed connection is supervised by the pure per-peer
    {!Supervisor} state machine: connect/read/write deadlines, bounded
    retries with exponential backoff and decorrelated jitter, half-open
    probing, and a resync trigger ({!set_on_peer_up}) on every transition
    into Up.

    Graceful degradation: frames for a down or parked peer are parked in a
    bounded per-peer buffer (oldest dropped beyond the cap, counted in
    {!stats}); the replica keeps serving within its declared bounds and the
    reconnect resync heals whatever parking lost.

    Byte-level hardening: 4-byte length-prefix framing with the configured
    [max_frame] bound checked {e before} allocation; a peer sending an
    oversized or corrupt prefix poisons only its own connection.  A hello
    exchange authenticates the peer id carried by every delivery. *)

type t

type stats = {
  mutable sent_frames : int;
  mutable sent_bytes : int;
  mutable recv_frames : int;
  mutable recv_bytes : int;
  mutable parked_frames : int;  (** currently parked for down peers *)
  mutable parked_drops : int;  (** frames dropped off the park cap *)
  mutable probes : int;  (** half-open probes sent *)
  mutable reconnects : int;  (** transitions into Up after the first *)
  mutable poisoned : int;  (** connections closed on protocol violations *)
}

val create :
  ?park_cap_bytes:int ->
  loop:Loop.t ->
  self:int ->
  addrs:Unix.sockaddr array ->
  knobs:Tact_replica.Config.transport_knobs ->
  rng:Tact_util.Prng.t ->
  unit ->
  t
(** [addrs.(j)] is peer [j]'s listen address; [addrs.(self)] is ours.
    [park_cap_bytes] (default 64 MiB) bounds each peer's parked backlog.
    Nothing touches the network until {!listen}.  If the process has no
    [SIGPIPE] handler installed, the signal is set to ignore so writes into
    reset sockets surface as [EPIPE] io errors instead of killing the
    process (a handler the host installed is left alone). *)

val listen : t -> addr:Unix.sockaddr -> unit
(** Bind + listen on [addr] and arm the supervision heartbeat that drives
    dialling, backoff, connect deadlines and half-open probing.  Idempotent. *)

val self : t -> int
val size : t -> int

val send : t -> dst:int -> string -> (unit, Tact_store.Transport.error) result
(** Queue one wire payload for [dst]: framed and written when the peer's
    connection is up, parked otherwise.  [Ok] means accepted-or-parked.
    Errors: [Closed] after {!close}, [Unreachable] for a bad [dst],
    [Too_large] beyond the configured frame bound. *)

val set_handler : t -> (src:int -> string -> unit) -> unit
(** Delivery callback: one call per decoded incoming frame, with the
    hello-authenticated sender id. *)

val set_trace : t -> (string -> unit) -> unit
(** Stream one-line connection events (supervisor transitions, frames sent,
    parked and received, hellos, probes, drops) to a sink — the daemon's
    [--trace] wires this to stderr.  Lines are built lazily; an unset trace
    costs one branch per event. *)

val set_on_peer_up : t -> (int -> unit) -> unit
(** Fires (with the peer id) on every transition of a dialed connection
    into Up — the reconnect-resync hook; wire it to
    {!Tact_replica.Replica.resync}. *)

val peer_state : t -> int -> Supervisor.state
val peer_up : t -> int -> bool
val peer_parked : t -> int -> bool

val stats : t -> stats

val close : t -> unit
(** Idempotent: close the listener, every accepted connection and every
    dialed connection; subsequent {!send}s return [Error (Closed _)]. *)
