(** Fault injection at the real-network seam: a transport decorator that
    interprets the nemesis disturbance vocabulary ({!Tact_nemesis.Fault})
    against live sockets instead of the simulator.

    The decorator wraps two injected closures — the underlying send and a
    timer — and owns the same knobs {!Tact_sim.Net} exposes: directed
    partitions, global and per-link loss, duplication, and a delay factor.
    It deliberately does {e not} depend on [lib/nemesis] (the daemon maps
    {!Tact_nemesis.Fault.action} values onto these setters), and it drops
    {e outgoing} traffic only, exactly like [Net.send] dropping on the
    directed link at send time: a symmetric cut installed on every process
    of a live system silences both directions.

    Determinism mirrors [Net] too: each installed stochastic knob carries
    its own seeded {!Tact_util.Prng} and advances exactly once per message,
    so a replayed schedule reproduces the same drop/duplicate pattern
    regardless of which other knobs are active. *)

type stats = {
  mutable f_sent : int;  (** messages passed through to the real send *)
  mutable f_dropped_cut : int;
  mutable f_dropped_loss : int;
  mutable f_duplicated : int;
  mutable f_delayed : int;  (** messages deferred by the delay knob *)
}

type t

val create :
  self:int ->
  n:int ->
  ?nominal_delay:float ->
  schedule:(delay:float -> (unit -> unit) -> unit) ->
  send:(dst:int -> string -> (unit, Tact_store.Transport.error) result) ->
  unit ->
  t
(** [schedule] defers a thunk (wire it to {!Loop.schedule}); [send] is the
    real backend (wire it to {!Tcp.send}).  [nominal_delay] (default 0) is
    the baseline one-way delay the delay factor scales: each message waits
    [nominal_delay * delay_factor] before hitting the real send, so a spike
    factor stretches live traffic the same way it stretches simulated
    traffic.  With the default 0 baseline only the factor's excess over 1
    matters when a nominal delay is later configured; factor 1 with
    baseline 0 keeps the decorator synchronous and bit-transparent. *)

val send : t -> dst:int -> string -> (unit, Tact_store.Transport.error) result
(** Apply the disturbances, then forward.  A dropped message still returns
    [Ok ()] — faults are silent, exactly as on a real network. *)

(** {2 The knobs — mirror of {!Tact_sim.Net}} *)

val partition : t -> int list -> int list -> unit
val partition_oneway : t -> int list -> int list -> unit
val heal_between : t -> int list -> int list -> unit
val heal : t -> unit
val partitioned : t -> dst:int -> bool
(** Is our directed link [self -> dst] currently cut? *)

val set_loss : t -> (Tact_util.Prng.t * float) option -> unit
val set_link_loss : t -> dst:int -> (Tact_util.Prng.t * float) option -> unit
val set_duplication : t -> (Tact_util.Prng.t * float) option -> unit
val set_delay_factor : t -> float -> unit

val clear_all : t -> unit
(** Lift every disturbance: heal, disable loss/duplication, factor 1. *)

val stats : t -> stats
