(* The per-peer connection supervisor: a pure state machine.

   Everything timing- and socket-shaped is pushed to the caller ({!Tcp}):
   the machine consumes events ("the dial succeeded", "bytes arrived",
   "time advanced") and emits actions ("dial now", "hang up", "probe the
   connection", "resync") plus its next state.  Purity is the point — the
   whole failure-handling policy is table-testable with a seeded PRNG and
   hand-picked clocks, no sockets in sight.

   Policy implemented here:
   - connect deadlines and bounded retries: a dial that fails (or times
     out) moves to [Backoff]; after [retry_limit] consecutive failures the
     supervisor parks the peer and probes once per backoff cap instead of
     hammering it.
   - exponential backoff with decorrelated jitter:
       delay = min cap (uniform base (3 * previous))
     so synchronized reconnect storms decorrelate after one round.
   - half-open detection: a connection silent past [half_open_after] gets a
     probe; silence through another [io_timeout] is treated as dead.
   - reconnect-with-resync: every transition into [Up] emits [Resync] — the
     replica answers with a pull, and the peer's {!Tact_store.Batch.plan}
     picks delta vs snapshot, so missed traffic heals regardless of how
     long the link was down. *)

open Tact_util

type state =
  | Down of { attempt : int; prev_delay : float; until : float }
      (** waiting out a backoff delay; dial when [now >= until] *)
  | Dialing of { attempt : int; deadline : float; prev_delay : float }
  | Up of { last_rx : float; probed : bool }
  | Parked of { probe_at : float }
      (** retry budget exhausted: degrade gracefully, probe once per cap *)

type event =
  | Tick  (** time advanced (the caller's supervision timer) *)
  | Dial_ok
  | Dial_failed
  | Rx  (** bytes arrived from the peer *)
  | Io_failed  (** read/write error or deadline on the live connection *)

type action =
  | Dial  (** start a connect attempt *)
  | Hang_up  (** close the current socket *)
  | Send_probe  (** half-open check: an empty keepalive frame *)
  | Resync  (** connection established: trigger a protocol resync pull *)

type knobs = {
  connect_timeout : float;
  backoff_base : float;
  backoff_cap : float;
  retry_limit : int;  (** 0 = unbounded *)
  half_open_after : float;
  io_timeout : float;
}

let knobs_of_config (k : Tact_replica.Config.transport_knobs) =
  {
    connect_timeout = k.connect_timeout;
    backoff_base = k.backoff_base;
    backoff_cap = k.backoff_cap;
    retry_limit = k.retry_limit;
    half_open_after = k.half_open_after;
    io_timeout = k.io_timeout;
  }

let initial = Down { attempt = 0; prev_delay = 0.0; until = 0.0 }

(* Decorrelated jitter (the AWS "decorrelated" variant): each delay is
   uniform between the base and three times the previous delay, capped.
   First retry uses the base itself. *)
let backoff_delay k rng ~prev_delay =
  if prev_delay <= 0.0 then k.backoff_base
  else
    Float.min k.backoff_cap
      (Prng.uniform_in rng ~lo:k.backoff_base
         ~hi:(Float.max k.backoff_base (3.0 *. prev_delay)))

let exhausted k attempt = k.retry_limit > 0 && attempt >= k.retry_limit

let step k rng state event ~now =
  match (state, event) with
  (* ---- dialling ------------------------------------------------- *)
  | Down { until; attempt; prev_delay }, Tick when now >= until ->
    ( Dialing { attempt = attempt + 1; deadline = now +. k.connect_timeout; prev_delay },
      [ Dial ] )
  | Down _, Tick -> (state, [])
  | Dialing { attempt; deadline; prev_delay }, Tick when now >= deadline ->
    (* Connect deadline expired: treat like a failure. *)
    if exhausted k attempt then
      (Parked { probe_at = now +. k.backoff_cap }, [ Hang_up ])
    else
      let d = backoff_delay k rng ~prev_delay in
      (Down { attempt; prev_delay = d; until = now +. d }, [ Hang_up ])
  | Dialing _, Tick -> (state, [])
  | Dialing { attempt; prev_delay; _ }, Dial_failed ->
    if exhausted k attempt then (Parked { probe_at = now +. k.backoff_cap }, [])
    else
      let d = backoff_delay k rng ~prev_delay in
      (Down { attempt; prev_delay = d; until = now +. d }, [])
  | Dialing _, Dial_ok -> (Up { last_rx = now; probed = false }, [ Resync ])
  (* ---- live connection ------------------------------------------ *)
  | Up _, Rx -> (Up { last_rx = now; probed = false }, [])
  | Up { last_rx; probed }, Tick ->
    if (not probed) && now -. last_rx > k.half_open_after then
      (* Suspect half-open: probe, and give the peer one io window. *)
      (Up { last_rx; probed = true }, [ Send_probe ])
    else if probed && now -. last_rx > k.half_open_after +. k.io_timeout then
      (* Probed and still silent: the connection is dead weight. *)
      let d = backoff_delay k rng ~prev_delay:0.0 in
      (Down { attempt = 0; prev_delay = d; until = now +. d }, [ Hang_up ])
    else (state, [])
  | Up _, Io_failed ->
    let d = backoff_delay k rng ~prev_delay:0.0 in
    (Down { attempt = 0; prev_delay = d; until = now +. d }, [ Hang_up ])
  (* ---- parked (retry budget exhausted) --------------------------- *)
  | Parked { probe_at }, Tick when now >= probe_at ->
    ( Dialing { attempt = 1; deadline = now +. k.connect_timeout; prev_delay = 0.0 },
      [ Dial ] )
  | Parked _, Tick -> (state, [])
  (* ---- benign races --------------------------------------------- *)
  (* A late failure/rx from a connection we already gave up on, a dial
     result while parked, etc.: absorb without action — the socket they
     speak of is already closed or superseded. *)
  | Down { attempt; prev_delay; _ }, (Dial_failed | Io_failed) ->
    if exhausted k attempt then (Parked { probe_at = now +. k.backoff_cap }, [])
    else
      let d = backoff_delay k rng ~prev_delay in
      (Down { attempt; prev_delay = d; until = now +. d }, [])
  | (Down _ | Parked _), Dial_ok -> (Up { last_rx = now; probed = false }, [ Resync ])
  (* Traffic from a peer we are not connected to proves the host is alive,
     not that we have a socket to it (the peer's inbound connection is not
     our outbound one).  Never fabricate [Up] — an Up state with no dialed
     socket parks every frame with nothing left to flip it back.  While
     backing off, just wait out the delay; while parked, the evidence is
     exactly what the park is waiting for, so redial immediately. *)
  | Down _, Rx -> (state, [])
  | Parked _, Rx ->
    ( Dialing { attempt = 1; deadline = now +. k.connect_timeout; prev_delay = 0.0 },
      [ Dial ] )
  | Parked _, (Dial_failed | Io_failed) -> (state, [])
  | Dialing _, (Rx | Io_failed) -> (state, [])
  | Up _, (Dial_ok | Dial_failed) -> (state, [])

let is_up = function Up _ -> true | Down _ | Dialing _ | Parked _ -> false
let is_parked = function Parked _ -> true | Up _ | Down _ | Dialing _ -> false

let to_string = function
  | Down { attempt; until; _ } ->
    Printf.sprintf "down(attempt %d, dial at %.3f)" attempt until
  | Dialing { attempt; deadline; _ } ->
    Printf.sprintf "dialing(attempt %d, deadline %.3f)" attempt deadline
  | Up { last_rx; probed } ->
    Printf.sprintf "up(last rx %.3f%s)" last_rx (if probed then ", probed" else "")
  | Parked { probe_at } -> Printf.sprintf "parked(probe at %.3f)" probe_at
