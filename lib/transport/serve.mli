(** One live replica process: the glue {!bin/tact_serve} runs.

    Wires a {!Loop}, a {!Tcp} backend and a {!Faulty} fault-injection
    decorator into a {!Tact_store.Transport.endpoint}, mounts a replica on
    it ({!Tact_replica.Replica.create_ext}), serves the {!Client} protocol
    on a second listening socket, and owns the lifecycle: start, run,
    graceful SIGTERM-style drain, idempotent close.

    Every outgoing peer frame passes through the {!Faulty} decorator (a
    transparent no-op until a fault schedule programs it), so nemesis
    disturbances exercise the {e real} transport: parked frames, supervisor
    backoff, reconnect resync. *)

type t

val create :
  ?request_timeout:float ->
  ?nominal_delay:float ->
  id:int ->
  n:int ->
  peer_addrs:Unix.sockaddr array ->
  client_addr:Unix.sockaddr ->
  config:Tact_replica.Config.t ->
  seed:int ->
  unit ->
  t
(** Pure construction — no sockets until {!start}.  [request_timeout]
    (default 30 s) bounds how long a client access may stay parked on unmet
    bounds before an [Err "deadline"] response; [nominal_delay] seeds the
    {!Faulty} decorator's baseline one-way delay (default 0: synchronous).
    [seed] derives the supervisor-jitter stream; fault knobs installed
    later carry their own seeds. *)

val loop : t -> Loop.t
val replica : t -> Tact_replica.Replica.t
val tcp : t -> Tcp.t
val faulty : t -> Faulty.t
val id : t -> int

val peers_up : t -> int
(** Peer connections currently established (out of [n - 1]). *)

val start : t -> unit
(** Bind the peer and client listeners, start the replica's background
    activity.  Call once. *)

val run : t -> unit
(** Drive the event loop until {!request_stop} completes (or {!close}). *)

val request_stop : t -> unit
(** Graceful drain: stop accepting clients, let parked accesses and pending
    responses finish, then tear everything down — by
    [config.transport.drain_timeout] at the latest.  The SIGTERM handler's
    target (via {!Loop.defer}).  Idempotent. *)

val draining : t -> bool
val stopped : t -> bool

val close : t -> unit
(** Immediate idempotent teardown: replica transport, peer sockets, client
    sockets, loop.  {!run} returns.  Safe after (or instead of) a drain. *)
