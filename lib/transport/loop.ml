(* A real-time event loop: the wall-clock twin of the simulator's
   {!Tact_sim.Engine}.  One timer queue plus [Unix.select] over registered
   file descriptors — single-threaded by construction, so handlers never
   race (the same execution model the deterministic engine gives the
   protocol code).

   Time is reported relative to loop creation, so protocol timestamps look
   like the simulator's (small floats starting near 0) and never encode the
   host's epoch. *)

type timer = {
  t_due : float;
  t_seq : int;  (* tie-break: FIFO among equal deadlines *)
  t_tag : string;
  t_fn : unit -> unit;
}

type fd_watch = {
  mutable want_read : bool;
  mutable want_write : bool;
  mutable on_read : unit -> unit;
  mutable on_write : unit -> unit;
}

type t = {
  epoch : float;  (* Unix.gettimeofday at creation *)
  mutable timers : timer list;  (* sorted by (due, seq) *)
  mutable seq : int;
  watches : (Unix.file_descr, fd_watch) Hashtbl.t;
  mutable stopping : bool;
  mutable wakeups : (unit -> unit) list;
      (* callbacks to run at the top of the next iteration (signal-safe
         hand-off point: a signal handler only flips flags / pushes here) *)
}

let create () =
  {
    epoch = Unix.gettimeofday ();
    timers = [];
    seq = 0;
    watches = Hashtbl.create 16;
    stopping = false;
    wakeups = [];
  }

let now t = Unix.gettimeofday () -. t.epoch

let insert_timer t tm =
  let rec ins = function
    | [] -> [ tm ]
    | hd :: tl ->
      if
        hd.t_due < tm.t_due
        || (Float.equal hd.t_due tm.t_due && hd.t_seq < tm.t_seq)
      then hd :: ins tl
      else tm :: hd :: tl
  in
  t.timers <- ins t.timers

let schedule t ~tag ~delay f =
  t.seq <- t.seq + 1;
  insert_timer t
    { t_due = now t +. Float.max 0.0 delay; t_seq = t.seq; t_tag = tag; t_fn = f }

let rec every t ~tag ~period f =
  schedule t ~tag ~delay:period (fun () ->
      if (not t.stopping) && f () then every t ~tag ~period f)

let watch t fd =
  match Hashtbl.find_opt t.watches fd with
  | Some w -> w
  | None ->
    let w =
      {
        want_read = false;
        want_write = false;
        on_read = ignore;
        on_write = ignore;
      }
    in
    Hashtbl.replace t.watches fd w;
    w

let on_readable t fd f =
  let w = watch t fd in
  w.want_read <- true;
  w.on_read <- f

let on_writable t fd f =
  let w = watch t fd in
  w.want_write <- true;
  w.on_write <- f

let clear_writable t fd =
  match Hashtbl.find_opt t.watches fd with
  | Some w -> w.want_write <- false
  | None -> ()

let forget t fd = Hashtbl.remove t.watches fd

let defer t f = t.wakeups <- f :: t.wakeups

let stop t = t.stopping <- true
let stopping t = t.stopping

(* One iteration: run due wakeups and timers, then select on the watched
   fds until the next timer (capped so stop requests are noticed promptly).
   Handler exceptions propagate — the caller owns crash policy. *)
let run_once ?(max_wait = 0.25) t =
  let deferred = List.rev t.wakeups in
  t.wakeups <- [];
  List.iter (fun f -> f ()) deferred;
  let rec fire () =
    match t.timers with
    | tm :: rest when tm.t_due <= now t ->
      t.timers <- rest;
      tm.t_fn ();
      fire ()
    | _ -> ()
  in
  fire ();
  let timeout =
    match t.timers with
    | [] -> max_wait
    | tm :: _ -> Float.min max_wait (Float.max 0.0 (tm.t_due -. now t))
  in
  let reads = ref [] and writes = ref [] in
  (* Order-insensitive walk: select treats its fd lists as sets. *)
  Hashtbl.iter (* lint: allow hashtbl-iter -- set collection for select *)
    (fun fd w ->
      if w.want_read then reads := fd :: !reads;
      if w.want_write then writes := fd :: !writes)
    t.watches;
  if !reads = [] && !writes = [] && t.timers = [] && t.wakeups = [] then false
  else begin
    let r, w, _ =
      try Unix.select !reads !writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.watches fd with
        | Some watch when watch.want_read -> watch.on_read ()
        | Some _ | None -> ())
      r;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.watches fd with
        | Some watch when watch.want_write -> watch.on_write ()
        | Some _ | None -> ())
      w;
    true
  end

let run ?until t =
  let live = ref true in
  let continue () =
    (not t.stopping)
    && (match until with Some u -> now t < u | None -> true)
  in
  while !live && continue () do
    live := run_once t
  done
