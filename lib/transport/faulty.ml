type stats = {
  mutable f_sent : int;
  mutable f_dropped_cut : int;
  mutable f_dropped_loss : int;
  mutable f_duplicated : int;
  mutable f_delayed : int;
}

type t = {
  self : int;
  n : int;
  nominal_delay : float;
  schedule : delay:float -> (unit -> unit) -> unit;
  real_send : dst:int -> string -> (unit, Tact_store.Transport.error) result;
  (* Directed cuts involving any pair; only (self, dst) is consulted on the
     send path, but the full relation is stored so a schedule written for the
     whole system can be installed verbatim on every process. *)
  cuts : (int * int, unit) Hashtbl.t;
  mutable loss : (Tact_util.Prng.t * float) option;
  link_loss : (int * int, Tact_util.Prng.t * float) Hashtbl.t;
  mutable duplication : (Tact_util.Prng.t * float) option;
  mutable delay_factor : float;
  stats : stats;
}

let create ~self ~n ?(nominal_delay = 0.0) ~schedule ~send () =
  {
    self;
    n;
    nominal_delay;
    schedule;
    real_send = send;
    cuts = Hashtbl.create 16;
    loss = None;
    link_loss = Hashtbl.create 16;
    duplication = None;
    delay_factor = 1.0;
    stats =
      { f_sent = 0; f_dropped_cut = 0; f_dropped_loss = 0; f_duplicated = 0; f_delayed = 0 };
  }

let stats t = t.stats

(* ---- partitions (same directed-pair relation as Net) ---- *)

let cut_pairs ga gb f =
  List.iter (fun a -> List.iter (fun b -> if a <> b then f a b) gb) ga

let partition_oneway t ga gb = cut_pairs ga gb (fun a b -> Hashtbl.replace t.cuts (a, b) ())

let partition t ga gb =
  partition_oneway t ga gb;
  partition_oneway t gb ga

let heal_between t ga gb =
  cut_pairs ga gb (fun a b ->
      Hashtbl.remove t.cuts (a, b);
      Hashtbl.remove t.cuts (b, a))

let heal t = Hashtbl.reset t.cuts

let partitioned t ~dst = Hashtbl.mem t.cuts (t.self, dst)

(* ---- stochastic knobs ---- *)

let set_loss t k = t.loss <- k

let set_link_loss t ~dst = function
  | Some k -> Hashtbl.replace t.link_loss (t.self, dst) k
  | None -> Hashtbl.remove t.link_loss (t.self, dst)

let set_duplication t k = t.duplication <- k

let set_delay_factor t f = t.delay_factor <- f

let clear_all t =
  heal t;
  t.loss <- None;
  Hashtbl.reset t.link_loss;
  t.duplication <- None;
  t.delay_factor <- 1.0

(* Each installed knob's rng advances exactly once per message (mirroring
   Net), so disabling one knob never shifts another's stream. *)
let draw = function
  | None -> false
  | Some (rng, rate) -> Tact_util.Prng.float rng 1.0 < rate

let forward t ~dst payload =
  t.stats.f_sent <- t.stats.f_sent + 1;
  let delay = t.nominal_delay *. t.delay_factor in
  if delay > 0.0 then begin
    t.stats.f_delayed <- t.stats.f_delayed + 1;
    t.schedule ~delay (fun () -> ignore (t.real_send ~dst payload));
    Ok ()
  end
  else t.real_send ~dst payload

let send t ~dst payload =
  if dst < 0 || dst >= t.n then
    Error (Tact_store.Transport.Unreachable (Printf.sprintf "faulty: bad dst %d" dst))
  else if partitioned t ~dst then begin
    t.stats.f_dropped_cut <- t.stats.f_dropped_cut + 1;
    Ok ()
  end
  else begin
    let lost_global = draw t.loss in
    let lost_link = draw (Hashtbl.find_opt t.link_loss (t.self, dst)) in
    let duplicate = draw t.duplication in
    if lost_global || lost_link then begin
      t.stats.f_dropped_loss <- t.stats.f_dropped_loss + 1;
      Ok ()
    end
    else begin
      let r = forward t ~dst payload in
      if duplicate then begin
        t.stats.f_duplicated <- t.stats.f_duplicated + 1;
        (* The copy is strictly later than the original, as in Net: defer it
           through the timer even when the original went out synchronously. *)
        let extra = max (t.nominal_delay *. t.delay_factor) 0.001 in
        t.schedule ~delay:extra (fun () -> ignore (t.real_send ~dst payload))
      end;
      r
    end
  end
