(** The tact_serve client protocol: a small length-prefix-framed
    request/response codec (doc/TRANSPORT.md, "Client protocol").

    Clients connect to any replica's client socket and exchange one frame
    per message ({!Tact_store.Transport.put_frame} framing, same 4-byte BE
    length prefix and frame bound as the peer wire).  Three requests —
    submit a write, query a key under a bound vector, ask for status — and
    four responses.  Decoding is total over hostile input, same discipline
    as {!Tact_store.Batch.decode}: typed errors, count checks before
    allocation, no exceptions across the boundary. *)

type request =
  | Submit of { conit : string; nweight : float; oweight : float; op : Tact_store.Op.t }
      (** One write affecting one conit — the daemon maps it onto
          [Replica.submit_write].  [Op.Proc] is rejected at encode time
          (closures don't serialise); use [Op.Named]. *)
  | Query of { key : string; conit : string; bounds : Tact_core.Bounds.t }
      (** Read [key] once [conit] meets [bounds] at the serving replica. *)
  | Status  (** liveness / accounting probe *)

type status = {
  c_id : int;  (** serving replica id *)
  c_n : int;
  c_up : bool;
  c_log_len : int;
  c_pending : int;  (** accesses parked on unmet bounds *)
  c_malformed : int;  (** hostile peer frames rejected so far *)
  c_peers_up : int;  (** peer connections currently established *)
  c_now : float;  (** serving replica's clock *)
}

type response =
  | Outcome of Tact_store.Op.outcome  (** answer to [Submit] *)
  | Value of Tact_store.Value.t  (** answer to [Query] *)
  | Status_r of status  (** answer to [Status] *)
  | Err of string
      (** the request decoded but could not be served (bad conit, deadline
          exceeded, replica crashed, ...) *)

val encode_request : Tact_store.Codec.Frame.t -> request -> unit
(** Raises [Tact_store.Codec.Unserializable] for [Submit] of an [Op.Proc]. *)

val decode_request : string -> (request, Tact_store.Transport.error) result

val encode_response : Tact_store.Codec.Frame.t -> response -> unit
val decode_response : string -> (response, Tact_store.Transport.error) result

val request_to_string : request -> string
(** Whole-message convenience (throwaway frame), for one-shot clients. *)

val response_to_string : response -> string

val describe_request : request -> string
val describe_response : response -> string
