(* The hardened TCP/Unix-socket backend: the production instance of the
   TRANSPORT seam.

   Topology: every replica dials every peer and accepts from every peer.
   The connection I dial to X carries my frames to X (and X's probe acks
   back); X's frames to me arrive on the connection X dialed here.  Each
   dialed connection is driven by a pure per-peer {!Supervisor} — connect
   deadlines, bounded retries with decorrelated-jitter backoff, half-open
   probing — and every transition into [Up] triggers a protocol resync
   (the [on_peer_up] hook), so missed traffic heals via delta or snapshot
   ({!Tact_store.Batch.plan}) no matter how long the link was down.

   Graceful degradation: while a peer is down or parked, frames queued for
   it are parked in a bounded buffer (oldest dropped beyond the cap, and
   counted) — the replica keeps serving within its declared bounds; the
   protocol's own retry machinery plus reconnect-resync recover whatever
   parking lost.

   Hardening at the byte level: 4-byte length-prefix framing with a
   [max_frame] bound checked before allocation; a peer that sends an
   oversized or unparseable prefix poisons only its own connection (closed
   and counted, then re-accepted when it redials).  A hello exchange
   authenticates the peer id carried by every delivery. *)

open Tact_util
open Tact_store

let hello_magic = "TACTPEER"
let hello_size = String.length hello_magic + 8 (* + BE peer id *)

type stats = {
  mutable sent_frames : int;
  mutable sent_bytes : int;
  mutable recv_frames : int;
  mutable recv_bytes : int;
  mutable parked_frames : int;  (* currently parked *)
  mutable parked_drops : int;  (* frames dropped off the park cap *)
  mutable probes : int;
  mutable reconnects : int;  (* transitions into Up after the first *)
  mutable poisoned : int;  (* connections closed on protocol violations *)
}

(* An accepted (incoming) connection: hello, then frames. *)
type conn = {
  c_fd : Unix.file_descr;
  mutable c_buf : Bytes.t;
  mutable c_len : int;
  mutable c_peer : int option;  (* set once the hello arrives *)
}

(* A dialed (outgoing) connection slot for one peer. *)
type peer = {
  p_id : int;
  p_addr : Unix.sockaddr;
  mutable p_sup : Supervisor.state;
  mutable p_fd : Unix.file_descr option;
  mutable p_ever_up : bool;
  p_out : Buffer.t;  (* bytes accepted for the live connection *)
  p_parked : string Queue.t;  (* whole frames parked while down *)
  mutable p_parked_bytes : int;
  mutable p_rbuf : Bytes.t;  (* probe acks arriving on the dialed conn *)
  mutable p_rlen : int;
}

type t = {
  self : int;
  n : int;
  loop : Loop.t;
  knobs : Tact_replica.Config.transport_knobs;
  sup_knobs : Supervisor.knobs;
  rng : Prng.t;
  peers : peer option array;  (* None at [self] *)
  mutable listen_fd : Unix.file_descr option;
  mutable conns : conn list;
  mutable handler : src:int -> string -> unit;
  mutable on_peer_up : int -> unit;
  mutable trace : (string -> unit) option;
  stats : stats;
  park_cap_bytes : int;
  mutable closed : bool;
}

let self t = t.self
let size t = t.n
let set_handler t h = t.handler <- h
let set_on_peer_up t f = t.on_peer_up <- f
let set_trace t f = t.trace <- Some f

(* Trace lines are built lazily so a disabled trace costs one branch. *)
let tr t k = match t.trace with None -> () | Some f -> f (k ())
let stats t = t.stats
let peer_state t j =
  match t.peers.(j) with Some p -> p.p_sup | None -> Supervisor.initial

let peer_up t j = match t.peers.(j) with Some p -> Supervisor.is_up p.p_sup | None -> true
let peer_parked t j =
  match t.peers.(j) with Some p -> Supervisor.is_parked p.p_sup | None -> false

let create ?(park_cap_bytes = 64 * 1024 * 1024) ~loop ~self ~addrs
    ~(knobs : Tact_replica.Config.transport_knobs) ~rng () =
  let n = Array.length addrs in
  if self < 0 || self >= n then invalid_arg "Tcp.create: self out of range";
  (* A write into a peer-reset socket must surface as EPIPE (handled like
     any other io error), not kill the process.  OCaml's Unix exposes no
     portable MSG_NOSIGNAL, so like every socket library we ignore the
     signal process-wide; hosts that installed their own handler keep it. *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | Sys.Signal_default | Sys.Signal_ignore -> ()
  | other -> Sys.set_signal Sys.sigpipe other
  | exception Invalid_argument _ -> ());
  {
    self;
    n;
    loop;
    knobs;
    sup_knobs = Supervisor.knobs_of_config knobs;
    rng;
    peers =
      Array.init n (fun j ->
          if j = self then None
          else
            Some
              {
                p_id = j;
                p_addr = addrs.(j);
                p_sup = Supervisor.initial;
                p_fd = None;
                p_ever_up = false;
                p_out = Buffer.create 4096;
                p_parked = Queue.create ();
                p_parked_bytes = 0;
                p_rbuf = Bytes.create 4096;
                p_rlen = 0;
              });
    listen_fd = None;
    conns = [];
    handler = (fun ~src:_ _ -> ());
    on_peer_up = (fun _ -> ());
    trace = None;
    stats =
      {
        sent_frames = 0;
        sent_bytes = 0;
        recv_frames = 0;
        recv_bytes = 0;
        parked_frames = 0;
        parked_drops = 0;
        probes = 0;
        reconnects = 0;
        poisoned = 0;
      };
    park_cap_bytes;
    closed = false;
  }

(* ------------------------------------------------------------------ *)
(* Low-level socket helpers: every call total, errors as values.       *)

let close_fd_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let hello_bytes self =
  let b = Bytes.create hello_size in
  Bytes.blit_string hello_magic 0 b 0 (String.length hello_magic);
  Bytes.set_int64_be b (String.length hello_magic) (Int64.of_int self);
  Bytes.unsafe_to_string b

let frame_of payload =
  Transport.encode_frame_header ~len:(String.length payload) ^ payload

(* ------------------------------------------------------------------ *)
(* Outgoing side: dial / flush / supervise                             *)

let hang_up t (p : peer) =
  (match p.p_fd with
  | Some fd ->
    Loop.forget t.loop fd;
    close_fd_quietly fd
  | None -> ());
  p.p_fd <- None;
  p.p_rlen <- 0;
  Buffer.clear p.p_out

let sup_event t (p : peer) ev =
  let was_up = Supervisor.is_up p.p_sup in
  let before = p.p_sup in
  let st, actions =
    Supervisor.step t.sup_knobs t.rng p.p_sup ev ~now:(Loop.now t.loop)
  in
  if ev <> Supervisor.Tick || st <> before then
    tr t (fun () ->
        Printf.sprintf "peer %d: %s --%s--> %s" p.p_id
          (Supervisor.to_string before)
          (match ev with
          | Supervisor.Tick -> "tick"
          | Supervisor.Dial_ok -> "dial-ok"
          | Supervisor.Dial_failed -> "dial-failed"
          | Supervisor.Rx -> "rx"
          | Supervisor.Io_failed -> "io-failed")
          (Supervisor.to_string st));
  p.p_sup <- st;
  let now_up = Supervisor.is_up st in
  if now_up && not was_up then begin
    if p.p_ever_up then t.stats.reconnects <- t.stats.reconnects + 1;
    p.p_ever_up <- true
  end;
  actions

let rec run_actions t (p : peer) actions =
  List.iter
    (fun (a : Supervisor.action) ->
      match a with
      | Supervisor.Hang_up -> hang_up t p
      | Supervisor.Dial -> dial t p
      | Supervisor.Send_probe ->
        t.stats.probes <- t.stats.probes + 1;
        enqueue t p (frame_of "")
      | Supervisor.Resync ->
        (* Flush everything parked while the link was down, then let the
           protocol heal the gap. *)
        flush_parked t p;
        t.on_peer_up p.p_id)
    actions

and dial t (p : peer) =
  hang_up t p;
  match
    let fd = Unix.socket (Unix.domain_of_sockaddr p.p_addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    (fd, try Unix.connect fd p.p_addr; `Done with
      | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> `Pending
      | Unix.Unix_error _ -> `Failed)
  with
  | exception Unix.Unix_error _ -> run_actions t p (sup_event t p Supervisor.Dial_failed)
  | fd, `Failed ->
    close_fd_quietly fd;
    run_actions t p (sup_event t p Supervisor.Dial_failed)
  | fd, (`Done | `Pending) ->
    p.p_fd <- Some fd;
    (* Readiness-to-write completes (or fails) the connect. *)
    Loop.on_writable t.loop fd (fun () -> dial_complete t p fd);
    Loop.on_readable t.loop fd (fun () -> read_dialed t p fd)

and dial_complete t (p : peer) fd =
  if p.p_fd = Some fd then begin
    match Unix.getsockopt_error fd with
    | Some _ ->
      (* Close the refused socket before telling the supervisor: reading
         SO_ERROR cleared it, so a later writable wakeup on a still-open fd
         would masquerade as a successful connect. *)
      hang_up t p;
      run_actions t p (sup_event t p Supervisor.Dial_failed)
    | None -> (
      match p.p_sup with
      | Supervisor.Dialing _ | Supervisor.Down _ | Supervisor.Parked _ ->
        (* Connected: say hello, then hand the socket to the flusher. *)
        Buffer.add_string p.p_out (hello_bytes t.self);
        Loop.clear_writable t.loop fd;
        run_actions t p (sup_event t p Supervisor.Dial_ok);
        flush_out t p
      | Supervisor.Up _ ->
        (* Already up (stale wakeup): just flush. *)
        flush_out t p)
  end

and enqueue t (p : peer) frame =
  if Supervisor.is_up p.p_sup && p.p_fd <> None then begin
    tr t (fun () ->
        Printf.sprintf "enqueue -> %d: %dB" p.p_id (String.length frame));
    Buffer.add_string p.p_out frame;
    flush_out t p
  end
  else begin
    tr t (fun () -> Printf.sprintf "park -> %d: %dB" p.p_id (String.length frame));
    park t p frame
  end

and park t (p : peer) frame =
  (* Bounded: beyond the cap the oldest parked frames are dropped (and
     counted) — the reconnect resync recovers their content anyway. *)
  Queue.push frame p.p_parked;
  p.p_parked_bytes <- p.p_parked_bytes + String.length frame;
  t.stats.parked_frames <- t.stats.parked_frames + 1;
  while p.p_parked_bytes > t.park_cap_bytes && not (Queue.is_empty p.p_parked) do
    let dropped = Queue.pop p.p_parked in
    p.p_parked_bytes <- p.p_parked_bytes - String.length dropped;
    t.stats.parked_frames <- t.stats.parked_frames - 1;
    t.stats.parked_drops <- t.stats.parked_drops + 1
  done

and flush_parked t (p : peer) =
  while not (Queue.is_empty p.p_parked) do
    let frame = Queue.pop p.p_parked in
    p.p_parked_bytes <- p.p_parked_bytes - String.length frame;
    t.stats.parked_frames <- t.stats.parked_frames - 1;
    Buffer.add_string p.p_out frame
  done;
  flush_out t p

and flush_out t (p : peer) =
  match p.p_fd with
  | None -> ()
  | Some fd ->
    let data = Buffer.contents p.p_out in
    let len = String.length data in
    if len = 0 then Loop.clear_writable t.loop fd
    else begin
      match Unix.write_substring fd data 0 len with
      | written ->
        t.stats.sent_bytes <- t.stats.sent_bytes + written;
        Buffer.clear p.p_out;
        if written < len then begin
          Buffer.add_substring p.p_out data written (len - written);
          Loop.on_writable t.loop fd (fun () -> flush_out t p)
        end
        else Loop.clear_writable t.loop fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Loop.on_writable t.loop fd (fun () -> flush_out t p)
      | exception Unix.Unix_error (e, _, _) ->
        tr t (fun () ->
            Printf.sprintf "write -> %d failed: %s" p.p_id (Unix.error_message e));
        hang_up t p;
        run_actions t p (sup_event t p Supervisor.Io_failed)
    end

(* Probe acks (empty frames) coming back on the dialed connection are the
   half-open detector's food; anything else on this direction is a protocol
   violation and poisons the connection. *)
and read_dialed t (p : peer) fd =
  if p.p_fd = Some fd then begin
    let avail = Bytes.length p.p_rbuf - p.p_rlen in
    let avail, buf =
      if avail > 0 then (avail, p.p_rbuf)
      else begin
        (* lint: allow alloc-hot-path -- rare: probe-ack buffer growth *)
        let fresh = Bytes.create (2 * Bytes.length p.p_rbuf) in
        Bytes.blit p.p_rbuf 0 fresh 0 p.p_rlen;
        p.p_rbuf <- fresh;
        (Bytes.length fresh - p.p_rlen, fresh)
      end
    in
    match Unix.read fd buf p.p_rlen avail with
    | 0 ->
      hang_up t p;
      run_actions t p (sup_event t p Supervisor.Io_failed)
    | nread -> (
      p.p_rlen <- p.p_rlen + nread;
      (* Consume whole frames; only empty ones are legal here. *)
      let rec consume () =
        match
          Transport.decode_frame_header ~max_frame:t.knobs.max_frame p.p_rbuf
            ~off:0 ~avail:p.p_rlen
        with
        | Ok None -> `Keep
        | Ok (Some 0) ->
          let hdr = Transport.frame_header_size in
          Bytes.blit p.p_rbuf hdr p.p_rbuf 0 (p.p_rlen - hdr);
          p.p_rlen <- p.p_rlen - hdr;
          consume ()
        | Ok (Some _) | Error _ -> `Poison
      in
      match consume () with
      | `Keep -> run_actions t p (sup_event t p Supervisor.Rx)
      | `Poison ->
        t.stats.poisoned <- t.stats.poisoned + 1;
        hang_up t p;
        run_actions t p (sup_event t p Supervisor.Io_failed))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ ->
      hang_up t p;
      run_actions t p (sup_event t p Supervisor.Io_failed)
  end

(* ------------------------------------------------------------------ *)
(* Incoming side: accept / hello / frames                              *)

let drop_conn t (c : conn) =
  tr t (fun () ->
      Printf.sprintf "conn from %s dropped"
        (match c.c_peer with Some i -> string_of_int i | None -> "?"));
  Loop.forget t.loop c.c_fd;
  close_fd_quietly c.c_fd;
  t.conns <- List.filter (fun c' -> c' != c) t.conns

let poison_conn t (c : conn) =
  t.stats.poisoned <- t.stats.poisoned + 1;
  drop_conn t c

(* Ack a probe: an empty frame back over our dialed connection to the
   prober (never echoed from the dialed side, so probes cannot ping-pong). *)
let ack_probe t ~src =
  if src >= 0 && src < t.n && src <> t.self then
    match t.peers.(src) with
    | Some p when Supervisor.is_up p.p_sup ->
      tr t (fun () -> Printf.sprintf "ack -> %d" src);
      Buffer.add_string p.p_out (frame_of "");
      flush_out t p
    | Some _ | None -> ()

let rec conn_consume t (c : conn) =
  match c.c_peer with
  | None ->
    if c.c_len >= hello_size then
      if
        String.equal
          (Bytes.sub_string c.c_buf 0 (String.length hello_magic))
          hello_magic
      then begin
        let id =
          Int64.to_int (Bytes.get_int64_be c.c_buf (String.length hello_magic))
        in
        if id < 0 || id >= t.n || id = t.self then poison_conn t c
        else begin
          tr t (fun () -> Printf.sprintf "hello <- %d" id);
          c.c_peer <- Some id;
          let rest = c.c_len - hello_size in
          Bytes.blit c.c_buf hello_size c.c_buf 0 rest;
          c.c_len <- rest;
          (* Traffic from the peer is host-liveness evidence: it refreshes an
             Up link's half-open clock and un-parks an exhausted one (the
             supervisor absorbs it in every other state). *)
          (match t.peers.(id) with
          | Some p -> run_actions t p (sup_event t p Supervisor.Rx)
          | None -> ());
          conn_consume t c
        end
      end
      else poison_conn t c
  | Some src -> (
    match
      Transport.decode_frame_header ~max_frame:t.knobs.max_frame c.c_buf
        ~off:0 ~avail:c.c_len
    with
    | Ok None -> ()
    | Error _ ->
      (* Oversized or corrupt length prefix: there is no way to
         resynchronise a stream after a bad prefix — poison the
         connection (the peer's supervisor will redial). *)
      poison_conn t c
    | Ok (Some len) ->
      let hdr = Transport.frame_header_size in
      if c.c_len >= hdr + len then begin
        let payload = Bytes.sub_string c.c_buf hdr len in
        let rest = c.c_len - hdr - len in
        Bytes.blit c.c_buf (hdr + len) c.c_buf 0 rest;
        c.c_len <- rest;
        t.stats.recv_frames <- t.stats.recv_frames + 1;
        t.stats.recv_bytes <- t.stats.recv_bytes + hdr + len;
        tr t (fun () ->
            Printf.sprintf "recv <- %d: %dB%s" src len
              (if len = 0 then " (probe)" else ""));
        (match t.peers.(src) with
        | Some p -> run_actions t p (sup_event t p Supervisor.Rx)
        | None -> ());
        if len = 0 then ack_probe t ~src else t.handler ~src payload;
        conn_consume t c
      end
      else begin
        (* Grow to hold the announced frame ([len] is already bounded by
           [max_frame], so this cannot balloon). *)
        let need = hdr + len in
        if Bytes.length c.c_buf < need then begin
          (* lint: allow alloc-hot-path -- bounded by max_frame; amortised
             by buffer reuse across frames *)
          let fresh = Bytes.create need in
          Bytes.blit c.c_buf 0 fresh 0 c.c_len;
          c.c_buf <- fresh
        end
      end)

let conn_read t (c : conn) =
  let avail = Bytes.length c.c_buf - c.c_len in
  let avail =
    if avail > 0 then avail
    else begin
      (* lint: allow alloc-hot-path -- doubling receive buffer, amortised *)
      let fresh = Bytes.create (2 * Bytes.length c.c_buf) in
      Bytes.blit c.c_buf 0 fresh 0 c.c_len;
      c.c_buf <- fresh;
      Bytes.length fresh - c.c_len
    end
  in
  match Unix.read c.c_fd c.c_buf c.c_len avail with
  | 0 -> drop_conn t c
  | nread ->
    c.c_len <- c.c_len + nread;
    conn_consume t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t c

let accept_conn t listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let c = { c_fd = fd; c_buf = Bytes.create 4096; c_len = 0; c_peer = None } in
    t.conns <- c :: t.conns;
    Loop.on_readable t.loop fd (fun () -> conn_read t c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let supervise_period (k : Tact_replica.Config.transport_knobs) =
  Float.max 0.005 (Float.min 0.05 (k.backoff_base /. 2.0))

let listen t ~addr =
  if t.closed then invalid_arg "Tcp.listen: closed";
  match t.listen_fd with
  | Some _ -> ()
  | None ->
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.set_nonblock fd;
    Unix.bind fd addr;
    Unix.listen fd t.knobs.listen_backlog;
    t.listen_fd <- Some fd;
    Loop.on_readable t.loop fd (fun () -> accept_conn t fd);
    (* The supervision heartbeat: drives dials, backoff expiry, connect
       deadlines and half-open probing for every peer. *)
    Loop.every t.loop ~tag:"supervise" ~period:(supervise_period t.knobs)
      (fun () ->
        if not t.closed then
          Array.iter
            (function
              | Some p -> run_actions t p (sup_event t p Supervisor.Tick)
              | None -> ())
            t.peers;
        not t.closed)

let send t ~dst payload =
  if t.closed then Error (Transport.Closed "transport closed")
  else if dst < 0 || dst >= t.n || dst = t.self then
    Error (Transport.Unreachable (Printf.sprintf "no such peer %d" dst))
  else if String.length payload > t.knobs.max_frame then
    Error
      (Transport.Too_large
         { limit = t.knobs.max_frame; got = String.length payload })
  else
    match t.peers.(dst) with
    | None -> Error (Transport.Unreachable "self")
    | Some p ->
      t.stats.sent_frames <- t.stats.sent_frames + 1;
      enqueue t p (frame_of payload);
      Ok ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.listen_fd with
    | Some fd ->
      Loop.forget t.loop fd;
      close_fd_quietly fd
    | None -> ());
    t.listen_fd <- None;
    List.iter
      (fun c ->
        Loop.forget t.loop c.c_fd;
        close_fd_quietly c.c_fd)
      t.conns;
    t.conns <- [];
    Array.iter (function Some p -> hang_up t p | None -> ()) t.peers
  end
