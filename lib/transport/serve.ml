open Tact_util
open Tact_store
module Replica = Tact_replica.Replica
module Config = Tact_replica.Config

(* A connected client: length-prefixed Client-protocol frames in, buffered
   responses out.  Same read-buffer discipline as Tcp's accepted conns. *)
type client_conn = {
  k_fd : Unix.file_descr;
  mutable k_buf : Bytes.t;
  mutable k_len : int;
  k_out : Buffer.t;
  mutable k_closed : bool;
}

type t = {
  sid : int;
  n : int;
  loop : Loop.t;
  tcp : Tcp.t;
  faulty : Faulty.t;
  replica : Replica.t;
  config : Config.t;
  peer_addr : Unix.sockaddr;  (* our slot in the peer address array *)
  client_addr : Unix.sockaddr;
  request_timeout : float;
  frame : Codec.Frame.t;  (* response encode arena, reused *)
  mutable client_listen : Unix.file_descr option;
  mutable clients : client_conn list;
  mutable draining : bool;
  mutable stopped : bool;
}

let loop t = t.loop
let replica t = t.replica
let tcp t = t.tcp
let faulty t = t.faulty
let id t = t.sid
let draining t = t.draining
let stopped t = t.stopped

let peers_up t =
  let up = ref 0 in
  for j = 0 to t.n - 1 do
    if j <> t.sid && Tcp.peer_up t.tcp j then incr up
  done;
  !up

let create ?(request_timeout = 30.0) ?(nominal_delay = 0.0) ~id ~n ~peer_addrs
    ~client_addr ~(config : Config.t) ~seed () =
  if Array.length peer_addrs <> n then invalid_arg "Serve.create: addrs/n mismatch";
  let loop = Loop.create () in
  let rng = Prng.create ~seed in
  let tcp =
    Tcp.create ~loop ~self:id ~addrs:peer_addrs ~knobs:config.Config.transport
      ~rng:(Prng.split rng) ()
  in
  let faulty =
    Faulty.create ~self:id ~n ~nominal_delay
      ~schedule:(fun ~delay f -> Loop.schedule loop ~tag:"fault-delay" ~delay f)
      ~send:(fun ~dst payload -> Tcp.send tcp ~dst payload)
      ()
  in
  let endpoint =
    {
      Transport.ep_self = id;
      ep_n = n;
      ep_now = (fun () -> Loop.now loop);
      ep_schedule = (fun ~tag ~delay f -> Loop.schedule loop ~tag ~delay f);
      ep_every = (fun ~tag ~period f -> Loop.every loop ~tag ~period f);
      ep_send = (fun ~dst payload -> Faulty.send faulty ~dst payload);
      ep_close = (fun () -> Tcp.close tcp);
    }
  in
  let replica = Replica.create_ext ~id ~n ~endpoint ~config () in
  Tcp.set_handler tcp (fun ~src payload -> Replica.deliver_wire replica ~src payload);
  (* Reconnect implies resync — deferred so the pull runs outside the
     supervisor's action processing. *)
  Tcp.set_on_peer_up tcp (fun peer ->
      Loop.defer loop (fun () -> Replica.resync replica ~peer));
  {
    sid = id;
    n;
    loop;
    tcp;
    faulty;
    replica;
    config;
    peer_addr = peer_addrs.(id);
    client_addr;
    request_timeout;
    frame = Codec.Frame.create ();
    client_listen = None;
    clients = [];
    draining = false;
    stopped = false;
  }

(* ------------------------------------------------------------------ *)
(* Client protocol service                                             *)

let close_fd_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_client t (c : client_conn) =
  if not c.k_closed then begin
    c.k_closed <- true;
    Loop.forget t.loop c.k_fd;
    close_fd_quietly c.k_fd;
    t.clients <- List.filter (fun c' -> c' != c) t.clients
  end

let rec flush_client t (c : client_conn) =
  if not c.k_closed then begin
    let data = Buffer.contents c.k_out in
    let len = String.length data in
    if len = 0 then Loop.clear_writable t.loop c.k_fd
    else
      match Unix.write_substring c.k_fd data 0 len with
      | written ->
        Buffer.clear c.k_out;
        if written < len then begin
          Buffer.add_substring c.k_out data written (len - written);
          Loop.on_writable t.loop c.k_fd (fun () -> flush_client t c)
        end
        else Loop.clear_writable t.loop c.k_fd
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Loop.on_writable t.loop c.k_fd (fun () -> flush_client t c)
      | exception Unix.Unix_error _ -> drop_client t c
  end

let respond t (c : client_conn) resp =
  if not c.k_closed then begin
    Codec.Frame.clear t.frame;
    Client.encode_response t.frame resp;
    let payload = Codec.Frame.contents t.frame in
    Buffer.add_string c.k_out
      (Transport.encode_frame_header ~len:(String.length payload));
    Buffer.add_string c.k_out payload;
    flush_client t c
  end

let status t =
  {
    Client.c_id = t.sid;
    c_n = t.n;
    c_up = Replica.is_up t.replica;
    c_log_len = Wlog.num_known (Replica.log t.replica);
    c_pending = Replica.pending_count t.replica;
    c_malformed = Replica.malformed_frames t.replica;
    c_peers_up = peers_up t;
    c_now = Loop.now t.loop;
  }

let handle_request t (c : client_conn) req =
  let deadline = Loop.now t.loop +. t.request_timeout in
  match (req : Client.request) with
  | Client.Status -> respond t c (Client.Status_r (status t))
  | Client.Submit { conit; nweight; oweight; op } ->
    Replica.submit_write t.replica ~deadline
      ~on_timeout:(fun () -> respond t c (Client.Err "deadline"))
      ~deps:[]
      ~affects:[ { Write.conit; nweight; oweight } ]
      ~op
      ~k:(fun outcome -> respond t c (Client.Outcome outcome))
  | Client.Query { key; conit; bounds } ->
    Replica.submit_read t.replica ~deadline
      ~on_timeout:(fun () -> respond t c (Client.Err "deadline"))
      ~deps:[ (conit, bounds) ]
      ~f:(fun db -> Db.get db key)
      ~k:(fun v -> respond t c (Client.Value v))

let rec client_consume t (c : client_conn) =
  match
    Transport.decode_frame_header
      ~max_frame:t.config.Config.transport.Config.max_frame c.k_buf ~off:0
      ~avail:c.k_len
  with
  | Ok None -> ()
  | Error _ -> drop_client t c
  | Ok (Some len) ->
    let hdr = Transport.frame_header_size in
    if c.k_len >= hdr + len then begin
      let payload = Bytes.sub_string c.k_buf hdr len in
      let rest = c.k_len - hdr - len in
      Bytes.blit c.k_buf (hdr + len) c.k_buf 0 rest;
      c.k_len <- rest;
      (match Client.decode_request payload with
      | Ok req -> handle_request t c req
      | Error e -> respond t c (Client.Err (Transport.error_to_string e)));
      client_consume t c
    end
    else begin
      let need = hdr + len in
      if Bytes.length c.k_buf < need then begin
        let fresh = Bytes.create need in
        Bytes.blit c.k_buf 0 fresh 0 c.k_len;
        c.k_buf <- fresh
      end
    end

let client_read t (c : client_conn) =
  let avail = Bytes.length c.k_buf - c.k_len in
  let avail =
    if avail > 0 then avail
    else begin
      let fresh = Bytes.create (2 * Bytes.length c.k_buf) in
      Bytes.blit c.k_buf 0 fresh 0 c.k_len;
      c.k_buf <- fresh;
      Bytes.length fresh - c.k_len
    end
  in
  match Unix.read c.k_fd c.k_buf c.k_len avail with
  | 0 -> drop_client t c
  | nread ->
    c.k_len <- c.k_len + nread;
    client_consume t c
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_client t c

let accept_client t listen_fd =
  match Unix.accept listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let c =
      { k_fd = fd; k_buf = Bytes.create 4096; k_len = 0; k_out = Buffer.create 512;
        k_closed = false }
    in
    t.clients <- c :: t.clients;
    Loop.on_readable t.loop fd (fun () -> client_read t c)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start t =
  Tcp.listen t.tcp ~addr:t.peer_addr;
  let fd = Unix.socket (Unix.domain_of_sockaddr t.client_addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd t.client_addr;
  Unix.listen fd t.config.Config.transport.Config.listen_backlog;
  t.client_listen <- Some fd;
  Loop.on_readable t.loop fd (fun () -> accept_client t fd);
  Replica.start t.replica

let close t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.client_listen with
    | Some fd ->
      Loop.forget t.loop fd;
      close_fd_quietly fd
    | None -> ());
    t.client_listen <- None;
    List.iter (fun c -> Loop.forget t.loop c.k_fd; close_fd_quietly c.k_fd) t.clients;
    t.clients <- [];
    Replica.close t.replica;
    (* Replica.close runs ep_close -> Tcp.close; belt and braces: *)
    Tcp.close t.tcp;
    Loop.stop t.loop
  end

let request_stop t =
  if not (t.draining || t.stopped) then begin
    t.draining <- true;
    (* Stop accepting new clients; existing ones may still collect their
       pending responses. *)
    (match t.client_listen with
    | Some fd ->
      Loop.forget t.loop fd;
      close_fd_quietly fd
    | None -> ());
    t.client_listen <- None;
    let deadline =
      Loop.now t.loop +. t.config.Config.transport.Config.drain_timeout
    in
    Loop.every t.loop ~tag:"drain" ~period:0.02 (fun () ->
        if t.stopped then false
        else begin
          let drained =
            Replica.pending_count t.replica = 0
            && List.for_all (fun c -> Buffer.length c.k_out = 0) t.clients
          in
          if drained || Loop.now t.loop >= deadline then begin
            close t;
            false
          end
          else true
        end)
  end

let run t =
  Loop.run t.loop;
  if not t.stopped then close t
