(** A real-time event loop: the wall-clock twin of {!Tact_sim.Engine}.

    One timer queue plus [Unix.select] over registered file descriptors,
    single-threaded by construction — handlers never race, which is the same
    execution model the deterministic engine gives the protocol code.  The
    {!Tact_store.Transport.endpoint} a live replica runs against is built
    from {!now}/{!schedule}/{!every} here plus a {!Tcp} backend.

    Time is reported relative to loop creation, so protocol timestamps look
    like the simulator's (small floats starting near zero). *)

type t

val create : unit -> t

val now : t -> float
(** Seconds since the loop was created. *)

val schedule : t -> tag:string -> delay:float -> (unit -> unit) -> unit
(** One-shot timer ([tag] is provenance for diagnostics).  Timers with equal
    deadlines fire in scheduling order. *)

val every : t -> tag:string -> period:float -> (unit -> bool) -> unit
(** Periodic timer; rearms while the thunk returns [true] and the loop is
    not stopping. *)

val on_readable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register (or replace) the readable-interest callback for a descriptor. *)

val on_writable : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Register write interest — typically while a connect or a flush is in
    progress; clear it with {!clear_writable} when the queue drains. *)

val clear_writable : t -> Unix.file_descr -> unit

val forget : t -> Unix.file_descr -> unit
(** Drop every watch on the descriptor (call before closing it). *)

val defer : t -> (unit -> unit) -> unit
(** Run a callback at the top of the next iteration — the signal-safe
    hand-off point (a signal handler only pushes here / flips flags). *)

val stop : t -> unit
(** Ask {!run} to return after the current iteration. *)

val stopping : t -> bool

val run_once : ?max_wait:float -> t -> bool
(** One iteration: run deferred callbacks and due timers, then select (up to
    [max_wait], default 0.25 s).  Returns [false] when nothing is left to
    wait for.  Handler exceptions propagate — the caller owns crash
    policy. *)

val run : ?until:float -> t -> unit
(** Iterate until {!stop}, [until] (loop time), or nothing left to do. *)
