open Tact_store

type request =
  | Submit of { conit : string; nweight : float; oweight : float; op : Op.t }
  | Query of { key : string; conit : string; bounds : Tact_core.Bounds.t }
  | Status

type status = {
  c_id : int;
  c_n : int;
  c_up : bool;
  c_log_len : int;
  c_pending : int;
  c_malformed : int;
  c_peers_up : int;
  c_now : float;
}

type response =
  | Outcome of Op.outcome
  | Value of Value.t
  | Status_r of status
  | Err of string

(* Distinct magics per direction, and from the peer wire (0xA7) and batch
   (0xB6) formats: a client that dials the peer port by mistake is rejected
   on the first byte, not misparsed. *)
let request_magic = 0xC1
let response_magic = 0xC2
let version = 1

let encode_request frame req =
  Codec.put_u8 frame request_magic;
  Codec.put_u8 frame version;
  match req with
  | Submit { conit; nweight; oweight; op } ->
      Codec.put_u8 frame 0;
      Codec.put_string frame conit;
      Codec.put_float frame nweight;
      Codec.put_float frame oweight;
      Codec.encode_op frame op
  | Query { key; conit; bounds } ->
      Codec.put_u8 frame 1;
      Codec.put_string frame key;
      Codec.put_string frame conit;
      Codec.put_float frame bounds.Tact_core.Bounds.ne;
      Codec.put_float frame bounds.ne_rel;
      Codec.put_float frame bounds.oe;
      Codec.put_float frame bounds.st
  | Status -> Codec.put_u8 frame 2

let encode_response frame resp =
  Codec.put_u8 frame response_magic;
  Codec.put_u8 frame version;
  match resp with
  | Outcome (Op.Applied v) ->
      Codec.put_u8 frame 0;
      Codec.put_u8 frame 0;
      Codec.encode_value frame v
  | Outcome (Op.Conflict reason) ->
      Codec.put_u8 frame 0;
      Codec.put_u8 frame 1;
      Codec.put_string frame reason
  | Value v ->
      Codec.put_u8 frame 1;
      Codec.encode_value frame v
  | Status_r s ->
      Codec.put_u8 frame 2;
      Codec.put_int frame s.c_id;
      Codec.put_int frame s.c_n;
      Codec.put_u8 frame (if s.c_up then 1 else 0);
      Codec.put_int frame s.c_log_len;
      Codec.put_int frame s.c_pending;
      Codec.put_int frame s.c_malformed;
      Codec.put_int frame s.c_peers_up;
      Codec.put_float frame s.c_now
  | Err msg ->
      Codec.put_u8 frame 3;
      Codec.put_string frame msg

(* ---- total decoders ---- *)

let check_header what magic cur =
  let m = Codec.get_u8 cur in
  if m <> magic then
    raise (Codec.Malformed (Printf.sprintf "%s: bad magic 0x%02x" what m));
  let v = Codec.get_u8 cur in
  if v <> version then
    raise (Codec.Malformed (Printf.sprintf "%s: unsupported version %d" what v))

let check_drained what (cur : Codec.cursor) =
  if cur.pos <> String.length cur.data then
    raise (Codec.Malformed (what ^ ": trailing bytes"))

let decode_request_exn s =
  let cur = Codec.cursor s in
  check_header "client request" request_magic cur;
  let req =
    match Codec.get_u8 cur with
    | 0 ->
        let conit = Codec.get_string cur in
        let nweight = Codec.get_float cur in
        let oweight = Codec.get_float cur in
        let op = Codec.decode_op cur in
        Submit { conit; nweight; oweight; op }
    | 1 ->
        let key = Codec.get_string cur in
        let conit = Codec.get_string cur in
        let ne = Codec.get_float cur in
        let ne_rel = Codec.get_float cur in
        let oe = Codec.get_float cur in
        let st = Codec.get_float cur in
        Query { key; conit; bounds = { Tact_core.Bounds.ne; ne_rel; oe; st } }
    | 2 -> Status
    | t -> raise (Codec.Malformed (Printf.sprintf "client request: bad tag %d" t))
  in
  check_drained "client request" cur;
  req

let decode_response_exn s =
  let cur = Codec.cursor s in
  check_header "client response" response_magic cur;
  let resp =
    match Codec.get_u8 cur with
    | 0 -> (
        match Codec.get_u8 cur with
        | 0 -> Outcome (Op.Applied (Codec.decode_value cur))
        | 1 -> Outcome (Op.Conflict (Codec.get_string cur))
        | t -> raise (Codec.Malformed (Printf.sprintf "client response: bad outcome %d" t)))
    | 1 -> Value (Codec.decode_value cur)
    | 2 ->
        let c_id = Codec.get_int cur in
        let c_n = Codec.get_int cur in
        let c_up = Codec.get_u8 cur <> 0 in
        let c_log_len = Codec.get_int cur in
        let c_pending = Codec.get_int cur in
        let c_malformed = Codec.get_int cur in
        let c_peers_up = Codec.get_int cur in
        let c_now = Codec.get_float cur in
        Status_r { c_id; c_n; c_up; c_log_len; c_pending; c_malformed; c_peers_up; c_now }
    | 3 -> Err (Codec.get_string cur)
    | t -> raise (Codec.Malformed (Printf.sprintf "client response: bad tag %d" t))
  in
  check_drained "client response" cur;
  resp

let total f s =
  match f s with
  | v -> Ok v
  | exception Codec.Malformed m -> Error (Transport.Malformed m)
  | exception Invalid_argument m -> Error (Transport.Malformed ("client decode: " ^ m))

let decode_request s = total decode_request_exn s
let decode_response s = total decode_response_exn s

let request_to_string req = Codec.to_string encode_request req
let response_to_string resp = Codec.to_string encode_response resp

let describe_request = function
  | Submit { conit; op; _ } ->
      Printf.sprintf "submit conit=%s op=%s" conit (Op.describe op)
  | Query { key; conit; bounds } ->
      Printf.sprintf "query key=%s conit=%s bounds=%s" key conit
        (Tact_core.Bounds.to_string bounds)
  | Status -> "status"

let describe_response = function
  | Outcome (Op.Applied v) -> "applied " ^ Value.to_string v
  | Outcome (Op.Conflict r) -> "conflict " ^ r
  | Value v -> "value " ^ Value.to_string v
  | Status_r s ->
      Printf.sprintf "status id=%d n=%d up=%b log=%d pending=%d malformed=%d peers_up=%d"
        s.c_id s.c_n s.c_up s.c_log_len s.c_pending s.c_malformed s.c_peers_up
  | Err m -> "err " ^ m
