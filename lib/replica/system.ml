open Tact_util
open Tact_sim
open Tact_store

type write_meta = {
  write : Write.t;
  accept_vector : Version_vector.t;
  mutable return_time : float;
}

type t = {
  engine : Engine.t;
  net : Net.t;
  config : Config.t;
  replicas : Replica.t array;
  writes : (Write.id, write_meta) Hashtbl.t;
  mutable started : bool;
  mutable closed : bool;
}

let create ?(seed = 42) ?(jitter = 0.05) ?(loss = 0.0) ?(track_writes = true)
    ~topology ~config () =
  (match Config.validate ~n:topology.Topology.n config with
  | Ok () -> ()
  | Error m -> invalid_arg ("System.create: " ^ m));
  Config.run_analyze_hook ~n:topology.Topology.n config;
  let engine = Engine.create () in
  let rng = Prng.create ~seed in
  let jit = if jitter > 0.0 then Some (rng, jitter) else None in
  let lss = if loss > 0.0 then Some (Prng.split rng, loss) else None in
  let net = Net.create engine topology ?jitter:jit ?loss:lss () in
  let writes = Hashtbl.create 1024 in
  let n = topology.Topology.n in
  let replicas =
    Array.init n (fun i ->
        if track_writes then
          Replica.create ~id:i ~n ~net ~config
            ~on_accept:(fun w vec ->
              Hashtbl.replace writes w.Write.id
                { write = w; accept_vector = vec; return_time = w.Write.accept_time })
            ()
        else Replica.create ~id:i ~n ~net ~config ())
  in
  Array.iter (fun r -> Replica.connect r ~peers:(fun j -> replicas.(j))) replicas;
  { engine; net; config; replicas; writes; started = false; closed = false }

let engine t = t.engine
let config t = t.config
let net t = t.net
let size t = Array.length t.replicas
let replica t i = t.replicas.(i)
let now t = Engine.now t.engine

let prepare t =
  if not t.started then begin
    t.started <- true;
    Array.iter Replica.start t.replicas
  end

(* Writes return through continuations; the return time visible to external
   order is recorded via access records.  Fold them in lazily here. *)
let collect_returns t =
  Array.iter
    (fun r ->
      List.iter
        (fun (a : Tact_core.Access.t) ->
          match a.kind with
          | Tact_core.Access.Write_access id -> (
            match Hashtbl.find_opt t.writes id with
            | Some meta -> meta.return_time <- a.return_time
            | None -> ())
          | Tact_core.Access.Read -> ())
        (Replica.records r))
    t.replicas

(* Idempotent transport teardown for every replica.  In simulation this only
   makes further sends inert (the Net owns no per-replica resources), but the
   contract matters for the Ext path: [run] guarantees it even when a replica
   raises mid-execution, so a crashed run never leaks backend resources. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter Replica.close t.replicas
  end

let run ?until t =
  prepare t;
  (try Engine.run ?until t.engine
   with e ->
     (* A replica raising out of an event handler aborts the run; tear the
        transports down before propagating so nothing leaks.  Normal
        completion leaves them open — callers may run further phases. *)
     close t;
     raise e);
  collect_returns t

let all_writes t =
  (* lint: allow hashtbl-fold — collected list is sorted just below *)
  Hashtbl.fold (fun _ m acc -> m.write :: acc) t.writes []
  |> List.sort Write.ts_compare

let write_count t = Hashtbl.length t.writes

let find_write t id =
  Option.map (fun m -> m.write) (Hashtbl.find_opt t.writes id)

let return_time t id =
  match Hashtbl.find_opt t.writes id with
  | Some m -> m.return_time
  | None -> invalid_arg ("System.return_time: unknown write " ^ Write.id_to_string id)

let accept_vector t id =
  match Hashtbl.find_opt t.writes id with
  | Some m -> m.accept_vector
  | None -> invalid_arg ("System.accept_vector: unknown write " ^ Write.id_to_string id)

let records t =
  Array.to_list t.replicas
  |> List.concat_map Replica.records
  |> List.sort (fun (a : Tact_core.Access.t) b -> Float.compare a.serve_time b.serve_time)

let traffic t = Net.stats t.net

let total_stats t =
  Array.fold_left
    (fun (acc : Replica.stats) r ->
      let s = Replica.stats r in
      {
        Replica.pushes_budget = acc.pushes_budget + s.pushes_budget;
        pulls_ne = acc.pulls_ne + s.pulls_ne;
        pulls_oe = acc.pulls_oe + s.pulls_oe;
        pulls_st = acc.pulls_st + s.pulls_st;
        gossips = acc.gossips + s.gossips;
        blocked_accesses = acc.blocked_accesses + s.blocked_accesses;
        snapshots_sent = acc.snapshots_sent + s.snapshots_sent;
        snapshots_installed = acc.snapshots_installed + s.snapshots_installed;
        timeouts = acc.timeouts + s.timeouts;
        batches = acc.batches + s.batches;
        wrong_shard_frames = acc.wrong_shard_frames + s.wrong_shard_frames;
        malformed_frames = acc.malformed_frames + s.malformed_frames;
      })
    {
      Replica.pushes_budget = 0;
      pulls_ne = 0;
      pulls_oe = 0;
      pulls_st = 0;
      gossips = 0;
      blocked_accesses = 0;
      snapshots_sent = 0;
      snapshots_installed = 0;
      timeouts = 0;
      batches = 0;
      wrong_shard_frames = 0;
      malformed_frames = 0;
    }
    t.replicas

let converged t =
  let reference = Replica.db t.replicas.(0) in
  Array.for_all (fun r -> Db.equal (Replica.db r) reference) t.replicas
