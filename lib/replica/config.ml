type commit_scheme = Stability | Primary of int

(* How anti-entropy traffic is shipped.  [Per_write] is the paper-literal
   path: every sync event emits its own Transfer message.  [Batched]
   coalesces a replica's pushes and pull replies into one framed batch per
   peer per flush window ({!field-batch_flush}), delta-encoded against the
   peer's vector through the {!Tact_store.Batch} codec — the payload really
   is serialised, so batched configurations need wire-serialisable ops
   ({!Tact_store.Op.Named}, not [Op.Proc] closures).  Both modes reach the
   same replica databases; batched trades a bounded flush delay for far
   fewer, larger messages. *)
type sync_mode = Per_write | Batched

(* Knobs for real (Ext) transport backends and their per-peer connection
   supervisors.  Inert in simulation — the deterministic Net has no
   deadlines, sockets or retries — but validated unconditionally so a bad
   deployment config fails at [System.create]/daemon startup, not mid-run. *)
type transport_knobs = {
  connect_timeout : float;  (* deadline for one connect attempt (s) *)
  io_timeout : float;  (* read/write progress deadline (s) *)
  backoff_base : float;  (* first reconnect delay (s) *)
  backoff_cap : float;  (* ceiling for the decorrelated-jitter backoff (s) *)
  retry_limit : int;
      (* consecutive failed connects before the supervisor stops dialling and
         waits for a probe interval instead; 0 = never stop *)
  half_open_after : float;
      (* silence window (s) after which an apparently-live connection is
         suspected half-open and probed *)
  max_frame : int;  (* largest accepted wire frame (bytes) *)
  listen_backlog : int;
  drain_timeout : float;  (* grace for the daemon's SIGTERM drain (s) *)
}

let default_transport =
  {
    connect_timeout = 5.0;
    io_timeout = 10.0;
    backoff_base = 0.1;
    backoff_cap = 5.0;
    retry_limit = 0;
    half_open_after = 30.0;
    max_frame = Tact_store.Transport.default_max_frame;
    listen_backlog = 16;
    drain_timeout = 5.0;
  }

type t = {
  conits : Tact_core.Conit.t list;
  commit_scheme : commit_scheme;
  budget_policy : Tact_protocols.Budget.policy;
  antientropy_period : float option;
  retry_period : float;
  truncate_keep : int option;
  initial_db : (string * Tact_store.Value.t) list;
  trace : Tact_util.Trace.t option;
  gossip_plan : (int -> int array) option;
  sync : sync_mode;
  batch_flush : float;
      (* debounce window: a peer marked dirty is flushed one batch this long
         after the first mark (Batched mode only) *)
  record_accesses : bool;
      (* capture per-access observation records (the verifier's food); off
         for long bounded-memory runs, where they grow without bound *)
  bounded_log : bool;
      (* bound per-replica log memory by the truncation horizon: disables
         the commit journal and evicts truncated writes' side-table entries
         (see Wlog.create_bounded); requires record_accesses = false *)
  fault_oe_slack : float;
  fault_crash_replay : bool;
  shards : int;
      (* number of shards the conit space is partitioned into (Sharded
         systems); plain [System]s serve the whole space as one shard *)
  shard_id : int;
      (* which shard this replica instance's log serves — stamped into every
         outgoing Batch frame and checked against incoming ones, so a frame
         leaked across shards is rejected (and counted) instead of applied *)
  interest : (int -> int list) option;
      (* interest sets: [interest r] is the sorted list of shards replica [r]
         subscribes to (it replicates, syncs and serves only those); [None]
         subscribes every replica to every shard *)
  fault_wrong_shard : bool;
      (* planted bug: the sharded router delivers each submission to the
         next shard over — exists so tests can prove the interest-set-aware
         checker still catches cross-shard leaks *)
  transport : transport_knobs;
      (* deadlines, backoff and framing bounds for real transport backends;
         inert in simulation but always validated *)
}

let default =
  {
    conits = [];
    commit_scheme = Stability;
    budget_policy = Tact_protocols.Budget.Even;
    antientropy_period = None;
    retry_period = 1.0;
    truncate_keep = None;
    initial_db = [];
    trace = None;
    gossip_plan = None;
    sync = Per_write;
    batch_flush = 0.05;
    record_accesses = true;
    bounded_log = false;
    fault_oe_slack = 0.0;
    fault_crash_replay = false;
    shards = 1;
    shard_id = 0;
    interest = None;
    fault_wrong_shard = false;
    transport = default_transport;
  }

let conit t name =
  match List.find_opt (fun c -> String.equal c.Tact_core.Conit.name name) t.conits with
  | Some c -> c
  | None -> Tact_core.Conit.unconstrained name

(* A bound is malformed when it is negative or NaN (NaN compares false
   against everything, so it would silently disable the bound's checks). *)
let bad_bound x = x < 0.0 || Float.is_nan x

let bad_interest ~n t =
  match t.interest with
  | None -> None
  | Some interest ->
    let bad = ref None in
    for r = 0 to n - 1 do
      if !bad = None then begin
        let is = interest r in
        if is = [] then bad := Some (r, -1)
        else
          List.iter
            (fun s -> if s < 0 || s >= t.shards then bad := Some (r, s))
            is
      end
    done;
    !bad

let bad_gossip_plan ~n t =
  match t.gossip_plan with
  | None -> None
  | Some plan ->
    let bad = ref None in
    for i = 0 to n - 1 do
      if !bad = None then
        Array.iter
          (fun j ->
            if j < 0 || j >= n || j = i then bad := Some (i, j))
          (plan i)
    done;
    !bad

(* Validate the transport knobs.  [not (x > 0.0)] rather than [x <= 0.0]
   so NaN — which compares false against everything and would silently
   disable a deadline — is rejected too. *)
let bad_transport (k : transport_knobs) =
  let err fmt = Printf.ksprintf Option.some fmt in
  if not (k.connect_timeout > 0.0) then
    err "transport.connect_timeout must be positive (got %g)" k.connect_timeout
  else if not (k.io_timeout > 0.0) then
    err "transport.io_timeout must be positive (got %g)" k.io_timeout
  else if not (k.backoff_base > 0.0) then
    err "transport.backoff_base must be positive (got %g)" k.backoff_base
  else if not (k.backoff_cap >= k.backoff_base) then
    err "transport.backoff_cap %g is below backoff_base %g" k.backoff_cap
      k.backoff_base
  else if k.retry_limit < 0 then
    err "transport.retry_limit must be non-negative (got %d; 0 = unbounded)"
      k.retry_limit
  else if not (k.half_open_after > 0.0) then
    err "transport.half_open_after must be positive (got %g)" k.half_open_after
  else if k.max_frame < 1024 then
    err "transport.max_frame must be at least 1024 bytes (got %d)" k.max_frame
  else if k.max_frame > 1 lsl 30 then
    err "transport.max_frame %d exceeds the 1 GiB sanity cap" k.max_frame
  else if k.listen_backlog < 1 then
    err "transport.listen_backlog must be at least 1 (got %d)" k.listen_backlog
  else if not (k.drain_timeout > 0.0) then
    err "transport.drain_timeout must be positive (got %g)" k.drain_timeout
  else None

let validate ~n t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if n <= 0 then err "system size must be positive (got %d)" n
  else
    match t.commit_scheme with
    | Primary p when p < 0 || p >= n ->
      err "primary %d is not a replica id (n = %d)" p n
    | Primary _ | Stability -> (
      match t.antientropy_period with
      | Some p when p <= 0.0 -> err "anti-entropy period must be positive"
      | _ ->
        if t.retry_period <= 0.0 then err "retry period must be positive"
        else if (match t.truncate_keep with Some k -> k < 0 | None -> false)
        then err "truncate_keep must be non-negative"
        else if t.sync = Batched && t.batch_flush <= 0.0 then
          err "batch_flush must be positive in Batched sync mode"
        else if t.bounded_log && t.record_accesses then
          err "bounded_log requires record_accesses = false (observation \
               capture needs the commit journal)"
        else begin
          let names = List.map (fun c -> c.Tact_core.Conit.name) t.conits in
          if List.length (List.sort_uniq String.compare names) <> List.length names
          then err "duplicate conit declarations"
          else if
            List.exists
              (fun (c : Tact_core.Conit.t) ->
                bad_bound c.ne_bound || bad_bound c.ne_rel_bound
                || bad_bound c.oe_bound || bad_bound c.st_bound)
              t.conits
          then err "conit bounds must be non-negative"
          else if t.shards < 1 then err "shards must be >= 1 (got %d)" t.shards
          else if t.shard_id < 0 || t.shard_id >= t.shards then
            err "shard_id %d is not a shard (shards = %d)" t.shard_id t.shards
          else
            match bad_interest ~n t with
            | Some (r, -1) -> err "replica %d has an empty interest set" r
            | Some (r, s) ->
              err "replica %d subscribes to shard %d (shards = %d)" r s t.shards
            | None -> (
              match bad_gossip_plan ~n t with
              | Some (i, j) ->
                err "gossip plan for replica %d targets %d (not a peer id, n = %d)"
                  i j n
              | None -> (
                match bad_transport t.transport with
                | Some m -> Error m
                | None -> Ok ()))
        end)

(* ------------------------------------------------------------------ *)
(* Static-analysis hook                                                *)

(* The analyzer lives above this library (it reads [Config.t]), so the
   dependency is inverted through a registration point: [Tact_analysis.Guard]
   installs itself here and {!System.create} calls through.  Unset, the hook
   is free. *)
(* SA030/SA020 baselined -- intentional dependency-inversion point, set
   once at startup by Tact_analysis.Guard and never per-run, so replayed
   executions all observe the same hook *)
let analyze_hook : (n:int -> t -> unit) option ref = ref None

let set_analyze_hook h = analyze_hook := h

let run_analyze_hook ~n t =
  match !analyze_hook with None -> () | Some h -> h ~n t
