(** The replica wire codec: every protocol message, actually serialisable.

    The deterministic simulator delivers {!msg} values as closures (the
    bit-identical fast path); a real transport ({!Tact_transport.Tcp})
    delivers bytes and feeds them back through {!Replica.deliver_wire}.
    This module is the seam: {!to_string} produces the payload a stream
    backend frames (4-byte length prefix, {!Tact_store.Transport}), and
    {!decode} is total over arbitrary bytes — hostile input returns
    [Error (Transport.Malformed _)], never raises, and never allocates
    proportionally to a corrupt count field.

    [Op.Proc] closures are simulation-only and cannot cross this seam:
    encoding one raises {!Tact_store.Codec.Unserializable} — live
    configurations use {!Tact_store.Op.Named} registered procedures, exactly
    as Batched sync already requires. *)

open Tact_store

type msg =
  | Transfer of {
      from : int;
      writes : Write.t list;
      vector : Version_vector.t;  (** sender's full vector at send time *)
      cover : float array;  (** sender's per-origin cover times *)
      csn_start : int;
      csn : Write.id list;
      rate : float;  (** sender's write-rate estimate, for adaptive budgets *)
      kind : [ `Push | `Pull_reply of int | `Gossip ];
    }
  | Snapshot of {
      from : int;
      snap : Wlog.snapshot;
      writes : Write.t list;  (** retained writes past the snapshot *)
      vector : Version_vector.t;
      cover : float array;
      rate : float;
      round : int;  (** 0 when not a pull-round reply *)
    }
  | Pull_req of { from : int; vector : Version_vector.t; csn_known : int; round : int }
  | Ack of { from : int; vector : Version_vector.t; csn_known : int }
  | Batch_frame of string
      (** one {!Tact_store.Batch} frame, actually serialised *)

val sender : msg -> int option
(** The sender id a message claims, for source authentication against the
    transport-level peer identity ([None] for {!Batch_frame}, whose embedded
    header carries its own — checked when the batch is applied). *)

val encode : Codec.Frame.t -> msg -> unit
(** Append the message's encoding (own magic + version, distinct from
    {!Tact_store.Batch}) to an encode arena. *)

val to_string : msg -> string

val decode : string -> (msg, Transport.error) result
(** Total decode for untrusted input: corrupt, truncated, oversized-count or
    trailing-garbage buffers return [Error (Transport.Malformed _)] — never
    an exception, never an allocation proportional to a corrupt count. *)
