open Tact_store
open Tact_core

type 'a op_class = {
  name : string;
  affects : 'a -> (string * float * float) list;
  depends : 'a -> (string * Bounds.t) list;
  op : 'a -> Op.t;
}

let op_class ~name ?(affects = fun _ -> []) ?(depends = fun _ -> []) ~op () =
  { name; affects; depends; op }

let class_name c = c.name
let class_affects c = c.affects
let class_depends c = c.depends

let annotate session ~affects ~depends =
  List.iter
    (fun (conit, nweight, oweight) ->
      Session.affect_conit session conit ~nweight ~oweight)
    affects;
  List.iter
    (fun (conit, (b : Bounds.t)) ->
      Session.dependon_conit session conit ~ne:b.ne ~ne_rel:b.ne_rel ~oe:b.oe
        ~st:b.st ())
    depends

let submit c session arg ~k =
  annotate session ~affects:(c.affects arg) ~depends:(c.depends arg);
  Session.write session (c.op arg) ~k

type 'a query = {
  q_name : string;
  q_depends : 'a -> (string * Bounds.t) list;
  q_read : 'a -> Db.t -> Value.t;
}

let query_name q = q.q_name
let query_depends q = q.q_depends

let query ~name ?(depends = fun _ -> []) ~read () =
  { q_name = name; q_depends = depends; q_read = read }

let ask q session arg ~k =
  annotate session ~affects:[] ~depends:(q.q_depends arg);
  Session.read session (q.q_read arg) ~k

(* ------------------------------------------------------------------ *)
(* Interest-set derivation                                             *)

let class_conits c arg =
  List.map (fun (conit, _, _) -> conit) (c.affects arg)
  @ List.map fst (c.depends arg)

let query_conits q arg = List.map fst (q.q_depends arg)

(* The sorted, deduplicated shard ids a set of conits routes to — how a
   replica's interest set is derived from the accesses it will issue. *)
let interest ~router conits =
  List.map (Shard.route router) conits |> List.sort_uniq Int.compare
