(** Per-system configuration for a set of TACT replicas. *)

type commit_scheme =
  | Stability
      (** Writes commit in canonical timestamp order once every origin's
          cover time has passed them.  The committed order is compatible with
          external and causal order, so order-error bounds hold with respect
          to the canonical ECG history (the property Theorems 2/3 need). *)
  | Primary of int
      (** The given replica assigns commit sequence numbers in arrival order
          (Bayou-style).  Commit progress needs only the primary, not every
          origin — faster under partitions that spare the primary — but the
          committed order is not in general compatible with external order
          (1SR, not 1SR+EXT).  Ablation E12 compares the two. *)

(** How anti-entropy traffic is shipped. *)
type sync_mode =
  | Per_write
      (** The paper-literal path: every sync event (budget push, retry,
          gossip tick, pull reply) emits its own [Transfer] message. *)
  | Batched
      (** Coalesced framed batches: a replica marks a peer dirty instead of
          sending immediately, and one {!Tact_store.Batch} frame — delta
          against the peer's last-known vector, or a snapshot fallback when
          the log has truncated past it — is flushed per dirty peer per
          {!field-batch_flush} window.  Payloads are truly serialised through
          {!Tact_store.Codec.Frame}, so ops must be wire-serialisable
          ([Op.Named], not [Op.Proc] closures).  Same final databases as
          [Per_write]; far fewer, larger messages. *)

(** Knobs for real transport backends ({!Tact_transport.Tcp}) and their
    per-peer connection supervisors.  Inert in simulation — the deterministic
    net has no deadlines, sockets or retries — but validated unconditionally
    ({!validate}), so a bad deployment configuration fails at system or
    daemon startup rather than mid-run. *)
type transport_knobs = {
  connect_timeout : float;  (** deadline for one connect attempt (seconds) *)
  io_timeout : float;  (** read/write progress deadline (seconds) *)
  backoff_base : float;  (** first reconnect delay (seconds) *)
  backoff_cap : float;
      (** ceiling for the decorrelated-jitter exponential backoff (seconds) *)
  retry_limit : int;
      (** consecutive failed connects before the supervisor stops dialling
          and falls back to probing once per backoff cap; [0] = never stop *)
  half_open_after : float;
      (** silence window (seconds) after which an apparently-live connection
          is suspected half-open and probed *)
  max_frame : int;  (** largest accepted wire frame (bytes) *)
  listen_backlog : int;
  drain_timeout : float;
      (** grace period for the daemon's SIGTERM drain (seconds) *)
}

val default_transport : transport_knobs
(** 5 s connect, 10 s io, 0.1–5 s backoff, unbounded retries, 30 s half-open
    window, 16 MiB frames, backlog 16, 5 s drain. *)

type t = {
  conits : Tact_core.Conit.t list;
      (** declared conits; any conit not listed is treated as unconstrained *)
  commit_scheme : commit_scheme;
  budget_policy : Tact_protocols.Budget.policy;
  antientropy_period : float option;
      (** background gossip period (seconds); [None] disables gossip so that
          only the compulsory protocol traffic remains — the configuration
          the overhead experiments measure *)
  retry_period : float;
      (** how often a blocked access re-issues its synchronisation requests
          (covers message loss under partitions) *)
  truncate_keep : int option;
      (** retain at most this many committed writes in the log, discarding
          the oldest after each commitment step; peers that fall behind the
          truncation point are brought up to date with a full-state snapshot
          instead of a write-by-write diff.  [None] retains everything. *)
  initial_db : (string * Tact_store.Value.t) list;
  trace : Tact_util.Trace.t option;
      (** when set, replicas record their protocol lifecycle events (accepts,
          transfers, commits, blocked/served accesses, snapshots) into this
          shared trace — an observability hook for debugging and the CLI *)
  gossip_plan : (int -> int array) option;
      (** per-replica gossip target ring, cycled one target per gossip tick;
          [None] means round-robin over every peer.  Topology-aware plans
          (e.g. mostly-LAN gossip with designated WAN bridges) cut wide-area
          traffic — experiment E21. *)
  sync : sync_mode;  (** anti-entropy shipping mode; default [Per_write] *)
  batch_flush : float;
      (** [Batched] only: the debounce window (seconds) between a peer first
          becoming dirty and its coalesced batch frame being flushed *)
  record_accesses : bool;
      (** capture per-access observation records ({!Replica.records}, the
          consistency verifier's input).  Default [true]; disable for long
          bounded-memory runs — the records grow with every access,
          forever. *)
  bounded_log : bool;
      (** bound per-replica log memory by the truncation horizon: the write
          log drops its append-only commit journal and evicts truncated
          writes' side-table entries ({!Tact_store.Wlog.create_bounded}).
          Requires [record_accesses = false]; pair with [truncate_keep]. *)
  fault_oe_slack : float;
      (** fault-injection knob for checker validation only: extra order-error
          slack the accept path wrongly grants (a planted off-by-[slack] bug).
          Must stay 0 in real configurations — the mutation tests set it to
          prove [tact_check] catches the resulting bound violations. *)
  fault_crash_replay : bool;
      (** fault-injection knob for fuzzer validation only: a planted recovery
          bug where {!Replica.crash} notifies the parked accesses' clients
          (their [on_timeout] fires) but forgets to drop the queue entries, so
          recovery replays them and clients observe a double completion.  Must
          stay [false] in real configurations — the nemesis mutation tests
          enable it to prove [tact_fuzz] catches, shrinks, and replays the
          resulting liveness violation (doc/FAULTS.md). *)
  shards : int;
      (** how many shards the conit space is partitioned into (see
          {!Tact_store.Shard}).  Plain {!System}s serve the whole space as
          one shard; {!Sharded} systems build one sub-system per shard.
          Default 1. *)
  shard_id : int;
      (** the shard this replica instance's log serves.  Stamped into every
          outgoing {!Tact_store.Batch} frame and checked against incoming
          ones: a frame carrying another shard's log is rejected (and counted
          in {!Replica.stats}) instead of applied.  Default 0. *)
  interest : (int -> int list) option;
      (** interest sets: [interest r] is the sorted list of shard ids replica
          [r] subscribes to — it replicates, syncs and serves only those
          shards, and only they are required to converge at it ({!Tact_check}
          O3).  [None] (default) subscribes every replica to every shard. *)
  fault_wrong_shard : bool;
      (** fault-injection knob for checker validation only: a planted routing
          bug where the sharded router delivers each submission to the next
          shard over.  Must stay [false] in real configurations — the shard
          tests enable it to prove the interest-set-aware oracle still
          catches cross-shard leaks. *)
  transport : transport_knobs;
      (** deadlines, backoff and framing bounds for real transport backends;
          default {!default_transport} *)
}

val default : t
(** Stability commitment, even budgets, no gossip, 1 s retry, empty db, no
    declared conits. *)

val conit : t -> string -> Tact_core.Conit.t
(** The declaration for a conit name (unconstrained if undeclared). *)

val bad_gossip_plan : n:int -> t -> (int * int) option
(** The first out-of-range or self-referential gossip target, as
    [(replica, target)], probing the plan for every replica id.  [None] when
    no plan is set or the plan is well-formed.  Shared by {!validate} and the
    static analyzer. *)

val validate : n:int -> t -> (unit, string) result
(** Sanity-check a configuration against the system size: the primary id
    must name a replica, periods must be positive, retention non-negative,
    conit names unique, every declared bound (NE, relative NE, OE, ST)
    non-negative and non-NaN, [gossip_plan], when set, must return peer ids
    in range for every replica, and the {!transport_knobs} must be coherent
    (positive non-NaN deadlines, [backoff_base <= backoff_cap], a sane
    [max_frame], a positive backlog).  {!System.create} runs this and raises
    [Invalid_argument] on [Error]. *)

val set_analyze_hook : (n:int -> t -> unit) option -> unit
(** Register (or clear) the static-analysis hook that {!System.create} runs
    after {!validate}.  Installed by [Tact_analysis.Guard] — the analyzer
    depends on this library, so the call is inverted through this hook.  The
    hook may raise (e.g. [Invalid_argument]) to reject the configuration. *)

val run_analyze_hook : n:int -> t -> unit
(** Invoke the registered hook, if any. *)
