(** Declarative application specifications — Section 3.4's five conceptual
    steps, packaged as values.

    The paper prescribes: (1) crystallize the application's consistency
    semantics; (2) determine how each write affects them and with what
    weights; (3) attach `AffectConit` statements; (4) determine each access's
    depend-on set and level; (5) attach `DependonConit` statements.  Steps
    2–5 are mechanical once the semantics are fixed — an {!op_class} (for
    writes) or {!query} (for reads) captures them once, parameterized over
    the operation's argument, and every submission through it is annotated
    consistently:

    {[
      let post : post_args Spec.op_class =
        Spec.op_class ~name:"post"
          ~affects:(fun a ->
            ("AllMsg", 1.0, 1.0)
            :: (if a.by_friend then [ ("MsgFromFriends", 1.0, 1.0) ] else []))
          ~op:(fun a -> Op.Append ("board", Value.Str a.text))
          ()
      in
      Spec.submit post session { text = "hi"; by_friend = true } ~k
    ]} *)

type 'a op_class

val op_class :
  name:string ->
  ?affects:('a -> (string * float * float) list) ->
  ?depends:('a -> (string * Tact_core.Bounds.t) list) ->
  op:('a -> Tact_store.Op.t) ->
  unit ->
  'a op_class
(** [affects] yields [(conit, nweight, oweight)] triples (step 2/3); [depends]
    the access's consistency requirements (step 4/5); both default to none. *)

val class_name : 'a op_class -> string

val class_affects : 'a op_class -> 'a -> (string * float * float) list
val class_depends : 'a op_class -> 'a -> (string * Tact_core.Bounds.t) list
(** The class's annotation functions, exposed so the static analyzer can
    evaluate them over representative arguments. *)

val submit :
  'a op_class -> Session.t -> 'a -> k:(Tact_store.Op.outcome -> unit) -> unit
(** Annotate the session per the class and submit the write. *)

type 'a query

val query :
  name:string ->
  ?depends:('a -> (string * Tact_core.Bounds.t) list) ->
  read:('a -> Tact_store.Db.t -> Tact_store.Value.t) ->
  unit ->
  'a query

val query_name : 'a query -> string
val query_depends : 'a query -> 'a -> (string * Tact_core.Bounds.t) list

val ask : 'a query -> Session.t -> 'a -> k:(Tact_store.Value.t -> unit) -> unit

val class_conits : 'a op_class -> 'a -> string list
(** Every conit the class's affects and depends touch for one argument —
    raw material for interest-set derivation (may contain duplicates). *)

val query_conits : 'a query -> 'a -> string list

val interest : router:Tact_store.Shard.t -> string list -> int list
(** The sorted, deduplicated shard ids the given conits route to: a
    replica's interest set is [interest ~router] of the conits its op
    classes and queries touch ({!class_conits}, {!query_conits}) — it
    subscribes to and syncs exactly those shards ({!Config.interest}). *)
