(** A complete replicated system: N replicas over a simulated network.

    The system also plays the omniscient observer: it registers every write
    accepted anywhere (with its causal context), which is what {!Verify} and
    the experiment harness consume. *)

type t

val create :
  ?seed:int ->
  ?jitter:float ->
  ?loss:float ->
  ?track_writes:bool ->
  topology:Tact_sim.Topology.t ->
  config:Config.t ->
  unit ->
  t
(** Build and wire the replicas; background activity starts on first [run].
    [jitter] is the fractional random extra latency per message (default
    0.05); [loss] is an independent per-message drop probability (default
    0).  [track_writes] (default true) keeps the omniscient per-write
    registry behind {!all_writes}/{!return_time}/{!accept_vector}; disable it
    for bounded-memory scale runs, where it grows with every write ever
    accepted (those accessors then see nothing). *)

val engine : t -> Tact_sim.Engine.t
val config : t -> Config.t
val net : t -> Tact_sim.Net.t
val size : t -> int
val replica : t -> int -> Replica.t
val now : t -> float

val run : ?until:float -> t -> unit
(** Drain the event queue (up to virtual time [until]).  Equivalent to
    {!prepare}, [Engine.run], {!collect_returns}.  If a replica raises out of
    an event handler, every replica's transport is torn down ({!close})
    before the exception propagates — an aborted run never leaks backend
    resources. *)

val close : t -> unit
(** Idempotent: tear down every replica's transport ({!Replica.close}).
    Further protocol sends are inert; inspection (records, stats, databases)
    still works.  [run] calls this automatically on an exceptional exit. *)

val prepare : t -> unit
(** Start background activity (gossip, retry loops) on every replica without
    draining any events.  Idempotent; [run] calls it.  Exposed so a driver
    that owns several systems ({!Sharded}) can start them all and then drain
    their engines together with [Engine.run_group]. *)

val collect_returns : t -> unit
(** Fold write return times out of the replicas' access records into the
    omniscient write registry ({!return_time}).  [run] does this after
    draining; a driver using [Engine.run_group] must call it itself. *)

val all_writes : t -> Tact_store.Write.t list
(** Every write accepted anywhere, in canonical (timestamp) order. *)

val write_count : t -> int

val find_write : t -> Tact_store.Write.id -> Tact_store.Write.t option

val return_time : t -> Tact_store.Write.id -> float
(** When the write returned to its client (the basis of external order). *)

val accept_vector : t -> Tact_store.Write.id -> Tact_store.Version_vector.t
(** The originating replica's vector just before accepting the write — the
    write's causal context. *)

val records : t -> Tact_core.Access.t list
(** All access records from all replicas, ordered by serve time. *)

val traffic : t -> Tact_sim.Net.stats

val total_stats : t -> Replica.stats
(** Replica protocol counters summed across the system. *)

val converged : t -> bool
(** Do all replicas hold identical full database images?  (The eventual-
    consistency check after quiescence.) *)
