open Tact_sim
open Tact_store

(* A sharded system is an array of fully independent sub-systems, one per
   shard: shard [s]'s sub-system spans exactly the replicas whose interest
   set contains [s], each running its own engine, network and replica set
   over the shard's slice of the conit space.  Nothing mutable is shared
   between shards (the router is immutable), which is what lets [run]
   dispatch the shard engines across pool domains with bit-identical
   results at any job count. *)

type t = {
  router : Shard.t;
  cfg : Config.t;  (* the global, unsharded-shape configuration *)
  n : int;  (* global replica count *)
  members : int array array;  (* shard -> sorted global replica ids *)
  local_of : int array array;  (* shard -> (global id -> local idx, -1 if out) *)
  subs : System.t array;
  fault_wrong_shard : bool;
}

let full_interest nshards = List.init nshards Fun.id

(* Shard [s]'s view of the world: member replicas renumbered 0..m-1, link
   characteristics inherited from the global topology. *)
let sub_topology (topology : Topology.t) members =
  let m = Array.length members in
  {
    Topology.n = m;
    latency = (fun a b -> topology.Topology.latency members.(a) members.(b));
    bandwidth = (fun a b -> topology.Topology.bandwidth members.(a) members.(b));
  }

(* Project the global gossip plan onto the shard's members: keep only member
   targets, renumbered locally.  If any member's ring projects to empty the
   plan is dropped for the whole shard (round-robin fallback) — a partial
   plan would starve that replica's gossip. *)
let sub_gossip_plan plan members local_of =
  let project g =
    Array.to_list (plan g)
    |> List.filter_map (fun j ->
           if local_of.(j) >= 0 then Some local_of.(j) else None)
    |> Array.of_list
  in
  let rings = Array.map project members in
  if Array.exists (fun ring -> Array.length ring = 0) rings then None
  else Some (fun i -> rings.(i))

let sub_config router s members local_of (cfg : Config.t) =
  let commit_scheme =
    match cfg.Config.commit_scheme with
    | Config.Stability -> Config.Stability
    | Config.Primary p ->
      if local_of.(p) < 0 then
        invalid_arg
          (Printf.sprintf
             "Sharded.create: primary %d does not subscribe to shard %d" p s)
      else Config.Primary local_of.(p)
  in
  let gossip_plan =
    match cfg.Config.gossip_plan with
    | None -> None
    | Some plan -> sub_gossip_plan plan members local_of
  in
  {
    cfg with
    Config.conits =
      List.filter
        (fun (c : Tact_core.Conit.t) -> Shard.route router c.name = s)
        cfg.Config.conits;
    commit_scheme;
    gossip_plan;
    shard_id = s;
    interest = None;  (* within a shard, every member fully replicates it *)
    fault_wrong_shard = false;  (* the planted bug lives in [target_shard] *)
  }

let create ?(seed = 42) ?(jitter = 0.05) ?(loss = 0.0) ?(track_writes = true)
    ?router ~topology ~config () =
  let n = topology.Topology.n in
  (match Config.validate ~n config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Sharded.create: " ^ m));
  let router =
    match router with
    | Some r ->
      if Shard.shards r <> config.Config.shards then
        invalid_arg
          (Printf.sprintf
             "Sharded.create: router has %d shards but config declares %d"
             (Shard.shards r) config.Config.shards);
      r
    | None ->
      if config.Config.shards = 1 then Shard.single
      else Shard.by_hash ~shards:config.Config.shards
  in
  let nshards = Shard.shards router in
  let interest =
    match config.Config.interest with
    | Some f -> f
    | None -> fun _ -> full_interest nshards
  in
  let members =
    Array.init nshards (fun s ->
        let ms = ref [] in
        for r = n - 1 downto 0 do
          if List.mem s (interest r) then ms := r :: !ms
        done;
        if !ms = [] then
          invalid_arg
            (Printf.sprintf "Sharded.create: shard %d has no subscribers" s);
        Array.of_list !ms)
  in
  let local_of =
    Array.map
      (fun ms ->
        let map = Array.make n (-1) in
        Array.iteri (fun li g -> map.(g) <- li) ms;
        map)
      members
  in
  let subs =
    Array.init nshards (fun s ->
        System.create ~seed:(seed + s) ~jitter ~loss ~track_writes
          ~topology:(sub_topology topology members.(s))
          ~config:(sub_config router s members.(s) local_of.(s) config)
          ())
  in
  {
    router;
    cfg = config;
    n;
    members;
    local_of;
    subs;
    fault_wrong_shard = config.Config.fault_wrong_shard;
  }

let router t = t.router
let shards t = Array.length t.subs
let size t = t.n
let config t = t.cfg
let sub t s = t.subs.(s)
let members t s = Array.copy t.members.(s)
let engine t ~shard = System.engine t.subs.(shard)

let local_id t ~shard r =
  let li = t.local_of.(shard).(r) in
  if li < 0 then None else Some li

let subscribed t ~shard r = t.local_of.(shard).(r) >= 0

let replica t ~shard r =
  match local_id t ~shard r with
  | Some li -> System.replica t.subs.(shard) li
  | None ->
    invalid_arg
      (Printf.sprintf "Sharded.replica: replica %d does not subscribe to \
                       shard %d" r shard)

let now t =
  Array.fold_left (fun acc s -> Float.max acc (System.now s)) 0.0 t.subs

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

(* The shard an access belongs to: the single shard all its conits route
   to.  Conit-less accesses go to shard 0, like conit-less writes. *)
let target_shard t conits =
  match conits with
  | [] -> 0
  | c :: rest ->
    let s = Shard.route t.router c in
    List.iter
      (fun c' ->
        let s' = Shard.route t.router c' in
        if s' <> s then
          invalid_arg
            (Printf.sprintf
               "Sharded: access spans shards %d (%s) and %d (%s)" s c s' c'))
      rest;
    s

(* Where the router actually sends the access: under the planted
   [fault_wrong_shard] bug every submission lands one shard over. *)
let routed_shard t conits =
  let s = target_shard t conits in
  if t.fault_wrong_shard then (s + 1) mod shards t else s

let route t conit = Shard.route t.router conit

let resolve t ~replica:r conits =
  let s = routed_shard t conits in
  match local_id t ~shard:s r with
  | Some li -> System.replica t.subs.(s) li
  | None ->
    invalid_arg
      (Printf.sprintf
         "Sharded: replica %d does not subscribe to shard %d (access conits \
          route there)" r s)

let submit_write ?require ?deadline ?on_timeout t ~replica:r ~deps ~affects
    ~op ~k =
  let conits =
    List.map (fun (w : Write.weight) -> w.conit) affects @ List.map fst deps
  in
  Replica.submit_write ?require ?deadline ?on_timeout
    (resolve t ~replica:r conits) ~deps ~affects ~op ~k

let submit_read ?require ?deadline ?on_timeout t ~replica:r ~deps ~f ~k =
  Replica.submit_read ?require ?deadline ?on_timeout
    (resolve t ~replica:r (List.map fst deps)) ~deps ~f ~k

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let run ?(jobs = 1) ?until t =
  Array.iter System.prepare t.subs;
  let engines = Array.map System.engine t.subs in
  if jobs > 1 && Array.length engines > 1 then
    Tact_util.Pool.with_pool ~jobs (fun pool ->
        Engine.run_group ~pool ?until engines)
  else Engine.run_group ?until engines;
  Array.iter System.collect_returns t.subs

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)

let converged t = Array.for_all System.converged t.subs

let shard_leaks t =
  let leaks = ref [] in
  Array.iteri
    (fun s sys ->
      for li = System.size sys - 1 downto 0 do
        let g = t.members.(s).(li) in
        let log = Replica.log (System.replica sys li) in
        let check (w : Write.t) =
          List.iter
            (fun (wt : Write.weight) ->
              if Shard.route t.router wt.conit <> s then
                leaks := (s, g, w.Write.id, wt.conit) :: !leaks)
            w.Write.affects
        in
        List.iter check (Wlog.committed log);
        List.iter check (Wlog.tentative log)
      done)
    t.subs;
  !leaks

let add_stats (a : Replica.stats) (b : Replica.stats) =
  {
    Replica.pushes_budget = a.pushes_budget + b.pushes_budget;
    pulls_ne = a.pulls_ne + b.pulls_ne;
    pulls_oe = a.pulls_oe + b.pulls_oe;
    pulls_st = a.pulls_st + b.pulls_st;
    gossips = a.gossips + b.gossips;
    blocked_accesses = a.blocked_accesses + b.blocked_accesses;
    snapshots_sent = a.snapshots_sent + b.snapshots_sent;
    snapshots_installed = a.snapshots_installed + b.snapshots_installed;
    timeouts = a.timeouts + b.timeouts;
    batches = a.batches + b.batches;
    wrong_shard_frames = a.wrong_shard_frames + b.wrong_shard_frames;
    malformed_frames = a.malformed_frames + b.malformed_frames;
  }

let total_stats t =
  Array.fold_left
    (fun acc sys -> add_stats acc (System.total_stats sys))
    {
      Replica.pushes_budget = 0;
      pulls_ne = 0;
      pulls_oe = 0;
      pulls_st = 0;
      gossips = 0;
      blocked_accesses = 0;
      snapshots_sent = 0;
      snapshots_installed = 0;
      timeouts = 0;
      batches = 0;
      wrong_shard_frames = 0;
      malformed_frames = 0;
    }
    t.subs

let traffic t =
  Array.fold_left
    (fun (acc : Net.stats) sys ->
      let s = System.traffic sys in
      {
        Net.messages = acc.messages + s.Net.messages;
        bytes = acc.bytes + s.Net.bytes;
        dropped = acc.dropped + s.Net.dropped;
        dropped_loss = acc.dropped_loss + s.Net.dropped_loss;
        dropped_cut = acc.dropped_cut + s.Net.dropped_cut;
        max_message = Int.max acc.max_message s.Net.max_message;
      })
    {
      Net.messages = 0;
      bytes = 0;
      dropped = 0;
      dropped_loss = 0;
      dropped_cut = 0;
      max_message = 0;
    }
    t.subs

(* Canonical serialization of the full observable state — databases, vectors
   and protocol counters of every replica of every shard, in fixed order.
   Two runs of the same workload are equivalent iff their digests match;
   the -jN determinism tests compare these strings byte-for-byte. *)
let digest t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf "[";
  Array.iteri
    (fun s sys ->
      for li = 0 to System.size sys - 1 do
        let g = t.members.(s).(li) in
        let r = System.replica sys li in
        let db = Replica.db r in
        let log = Replica.log r in
        if Buffer.length buf > 1 then Buffer.add_string buf ",";
        add "{\"shard\":%d,\"replica\":%d,\"db\":{" s g;
        List.iteri
          (fun i k ->
            if i > 0 then Buffer.add_string buf ",";
            add "%S:%S" k (Value.to_string (Db.get db k)))
          (List.sort String.compare (Db.keys db));
        Buffer.add_string buf "},\"vector\":[";
        let vec = Wlog.vector log in
        for o = 0 to Version_vector.size vec - 1 do
          if o > 0 then Buffer.add_string buf ",";
          add "%d" (Version_vector.get vec o)
        done;
        Buffer.add_string buf "],\"committed\":";
        add "%d" (Wlog.committed_count log);
        let st = Replica.stats r in
        add
          ",\"stats\":{\"gossips\":%d,\"pushes\":%d,\"pulls\":[%d,%d,%d],\
           \"blocked\":%d,\"batches\":%d,\"timeouts\":%d,\"wrong_shard\":%d}}"
          st.Replica.gossips st.Replica.pushes_budget st.Replica.pulls_ne
          st.Replica.pulls_oe st.Replica.pulls_st st.Replica.blocked_accesses
          st.Replica.batches st.Replica.timeouts st.Replica.wrong_shard_frames
      done)
    t.subs;
  Buffer.add_string buf "]";
  Buffer.contents buf

let iter_subs t f = Array.iteri f t.subs
