(** A sharded conit space: interest-set partial replication over independent
    per-shard sub-systems.

    The paper's conit model already localises consistency to named units;
    sharding exploits that locality for scale.  A {!Tact_store.Shard} router
    statically partitions the conit space into [shards] slices, and each
    slice is replicated as its own complete {!System} — its own write logs,
    database images, version vectors, network and event queue — spanning
    exactly the replicas whose {e interest set} ({!Config.interest})
    contains it.  A replica therefore stores and syncs only the shards its
    accesses touch.

    Because shards share no mutable state (the router is an immutable pure
    function), their engines are embarrassingly parallel: {!run} dispatches
    them across pool domains and the outcome is bit-identical at any job
    count ({!digest} compares equal).  With [shards = 1] and full interest,
    a sharded system reduces exactly to a plain {!System} under the same
    seed — the differential tests assert byte identity.

    Cross-shard accesses are rejected: a write's affected conits (plus any
    depend-on conits) must route to a single shard, the unit of replication.
    The wire protocol carries the shard id in every {!Tact_store.Batch}
    frame; a frame that reaches a different shard's log is rejected and
    counted ({!Replica.stats.wrong_shard_frames}) — see
    {!Config.fault_wrong_shard} for the planted routing bug the
    interest-set-aware checker must catch. *)

type t

val create :
  ?seed:int ->
  ?jitter:float ->
  ?loss:float ->
  ?track_writes:bool ->
  ?router:Tact_store.Shard.t ->
  topology:Tact_sim.Topology.t ->
  config:Config.t ->
  unit ->
  t
(** Build one sub-system per shard.  [config] is the global configuration:
    [config.shards] fixes the shard count, [config.interest] the per-replica
    subscriptions (default: every replica subscribes to every shard), and
    each shard's sub-config inherits everything else with the conit list
    filtered to the shard's slice and [shard_id] stamped.  [router] defaults
    to [Shard.by_hash ~shards] ([Shard.single] when [shards = 1]); an
    explicit router must agree with [config.shards] on the shard count.
    Shard [s] seeds its sub-system with [seed + s], so shard 0 of a 1-shard
    system replays the unsharded run exactly.

    Raises [Invalid_argument] if a shard has no subscribers, or if a
    [Primary p] scheme names a replica that does not subscribe to every
    shard (the primary must be able to commit every slice). *)

val router : t -> Tact_store.Shard.t
val shards : t -> int
val size : t -> int
(** Global replica count (replicas may subscribe to few shards). *)

val config : t -> Config.t

val sub : t -> int -> System.t
(** Shard [s]'s sub-system.  Replica ids inside it are {e local} (dense
    0..members-1); translate with {!local_id}/{!members}. *)

val members : t -> int -> int array
(** Sorted global ids of the replicas subscribed to a shard (a copy). *)

val local_id : t -> shard:int -> int -> int option
(** The local id of a global replica within a shard's sub-system, or [None]
    if it does not subscribe. *)

val subscribed : t -> shard:int -> int -> bool

val replica : t -> shard:int -> int -> Replica.t
(** The replica instance serving [shard] for global id [r].  Raises
    [Invalid_argument] if [r] does not subscribe to the shard. *)

val engine : t -> shard:int -> Tact_sim.Engine.t
(** The shard's event queue — workloads schedule client events here (each
    access must be scheduled on the engine of the shard it routes to). *)

val now : t -> float
(** Max over the shard clocks (equal across shards after a [run ~until]). *)

val route : t -> string -> int
(** The shard a conit routes to. *)

val target_shard : t -> string list -> int
(** The single shard an access touching the given conits belongs to
    (shard 0 when the list is empty).  Raises [Invalid_argument] if the
    conits span shards. *)

val submit_write :
  ?require:Tact_store.Version_vector.t ->
  ?deadline:float ->
  ?on_timeout:(unit -> unit) ->
  t ->
  replica:int ->
  deps:(string * Tact_core.Bounds.t) list ->
  affects:Tact_store.Write.weight list ->
  op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit
(** Route the write to the shard its conits live on and submit it at the
    given global replica's instance there.  Raises [Invalid_argument] if the
    replica does not subscribe to that shard or the conits span shards.
    Under {!Config.fault_wrong_shard} the routing is deliberately off by
    one shard — the planted bug. *)

val submit_read :
  ?require:Tact_store.Version_vector.t ->
  ?deadline:float ->
  ?on_timeout:(unit -> unit) ->
  t ->
  replica:int ->
  deps:(string * Tact_core.Bounds.t) list ->
  f:(Tact_store.Db.t -> Tact_store.Value.t) ->
  k:(Tact_store.Value.t -> unit) ->
  unit
(** Route by the depend-on conits ([f] runs against that shard's database
    view).  Same errors and planted-bug behaviour as {!submit_write}. *)

val run : ?jobs:int -> ?until:float -> t -> unit
(** Drain every shard's event queue (to virtual time [until]).  With
    [jobs > 1], shard engines are dispatched across a [jobs]-domain pool
    ({!Tact_sim.Engine.run_group}); shards are independent, so results are
    bit-identical to [jobs = 1]. *)

val converged : t -> bool
(** Interest-set-aware quiescent convergence: within {e every} shard, all
    subscribed replicas hold identical database images.  Replicas outside a
    shard's interest set hold nothing of it and are exempt — convergence is
    per interest set, not global. *)

val shard_leaks : t -> (int * int * Tact_store.Write.id * string) list
(** Cross-shard containment audit: every [(shard, replica, write, conit)]
    where a write resident in [shard]'s logs affects a conit routing to a
    {e different} shard.  Empty in a healthy system; non-empty under the
    {!Config.fault_wrong_shard} planted bug. *)

val total_stats : t -> Replica.stats
(** Protocol counters summed over every replica of every shard. *)

val traffic : t -> Tact_sim.Net.stats
(** Network totals summed across shards ([max_message] is the max). *)

val digest : t -> string
(** Canonical JSON serialization of the observable state: per shard, per
    member replica — sorted database image, version vector, committed count
    and protocol counters.  Deterministic; the [-j1] vs [-jN] determinism
    tests compare digests byte-for-byte. *)

val iter_subs : t -> (int -> System.t -> unit) -> unit
(** Visit each shard's sub-system in shard order (fault injection and the
    oracles map global actions onto each shard through this). *)
