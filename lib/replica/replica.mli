(** A TACT replica node.

    Each replica is a state machine driven by the discrete-event engine: it
    accepts logical reads and writes from clients, enforces the per-access
    (NE, OE, ST) bounds before serving them, and exchanges writes with peers
    through anti-entropy transfers.  The enforcement mechanisms follow
    Section 5 of the paper:

    - {b Numerical error} is bounded proactively and sender-side.  A conit's
      declared system-wide bound is split into per-writer shares
      ({!Tact_protocols.Budget}); a write {e returns to its client} only once
      the weight of this replica's unacknowledged writes fits every peer's
      share — pushing writes (and awaiting acks) when it does not.  Reads
      requesting a bound tighter than the declared one trigger a one-off pull
      round from all peers.
    - {b Order error} is bounded reactively: when an access requires a conit's
      tentative (uncommitted) weight to be below its bound, the replica drives
      the write-commitment protocol — advancing cover times via pulls under
      {!Config.Stability}, or syncing with the primary under
      {!Config.Primary} — and serves the access once the tentative suffix has
      shrunk enough.
    - {b Staleness} is bounded via per-origin cover times: serving an access
      with staleness bound [t] requires every peer's cover to be within [t]
      of now, pulling from the stale ones first.

    All client entry points are asynchronous (continuation-passing): in the
    simulation there are no threads to block, so a bound that cannot yet be
    met parks the access and the continuation fires when it is served. *)

type t

type stats = {
  pushes_budget : int;  (** transfers forced by the NE budget *)
  pulls_ne : int;  (** pull rounds for tighter-than-declared NE *)
  pulls_oe : int;  (** sync actions forced by OE bounds *)
  pulls_st : int;  (** pulls forced by staleness bounds *)
  gossips : int;
  blocked_accesses : int;  (** accesses that could not be served immediately *)
  snapshots_sent : int;  (** full-state transfers to peers behind the
                             truncation point *)
  snapshots_installed : int;
  timeouts : int;  (** accesses abandoned at their deadline *)
  batches : int;  (** coalesced anti-entropy frames sent (Batched sync) *)
  wrong_shard_frames : int;
      (** incoming Batch frames rejected because they carried another shard's
          log — nonzero only under a cross-shard routing bug *)
  malformed_frames : int;
      (** incoming wire payloads rejected before application: bytes that do
          not decode, sender-id spoofs, or embedded batch frames that fail
          the typed decoder.  Always 0 in simulation (the simulator delivers
          locally encoded messages); nonzero only when a real transport feeds
          hostile or corrupt input through {!deliver_wire}. *)
}

val create :
  id:int ->
  n:int ->
  net:Tact_sim.Net.t ->
  config:Config.t ->
  ?on_accept:(Tact_store.Write.t -> Tact_store.Version_vector.t -> unit) ->
  unit ->
  t
(** A replica mounted on the deterministic simulator — messages delivered as
    closures through {!Tact_sim.Net}, timers through the labelled engine;
    bit-identical to the pre-TRANSPORT behaviour.  [on_accept] fires whenever
    this replica accepts a locally originated write, with a copy of the
    pre-acceptance version vector (the write's causal context) — the hook the
    omniscient verifier uses. *)

val create_ext :
  id:int ->
  n:int ->
  endpoint:Tact_store.Transport.endpoint ->
  config:Config.t ->
  ?on_accept:(Tact_store.Write.t -> Tact_store.Version_vector.t -> unit) ->
  unit ->
  t
(** A replica mounted on a real transport backend through the
    {!Tact_store.Transport.endpoint} seam: outgoing messages are serialised
    through {!Wire} and handed to [ep_send]; incoming bytes must be fed to
    {!deliver_wire}.  {!connect} is not required (peers are processes, not
    values); {!crash}/{!recover} still model process-local failure. *)

val id : t -> int
val log : t -> Tact_store.Wlog.t
val db : t -> Tact_store.Db.t
val now : t -> float

val connect : t -> peers:(int -> t) -> unit
(** Wire up peer lookup (used to deliver messages).  Must be called on every
    replica before any traffic flows; {!System.create} does this. *)

val submit_read :
  ?require:Tact_store.Version_vector.t ->
  ?deadline:float ->
  ?on_timeout:(unit -> unit) ->
  t ->
  deps:(string * Tact_core.Bounds.t) list ->
  f:(Tact_store.Db.t -> Tact_store.Value.t) ->
  k:(Tact_store.Value.t -> unit) ->
  unit
(** [require] additionally delays service until the replica's log covers the
    given vector — the mechanism behind session guarantees (the replica pulls
    from the origins it lags).  [deadline] (absolute virtual time) bounds how
    long the access may stay parked on unmet bounds: if it fires first, the
    access is abandoned and [on_timeout] (if any) is invoked instead of [k] —
    the availability side of the consistency/availability tradeoff. *)

val submit_write :
  ?require:Tact_store.Version_vector.t ->
  ?deadline:float ->
  ?on_timeout:(unit -> unit) ->
  t ->
  deps:(string * Tact_core.Bounds.t) list ->
  affects:Tact_store.Write.weight list ->
  op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit

val records : t -> Tact_core.Access.t list
(** Access records emitted so far (most recent first). *)

val stats : t -> stats

val start : t -> unit
(** Begin background activity (gossip, retry loop).  Call once, after every
    replica of the system has been created. *)

val pending_count : t -> int
(** Accesses currently parked on unmet bounds (diagnostics). *)

(** {2 Crash / recovery}

    A crashed replica neither processes nor emits messages — to its peers it
    is indistinguishable from a partition.  The write log is durable
    (write-ahead semantics): recovery resumes from the full log and
    resynchronises with every peer; only execution state is volatile —
    parked accesses are abandoned on crash (their [on_timeout] callbacks
    fire), and submissions to a crashed replica fail fast the same way. *)

val crash : t -> unit
val recover : t -> unit
val is_up : t -> bool
val crash_count : t -> int

(** {2 The byte seam (real transports)} *)

val deliver_wire : t -> src:int -> string -> unit
(** Feed one incoming wire payload (the bytes inside a transport frame) into
    the protocol.  Total over hostile input: a payload that does not decode
    ({!Wire.decode}), or that claims a sender other than the authenticated
    transport peer [src], is counted in [malformed_frames] and dropped —
    never an exception, never applied. *)

val malformed_frames : t -> int
(** Rejected incoming payloads so far (also in {!stats}). *)

val resync : t -> peer:int -> unit
(** Send one targeted resynchronisation pull to [peer] (no-op for out-of-range
    or self).  The reply — delta against our vector, or a snapshot via the
    peer's {!Tact_store.Batch.plan} if it has truncated past us — heals
    whatever a dead link missed; transport supervisors call this whenever a
    peer connection (re)establishes. *)

val close : t -> unit
(** Idempotent transport teardown: subsequent sends are inert, and an
    external backend's [ep_close] runs (once).  Protocol state is untouched —
    a closed replica can still be inspected. *)

val bookkeeping_entries : t -> int
(** Size of the numerical-error bookkeeping state (per-peer, per-conit
    outstanding-weight entries).  Section 5 claims the protocols scale with
    the number of {e active} conits because this state is created on demand
    rather than statically per conit; experiment E8 measures it. *)

val sanity_check : t -> unit
(** When {!Tact_util.Sanitize.enabled}, audit this replica's execution state
    (cover times, parked-access accounting, commit and budget pointers) and
    its write log ({!Tact_store.Wlog.invariant_violations}), raising
    [Tact_util.Sanitize.Violation] tagged with the replica id and simulated
    time.  No-op otherwise.  Runs automatically after message processing and
    access submission. *)
