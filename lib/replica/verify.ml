open Tact_store
open Tact_core

type computed = {
  conit : string;
  ne : float;
  ne_rel : float;
  oe_tentative : float;
  oe_lcp : float;
  st : float;
}

type violation = {
  access : Access.t;
  metrics : computed;
  dimension : string;
  bound : float;
}

let covered vector (id : Write.id) =
  Version_vector.covers vector ~origin:id.origin ~seq:id.seq

let access_metrics sys (a : Access.t) =
  let all = System.all_writes sys in
  let return_time = System.return_time sys in
  let observed_pred id = covered a.observed_vector id in
  let actual =
    Ecg.actual_prefix ~all ~return_time ~stime:a.submit_time ~observed:observed_pred
  in
  let observed = List.filter (fun (w : Write.t) -> observed_pred w.id) all in
  let ecg = all (* already canonical *) in
  let local_writes =
    List.filter_map (System.find_write sys) (Lazy.force a.observed_local)
  in
  let tentative_writes =
    List.filter_map (System.find_write sys) a.observed_tentative
  in
  (* Writes that returned before submission but were not observed: the pool
     staleness is measured over. *)
  let unseen =
    List.filter
      (fun (w : Write.t) ->
        (not (observed_pred w.id)) && return_time w.id < a.submit_time)
      all
  in
  List.map
    (fun (d : Access.dep) ->
      let c = d.conit in
      let initial = (Config.conit (System.config sys) c).Conit.initial_value in
      let av = initial +. Metrics.value actual c in
      let ov = initial +. Metrics.value observed c in
      let ne = Float.abs (av -. ov) in
      let ne_rel =
        if Float.equal ne 0.0 then 0.0
        else if Float.equal av 0.0 then infinity
        else ne /. Float.abs av
      in
      {
        conit = c;
        ne;
        ne_rel;
        oe_tentative = Metrics.order_error_tentative ~tentative:tentative_writes c;
        oe_lcp = Metrics.order_error_lcp ~ecg ~local:local_writes c;
        st = Metrics.staleness ~now:a.submit_time ~unseen c;
      })
    a.deps

let check ?(lcp = false) ?(eps = 1e-9) sys =
  let violations = ref [] in
  List.iter
    (fun (a : Access.t) ->
      let ms = access_metrics sys a in
      List.iter2
        (fun (d : Access.dep) m ->
          let b = d.bound in
          let record dim bound = violations := { access = a; metrics = m; dimension = dim; bound } :: !violations in
          if m.ne > b.Bounds.ne +. eps then record "ne" b.Bounds.ne;
          if m.ne_rel > b.Bounds.ne_rel +. eps then record "ne_rel" b.Bounds.ne_rel;
          if m.oe_tentative > b.Bounds.oe +. eps then record "oe" b.Bounds.oe;
          if lcp && m.oe_lcp > b.Bounds.oe +. eps then record "oe_lcp" b.Bounds.oe;
          if m.st > b.Bounds.st +. eps then record "st" b.Bounds.st)
        a.deps ms)
    (System.records sys);
  List.rev !violations

let summarize vs =
  match vs with
  | [] -> "no violations"
  | _ ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "%d violations:\n" (List.length vs));
    List.iteri
      (fun i v ->
        if i < 20 then
          Buffer.add_string buf
            (Printf.sprintf
               "  replica %d t=%.3f conit %s: %s exceeded (ne=%g oe=%g/%g st=%g, bound %g)\n"
               v.access.Access.replica v.access.Access.submit_time v.metrics.conit
               v.dimension v.metrics.ne v.metrics.oe_tentative v.metrics.oe_lcp
               v.metrics.st v.bound))
      vs;
    Buffer.contents buf
