(* The replica wire codec: every protocol message, actually serialisable.

   The deterministic simulator delivers [msg] values as closures (the
   bit-identical fast path); a real transport delivers bytes.  This module is
   the seam between the two: [encode]/[to_string] turn any message into the
   length-delimited payload a stream backend frames, and [decode] is total
   over arbitrary bytes — corrupt input comes back as
   [Error (Transport.Malformed _)], with every count field validated against
   the remaining buffer ({!Tact_store.Codec.check_items}) before anything
   proportional to it is allocated.

   [Op.Proc] closures are simulation-only and cannot cross this seam;
   encoding one raises {!Tact_store.Codec.Unserializable} (use {!Op.Named}
   registered procedures in live configurations, as Batched sync already
   requires). *)

open Tact_store

type msg =
  | Transfer of {
      from : int;
      writes : Write.t list;
      vector : Version_vector.t;  (** sender's full vector at send time *)
      cover : float array;  (** sender's per-origin cover times *)
      csn_start : int;
      csn : Write.id list;
      rate : float;  (** sender's write-rate estimate, for adaptive budgets *)
      kind : [ `Push | `Pull_reply of int | `Gossip ];
    }
  | Snapshot of {
      from : int;
      snap : Wlog.snapshot;
      writes : Write.t list;  (** retained writes past the snapshot *)
      vector : Version_vector.t;
      cover : float array;
      rate : float;
      round : int;  (** 0 when not a pull-round reply *)
    }
  | Pull_req of { from : int; vector : Version_vector.t; csn_known : int; round : int }
  | Ack of { from : int; vector : Version_vector.t; csn_known : int }
  | Batch_frame of string
      (** one {!Tact_store.Batch} frame, actually serialised — header, CSN
          slice, vector, cover and delta/snapshot payload in a single
          message (Batched sync mode) *)

let sender = function
  | Transfer { from; _ } | Snapshot { from; _ } | Pull_req { from; _ }
  | Ack { from; _ } ->
    Some from
  | Batch_frame _ -> None (* the embedded batch header carries its own *)

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)

(* A distinct magic from Batch (0xB6) and the snapshot file format, so a
   frame routed into the wrong decoder fails on the first byte. *)
let magic = 0xA7
let version = 1

let put_cover f cover =
  Codec.put_int f (Array.length cover);
  Array.iter (Codec.put_float f) cover

let put_writes f ws =
  Codec.put_int f (List.length ws);
  List.iter (Codec.encode_write f) ws

let put_csn f csn =
  Codec.put_int f (List.length csn);
  List.iter
    (fun (id : Write.id) ->
      Codec.put_int f id.origin;
      Codec.put_int f id.seq)
    csn

let encode f msg =
  let open Codec in
  put_u8 f magic;
  put_u8 f version;
  match msg with
  | Transfer { from; writes; vector; cover; csn_start; csn; rate; kind } ->
    put_u8 f 0;
    put_int f from;
    (match kind with
    | `Push ->
      put_u8 f 0;
      put_int f 0
    | `Pull_reply round ->
      put_u8 f 1;
      put_int f round
    | `Gossip ->
      put_u8 f 2;
      put_int f 0);
    put_writes f writes;
    encode_vector f vector;
    put_cover f cover;
    put_int f csn_start;
    put_csn f csn;
    put_float f rate
  | Snapshot { from; snap; writes; vector; cover; rate; round } ->
    put_u8 f 1;
    put_int f from;
    put_int f round;
    encode_snapshot f snap;
    put_writes f writes;
    encode_vector f vector;
    put_cover f cover;
    put_float f rate
  | Pull_req { from; vector; csn_known; round } ->
    put_u8 f 2;
    put_int f from;
    encode_vector f vector;
    put_int f csn_known;
    put_int f round
  | Ack { from; vector; csn_known } ->
    put_u8 f 3;
    put_int f from;
    encode_vector f vector;
    put_int f csn_known
  | Batch_frame s ->
    put_u8 f 4;
    put_string f s

let to_string msg = Codec.to_string encode msg

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)

let get_cover c =
  let n = Codec.get_int c in
  Codec.check_items c ~n ~min_size:8 ~what:"cover";
  Array.init n (fun _ -> Codec.get_float c)

let get_writes c =
  let n = Codec.get_int c in
  (* id (16) + accept time (8) + affect count (8) + op tag (1) *)
  Codec.check_items c ~n ~min_size:33 ~what:"write";
  List.init n (fun _ -> Codec.decode_write c)

let get_csn c =
  let n = Codec.get_int c in
  Codec.check_items c ~n ~min_size:16 ~what:"csn";
  List.init n (fun _ ->
      let origin = Codec.get_int c in
      let seq = Codec.get_int c in
      { Write.origin; seq })

let decode_exn s =
  let open Codec in
  let c = cursor s in
  if get_u8 c <> magic then raise (Malformed "bad wire magic");
  let v = get_u8 c in
  if v <> version then
    raise (Malformed (Printf.sprintf "unsupported wire version %d" v));
  let msg =
    match get_u8 c with
    | 0 ->
      let from = get_int c in
      let ktag = get_u8 c in
      let round = get_int c in
      let kind =
        match ktag with
        | 0 -> `Push
        | 1 -> `Pull_reply round
        | 2 -> `Gossip
        | t -> raise (Malformed (Printf.sprintf "bad transfer kind %d" t))
      in
      let writes = get_writes c in
      let vector = decode_vector c in
      let cover = get_cover c in
      let csn_start = get_int c in
      let csn = get_csn c in
      let rate = get_float c in
      Transfer { from; writes; vector; cover; csn_start; csn; rate; kind }
    | 1 ->
      let from = get_int c in
      let round = get_int c in
      let snap = decode_snapshot c in
      let writes = get_writes c in
      let vector = decode_vector c in
      let cover = get_cover c in
      let rate = get_float c in
      Snapshot { from; snap; writes; vector; cover; rate; round }
    | 2 ->
      let from = get_int c in
      let vector = decode_vector c in
      let csn_known = get_int c in
      let round = get_int c in
      Pull_req { from; vector; csn_known; round }
    | 3 ->
      let from = get_int c in
      let vector = decode_vector c in
      let csn_known = get_int c in
      Ack { from; vector; csn_known }
    | 4 -> Batch_frame (get_string c)
    | t -> raise (Malformed (Printf.sprintf "bad wire message tag %d" t))
  in
  if c.pos <> String.length c.data then
    raise (Malformed "trailing bytes after wire message");
  msg

let decode s =
  match decode_exn s with
  | msg -> Ok msg
  | exception Codec.Malformed m -> Error (Transport.Malformed m)
  | exception Invalid_argument m -> Error (Transport.Malformed ("decode: " ^ m))
