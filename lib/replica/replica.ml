open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_protocols

(* The message type lives in {!Wire} (where its byte codec is); re-exported
   here so the protocol code keeps its unqualified constructors. *)
type msg = Wire.msg =
  | Transfer of {
      from : int;
      writes : Write.t list;
      vector : Version_vector.t;  (** sender's full vector at send time *)
      cover : float array;  (** sender's per-origin cover times *)
      csn_start : int;
      csn : Write.id list;
      rate : float;  (** sender's write-rate estimate, for adaptive budgets *)
      kind : [ `Push | `Pull_reply of int | `Gossip ];
    }
  | Snapshot of {
      from : int;
      snap : Wlog.snapshot;
      writes : Write.t list;  (** retained writes past the snapshot *)
      vector : Version_vector.t;
      cover : float array;
      rate : float;
      round : int;  (** 0 when not a pull-round reply *)
    }
  | Pull_req of { from : int; vector : Version_vector.t; csn_known : int; round : int }
  | Ack of { from : int; vector : Version_vector.t; csn_known : int }
  | Batch_frame of string
      (** one {!Tact_store.Batch} frame, actually serialised — header, CSN
          slice, vector, cover and delta/snapshot payload in a single
          message (Batched sync mode) *)

(* Which world this replica's protocol machine runs in.  [Sim] is the
   deterministic simulator: messages are delivered as closures through
   {!Net.send} (bit-identical to the pre-TRANSPORT code — digests must not
   move), timers through the labelled {!Engine}.  [Ext] is any real backend
   behind the {!Tact_store.Transport.endpoint} seam: messages are serialised
   through {!Wire} and incoming bytes enter via {!deliver_wire}. *)
type transport =
  | Sim of { net : Net.t; engine : Engine.t }
  | Ext of Transport.endpoint

type round_state = {
  mutable remaining : int;
  started : float;
  replied : bool array;
      (** per-peer reply dedup: the network may duplicate messages, and a
          round must complete only after [remaining] {e distinct} peers
          answer, not after the same reply arrives twice *)
}

type pending = {
  p_submit : float;
  p_deps : (string * Bounds.t) list;
  p_require : Version_vector.t option;
      (** serve only once the log covers this vector (session guarantees) *)
  p_on_timeout : (unit -> unit) option;
  p_kind : pkind;
  mutable p_round : int option;  (** id of an in-flight NE pull round *)
  mutable p_round_done : bool;
  mutable p_needs_round : bool;
      (** a complete pull round is required: NE tighter than the declared
          bound, or staleness too tight for targeted pulls *)
  mutable p_st_tries : int;
  mutable p_done : bool;
      (** served, timed out or abandoned; the queue entry is dead and is
          dropped lazily at the next pump *)
}

and pkind =
  | Pread of (Db.t -> Value.t) * (Value.t -> unit)
  | Pwrite of Op.t * Write.weight list * (Op.outcome -> unit)

(* A write accepted but not yet returned to its client — because the NE
   budget demands that some peers acknowledge older writes first, or because
   a zero order-error dependency makes the write commit-synchronous: the
   paper defines a write's actual result as its return value when finally
   committed, so a strong write may only return the committed outcome. *)
type unreturned = {
  u_write : Write.t;
  u_outcome : Op.outcome;  (* tentative outcome at acceptance *)
  u_wait_commit : bool;
  u_record : float -> Op.outcome -> Access.t;
  u_k : Op.outcome -> unit;
}

type stats = {
  pushes_budget : int;
  pulls_ne : int;
  pulls_oe : int;
  pulls_st : int;
  gossips : int;
  blocked_accesses : int;
  snapshots_sent : int;
  snapshots_installed : int;
  timeouts : int;
  batches : int;
  wrong_shard_frames : int;
  malformed_frames : int;
}

type t = {
  rid : int;
  n : int;
  tr : transport;
  cfg : Config.t;
  wlog : Wlog.t;
  cover : float array;  (** cover.(o): all writes from origin [o] with accept
                            time <= cover.(o) are known here *)
  acked : Version_vector.t array;  (** acked.(j): writes confirmed present at j *)
  acked_csn : int array;
  outstanding : (string, float) Hashtbl.t array;
      (** per peer: conit -> |nweight| of own accepted writes not yet
          confirmed at that peer *)
  sub_ptr : int array;  (** per peer: own seq up to which outstanding has been
                            released *)
  own_writes : Write.t Vec.t;
  csn : Csn_buffer.t;
  mutable csn_committed : int;
  mutable in_csn : (Write.id, unit) Hashtbl.t;  (** primary only *)
  mutable rate_ewma : float;
  mutable last_rate_update : float;
  rates : float array;
  mutable pending : pending Queue.t;  (** oldest first *)
  mutable npending : int;  (** live (not [p_done]) entries in [pending] *)
  return_queue : unreturned Queue.t;  (** oldest first *)
  conit_decls : (string, Conit.t) Hashtbl.t;
  rounds : (int, round_state) Hashtbl.t;
  mutable round_ctr : int;
  mutable peers : int -> t;
  mutable up : bool;
  mutable closed : bool;  (* transport torn down; sends are inert *)
  mutable crashes : int;
  on_accept : (Write.t -> Version_vector.t -> unit) option;
  mutable records : Access.t list;
  mutable retry_running : bool;
  frame : Codec.Frame.t;
      (* reusable encode arena for batched sync: cleared and refilled once
         per outgoing frame, so steady state allocates nothing *)
  dirty : bool array;  (* per peer: a coalesced batch flush is scheduled *)
  (* stats *)
  mutable s_pushes_budget : int;
  mutable s_pulls_ne : int;
  mutable s_pulls_oe : int;
  mutable s_pulls_st : int;
  mutable s_gossips : int;
  mutable s_blocked : int;
  mutable s_snapshots_sent : int;
  mutable s_snapshots_installed : int;
  mutable s_timeouts : int;
  mutable s_batches : int;
  mutable s_wrong_shard : int;
  mutable s_malformed : int;
}

let make ~id ~n ~tr ~config ?on_accept () =
  {
    rid = id;
    n;
    tr;
    cfg = config;
    wlog =
      Wlog.create_bounded
        ~journal:(not config.Config.bounded_log)
        ~evict_outcomes:config.Config.bounded_log ~replicas:n
        ~initial:config.Config.initial_db;
    cover = Array.make n 0.0;
    acked = Array.init n (fun _ -> Version_vector.create n);
    acked_csn = Array.make n 0;
    outstanding = Array.init n (fun _ -> Hashtbl.create 8);
    sub_ptr = Array.make n 0;
    own_writes = Vec.create ();
    csn = Csn_buffer.create ();
    csn_committed = 0;
    in_csn = Hashtbl.create 64;
    rate_ewma = 0.0;
    last_rate_update = 0.0;
    rates = Array.make n 0.0;
    pending = Queue.create ();
    npending = 0;
    return_queue = Queue.create ();
    conit_decls =
      (let tbl = Hashtbl.create (List.length config.Config.conits) in
       List.iter (fun (c : Conit.t) -> Hashtbl.replace tbl c.name c) config.Config.conits;
       tbl);
    rounds = Hashtbl.create 8;
    round_ctr = 0;
    peers = (fun _ -> invalid_arg "Replica: not connected (call Replica.connect)");
    up = true;
    closed = false;
    crashes = 0;
    on_accept;
    records = [];
    retry_running = false;
    frame = Codec.Frame.create ();
    dirty = Array.make n false;
    s_pushes_budget = 0;
    s_pulls_ne = 0;
    s_pulls_oe = 0;
    s_pulls_st = 0;
    s_gossips = 0;
    s_blocked = 0;
    s_snapshots_sent = 0;
    s_snapshots_installed = 0;
    s_timeouts = 0;
    s_batches = 0;
    s_wrong_shard = 0;
    s_malformed = 0;
  }

let create ~id ~n ~net ~config ?on_accept () =
  make ~id ~n ~tr:(Sim { net; engine = Net.engine net }) ~config ?on_accept ()

let create_ext ~id ~n ~endpoint ~config ?on_accept () =
  make ~id ~n ~tr:(Ext endpoint) ~config ?on_accept ()

let now t =
  match t.tr with
  | Sim { engine; _ } -> Engine.now engine
  | Ext ep -> ep.Transport.ep_now ()

(* Timer seam: in [Sim] mode these compile to exactly the labelled [Engine]
   calls the pre-TRANSPORT code made (same actor, same tags, same order), so
   simulation digests do not move. *)
let schedule t ~tag ~delay f =
  match t.tr with
  | Sim { engine; _ } ->
    Engine.schedule engine ~label:{ Engine.actor = t.rid; tag } ~delay f
  | Ext ep -> ep.Transport.ep_schedule ~tag ~delay f

let every t ~tag ~period f =
  match t.tr with
  | Sim { engine; _ } ->
    Engine.every engine ~label:{ Engine.actor = t.rid; tag } ~period f
  | Ext ep -> ep.Transport.ep_every ~tag ~period f

let trace t ~kind detail =
  match t.cfg.Config.trace with
  | None -> ()
  | Some tr ->
    Trace.record tr ~time:(now t)
      ~source:(Printf.sprintf "replica %d" t.rid) ~kind detail

let id t = t.rid
let log t = t.wlog
let db t = Wlog.db t.wlog
let connect t ~peers = t.peers <- peers
let records t = t.records
let pending_count t = t.npending

let bookkeeping_entries t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.outstanding

(* Replica-level invariant audit (TACT_SANITIZE checking mode): execution
   state that sits above the write log — cover times, parked-access
   accounting, commit-sequence and budget pointers — plus the full log audit,
   reported with this replica's id. *)
let sanity_check t =
  if Sanitize.enabled () then begin
    let ctx = Printf.sprintf "replica %d at t=%g" t.rid (now t) in
    let bad = ref [] in
    let addf fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
    let nw = now t in
    Array.iteri
      (fun o c ->
        if c > nw +. 1e-9 then
          addf "cover.(%d) = %g is in the future (now %g)" o c nw)
      t.cover;
    let live = ref 0 in
    Queue.iter (fun p -> if not p.p_done then incr live) t.pending;
    if !live <> t.npending then
      addf "npending = %d but the queue holds %d live entries" t.npending !live;
    (* Note: csn_committed may legitimately lead the known csn prefix — a
       snapshot install folds in remote commits without their csn slices. *)
    if t.csn_committed < 0 then addf "csn_committed = %d negative" t.csn_committed;
    Array.iteri
      (fun j sp ->
        if sp > Vec.length t.own_writes then
          addf "sub_ptr.(%d) = %d is beyond the own-write count (%d)" j sp
            (Vec.length t.own_writes))
      t.sub_ptr;
    Sanitize.report ~ctx (List.rev !bad);
    Wlog.sanitize ~ctx t.wlog
  end

let stats t =
  {
    pushes_budget = t.s_pushes_budget;
    pulls_ne = t.s_pulls_ne;
    pulls_oe = t.s_pulls_oe;
    pulls_st = t.s_pulls_st;
    gossips = t.s_gossips;
    blocked_accesses = t.s_blocked;
    snapshots_sent = t.s_snapshots_sent;
    snapshots_installed = t.s_snapshots_installed;
    timeouts = t.s_timeouts;
    batches = t.s_batches;
    wrong_shard_frames = t.s_wrong_shard;
    malformed_frames = t.s_malformed;
  }

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)

let msg_size n = function
  | Transfer { writes; csn; _ } ->
    (* writes + vector + cover + csn slice + headers *)
    List.fold_left (fun acc w -> acc + Write.byte_size w) 0 writes
    + (8 * n) + (8 * n) + (8 * List.length csn) + 32
  | Snapshot { snap; writes; _ } ->
    (* Snapshots are fully serialisable, so their wire size is exact — and
       computable arithmetically, without paying for the serialisation on
       every send. *)
    Codec.snapshot_byte_size snap
    + List.fold_left (fun acc w -> acc + Write.byte_size w) 0 writes
    + (2 * 8 * n) + 64
  | Pull_req _ -> (8 * n) + 16
  | Ack _ -> (8 * n) + 16
  | Batch_frame s -> String.length s

(* A crashed replica neither processes nor emits messages: its network
   activity looks exactly like loss to its peers.  The write log itself is
   durable (write-ahead semantics), so recovery resumes from the full log;
   only execution state (parked accesses, open pull rounds) is volatile. *)
let rec handle t msg = if t.up then process t msg

and send t ~dst msg =
  if t.up && not t.closed then begin
    match t.tr with
    | Sim { net; _ } ->
      (* Capture the destination's crash epoch at send time: a message still
         in flight when the target crashes belongs to the dead incarnation
         and is discarded on arrival, even if the target has since recovered.
         (Models connection state dying with the process.) *)
      let target = t.peers dst in
      let epoch = target.crashes in
      Net.send net ~src:t.rid ~dst ~size:(msg_size t.n msg) (fun () ->
          if target.crashes = epoch then handle target msg)
    | Ext ep ->
      (* Serialise through the reusable arena and hand the bytes to the
         backend.  [Ok] means accepted-or-parked, not delivered; an [Error]
         (peer down, queue bounded) is deliberately not a protocol event —
         delivery guarantees stay with the protocol's own ack/retry
         machinery, which covers a dropped send exactly like a lost
         message. *)
      Codec.Frame.clear t.frame;
      Wire.encode t.frame msg;
      (match ep.Transport.ep_send ~dst (Codec.Frame.contents t.frame) with
      | Ok () -> ()
      | Error _ -> ())
  end

and my_cover t =
  let c = Array.copy t.cover in
  c.(t.rid) <- now t;
  c

and snapshot_msg t ~round =
  t.s_snapshots_sent <- t.s_snapshots_sent + 1;
  let snap = Wlog.snapshot t.wlog in
  Snapshot
    {
      from = t.rid;
      snap;
      writes = Wlog.writes_since t.wlog snap.Wlog.snap_vector;
      vector = Version_vector.copy (Wlog.vector t.wlog);
      cover = my_cover t;
      rate = t.rate_ewma;
      round;
    }

and make_transfer t ~dst ~kind =
  if not (Wlog.can_serve t.wlog t.acked.(dst)) then snapshot_msg t ~round:0
  else
    Transfer
      {
        from = t.rid;
        writes = Wlog.writes_since t.wlog t.acked.(dst);
        vector = Version_vector.copy (Wlog.vector t.wlog);
        cover = my_cover t;
        csn_start = t.acked_csn.(dst);
        csn = Csn_buffer.slice_from t.csn t.acked_csn.(dst);
        rate = t.rate_ewma;
        kind;
      }

(* One framed batch for a peer believed to hold [peer_vector]: delta when
   the log can still serve it, snapshot fallback when truncation has passed
   the peer.  Encoded for real through the reusable frame arena — exact size
   preallocated, so steady state is one (amortised zero) allocation per
   frame. *)
and make_batch t ~peer_vector ~csn_start ~kind =
  let b =
    Batch.plan ~log:t.wlog ~peer_vector (fun payload ->
        (match payload with
        | Batch.Full _ -> t.s_snapshots_sent <- t.s_snapshots_sent + 1
        | Batch.Delta _ -> ());
        {
          Batch.from = t.rid;
          shard = t.cfg.Config.shard_id;
          kind;
          vector = Version_vector.copy (Wlog.vector t.wlog);
          cover = my_cover t;
          csn_start;
          csn = Csn_buffer.slice_from t.csn csn_start;
          rate = t.rate_ewma;
          payload;
        })
  in
  Codec.Frame.clear t.frame;
  Batch.encode t.frame b;
  t.s_batches <- t.s_batches + 1;
  Batch_frame (Codec.Frame.contents t.frame)

(* Coalescing: instead of sending immediately, mark the peer dirty and flush
   one batch per peer per flush window.  Every sync trigger that fires inside
   the window rides the same frame — this is where the per-write message
   flood collapses. *)
and flush_batch t dst =
  if t.dirty.(dst) then begin
    t.dirty.(dst) <- false;
    if t.up then
      send t ~dst
        (make_batch t ~peer_vector:t.acked.(dst) ~csn_start:t.acked_csn.(dst)
           ~kind:Batch.Push)
  end

and mark_dirty t dst =
  if not t.dirty.(dst) then begin
    t.dirty.(dst) <- true;
    schedule t ~tag:"batch" ~delay:t.cfg.Config.batch_flush (fun () ->
        flush_batch t dst)
  end

(* Sync-mode dispatch for every push-shaped trigger (budget pushes, retries,
   gossip): immediate per-write transfer, or a coalesced batch mark. *)
and push_to t ~dst =
  match t.cfg.Config.sync with
  | Config.Per_write -> send t ~dst (make_transfer t ~dst ~kind:`Push)
  | Config.Batched -> mark_dirty t dst

and transfer_reply t ~req_vector ~csn_known ~round =
  if not (Wlog.can_serve t.wlog req_vector) then snapshot_msg t ~round
  else
    Transfer
      {
        from = t.rid;
        writes = Wlog.writes_since t.wlog req_vector;
        vector = Version_vector.copy (Wlog.vector t.wlog);
        cover = my_cover t;
        csn_start = csn_known;
        csn = Csn_buffer.slice_from t.csn csn_known;
        rate = t.rate_ewma;
        kind = `Pull_reply round;
      }

(* ------------------------------------------------------------------ *)
(* Budget bookkeeping                                                  *)

and declared_bounds t conit_name =
  match Hashtbl.find_opt t.conit_decls conit_name with
  | Some c -> (c.Conit.ne_bound, c.Conit.ne_rel_bound, c.Conit.initial_value)
  | None -> (infinity, infinity, 0.0)

(* The absolute share of a receiver's NE budget this replica may consume for
   a conit; relative bounds are converted with a conservative local estimate
   of the conit's value. *)
and share_for t ~receiver conit_name =
  let ne_bound, ne_rel_bound, initial = declared_bounds t conit_name in
  let abs_bound =
    if Float.equal ne_rel_bound infinity then ne_bound
    else begin
      (* Conservative value estimate: the committed value minus everything
         still in flight could be lower, but for the monotone workloads the
         relative bound targets (counters, seat pools) the local full view is
         the estimate the TACT prototype uses. *)
      let v = Float.abs (initial +. Wlog.conit_value t.wlog conit_name) in
      Float.min ne_bound (ne_rel_bound *. v)
    end
  in
  if Float.equal abs_bound infinity then infinity
  else
    Budget.share t.cfg.Config.budget_policy ~bound:abs_bound ~n:t.n ~self:t.rid
      ~receiver ~rates:t.rates

and outstanding_for t ~peer conit_name =
  match Hashtbl.find_opt t.outstanding.(peer) conit_name with
  | Some v -> v
  | None -> 0.0

and add_outstanding t (w : Write.t) =
  for j = 0 to t.n - 1 do
    if j <> t.rid then
      if Version_vector.covers t.acked.(j) ~origin:t.rid ~seq:w.id.seq then
        (* Already confirmed (the write round-tripped before acceptance —
           possible when it was pushed ahead of its return). *)
        (if t.sub_ptr.(j) = w.id.seq - 1 then t.sub_ptr.(j) <- w.id.seq)
      else
        List.iter
          (fun { Write.conit; nweight; _ } ->
            let cur = outstanding_for t ~peer:j conit in
            Hashtbl.replace t.outstanding.(j) conit (cur +. Float.abs nweight))
          w.affects
  done

and release_outstanding t ~peer =
  (* Advance sub_ptr.(peer) to what the peer now confirms, releasing budget. *)
  let confirmed = Version_vector.get t.acked.(peer) t.rid in
  let upto = min confirmed (Vec.length t.own_writes) in
  while t.sub_ptr.(peer) < upto do
    let w = Vec.get t.own_writes t.sub_ptr.(peer) in
    t.sub_ptr.(peer) <- t.sub_ptr.(peer) + 1;
    List.iter
      (fun { Write.conit; nweight; _ } ->
        let cur = outstanding_for t ~peer conit in
        Hashtbl.replace t.outstanding.(peer) conit (cur -. Float.abs nweight))
      w.affects
  done

(* Peers whose budget this replica currently exceeds for any conit the write
   affects (empty = the write may return). *)
and over_budget_peers t (w : Write.t) =
  let result = ref [] in
  for j = t.n - 1 downto 0 do
    if j <> t.rid then
      let over =
        List.exists
          (fun { Write.conit; nweight; _ } ->
            (not (Float.equal nweight 0.0))
            && outstanding_for t ~peer:j conit > share_for t ~receiver:j conit)
          w.affects
      in
      if over then result := j :: !result
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Commitment                                                          *)

and commit_progress t =
  (match t.cfg.Config.commit_scheme with
  | Config.Stability ->
    let n = Wlog.commit_stable t.wlog ~cover:(my_cover t) in
    if n > 0 then trace t ~kind:"commit" (Printf.sprintf "%d writes (stability)" n)
  | Config.Primary _ -> commit_progress_primary t);
  match t.cfg.Config.truncate_keep with
  | Some keep -> ignore (Wlog.truncate t.wlog ~keep)
  | None -> ()

and commit_progress_primary t =
  match t.cfg.Config.commit_scheme with
  | Config.Stability -> assert false
  | Config.Primary p ->
    if t.rid = p then primary_assign t;
    (* Commit the known-csn prefix whose writes we hold. *)
    let rec advance acc =
      if
        t.csn_committed + List.length acc < Csn_buffer.known t.csn
        && Wlog.known t.wlog (Csn_buffer.get t.csn (t.csn_committed + List.length acc))
      then advance (Csn_buffer.get t.csn (t.csn_committed + List.length acc) :: acc)
      else List.rev acc
    in
    let ids = advance [] in
    if ids <> [] then begin
      ignore (Wlog.commit_ids t.wlog ids);
      t.csn_committed <- t.csn_committed + List.length ids;
      trace t ~kind:"commit" (Printf.sprintf "%d writes (csn)" (List.length ids))
    end

(* Primary: assign commit sequence numbers to every known-but-unassigned
   write, in local arrival (timestamp) order. *)
and primary_assign t =
  Wlog.iter_tentative t.wlog (fun (w : Write.t) ->
      if not (Hashtbl.mem t.in_csn w.id) then begin
        Hashtbl.replace t.in_csn w.id ();
        Csn_buffer.append t.csn w.id
      end)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

and staleness_estimate t =
  if t.n = 1 then 0.0
  else begin
    let worst = ref 0.0 in
    for j = 0 to t.n - 1 do
      if j <> t.rid then worst := Float.max !worst (now t -. t.cover.(j))
    done;
    !worst
  end

(* Does a dep require a one-off pull round (NE tighter than the declared,
   proactively maintained bound)? *)
and needs_ne_round t (conit_name, (b : Bounds.t)) =
  let ne_bound, ne_rel_bound, _ = declared_bounds t conit_name in
  b.ne < ne_bound || b.ne_rel < ne_rel_bound

and deps_satisfied t p =
  let require_ok =
    match p.p_require with
    | None -> true
    | Some v -> Version_vector.dominates (Wlog.vector t.wlog) v
  in
  require_ok
  &&
  let oe_ok =
    (* [fault_oe_slack] is 0 in real configurations; the checker's mutation
       tests raise it to plant an admission off-by-one here. *)
    List.for_all
      (fun (c, (b : Bounds.t)) ->
        Wlog.tentative_oweight t.wlog c <= b.oe +. t.cfg.Config.fault_oe_slack)
      p.p_deps
  in
  (* A pull round completed after submission implies that every write
     returned before submission has been observed — hence both numerical
     error and staleness (measured at submission, per the model) are zero. *)
  let st_ok =
    p.p_round_done
    ||
    let est = staleness_estimate t in
    List.for_all (fun (_, (b : Bounds.t)) -> est <= b.st) p.p_deps
  in
  let ne_ok = (not p.p_needs_round) || p.p_round_done in
  oe_ok && st_ok && ne_ok

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)

(* The observed prefix of an access is its origin's history when the access
   is served but before the access itself applies — capture it first, then
   finalise with times and result.  The committed part is captured as an O(1)
   cursor into the log's append-only commit journal and only expanded if a
   consumer forces [observed_local]; the tentative ids are captured eagerly
   (their deque mutates), but that cost is bounded by the commit lag, not by
   history. *)
and capture_observation t =
  if not t.cfg.Config.record_accesses then
    (* Records are discarded (see the guards at the record sites), so skip
       the vector copy, tentative-id walk and journal cursor — the cursor is
       unavailable anyway when the journal is off (bounded_log). *)
    (Version_vector.create 0, [], lazy [])
  else begin
    let vector = Version_vector.copy (Wlog.vector t.wlog) in
    let tentative = Wlog.tentative_ids t.wlog in
    let lo, hi = Wlog.commit_cursor t.wlog in
    let wlog = t.wlog in
    let local = lazy (Wlog.commit_slice wlog ~lo ~hi @ tentative) in
    (vector, tentative, local)
  end

and access_record t ~kind ~obs:(vector, tentative, local) ~submit ~serve
    ~return_t ~deps ~result =
  {
    Access.kind;
    replica = t.rid;
    submit_time = submit;
    serve_time = serve;
    return_time = return_t;
    deps = List.map (fun (conit, bound) -> { Access.conit; bound }) deps;
    observed_vector = vector;
    observed_tentative = tentative;
    observed_local = local;
    observed_result = result;
  }

and serve_read t p f k =
  let obs = capture_observation t in
  let result = f (Wlog.db t.wlog) in
  let nw = now t in
  if nw > p.p_submit then
    trace t ~kind:"served"
      (Printf.sprintf "read after %.3fs wait" (nw -. p.p_submit));
  if t.cfg.Config.record_accesses then
    t.records <-
      access_record t ~kind:Access.Read ~obs ~submit:p.p_submit ~serve:nw
        ~return_t:nw ~deps:p.p_deps ~result
      :: t.records;
  k result

and serve_write t p op affects k =
  let seq = Version_vector.get (Wlog.vector t.wlog) t.rid + 1 in
  let w =
    Write.make ~id:{ origin = t.rid; seq } ~accept_time:(now t) ~op ~affects
  in
  let obs = capture_observation t in
  let pre_vector = Version_vector.copy (Wlog.vector t.wlog) in
  let outcome = Wlog.accept t.wlog w in
  trace t ~kind:"accept" (Write.to_string w);
  Vec.push t.own_writes w;
  update_rate t;
  add_outstanding t w;
  (match t.on_accept with Some f -> f w pre_vector | None -> ());
  (* Commitment may already be possible from local knowledge (the primary
     commits its own writes; a single-replica system is trivially covered). *)
  commit_progress t;
  let serve = now t in
  let record return_t returned_outcome =
    access_record t ~kind:(Access.Write_access w.id) ~obs ~submit:p.p_submit
      ~serve ~return_t ~deps:p.p_deps ~result:(Op.result returned_outcome)
  in
  (* A zero order-error dependency makes the write commit-synchronous. *)
  let wait_commit =
    List.exists (fun (_, (b : Bounds.t)) -> Float.equal b.oe 0.0) p.p_deps
    && Wlog.final_outcome t.wlog w.id = None
  in
  let over = over_budget_peers t w in
  if over = [] && not wait_commit then begin
    if t.cfg.Config.record_accesses then
      t.records <- record serve outcome :: t.records;
    k outcome
  end
  else begin
    (* Push to the peers whose budget we exceed and return once acks bring us
       back inside every share (and, for commit-synchronous writes, once the
       write commits — driven by pulling covers from every peer). *)
    List.iter
      (fun j ->
        t.s_pushes_budget <- t.s_pushes_budget + 1;
        push_to t ~dst:j)
      over;
    if wait_commit then
      for j = 0 to t.n - 1 do
        if j <> t.rid then send_pull t ~dst:j ~round:0
      done;
    Queue.push
      { u_write = w; u_outcome = outcome; u_wait_commit = wait_commit;
        u_record = record; u_k = k }
      t.return_queue;
    ensure_retry t
  end

and update_rate t =
  (* EWMA of the local write rate (writes/s), for adaptive budget splits. *)
  let nw = now t in
  let dt = nw -. t.last_rate_update in
  if dt > 0.0 then begin
    let inst = 1.0 /. dt in
    let alpha = Float.min 1.0 (dt /. 10.0) in
    t.rate_ewma <- ((1.0 -. alpha) *. t.rate_ewma) +. (alpha *. inst);
    t.last_rate_update <- nw
  end
  else t.rate_ewma <- t.rate_ewma +. 0.1;
  t.rates.(t.rid) <- t.rate_ewma

(* ------------------------------------------------------------------ *)
(* Synchronisation triggers for a parked access                        *)

and fresh_round t =
  t.round_ctr <- t.round_ctr + 1;
  let r = t.round_ctr in
  Hashtbl.replace t.rounds r
    { remaining = t.n - 1; started = now t; replied = Array.make t.n false };
  r

(* A peer answered pull round [round] (via Snapshot or Transfer).  Count each
   peer at most once — duplicated replies must not complete a round early. *)
and round_reply t ~round ~from =
  if round > 0 then
    match Hashtbl.find_opt t.rounds round with
    | Some st ->
      if not st.replied.(from) then begin
        st.replied.(from) <- true;
        st.remaining <- st.remaining - 1;
        if st.remaining <= 0 then begin
          Hashtbl.remove t.rounds round;
          Queue.iter
            (fun p -> if p.p_round = Some round then p.p_round_done <- true)
            t.pending
        end
      end
    | None -> ()

and send_pull t ~dst ~round =
  send t ~dst
    (Pull_req
       {
         from = t.rid;
         vector = Version_vector.copy (Wlog.vector t.wlog);
         csn_known = Csn_buffer.known t.csn;
         round;
       })

and trigger_syncs t p =
  (* Session-guarantee vector requirement: pull from the origins we lag. *)
  (match p.p_require with
  | Some v when not (Version_vector.dominates (Wlog.vector t.wlog) v) ->
    for j = 0 to t.n - 1 do
      if
        j <> t.rid
        && Version_vector.get (Wlog.vector t.wlog) j < Version_vector.get v j
      then send_pull t ~dst:j ~round:0
    done
  | Some _ | None -> ());
  (* ST: pull from peers whose cover is too old; if targeted pulls have
     already failed to get under the bound (it may be tighter than the
     network's round-trip floor), escalate to a full round. *)
  let st_bound =
    List.fold_left (fun acc (_, (b : Bounds.t)) -> Float.min acc b.st) infinity p.p_deps
  in
  if (not p.p_round_done) && st_bound < infinity && staleness_estimate t > st_bound
  then begin
    p.p_st_tries <- p.p_st_tries + 1;
    if p.p_st_tries >= 2 then p.p_needs_round <- true
    else
      for j = 0 to t.n - 1 do
        if j <> t.rid && now t -. t.cover.(j) > st_bound then begin
          t.s_pulls_st <- t.s_pulls_st + 1;
          send_pull t ~dst:j ~round:0
        end
      done
  end;
  (* NE: a tighter-than-declared bound needs one complete pull round. *)
  if p.p_needs_round && not p.p_round_done then begin
    (* Drop rounds that have outlived the retry period (lost to partitions)
       so the retry loop can start a fresh one. *)
    (match p.p_round with
    | Some r -> (
      match Hashtbl.find_opt t.rounds r with
      | Some st when now t -. st.started > 2.0 *. t.cfg.Config.retry_period ->
        Hashtbl.remove t.rounds r
      | Some _ | None -> ())
    | None -> ());
    match p.p_round with
    | Some r when Hashtbl.mem t.rounds r -> () (* still in flight *)
    | Some _ | None ->
      let r = fresh_round t in
      p.p_round <- Some r;
      t.s_pulls_ne <- t.s_pulls_ne + 1;
      if t.n = 1 then p.p_round_done <- true
      else
        for j = 0 to t.n - 1 do
          if j <> t.rid then send_pull t ~dst:j ~round:r
        done
  end;
  (* OE: drive commitment. *)
  let oe_unmet =
    List.exists
      (fun (c, (b : Bounds.t)) -> Wlog.tentative_oweight t.wlog c > b.oe)
      p.p_deps
  in
  if oe_unmet then begin
    t.s_pulls_oe <- t.s_pulls_oe + 1;
    match t.cfg.Config.commit_scheme with
    | Config.Stability ->
      for j = 0 to t.n - 1 do
        if j <> t.rid then send_pull t ~dst:j ~round:0
      done
    | Config.Primary prim ->
      if t.rid = prim then commit_progress t
      else begin
        push_to t ~dst:prim;
        send_pull t ~dst:prim ~round:0
      end
  end

(* ------------------------------------------------------------------ *)
(* The pump: re-evaluate parked work after any state change            *)

and pump t =
  (* Parked accesses (any order — self-determination keeps them independent).
     Serving an access runs its continuation, which may submit — and park —
     further accesses; work over a snapshot and merge what accumulated.  Dead
     entries ([p_done]: timed out or abandoned) are dropped here. *)
  let snapshot = Queue.create () in
  Queue.transfer t.pending snapshot;
  let keep = Queue.create () in
  Queue.iter
    (fun p ->
      if p.p_done then ()
      else if deps_satisfied t p then begin
        p.p_done <- true;
        t.npending <- t.npending - 1;
        match p.p_kind with
        | Pread (f, k) -> serve_read t p f k
        | Pwrite (op, affects, k) -> serve_write t p op affects k
      end
      else Queue.push p keep)
    snapshot;
  (* Entries parked during serving come after the survivors, preserving the
     oldest-first order. *)
  Queue.transfer t.pending keep;
  t.pending <- keep;
  (* Return queue: FIFO, release writes whose budget cleared (and, for
     commit-synchronous ones, that have committed). *)
  let rec drain () =
    if not (Queue.is_empty t.return_queue) then begin
      let u = Queue.peek t.return_queue in
      if over_budget_peers t u.u_write = [] then begin
        let final = Wlog.final_outcome t.wlog u.u_write.id in
        match (u.u_wait_commit, final) with
        | true, None -> ()
        | false, _ | true, Some _ ->
          let outcome =
            match (u.u_wait_commit, final) with
            | true, Some f -> f
            | _ -> u.u_outcome
          in
          ignore (Queue.pop t.return_queue);
          if t.cfg.Config.record_accesses then
            t.records <- u.u_record (now t) outcome :: t.records;
          u.u_k outcome;
          drain ()
      end
    end
  in
  drain ()

and ensure_retry t =
  if not t.retry_running then begin
    t.retry_running <- true;
    let rec tick () =
      if t.npending = 0 && Queue.is_empty t.return_queue then
        t.retry_running <- false
      else if not t.up then
        (* Stay armed; resume after recovery. *)
        schedule t ~tag:"retry" ~delay:t.cfg.Config.retry_period tick
      else begin
        commit_progress t;
        Queue.iter (fun p -> if not p.p_done then trigger_syncs t p) t.pending;
        (* Re-sync for stalled returns (covers loss under partitions). *)
        Queue.iter
          (fun u ->
            List.iter
              (fun j -> push_to t ~dst:j)
              (over_budget_peers t u.u_write);
            if u.u_wait_commit && Wlog.final_outcome t.wlog u.u_write.id = None
            then
              for j = 0 to t.n - 1 do
                if j <> t.rid then send_pull t ~dst:j ~round:0
              done)
          t.return_queue;
        pump t;
        schedule t ~tag:"retry" ~delay:t.cfg.Config.retry_period tick
      end
    in
    schedule t ~tag:"retry" ~delay:t.cfg.Config.retry_period tick
  end

(* ------------------------------------------------------------------ *)
(* Message processing                                                  *)

and note_peer_vector t ~peer vector =
  Version_vector.merge_into t.acked.(peer) vector;
  release_outstanding t ~peer

and process t msg =
  (match msg with
  | Snapshot { from; snap; writes; vector; cover; rate; round } ->
    if Wlog.install_snapshot t.wlog snap then begin
      t.s_snapshots_installed <- t.s_snapshots_installed + 1;
      trace t ~kind:"snapshot"
        (Printf.sprintf "installed %d committed writes from replica %d"
           snap.Wlog.snap_ncommitted from);
      (* The committed prefix the snapshot represents counts as committed for
         the primary scheme's pointer too. *)
      t.csn_committed <- max t.csn_committed snap.Wlog.snap_ncommitted
    end;
    ignore (Wlog.insert_batch t.wlog writes);
    Array.iteri (fun o c -> if c > t.cover.(o) then t.cover.(o) <- c) cover;
    t.cover.(t.rid) <- now t;
    t.rates.(from) <- rate;
    note_peer_vector t ~peer:from vector;
    commit_progress t;
    round_reply t ~round ~from
  | Pull_req { from; vector; csn_known; round } ->
    note_peer_vector t ~peer:from vector;
    t.acked_csn.(from) <- max t.acked_csn.(from) csn_known;
    (match t.cfg.Config.sync with
    | Config.Per_write ->
      send t ~dst:from (transfer_reply t ~req_vector:vector ~csn_known ~round)
    | Config.Batched ->
      (* A pull reply is already one message per request; batching frames it
         (real serialisation, snapshot fallback included) without delaying
         it — rounds must complete promptly. *)
      send t ~dst:from
        (make_batch t ~peer_vector:vector ~csn_start:csn_known
           ~kind:(Batch.Pull_reply round)))
  | Ack { from; vector; csn_known } ->
    note_peer_vector t ~peer:from vector;
    t.acked_csn.(from) <- max t.acked_csn.(from) csn_known
  | Transfer { from; writes; vector; cover; csn_start; csn; rate; kind } ->
    let fresh = Wlog.insert_batch t.wlog writes in
    if fresh <> [] then
      trace t ~kind:"transfer"
        (Printf.sprintf "%d new writes from replica %d" (List.length fresh) from);
    (* Cover merge is sound only after the writes are in the log. *)
    Array.iteri (fun o c -> if c > t.cover.(o) then t.cover.(o) <- c) cover;
    t.cover.(t.rid) <- now t;
    t.rates.(from) <- rate;
    Csn_buffer.offer t.csn ~start:csn_start csn;
    note_peer_vector t ~peer:from vector;
    t.acked_csn.(from) <- max t.acked_csn.(from) (csn_start + List.length csn);
    (match t.cfg.Config.commit_scheme with
    | Config.Primary p when p = t.rid ->
      ignore fresh;
      commit_progress t
    | Config.Primary _ | Config.Stability -> commit_progress t);
    (match kind with
    | `Push ->
      send t ~dst:from
        (Ack
           {
             from = t.rid;
             vector = Version_vector.copy (Wlog.vector t.wlog);
             csn_known = Csn_buffer.known t.csn;
           })
    | `Pull_reply round -> round_reply t ~round ~from
    | `Gossip -> ())
  | Batch_frame s ->
    (* Everything in a frame deduplicates on re-application — the write log
       drops known ids, CSN offers are idempotent, cover/vector merges are
       pointwise max — so a duplicated or re-delivered frame cannot
       double-apply.  Decode is typed and total: a frame that does not parse
       (possible only from a real transport; the simulator delivers locally
       encoded frames) is counted and dropped, never fatal. *)
    (match Batch.decode s with
    | Error e ->
      t.s_malformed <- t.s_malformed + 1;
      trace t ~kind:"malformed" (Transport.error_to_string e)
    | Ok b ->
    if b.Batch.shard <> t.cfg.Config.shard_id then begin
      (* A frame carrying another shard's log must never be applied: its
         writes, vector and CSN slice all describe a different log.  Reject
         and account — the interest-set-aware oracle flags the counter. *)
      t.s_wrong_shard <- t.s_wrong_shard + 1;
      trace t ~kind:"wrong-shard"
        (Printf.sprintf "rejected frame for shard %d (serving %d)"
           b.Batch.shard t.cfg.Config.shard_id)
    end
    else begin
    let from = b.Batch.from in
    (match b.Batch.payload with
    | Batch.Delta writes -> ignore (Wlog.insert_batch t.wlog writes)
    | Batch.Full (snap, writes) ->
      if Wlog.install_snapshot t.wlog snap then begin
        t.s_snapshots_installed <- t.s_snapshots_installed + 1;
        trace t ~kind:"snapshot"
          (Printf.sprintf "installed %d committed writes from replica %d"
             snap.Wlog.snap_ncommitted from);
        t.csn_committed <- max t.csn_committed snap.Wlog.snap_ncommitted
      end;
      ignore (Wlog.insert_batch t.wlog writes));
    Array.iteri (fun o c -> if c > t.cover.(o) then t.cover.(o) <- c) b.Batch.cover;
    t.cover.(t.rid) <- now t;
    t.rates.(from) <- b.Batch.rate;
    Csn_buffer.offer t.csn ~start:b.Batch.csn_start b.Batch.csn;
    note_peer_vector t ~peer:from b.Batch.vector;
    t.acked_csn.(from) <-
      max t.acked_csn.(from) (b.Batch.csn_start + List.length b.Batch.csn);
    commit_progress t;
    (match b.Batch.kind with
    | Batch.Push ->
      send t ~dst:from
        (Ack
           {
             from = t.rid;
             vector = Version_vector.copy (Wlog.vector t.wlog);
             csn_known = Csn_buffer.known t.csn;
           })
    | Batch.Pull_reply round -> round_reply t ~round ~from
    | Batch.Gossip -> ())
    end));
  pump t;
  sanity_check t

(* ------------------------------------------------------------------ *)
(* Client entry points                                                 *)

let admit t ?deadline p =
  if not t.up then (
    match p.p_on_timeout with Some f -> f () | None -> ())
  else if deps_satisfied t p then
    match p.p_kind with
    | Pread (f, k) -> serve_read t p f k
    | Pwrite (op, affects, k) -> serve_write t p op affects k
  else begin
    t.s_blocked <- t.s_blocked + 1;
    trace t ~kind:"blocked"
      (Printf.sprintf "%s with %d deps"
         (match p.p_kind with Pread _ -> "read" | Pwrite _ -> "write")
         (List.length p.p_deps));
    Queue.push p t.pending;
    t.npending <- t.npending + 1;
    trigger_syncs t p;
    (* Triggering may have satisfied the access synchronously (e.g. a pull
       round degenerates to nothing at n = 1). *)
    pump t;
    ensure_retry t;
    (* A deadline bounds how long the client is willing to wait for its
       consistency level — the availability side of the tradeoff.  If the
       access is still parked when the deadline fires, it is abandoned (the
       queue entry is marked dead and dropped at the next pump). *)
    match deadline with
    | None -> ()
    | Some d ->
      schedule t ~tag:"deadline" ~delay:(Float.max 0.0 (d -. now t)) (fun () ->
          if not p.p_done then begin
            p.p_done <- true;
            t.npending <- t.npending - 1;
            t.s_timeouts <- t.s_timeouts + 1;
            match p.p_on_timeout with Some f -> f () | None -> ()
          end)
  end

let submit_read ?require ?deadline ?on_timeout t ~deps ~f ~k =
  let p =
    {
      p_submit = now t;
      p_deps = deps;
      p_require = require;
      p_on_timeout = on_timeout;
      p_kind = Pread (f, k);
      p_round = None;
      p_round_done = false;
      p_needs_round = List.exists (needs_ne_round t) deps;
      p_st_tries = 0;
      p_done = false;
    }
  in
  admit t ?deadline p;
  sanity_check t

let submit_write ?require ?deadline ?on_timeout t ~deps ~affects ~op ~k =
  let p =
    {
      p_submit = now t;
      p_deps = deps;
      p_require = require;
      p_on_timeout = on_timeout;
      p_kind = Pwrite (op, affects, k);
      p_round = None;
      p_round_done = false;
      p_needs_round = List.exists (needs_ne_round t) deps;
      p_st_tries = 0;
      p_done = false;
    }
  in
  admit t ?deadline p;
  sanity_check t

(* Clients of a crashed replica fail fast: parked accesses are abandoned
   (their timeout callbacks fire) and new submissions go straight to
   [on_timeout]. *)
let crash t =
  if t.up then begin
    trace t ~kind:"crash" "replica down";
    t.up <- false;
    t.crashes <- t.crashes + 1;
    if t.cfg.Config.fault_crash_replay then
      (* Planted bug (must stay off outside fuzzer mutation tests): the
         clients are told their parked accesses failed, but the queue entries
         are not dropped — recovery replays them, so each such client hears
         back twice.  The nemesis liveness oracle (O5) flags the double
         completion; see doc/FAULTS.md. *)
      Queue.iter
        (fun p ->
          if not p.p_done then
            match p.p_on_timeout with Some f -> f () | None -> ())
        t.pending
    else begin
      let parked = t.pending in
      t.pending <- Queue.create ();
      t.npending <- 0;
      Hashtbl.reset t.rounds;
      Queue.iter
        (fun p ->
          if not p.p_done then begin
            p.p_done <- true;
            match p.p_on_timeout with Some f -> f () | None -> ()
          end)
        parked
    end
  end

let recover t =
  if not t.up then begin
    t.up <- true;
    trace t ~kind:"recover" "replica up";
    (* Proactively resynchronise with every peer. *)
    for j = 0 to t.n - 1 do
      if j <> t.rid then send_pull t ~dst:j ~round:0
    done;
    if not (Queue.is_empty t.return_queue) then ensure_retry t
  end

let is_up t = t.up
let crash_count t = t.crashes

(* ------------------------------------------------------------------ *)
(* The byte-side entry points (Ext transports)                         *)

(* One decoded-or-rejected wire message from the backend.  Hostile input is
   accounted, never fatal: a frame that does not decode, or that claims a
   sender other than the authenticated transport peer, is dropped and
   counted — the connection (and the replica) keep going. *)
let deliver_wire t ~src s =
  match Wire.decode s with
  | Error e ->
    t.s_malformed <- t.s_malformed + 1;
    trace t ~kind:"malformed" (Transport.error_to_string e)
  | Ok msg -> (
    match Wire.sender msg with
    | Some from when from <> src ->
      t.s_malformed <- t.s_malformed + 1;
      trace t ~kind:"malformed"
        (Printf.sprintf "message claims sender %d but arrived from peer %d"
           from src)
    | Some _ | None -> handle t msg)

let malformed_frames t = t.s_malformed

(* Targeted resynchronisation: one pull at [peer], answered (through the
   peer's {!Batch.plan} in Batched mode) with a delta against our vector or
   a snapshot if the peer has truncated past us.  Transport supervisors call
   this on reconnect, so missed traffic heals no matter how long the link
   was down. *)
let resync t ~peer =
  if peer >= 0 && peer < t.n && peer <> t.rid then send_pull t ~dst:peer ~round:0

(* Idempotent transport teardown.  The simulator owns nothing per-replica
   (the Net belongs to the System), so [Sim] close only makes sends inert;
   an [Ext] backend releases its sockets/timers through [ep_close]. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.tr with
    | Ext ep -> ep.Transport.ep_close ()
    | Sim _ -> ()
  end

let start t =
  match t.cfg.Config.antientropy_period with
  | None -> ()
  | Some period ->
    if t.n > 1 then begin
      let tick = ref 0 in
      let ring =
        match t.cfg.Config.gossip_plan with
        | Some plan ->
          let r = plan t.rid in
          if Array.exists (fun j -> j < 0 || j >= t.n || j = t.rid) r then
            invalid_arg "Replica.start: gossip plan targets out of range";
          r
        | None ->
          (* Round-robin over every peer. *)
          Array.init (t.n - 1) (fun k ->
              let j = (t.rid + 1 + k) mod t.n in
              if j = t.rid then (j + 1) mod t.n else j)
      in
      every t ~tag:"gossip" ~period (fun () ->
          (* Deterministic ring gossip (silent while crashed). *)
          if t.up && Array.length ring > 0 then begin
            let target = ring.(!tick mod Array.length ring) in
            incr tick;
            t.s_gossips <- t.s_gossips + 1;
            push_to t ~dst:target
          end;
          true)
    end
