(** Database values.

    The replicated database maps string keys to these values.  The variants
    cover what the paper's sample applications need: numeric records (sensor
    readings, seat counts, server load), text (messages, paragraphs) and lists
    (bulletin boards, reservation manifests). *)

type t =
  | Nil
  | Int of int
  | Float of float
  | Str of string
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** [Nil] is 0; [Int]/[Float] convert; anything else raises [Invalid_argument]. *)

val to_float : t -> float
val to_list : t -> t list
(** [Nil] is []. *)

val to_string : t -> string
(** Human-readable rendering (not a serialisation format). *)

val byte_size : t -> int
(** Estimated wire size, used for network traffic accounting. *)

val wire_size : t -> int
(** Exact encoded size under the {!Codec} wire format — equals
    [String.length] of the encoding without materialising it. *)
