(** The pluggable TRANSPORT seam (doc/TRANSPORT.md).

    Everything a replica's protocol machine needs from the world below it —
    a clock, timers and peer messaging — is captured by the {!endpoint}
    record, and everything a concrete byte-moving backend must provide is
    captured by the {!S} module type.  The deterministic simulator
    ({!Tact_sim.Net} wired up by {!Tact_replica.System}) is one instance;
    the hardened TCP backend ({!Tact_transport.Tcp}) is the production one.
    The same protocol code runs over both: model-checked against the first,
    deployed over the second.

    This module also owns the {e error taxonomy} every backend reports
    through, and the length-prefix framing helpers stream backends share.
    It deliberately knows nothing about [Unix]: real sockets live in
    [lib/transport], the only layer admitted to use them
    (analysis/layering.rules). *)

(** {2 Error taxonomy}

    Typed, total, and never raised across the seam: backend operations
    return [result]s, decoders return [Error (Malformed _)] on hostile
    input.  The taxonomy is deliberately small — every case maps to a
    distinct supervision decision (retry, reconnect, reject, drop). *)

type error =
  | Timeout of string  (** a connect/read/write deadline expired *)
  | Refused of string  (** the peer actively refused the connection *)
  | Closed of string  (** operation on a closed or draining endpoint *)
  | Reset of string  (** the connection died underneath an operation *)
  | Unreachable of string
      (** no route to the peer right now (parked traffic may heal it) *)
  | Malformed of string  (** bytes that do not decode under the wire format *)
  | Too_large of { limit : int; got : int }
      (** a frame larger than the negotiated bound — rejected before
          allocation, never buffered *)

val error_to_string : error -> string

val is_transient : error -> bool
(** Should a supervisor retry after this error?  [Timeout], [Refused],
    [Reset] and [Unreachable] are transient (the peer may heal); [Closed],
    [Malformed] and [Too_large] are not — retrying cannot fix them. *)

(** {2 The endpoint a replica runs against}

    A first-class record rather than a functor so one replica
    implementation serves every backend without refunctorisation; the
    simulator path in {!Tact_replica.Replica} bypasses it only to keep
    closure delivery (and therefore digests) bit-identical. *)

type endpoint = {
  ep_self : int;  (** this replica's id *)
  ep_n : int;  (** system size *)
  ep_now : unit -> float;
      (** seconds on the backend's clock (virtual or wall, backend's choice;
          only differences are meaningful) *)
  ep_schedule : tag:string -> delay:float -> (unit -> unit) -> unit;
      (** one-shot timer; [tag] is provenance for traces *)
  ep_every : tag:string -> period:float -> (unit -> bool) -> unit;
      (** periodic timer, runs while the thunk returns [true] *)
  ep_send : dst:int -> string -> (unit, error) result;
      (** hand one encoded wire message to the backend.  [Ok] means
          {e accepted for delivery} (possibly parked behind a reconnect),
          not delivered — delivery guarantees stay with the protocol's own
          acknowledgement machinery *)
  ep_close : unit -> unit;  (** idempotent backend teardown *)
}

(** {2 The backend module type} *)

module type S = sig
  type t

  val self : t -> int
  val size : t -> int

  val send : t -> dst:int -> string -> (unit, error) result
  (** Queue one wire message for the peer.  Must never block the caller
      indefinitely and never raise: backpressure and peer failure surface as
      [Error]. *)

  val set_handler : t -> (src:int -> string -> unit) -> unit
  (** Install the delivery callback.  Must be called before traffic flows;
      the backend invokes it once per decoded incoming frame. *)

  val close : t -> unit
  (** Idempotent: release every resource (sockets, timers, buffers); all
      subsequent [send]s return [Error (Closed _)]. *)
end

(** {2 Length-prefix framing}

    Stream backends delimit wire messages with a 4-byte big-endian length
    prefix.  The helpers are pure string/byte manipulation so they can be
    unit-tested (and fuzzed) without a socket in sight. *)

val frame_header_size : int
(** 4 bytes. *)

val default_max_frame : int
(** 16 MiB — generous for snapshot frames, small enough that a corrupt
    length cannot balloon memory. *)

val encode_frame_header : len:int -> string
(** The 4-byte prefix for a payload of [len] bytes. *)

val put_frame : Codec.Frame.t -> string -> unit
(** Append header + payload to an encode arena. *)

val decode_frame_header :
  ?max_frame:int -> Bytes.t -> off:int -> avail:int -> (int option, error) result
(** Parse a length prefix out of a receive buffer: [Ok None] when fewer than
    {!frame_header_size} bytes are available, [Ok (Some len)] for a sane
    length, [Error] for a negative or over-[max_frame] length (the
    connection is poisoned — there is no way to resynchronise a stream after
    a corrupt prefix). *)
