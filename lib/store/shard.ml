(* Static partition of the conit space (see shard.mli).  Pure and immutable
   by construction: the only state is the routing table captured at build
   time, so a router can be consulted from concurrent shard domains without
   synchronisation. *)

type t = {
  nshards : int;
  table : (string * int) array;  (* explicit pins, sorted by conit name *)
}

(* FNV-1a over the conit name, 32-bit arithmetic: platform-independent,
   allocation-free, and stable across runs — routing must never depend on
   anything but the name itself. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let single = { nshards = 1; table = [||] }

let by_hash ~shards =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard.by_hash: need >= 1 shard (got %d)" shards);
  { nshards = shards; table = [||] }

let with_table t pins =
  let names = List.map fst pins in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Shard.with_table: duplicate conit";
  List.iter
    (fun (c, s) ->
      if s < 0 || s >= t.nshards then
        invalid_arg
          (Printf.sprintf "Shard.with_table: conit %S pinned to shard %d (of %d)"
             c s t.nshards))
    pins;
  let merged =
    Array.to_list t.table
    |> List.filter (fun (c, _) -> not (List.mem_assoc c pins))
    |> List.append pins
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { t with table = Array.of_list merged }

let shards t = t.nshards

let route t conit =
  if t.nshards = 1 then 0
  else begin
    (* Binary search over the pinned conits; fall back to the hash rule. *)
    let lo = ref 0 and hi = ref (Array.length t.table) in
    let found = ref (-1) in
    while !found < 0 && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = String.compare conit (fst t.table.(mid)) in
      if c = 0 then found := snd t.table.(mid)
      else if c < 0 then hi := mid
      else lo := mid + 1
    done;
    if !found >= 0 then !found else fnv1a conit mod t.nshards
  end

let route_write t (w : Write.t) =
  match w.affects with
  | [] -> 0
  | { Write.conit; _ } :: rest ->
    let s = route t conit in
    List.iter
      (fun { Write.conit = c; _ } ->
        let s' = route t c in
        if s' <> s then
          invalid_arg
            (Printf.sprintf
               "Shard.route_write: %s affects conits in shards %d and %d \
                (cross-shard writes are not replicable as one unit)"
               (Write.id_to_string w.id) s s'))
      rest;
    s

let to_string t =
  if Array.length t.table = 0 then Printf.sprintf "hash/%d" t.nshards
  else Printf.sprintf "hash/%d+%d pins" t.nshards (Array.length t.table)
