type t = int array

let create n = Array.make n 0
let size = Array.length
let get t i = t.(i)
let set t i v = t.(i) <- v
let copy = Array.copy

let merge_into dst src =
  assert (Array.length dst = Array.length src);
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

(* effects: pure — anti-entropy ordering decisions must depend on the two
   vectors alone; tact_analyze (SA064) verifies the claim. *)
let dominates a b =
  assert (Array.length a = Array.length b);
  let ok = ref true in
  Array.iteri (fun i v -> if a.(i) < v then ok := false) b;
  !ok

let equal a b = a = b

let covers t ~origin ~seq = t.(origin) >= seq

let total t = Array.fold_left ( + ) 0 t

let byte_size t = 8 * Array.length t

let to_string t =
  "<" ^ String.concat "," (Array.to_list (Array.map string_of_int t)) ^ ">"
