type undo_entry = { u_key : string; u_prev : Value.t option }
type undo = undo_entry list

type t = {
  tbl : (string, Value.t) Hashtbl.t;
  mutable watch : undo_entry list ref option;
}

let create bindings =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
  { tbl; watch = None }

let copy t = { tbl = Hashtbl.copy t.tbl; watch = None }

let get t k = match Hashtbl.find_opt t.tbl k with Some v -> v | None -> Value.Nil

let set t k v =
  (match t.watch with
  | Some log -> log := { u_key = k; u_prev = Hashtbl.find_opt t.tbl k } :: !log
  | None -> ());
  Hashtbl.replace t.tbl k v

let get_float t k = Value.to_float (get t k)
let get_int t k = Value.to_int (get t k)

let add t k delta =
  let v = get_float t k in
  set t k (Value.Float (v +. delta))

let append t k v = set t k (Value.List (v :: Value.to_list (get t k)))

(* lint: allow hashtbl-fold — key collection; callers sort before iterating *)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []

(* Every mutation inside [f] is journalled; the returned undo record reverts
   them all (see {!revert}).  Recordings do not nest. *)
let recording t f =
  assert (t.watch = None);
  let log = ref [] in
  t.watch <- Some log;
  Fun.protect
    ~finally:(fun () -> t.watch <- None)
    (fun () ->
      let result = f () in
      (result, !log))

(* The journal holds entries newest first, and each entry stores the binding
   before its own mutation, so replaying the journal in list order restores
   the pre-recording state — even with repeated writes to one key. *)
let revert t (u : undo) =
  List.iter
    (fun { u_key; u_prev } ->
      match u_prev with
      | Some v -> Hashtbl.replace t.tbl u_key v
      | None -> Hashtbl.remove t.tbl u_key)
    u

exception Unequal

let equal a b =
  (* Missing keys read as Nil, so a key bound to Nil on one side and absent
     on the other still compares equal.  Short-circuits on first mismatch. *)
  let subset x y =
    try
      (* lint: allow hashtbl-iter — membership test, order-independent *)
      Hashtbl.iter
        (fun k v ->
          let w = match Hashtbl.find_opt y.tbl k with Some w -> w | None -> Value.Nil in
          if not (Value.equal v w) then raise Unequal)
        x.tbl;
      true
    with Unequal -> false
  in
  subset a b && subset b a

let size t = Hashtbl.length t.tbl
