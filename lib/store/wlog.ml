open Tact_util

type insertion = Inserted of Op.outcome | Duplicate | Buffered

type snapshot = {
  snap_db : Db.t;
  snap_vector : Version_vector.t;
  snap_ncommitted : int;
  snap_values : (string * float) list;
}

(* Both halves of the log are indexed deques kept in their canonical orders:
   the committed prefix in commit order (append at the back on commit, drop
   from the front on truncation — a pointer bump) and the tentative suffix in
   timestamp order (binary-search insertion; the common landing-at-the-tail
   case is a plain append).

   [undo] runs parallel to [tent]: [undo.(i)] journals the db mutations made
   when [tent.(i)] was (re)applied to the full image.  An out-of-order
   arrival at position [p] is absorbed by reverting journals back to [p] and
   re-executing only [tent.(p..)] — O(suffix beyond the insertion point)
   instead of copying the committed image and replaying everything.

   [journal] records the id of every write this log has ever committed, in
   commit order, and is never truncated: observation capture ({!commit_cursor})
   reduces to a pair of indices into it. *)
type t = {
  nreplicas : int;
  initial : (string * Value.t) list;
  committed : Write.t Deque.t; (* retained committed prefix, commit order *)
  journal : Write.id Vec.t; (* every commit ever, commit order; never truncated *)
  mutable ncommitted : int;
  mutable committed_db : Db.t;
  tent : Write.t Deque.t; (* tentative suffix, timestamp order *)
  undo : Db.undo Deque.t; (* undo.(i) reverts the application of tent.(i) *)
  mutable full_db : Db.t;
  vector : Version_vector.t;
  committed_vec : Version_vector.t;  (* writes in the committed prefix *)
  trunc_vec : Version_vector.t;  (* writes that may have been discarded *)
  by_id : (Write.id, Write.t) Hashtbl.t;
  committed_ids : (Write.id, unit) Hashtbl.t;
  pending : (Write.id, Write.t) Hashtbl.t; (* per-origin sequence gaps *)
  outcomes : (Write.id, Op.outcome) Hashtbl.t;
  finals : (Write.id, Op.outcome) Hashtbl.t;
  values : (string, float) Hashtbl.t; (* conit -> accumulated nweight *)
  committed_values : (string, float) Hashtbl.t;
  tent_oweights : (string, float) Hashtbl.t; (* conit -> tentative oweight *)
  mutable nrollbacks : int;
}

let create ~replicas ~initial =
  {
    nreplicas = replicas;
    initial;
    committed = Deque.create ();
    journal = Vec.create ();
    ncommitted = 0;
    committed_db = Db.create initial;
    tent = Deque.create ();
    undo = Deque.create ();
    full_db = Db.create initial;
    vector = Version_vector.create replicas;
    committed_vec = Version_vector.create replicas;
    trunc_vec = Version_vector.create replicas;
    by_id = Hashtbl.create 256;
    committed_ids = Hashtbl.create 256;
    pending = Hashtbl.create 8;
    outcomes = Hashtbl.create 256;
    finals = Hashtbl.create 256;
    values = Hashtbl.create 16;
    committed_values = Hashtbl.create 16;
    tent_oweights = Hashtbl.create 16;
    nrollbacks = 0;
  }

let htbl_add tbl key delta =
  let v = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0 in
  Hashtbl.replace tbl key (v +. delta)

let htbl_get tbl key =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0

(* Bookkeeping common to every successful insertion. *)
let register t (w : Write.t) =
  Hashtbl.replace t.by_id w.id w;
  Version_vector.set t.vector w.id.origin w.id.seq;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.values conit nweight;
      htbl_add t.tent_oweights conit oweight)
    w.affects

(* Apply one tentative write to the full image, journalling its mutations so
   it can be rolled back, and (re-)recording its outcome — outcomes may
   change across reorderings; that is the point of write procedures. *)
let apply_one t (w : Write.t) =
  let outcome, u = Db.recording t.full_db (fun () -> Op.apply w.op t.full_db) in
  Hashtbl.replace t.outcomes w.id outcome;
  Deque.push_back t.undo u;
  outcome

(* Revert tentative applications down to position [pos] (exclusive). *)
let rollback_to t pos =
  while Deque.length t.undo > pos do
    Db.revert t.full_db (Deque.pop_back t.undo)
  done

let reapply_from t pos =
  for i = pos to Deque.length t.tent - 1 do
    ignore (apply_one t (Deque.get t.tent i))
  done

(* Full re-derivation of the image — only for paths where the committed order
   itself changed (CSN reorder, snapshot installation). *)
let rebuild t =
  t.full_db <- Db.copy t.committed_db;
  Deque.clear t.undo;
  reapply_from t 0

(* Insert into the tentative suffix at its timestamp-order position (without
   applying); returns the insertion index. *)
let insert_tent t (w : Write.t) =
  let n = Deque.length t.tent in
  if n = 0 || Write.ts_compare (Deque.get t.tent (n - 1)) w < 0 then begin
    Deque.push_back t.tent w;
    n
  end
  else begin
    let pos = Deque.upper_bound t.tent ~cmp:Write.ts_compare w in
    Deque.insert t.tent pos w;
    pos
  end

let next_seq t origin = Version_vector.get t.vector origin + 1

(* Bring the full image back in sync after one or more insertions, given the
   number of applied entries beforehand and the minimum insertion index.
   Pure tail appends need no rollback; anything else reverts the suffix from
   the first disturbed position and re-executes it. *)
let finish_inserts t ~applied ~minpos =
  if minpos < applied then begin
    t.nrollbacks <- t.nrollbacks + 1;
    rollback_to t minpos;
    reapply_from t minpos
  end
  else reapply_from t applied

let accept t (w : Write.t) =
  if w.id.seq <> next_seq t w.id.origin then
    invalid_arg
      (Printf.sprintf "Wlog.accept: %s out of sequence (expected seq %d)"
         (Write.id_to_string w.id) (next_seq t w.id.origin));
  let applied = Deque.length t.undo in
  register t w;
  let pos = insert_tent t w in
  finish_inserts t ~applied ~minpos:pos;
  match Hashtbl.find_opt t.outcomes w.id with
  | Some o -> o
  | None -> assert false

let known t id =
  Version_vector.covers t.vector ~origin:id.Write.origin ~seq:id.Write.seq

(* Drain the pending buffer for an origin after its gap filled.  Each drained
   write must be registered before looking for the next one — registration is
   what advances the vector the lookup keys on. *)
let rec drain_pending t origin acc minpos =
  let id = { Write.origin; seq = next_seq t origin } in
  match Hashtbl.find_opt t.pending id with
  | None -> (List.rev acc, minpos)
  | Some w ->
    Hashtbl.remove t.pending id;
    register t w;
    let pos = insert_tent t w in
    drain_pending t origin (w :: acc) (min minpos pos)

(* Insert a fresh write plus whatever its arrival releases from the pending
   buffer; returns the fresh writes (oldest first) and the minimum insertion
   index.  Does not touch the full image — callers finish with
   {!finish_inserts}. *)
let insert_positions t (w : Write.t) =
  register t w;
  let pos = insert_tent t w in
  let drained, minpos = drain_pending t w.id.origin [] pos in
  (w :: drained, minpos)

let insert t (w : Write.t) =
  if known t w.id then Duplicate
  else if w.id.seq > next_seq t w.id.origin then begin
    Hashtbl.replace t.pending w.id w;
    Buffered
  end
  else begin
    let applied = Deque.length t.undo in
    let _, minpos = insert_positions t w in
    finish_inserts t ~applied ~minpos;
    match Hashtbl.find_opt t.outcomes w.id with
    | Some o -> Inserted o
    | None -> assert false
  end

let insert_batch t ws =
  (* One rollback/re-execution for the whole batch, from the lowest position
     any of its writes landed at. *)
  let sorted = List.sort Write.ts_compare ws in
  let applied = Deque.length t.undo in
  let fresh = ref [] in
  let minpos = ref max_int in
  List.iter
    (fun (w : Write.t) ->
      if known t w.id then ()
      else if w.id.seq > next_seq t w.id.origin then
        Hashtbl.replace t.pending w.id w
      else begin
        let new_writes, mp = insert_positions t w in
        minpos := min !minpos mp;
        fresh := List.rev_append new_writes !fresh
      end)
    sorted;
  if !fresh <> [] then finish_inserts t ~applied ~minpos:(min !minpos applied);
  List.sort Write.ts_compare !fresh

let vector t = t.vector

let writes_since t v =
  let out = ref [] in
  for origin = 0 to t.nreplicas - 1 do
    for seq = Version_vector.get v origin + 1 to Version_vector.get t.vector origin do
      match Hashtbl.find_opt t.by_id { Write.origin; seq } with
      | Some w -> out := w :: !out
      | None ->
        invalid_arg
          (Printf.sprintf
             "Wlog.writes_since: w%d.%d was truncated (check can_serve first)"
             origin seq)
    done
  done;
  List.sort Write.ts_compare !out

let db t = t.full_db
let committed_db t = t.committed_db
let tentative t = Deque.to_list t.tent
let tentative_ids t = List.init (Deque.length t.tent) (fun i -> (Deque.get t.tent i).Write.id)
let iter_tentative t f = Deque.iter f t.tent
let committed t = Deque.to_list t.committed
let committed_count t = t.ncommitted
let num_known t = Hashtbl.length t.by_id

(* Move one write into the committed prefix, applying it to the committed
   image and recording its final outcome. *)
let commit_one t (w : Write.t) =
  let outcome = Op.apply w.op t.committed_db in
  Hashtbl.replace t.finals w.id outcome;
  Hashtbl.replace t.committed_ids w.id ();
  Version_vector.set t.committed_vec w.id.origin
    (max w.id.seq (Version_vector.get t.committed_vec w.id.origin));
  Deque.push_back t.committed w;
  Vec.push t.journal w.id;
  t.ncommitted <- t.ncommitted + 1;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.committed_values conit nweight;
      htbl_add t.tent_oweights conit (-.oweight))
    w.affects

(* A tentative write is stable when no origin can still produce a write that
   precedes it in timestamp order.  The strict comparison handles simultaneous
   accept times: origin [o] may yet produce a write at exactly [cover.(o)],
   which would precede [w] iff [o < w.origin]. *)
let stable ~cover (w : Write.t) =
  let ok = ref true in
  Array.iteri
    (fun o c ->
      if o <> w.id.origin then
        if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then ok := false)
    cover;
  !ok

let commit_stable t ~cover =
  if Array.length cover <> t.nreplicas then
    invalid_arg "Wlog.commit_stable: cover arity mismatch";
  (* Commit order equals timestamp order here, so the full image and the
     suffix's undo journals beyond the frontier are untouched: committing is
     a front pop (the popped undo journal dissolves into the base image). *)
  let n = ref 0 in
  while
    (not (Deque.is_empty t.tent)) && stable ~cover (Deque.peek_front t.tent)
  do
    let w = Deque.pop_front t.tent in
    ignore (Deque.pop_front t.undo);
    commit_one t w;
    incr n
  done;
  !n

let commit_ids t ids =
  let n = ref 0 in
  let reordered = ref false in
  List.iter
    (fun id ->
      if known t id && not (Hashtbl.mem t.committed_ids id) then begin
        let w = Hashtbl.find t.by_id id in
        (* Commit order agrees with the full-image order only when the write
           being committed is the oldest tentative one — then committing is a
           front pop.  Otherwise remove it from the middle and re-derive the
           image once, after the batch. *)
        if
          (not !reordered)
          && (not (Deque.is_empty t.tent))
          && (Deque.peek_front t.tent).Write.id = id
        then begin
          ignore (Deque.pop_front t.tent);
          ignore (Deque.pop_front t.undo)
        end
        else begin
          reordered := true;
          let pos = Deque.upper_bound t.tent ~cmp:Write.ts_compare w - 1 in
          assert (pos >= 0 && (Deque.get t.tent pos).Write.id = id);
          ignore (Deque.remove t.tent pos)
        end;
        commit_one t w;
        incr n
      end)
    ids;
  if !reordered then begin
    t.nrollbacks <- t.nrollbacks + 1;
    rebuild t
  end;
  !n

let tentative_oweight t conit = htbl_get t.tent_oweights conit

let tentative_max_oweight t =
  Hashtbl.fold (fun _ v acc -> Float.max v acc) t.tent_oweights 0.0

let conit_value t conit = htbl_get t.values conit
let committed_conit_value t conit = htbl_get t.committed_values conit

let outcome t id = Hashtbl.find_opt t.outcomes id
let final_outcome t id = Hashtbl.find_opt t.finals id
let rollbacks t = t.nrollbacks

(* ------------------------------------------------------------------ *)
(* Observation capture                                                 *)

(* The retained committed prefix is always the most recent slice of the
   commit journal (commits append to both; truncation and snapshot
   installation only shorten the retained deque), so an access's observed
   committed prefix is fully described by two journal indices — and because
   the journal is append-only, the slice can be expanded at any later time. *)
let commit_cursor t =
  let hi = Vec.length t.journal in
  (hi - Deque.length t.committed, hi)

let commit_slice t ~lo ~hi = List.init (hi - lo) (fun i -> Vec.get t.journal (lo + i))

(* ------------------------------------------------------------------ *)
(* Truncation and snapshots                                            *)

let retained t = Deque.length t.committed

let committed_vector t = t.committed_vec

let truncate t ~keep =
  let n = Deque.length t.committed in
  if n <= keep then 0
  else begin
    let drop = n - keep in
    for _ = 1 to drop do
      let w = Deque.pop_front t.committed in
      Hashtbl.remove t.by_id w.Write.id;
      Version_vector.set t.trunc_vec w.id.origin
        (max w.id.seq (Version_vector.get t.trunc_vec w.id.origin))
    done;
    drop
  end

let can_serve t v = Version_vector.dominates v t.trunc_vec

let snapshot t =
  {
    snap_db = Db.copy t.committed_db;
    snap_vector = Version_vector.copy t.committed_vec;
    snap_ncommitted = t.ncommitted;
    snap_values = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.committed_values [];
  }

let install_snapshot t snap =
  if
    Version_vector.dominates t.committed_vec snap.snap_vector
    (* local state is already at or past the snapshot *)
  then false
  else if not (Version_vector.dominates snap.snap_vector t.committed_vec) then
    (* Incomparable committed states cannot happen under one commitment
       scheme; refuse rather than corrupt. *)
    false
  else begin
    let covered (w : Write.t) =
      Version_vector.covers snap.snap_vector ~origin:w.id.origin ~seq:w.id.seq
    in
    (* Adopt the snapshot as the committed state. *)
    t.committed_db <- Db.copy snap.snap_db;
    t.ncommitted <- snap.snap_ncommitted;
    for o = 0 to t.nreplicas - 1 do
      Version_vector.set t.committed_vec o (Version_vector.get snap.snap_vector o);
      (* Every write the snapshot folds in behaves as truncated locally: we
         cannot serve it write-by-write. *)
      Version_vector.set t.trunc_vec o
        (max (Version_vector.get t.trunc_vec o) (Version_vector.get snap.snap_vector o))
    done;
    (* Retained committed records are all covered by the snapshot; drop them.
       (The commit journal keeps their ids: it describes this log's own
       commit history, which the snapshot does not rewrite.) *)
    Deque.iter (fun (w : Write.t) -> Hashtbl.remove t.by_id w.Write.id) t.committed;
    Deque.clear t.committed;
    Hashtbl.reset t.committed_values;
    List.iter (fun (k, v) -> Hashtbl.replace t.committed_values k v) snap.snap_values;
    (* Tentative writes the snapshot covers were committed remotely — drop
       them (their final outcomes are not locally recoverable); keep and
       replay the rest. *)
    let kept = ref [] in
    Deque.iter
      (fun (w : Write.t) ->
        if covered w then begin
          Hashtbl.remove t.by_id w.id;
          Hashtbl.replace t.committed_ids w.id ()
        end
        else kept := w :: !kept)
      t.tent;
    Deque.clear t.tent;
    List.iter (Deque.push_back t.tent) (List.rev !kept);
    (* Rebuild the derived quantities: known vector, conit values, tentative
       oweights. *)
    Version_vector.merge_into t.vector snap.snap_vector;
    Hashtbl.reset t.tent_oweights;
    Hashtbl.reset t.values;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.values k v) t.committed_values;
    Deque.iter
      (fun (w : Write.t) ->
        List.iter
          (fun { Write.conit; nweight; oweight } ->
            htbl_add t.values conit nweight;
            htbl_add t.tent_oweights conit oweight)
          w.affects)
      t.tent;
    (* Drop pending-buffer entries the snapshot already covers. *)
    let stale =
      Hashtbl.fold
        (fun id _ acc ->
          if Version_vector.covers snap.snap_vector ~origin:id.Write.origin ~seq:id.Write.seq
          then id :: acc
          else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    t.nrollbacks <- t.nrollbacks + 1;
    rebuild t;
    true
  end
