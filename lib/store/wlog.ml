open Tact_util

type insertion = Inserted of Op.outcome | Duplicate | Buffered

(* Typed-key flat per-write bookkeeping.  One slot per (origin, seq) replaces
   the four [Write.id]-keyed hashtables the log used to carry (id index,
   committed-id set, tentative outcomes, final outcomes): origins are dense
   small ints and each origin's seqs are a contiguous range, so a slot is
   found by array arithmetic — no hashing, no key boxing — on every delivery,
   commit and outcome probe. *)
type slot = {
  mutable s_write : Write.t option;
      (* physically resident in the log (tentative or retained committed);
         [None] once truncated, snapshot-covered, or a never-received seq the
         vector jumped over *)
  mutable s_outcome : Op.outcome option;  (* latest tentative application *)
  mutable s_final : Op.outcome option;  (* outcome against the committed image *)
  mutable s_committed : bool;
}

(* Per-origin slot array.  [islots] is a flat growable array with a head
   offset ([Deque.t] is exactly that): logical slot [i] covers seq
   [ibase + i + 1].  Bounded-memory logs advance [ibase] past dead prefixes
   (see {!shed_dead}); unbounded logs keep [ibase = 0] forever, mirroring the
   old hashtables' retention. *)
type origin_index = {
  mutable ibase : int;  (* seqs <= ibase have been evicted from the index *)
  islots : slot Deque.t;
}

type snapshot = {
  snap_db : Db.t;
  snap_vector : Version_vector.t;
  snap_ncommitted : int;
  snap_values : (string * float) list;
}

(* Both halves of the log are indexed deques kept in their canonical orders:
   the committed prefix in commit order (append at the back on commit, drop
   from the front on truncation — a pointer bump) and the tentative suffix in
   timestamp order (binary-search insertion; the common landing-at-the-tail
   case is a plain append).

   [undo] runs parallel to [tent]: [undo.(i)] journals the db mutations made
   when [tent.(i)] was (re)applied to the full image.  An out-of-order
   arrival at position [p] is absorbed by reverting journals back to [p] and
   re-executing only [tent.(p..)] — O(suffix beyond the insertion point)
   instead of copying the committed image and replaying everything.

   [journal] records the id of every write this log has ever committed, in
   commit order, and is never truncated: observation capture ({!commit_cursor})
   reduces to a pair of indices into it. *)
type t = {
  nreplicas : int;
  initial : (string * Value.t) list;
  journal_on : bool;
      (* record the commit journal (observation capture needs it); off for
         bounded-memory long runs, where it would grow without bound *)
  evict_on_truncate : bool;
      (* truncation also evicts per-write side tables (outcomes, finals,
         committed ids), bounding memory by the truncation horizon *)
  committed : Write.t Deque.t; (* retained committed prefix, commit order *)
  journal : Write.id Vec.t; (* every commit ever, commit order; never truncated *)
  mutable ncommitted : int;
  mutable committed_db : Db.t;
  tent : Write.t Deque.t; (* tentative suffix, timestamp order *)
  undo : Db.undo Deque.t; (* undo.(i) reverts the application of tent.(i) *)
  mutable full_db : Db.t;
  vector : Version_vector.t;
  committed_vec : Version_vector.t;  (* writes in the committed prefix *)
  trunc_vec : Version_vector.t;  (* writes that may have been discarded *)
  index : origin_index array;  (* per-write bookkeeping slots, per origin *)
  mutable nresident : int;  (* slots with [s_write <> None] *)
  by_origin : Write.t Deque.t array;
      (* by_origin.(o) = the writes of origin o still in the log, in seq
         order.  Registration happens in per-origin seq order and removal
         (truncation, snapshot installation) drops per-origin prefixes, so
         the deque is always the contiguous seq range
         [trunc_vec.(o)+1 .. vector.(o)] — which makes serving a version
         vector a k-way merge over array slices instead of per-(origin,seq)
         hash probes. *)
  pending : (Write.id, Write.t) Hashtbl.t; (* per-origin sequence gaps *)
  values : (string, float) Hashtbl.t; (* conit -> accumulated nweight *)
  committed_values : (string, float) Hashtbl.t;
  tent_oweights : (string, float) Hashtbl.t; (* conit -> tentative oweight *)
  mutable nrollbacks : int;
  mutable shadow_vector : Version_vector.t option;
      (* last vector seen by the sanitizer, for monotonicity (sanitize only) *)
}

let create_bounded ~journal ~evict_outcomes ~replicas ~initial =
  {
    nreplicas = replicas;
    initial;
    journal_on = journal;
    evict_on_truncate = evict_outcomes;
    committed = Deque.create ();
    journal = Vec.create ();
    ncommitted = 0;
    committed_db = Db.create initial;
    tent = Deque.create ();
    undo = Deque.create ();
    full_db = Db.create initial;
    vector = Version_vector.create replicas;
    committed_vec = Version_vector.create replicas;
    trunc_vec = Version_vector.create replicas;
    index = Array.init replicas (fun _ -> { ibase = 0; islots = Deque.create () });
    nresident = 0;
    by_origin = Array.init replicas (fun _ -> Deque.create ());
    pending = Hashtbl.create 8;
    values = Hashtbl.create 16;
    committed_values = Hashtbl.create 16;
    tent_oweights = Hashtbl.create 16;
    nrollbacks = 0;
    shadow_vector = None;
  }

let create ~replicas ~initial =
  create_bounded ~journal:true ~evict_outcomes:false ~replicas ~initial

let htbl_add tbl key delta =
  let v = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0 in
  Hashtbl.replace tbl key (v +. delta)

let htbl_get tbl key =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0

(* ------------------------------------------------------------------ *)
(* Slot index primitives                                               *)

let fresh_slot () =
  { s_write = None; s_outcome = None; s_final = None; s_committed = false }

(* The slot for an id, if the index still covers it. *)
let slot_find t (id : Write.id) =
  let oi = t.index.(id.origin) in
  let i = id.seq - oi.ibase - 1 in
  if i < 0 || i >= Deque.length oi.islots then None
  else Some (Deque.get oi.islots i)

(* The slot for an id known to be covered (registered and not evicted). *)
let slot_exn t (id : Write.id) =
  let oi = t.index.(id.origin) in
  Deque.get oi.islots (id.seq - oi.ibase - 1)

(* Extend the origin's slot array to cover [seq], padding any gap the vector
   jumped over (snapshot installation) with empty slots, and return [seq]'s
   slot.  Registration is per-origin monotone, so the common case pushes
   exactly one slot. *)
let slot_ensure t origin seq =
  let oi = t.index.(origin) in
  let need = seq - oi.ibase in
  while Deque.length oi.islots < need do
    Deque.push_back oi.islots (fresh_slot ())
  done;
  Deque.get oi.islots (need - 1)

(* Is the write physically resident in the log?  Exactly the old id-index
   membership: slots outlive residency (unbounded logs keep them forever),
   and bounded logs only shed slots whose write is already gone. *)
let resident t origin seq =
  let oi = t.index.(origin) in
  let i = seq - oi.ibase - 1 in
  i >= 0 && i < Deque.length oi.islots
  && (Deque.get oi.islots i).s_write <> None

let resident_write t (id : Write.id) =
  match slot_find t id with Some s -> s.s_write | None -> None

(* The old committed-id-set membership: the slot flag while the slot lives.
   A shed slot (bounded mode) reads as not-committed here; callers that can
   meet shed ids ({!commit_ids}) treat non-residency as already-covered. *)
let committed_mem t (id : Write.id) =
  match slot_find t id with Some s -> s.s_committed | None -> false

(* Bounded-memory mode: pop dead leading slots (write gone, side data
   evicted) so the index stays within the truncation horizon.  Stops at the
   first resident slot — under CSN commits a lower-seq straggler can outlive
   the truncation that overtook it, and its slot must keep serving lookups
   until the write itself is popped. *)
let shed_dead t origin =
  let oi = t.index.(origin) in
  while
    (not (Deque.is_empty oi.islots))
    && (Deque.peek_front oi.islots).s_write = None
  do
    ignore (Deque.pop_front oi.islots);
    oi.ibase <- oi.ibase + 1
  done

(* ------------------------------------------------------------------ *)
(* Invariant audit (sanitize mode)                                     *)

(* Full structural audit of the log: the invariants every fast path in this
   module (and the incremental observation capture above it) relies on.
   O(log size) — only the TACT_SANITIZE checking mode runs it per-operation. *)
let invariant_violations t =
  let bad = ref [] in
  let addf fmt = Printf.ksprintf (fun m -> bad := m :: !bad) fmt in
  (* Tentative suffix strictly timestamp-sorted. *)
  for i = 1 to Deque.length t.tent - 1 do
    let a = Deque.get t.tent (i - 1) and b = Deque.get t.tent i in
    if Write.ts_compare a b >= 0 then
      addf "tentative suffix out of order at positions %d..%d: %s does not precede %s"
        (i - 1) i (Write.to_string a) (Write.to_string b)
  done;
  (* Undo journal runs parallel to the tentative suffix. *)
  if Deque.length t.undo <> Deque.length t.tent then
    addf "undo journal length %d mismatches tentative suffix length %d"
      (Deque.length t.undo) (Deque.length t.tent);
  (* Commit-journal prefix property: the journal records every commit this
     log performed itself (snapshot installation folds in remote commits
     without journalling them, so the journal may lag the commit count), and
     the retained committed deque is exactly its most recent slice, in order
     (the property observation cursors depend on). *)
  if Vec.length t.journal > t.ncommitted then
    addf "commit journal length %d exceeds commit count %d"
      (Vec.length t.journal) t.ncommitted;
  if t.journal_on then begin
    let retained = Deque.length t.committed in
    if retained > Vec.length t.journal then
      addf "retained committed prefix (%d) longer than commit journal (%d)"
        retained (Vec.length t.journal)
    else
      for i = 0 to retained - 1 do
        let w = Deque.get t.committed i in
        let jid = Vec.get t.journal (Vec.length t.journal - retained + i) in
        if Write.compare_id w.Write.id jid <> 0 then
          addf "committed prefix diverges from commit journal at retained position %d: %s vs %s"
            i (Write.id_to_string w.Write.id) (Write.id_to_string jid)
      done
  end;
  (* Id discipline: committed writes are flagged committed, tentative writes
     are not, and the known vector covers everything in the log. *)
  Deque.iter
    (fun (w : Write.t) ->
      if not (committed_mem t w.id) then
        addf "committed write %s missing from the committed-id set"
          (Write.id_to_string w.id))
    t.committed;
  let pos = ref 0 in
  Deque.iter
    (fun (w : Write.t) ->
      if committed_mem t w.id then
        addf "tentative write %s (position %d) is also marked committed"
          (Write.id_to_string w.id) !pos;
      if resident_write t w.id = None then
        addf "tentative write %s (position %d) missing from the id index"
          (Write.id_to_string w.id) !pos;
      if not (Version_vector.covers t.vector ~origin:w.id.origin ~seq:w.id.seq)
      then
        addf "known vector %s does not cover tentative write %s (position %d)"
          (Version_vector.to_string t.vector) (Write.id_to_string w.id) !pos;
      incr pos)
    t.tent;
  if not (Version_vector.dominates t.vector t.committed_vec) then
    addf "known vector %s does not dominate committed vector %s"
      (Version_vector.to_string t.vector)
      (Version_vector.to_string t.committed_vec);
  (* Per-origin index: exactly the contiguous seqs trunc+1..vector, in
     order, and physically the same writes the id index serves — the
     invariant the writes_since merge path relies on. *)
  for o = 0 to t.nreplicas - 1 do
    let base = Version_vector.get t.trunc_vec o in
    let len = Deque.length t.by_origin.(o) in
    if base + len <> Version_vector.get t.vector o then
      addf "by_origin[%d] holds %d writes above base %d but the vector says %d"
        o len base (Version_vector.get t.vector o);
    for i = 0 to len - 1 do
      let w = Deque.get t.by_origin.(o) i in
      if w.Write.id.origin <> o || w.Write.id.seq <> base + i + 1 then
        addf "by_origin[%d] slot %d holds %s, want w%d.%d" o i
          (Write.id_to_string w.Write.id) o (base + i + 1)
      else
        match resident_write t w.Write.id with
        | Some w' when w' == w -> ()
        | Some _ ->
          addf "by_origin[%d] slot %d diverges from the id index" o i
        | None ->
          addf "by_origin[%d] slot %d (%s) missing from the id index" o i
            (Write.id_to_string w.Write.id)
    done
  done;
  (* Weight accounting: the incremental conit-value and order-weight tallies
     must agree with a recount of the tentative suffix. *)
  let tent_n = Hashtbl.create 16 and tent_o = Hashtbl.create 16 in
  Deque.iter
    (fun (w : Write.t) ->
      List.iter
        (fun { Write.conit; nweight; oweight } ->
          htbl_add tent_n conit nweight;
          htbl_add tent_o conit oweight)
        w.affects)
    t.tent;
  let keys tbl =
    (* lint: allow hashtbl-fold — key collection, sorted before use *)
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  in
  let conits =
    List.sort_uniq String.compare
      (keys t.values @ keys t.committed_values @ keys tent_n @ keys t.tent_oweights)
  in
  let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b) in
  List.iter
    (fun c ->
      let expect = htbl_get t.committed_values c +. htbl_get tent_n c in
      if not (close (htbl_get t.values c) expect) then
        addf "conit %S value tally %g diverges from recount %g" c
          (htbl_get t.values c) expect;
      if not (close (htbl_get t.tent_oweights c) (htbl_get tent_o c)) then
        addf "conit %S tentative order weight %g diverges from recount %g" c
          (htbl_get t.tent_oweights c) (htbl_get tent_o c))
    conits;
  (* Undo round-trip: replaying every journal entry newest-first over a copy
     of the full image must restore the committed image exactly. *)
  if Deque.length t.undo = Deque.length t.tent then begin
    let img = Db.copy t.full_db in
    for i = Deque.length t.undo - 1 downto 0 do
      Db.revert img (Deque.get t.undo i)
    done;
    if not (Db.equal img t.committed_db) then
      addf "undo journal does not revert the full image to the committed image"
  end;
  List.rev !bad

let sanitize ?(ctx = "wlog") t =
  if Sanitize.enabled () then begin
    let bad = invariant_violations t in
    let bad =
      match t.shadow_vector with
      | Some old when not (Version_vector.dominates t.vector old) ->
        Printf.sprintf "known vector regressed: %s no longer dominates %s"
          (Version_vector.to_string t.vector) (Version_vector.to_string old)
        :: bad
      | Some _ | None -> bad
    in
    t.shadow_vector <- Some (Version_vector.copy t.vector);
    Sanitize.report ~ctx bad
  end

(* Deliberately corrupt the tentative suffix by swapping two entries —
   exists solely so tests can prove the sanitizer trips on real damage. *)
let unsafe_swap_tentative t i j =
  let a = Deque.get t.tent i and b = Deque.get t.tent j in
  Deque.set t.tent i b;
  Deque.set t.tent j a

(* Bookkeeping common to every successful insertion. *)
let register t (w : Write.t) =
  let s = slot_ensure t w.id.origin w.id.seq in
  s.s_write <- Some w;
  t.nresident <- t.nresident + 1;
  Deque.push_back t.by_origin.(w.id.origin) w;
  Version_vector.set t.vector w.id.origin w.id.seq;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.values conit nweight;
      htbl_add t.tent_oweights conit oweight)
    w.affects

(* Apply one tentative write to the full image, journalling its mutations so
   it can be rolled back, and (re-)recording its outcome — outcomes may
   change across reorderings; that is the point of write procedures. *)
let apply_one t (w : Write.t) =
  let outcome, u = Db.recording t.full_db (fun () -> Op.apply w.op t.full_db) in
  (slot_exn t w.id).s_outcome <- Some outcome;
  Deque.push_back t.undo u;
  outcome

(* Revert tentative applications down to position [pos] (exclusive). *)
let rollback_to t pos =
  while Deque.length t.undo > pos do
    Db.revert t.full_db (Deque.pop_back t.undo)
  done

let reapply_from t pos =
  for i = pos to Deque.length t.tent - 1 do
    ignore (apply_one t (Deque.get t.tent i))
  done

(* Full re-derivation of the image — only for paths where the committed order
   itself changed (CSN reorder, snapshot installation). *)
let rebuild t =
  t.full_db <- Db.copy t.committed_db;
  Deque.clear t.undo;
  reapply_from t 0

(* Insert into the tentative suffix at its timestamp-order position (without
   applying); returns the insertion index. *)
let insert_tent t (w : Write.t) =
  let n = Deque.length t.tent in
  if n = 0 || Write.ts_compare (Deque.get t.tent (n - 1)) w < 0 then begin
    Deque.push_back t.tent w;
    n
  end
  else begin
    let pos = Deque.upper_bound t.tent ~cmp:Write.ts_compare w in
    Deque.insert t.tent pos w;
    pos
  end

let next_seq t origin = Version_vector.get t.vector origin + 1

(* Bring the full image back in sync after one or more insertions, given the
   number of applied entries beforehand and the minimum insertion index.
   Pure tail appends need no rollback; anything else reverts the suffix from
   the first disturbed position and re-executes it. *)
let finish_inserts t ~applied ~minpos =
  if minpos < applied then begin
    t.nrollbacks <- t.nrollbacks + 1;
    rollback_to t minpos;
    reapply_from t minpos
  end
  else reapply_from t applied

let accept t (w : Write.t) =
  if w.id.seq <> next_seq t w.id.origin then
    invalid_arg
      (Printf.sprintf "Wlog.accept: %s out of sequence (expected seq %d)"
         (Write.id_to_string w.id) (next_seq t w.id.origin));
  let applied = Deque.length t.undo in
  register t w;
  let pos = insert_tent t w in
  finish_inserts t ~applied ~minpos:pos;
  sanitize ~ctx:"wlog.accept" t;
  match (slot_exn t w.id).s_outcome with
  | Some o -> o
  | None -> assert false

let known t id =
  Version_vector.covers t.vector ~origin:id.Write.origin ~seq:id.Write.seq

(* Drain the pending buffer for an origin after its gap filled.  Each drained
   write must be registered before looking for the next one — registration is
   what advances the vector the lookup keys on. *)
let rec drain_pending t origin acc minpos =
  let id = { Write.origin; seq = next_seq t origin } in
  match Hashtbl.find_opt t.pending id with
  | None -> (List.rev acc, minpos)
  | Some w ->
    Hashtbl.remove t.pending id;
    register t w;
    let pos = insert_tent t w in
    drain_pending t origin (w :: acc) (min minpos pos)

(* Insert a fresh write plus whatever its arrival releases from the pending
   buffer; returns the fresh writes (oldest first) and the minimum insertion
   index.  Does not touch the full image — callers finish with
   {!finish_inserts}. *)
let insert_positions t (w : Write.t) =
  register t w;
  let pos = insert_tent t w in
  let drained, minpos = drain_pending t w.id.origin [] pos in
  (w :: drained, minpos)

let insert t (w : Write.t) =
  if known t w.id then Duplicate
  else if w.id.seq > next_seq t w.id.origin then begin
    Hashtbl.replace t.pending w.id w;
    Buffered
  end
  else begin
    let applied = Deque.length t.undo in
    let _, minpos = insert_positions t w in
    finish_inserts t ~applied ~minpos;
    sanitize ~ctx:"wlog.insert" t;
    match (slot_exn t w.id).s_outcome with
    | Some o -> Inserted o
    | None -> assert false
  end

let insert_batch t ws =
  (* One rollback/re-execution for the whole batch, from the lowest position
     any of its writes landed at. *)
  let sorted = List.sort Write.ts_compare ws in
  let applied = Deque.length t.undo in
  let fresh = ref [] in
  let minpos = ref max_int in
  List.iter
    (fun (w : Write.t) ->
      if known t w.id then ()
      else if w.id.seq > next_seq t w.id.origin then
        Hashtbl.replace t.pending w.id w
      else begin
        let new_writes, mp = insert_positions t w in
        minpos := min !minpos mp;
        fresh := List.rev_append new_writes !fresh
      end)
    sorted;
  if !fresh <> [] then finish_inserts t ~applied ~minpos:(min !minpos applied);
  sanitize ~ctx:"wlog.insert_batch" t;
  List.sort Write.ts_compare !fresh

let vector t = t.vector

(* Serve the delta beyond [v] by k-way-merging the per-origin slices: each
   origin's missing writes are the tail of its (seq-ordered, hence
   ts-ordered) index, so a [nreplicas]-way heap merge yields the result in
   timestamp order directly — O(delta log k), no hashing, no sort. *)
let writes_since t v =
  let n = t.nreplicas in
  let cursor = Array.make n 0 in
  let stop = Array.make n 0 in
  let total = ref 0 in
  for origin = 0 to n - 1 do
    let have = Version_vector.get v origin in
    let upto = Version_vector.get t.vector origin in
    if upto > have then begin
      let base = Version_vector.get t.trunc_vec origin in
      if have < base then begin
        (* Error path only: name the first seq actually gone (under CSN
           commits a lower-seq straggler may outlive the truncation that
           overtook it), matching the probe order of the old implementation
           byte for byte. *)
        let seq = ref (have + 1) in
        while resident t origin !seq do incr seq done;
        invalid_arg
          (Printf.sprintf
             "Wlog.writes_since: w%d.%d was truncated (check can_serve first)"
             origin !seq)
      end;
      cursor.(origin) <- have - base;
      stop.(origin) <- upto - base;
      total := !total + (upto - have)
    end
  done;
  if !total = 0 then []
  else begin
    (* Copy each live origin's pending slice into a contiguous array (one
       pointer blit per origin), then k-way merge over the slices with a
       binary min-heap keyed by each slice's cached head write; ts_compare
       is a total order (ties break on origin and seq), so extraction order
       is deterministic. *)
    let slices = Array.make n [||] in
    let nlive = ref 0 in
    for o = 0 to n - 1 do
      let len = stop.(o) - cursor.(o) in
      if len > 0 then begin
        slices.(!nlive) <- Deque.sub t.by_origin.(o) cursor.(o) len;
        incr nlive
      end
    done;
    let k = !nlive in
    (* Merge in descending order from the slice tails with a max-heap, so
       each extracted write conses straight onto the front of the result
       list: ascending output, one cons per element, no rev and no
       intermediate array. *)
    let pos = Array.make k 0 in
    let heap = Array.make k 0 in
    let cur = Array.make k slices.(0).(0) in
    (* Unboxed copy of each tail's accept_time: heap comparisons stay on a
       flat float array instead of chasing into the write records (the
       compare is by (accept_time, id), and times are never NaN). *)
    let curk = Array.make k 0.0 in
    for s = 0 to k - 1 do
      let last = Array.length slices.(s) - 1 in
      pos.(s) <- last;
      cur.(s) <- slices.(s).(last);
      curk.(s) <- slices.(s).(last).Write.accept_time
    done;
    let greater a b =
      let ka = curk.(a) and kb = curk.(b) in
      if ka > kb then true
      else if ka < kb then false
      else Write.compare_id cur.(a).Write.id cur.(b).Write.id > 0
    in
    let rec sift_up i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if greater heap.(i) heap.(p) then begin
          let tmp = heap.(i) in
          heap.(i) <- heap.(p);
          heap.(p) <- tmp;
          sift_up p
        end
      end
    in
    let hsize = ref k in
    let rec sift_down i =
      let l = (2 * i) + 1 in
      if l < !hsize then begin
        let m =
          if l + 1 < !hsize && greater heap.(l + 1) heap.(l) then l + 1 else l
        in
        if greater heap.(m) heap.(i) then begin
          let tmp = heap.(i) in
          heap.(i) <- heap.(m);
          heap.(m) <- tmp;
          sift_down m
        end
      end
    in
    for s = 0 to k - 1 do
      heap.(s) <- s;
      sift_up s
    done;
    let outl = ref [] in
    while !hsize > 0 do
      let s = heap.(0) in
      outl := cur.(s) :: !outl;
      let p = pos.(s) - 1 in
      pos.(s) <- p;
      if p >= 0 then begin
        let w = slices.(s).(p) in
        cur.(s) <- w;
        curk.(s) <- w.Write.accept_time;
        sift_down 0
      end
      else begin
        decr hsize;
        heap.(0) <- heap.(!hsize);
        if !hsize > 0 then sift_down 0
      end
    done;
    !outl
  end

let db t = t.full_db
let committed_db t = t.committed_db
let tentative t = Deque.to_list t.tent
let tentative_ids t = List.init (Deque.length t.tent) (fun i -> (Deque.get t.tent i).Write.id)
let iter_tentative t f = Deque.iter f t.tent
let committed t = Deque.to_list t.committed
let committed_count t = t.ncommitted
let num_known t = t.nresident

(* Move one write into the committed prefix, applying it to the committed
   image and recording its final outcome. *)
let commit_one t (w : Write.t) =
  let outcome = Op.apply w.op t.committed_db in
  let s = slot_exn t w.id in
  s.s_final <- Some outcome;
  s.s_committed <- true;
  Version_vector.set t.committed_vec w.id.origin
    (max w.id.seq (Version_vector.get t.committed_vec w.id.origin));
  Deque.push_back t.committed w;
  if t.journal_on then Vec.push t.journal w.id;
  t.ncommitted <- t.ncommitted + 1;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.committed_values conit nweight;
      htbl_add t.tent_oweights conit (-.oweight))
    w.affects

(* A tentative write is stable when no origin can still produce a write that
   precedes it in timestamp order.  The strict comparison handles simultaneous
   accept times: origin [o] may yet produce a write at exactly [cover.(o)],
   which would precede [w] iff [o < w.origin]. *)
let stable ~cover (w : Write.t) =
  let ok = ref true in
  Array.iteri
    (fun o c ->
      if o <> w.id.origin then
        if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then ok := false)
    cover;
  !ok

let commit_stable t ~cover =
  if Array.length cover <> t.nreplicas then
    invalid_arg "Wlog.commit_stable: cover arity mismatch";
  (* O(1) stability peeks: a write is stable iff its timestamp is strictly
     under the minimum cover over the {e other} origins — the global minimum,
     or the runner-up when the write's own origin is the unique argmin.  The
     per-origin scan would make committing O(origins) per write, which
     dominates large-replica runs (E22); exact ties (timestamp equal to the
     effective minimum) defer to the precise tie-breaking rule. *)
  let min1 = ref infinity and min2 = ref infinity in
  let argmin = ref (-1) and nmin = ref 0 in
  Array.iteri
    (fun o c ->
      if c < !min1 then begin
        min2 := !min1;
        min1 := c;
        argmin := o;
        nmin := 1
      end
      else if c = !min1 then begin
        incr nmin;
        min2 := c
      end
      else if c < !min2 then min2 := c)
    cover;
  let stable_fast (w : Write.t) =
    let m = if !argmin = w.id.origin && !nmin = 1 then !min2 else !min1 in
    if w.accept_time < m then true
    else if w.accept_time > m then false
    else stable ~cover w
  in
  (* Commit order equals timestamp order here, so the full image and the
     suffix's undo journals beyond the frontier are untouched: committing is
     a front pop (the popped undo journal dissolves into the base image). *)
  let n = ref 0 in
  while
    (not (Deque.is_empty t.tent)) && stable_fast (Deque.peek_front t.tent)
  do
    let w = Deque.pop_front t.tent in
    ignore (Deque.pop_front t.undo);
    commit_one t w;
    incr n
  done;
  if !n > 0 then sanitize ~ctx:"wlog.commit_stable" t;
  !n

let commit_ids t ids =
  let n = ref 0 in
  let reordered = ref false in
  List.iter
    (fun id ->
      (* A known-but-not-resident id (its slot shed by a bounded log after
         snapshot adoption) is already part of the committed state — skip it
         rather than recommit. *)
      match
        if known t id && not (committed_mem t id) then resident_write t id
        else None
      with
      | None -> ()
      | Some w ->
        (* Commit order agrees with the full-image order only when the write
           being committed is the oldest tentative one — then committing is a
           front pop.  Otherwise remove it from the middle and re-derive the
           image once, after the batch. *)
        if
          (not !reordered)
          && (not (Deque.is_empty t.tent))
          && Write.compare_id (Deque.peek_front t.tent).Write.id id = 0
        then begin
          ignore (Deque.pop_front t.tent);
          ignore (Deque.pop_front t.undo)
        end
        else begin
          reordered := true;
          let pos = Deque.upper_bound t.tent ~cmp:Write.ts_compare w - 1 in
          assert (pos >= 0 && Write.compare_id (Deque.get t.tent pos).Write.id id = 0);
          ignore (Deque.remove t.tent pos)
        end;
        commit_one t w;
        incr n)
    ids;
  if !reordered then begin
    t.nrollbacks <- t.nrollbacks + 1;
    rebuild t
  end;
  if !n > 0 then sanitize ~ctx:"wlog.commit_ids" t;
  !n

let tentative_oweight t conit = htbl_get t.tent_oweights conit

let tentative_max_oweight t =
  (* lint: allow hashtbl-fold — max over values, order-independent *)
  Hashtbl.fold (fun _ v acc -> Float.max v acc) t.tent_oweights 0.0

let conit_value t conit = htbl_get t.values conit
let committed_conit_value t conit = htbl_get t.committed_values conit

let outcome t id = match slot_find t id with Some s -> s.s_outcome | None -> None
let final_outcome t id = match slot_find t id with Some s -> s.s_final | None -> None
let rollbacks t = t.nrollbacks

(* ------------------------------------------------------------------ *)
(* Observation capture                                                 *)

(* The retained committed prefix is always the most recent slice of the
   commit journal (commits append to both; truncation and snapshot
   installation only shorten the retained deque), so an access's observed
   committed prefix is fully described by two journal indices — and because
   the journal is append-only, the slice can be expanded at any later time. *)
let commit_cursor t =
  if not t.journal_on then
    invalid_arg "Wlog.commit_cursor: commit journal disabled (journal:false)";
  let hi = Vec.length t.journal in
  (hi - Deque.length t.committed, hi)

let commit_slice t ~lo ~hi = List.init (hi - lo) (fun i -> Vec.get t.journal (lo + i))

(* ------------------------------------------------------------------ *)
(* Truncation and snapshots                                            *)

let retained t = Deque.length t.committed

let committed_vector t = t.committed_vec

let truncate t ~keep =
  let n = Deque.length t.committed in
  if n <= keep then 0
  else begin
    let drop = n - keep in
    for _ = 1 to drop do
      let w = Deque.pop_front t.committed in
      let s = slot_exn t w.Write.id in
      s.s_write <- None;
      t.nresident <- t.nresident - 1;
      if t.evict_on_truncate then begin
        (* Per-write slot data would otherwise grow forever; the eviction is
           safe because nothing consults it for truncated writes: the
           primary scheme's csn pointer never re-offers a committed prefix,
           and stability commits only pop tentative writes. *)
        s.s_outcome <- None;
        s.s_final <- None;
        s.s_committed <- false
      end;
      let o = w.id.origin in
      Version_vector.set t.trunc_vec o
        (max w.id.seq (Version_vector.get t.trunc_vec o));
      (* Drop the origin's prefix the truncation vector now covers.  Under
         CSN commits the truncated write need not be its origin's oldest
         (commit order is the primary's, not seq order); lower-seq stragglers
         it jumps over become unservable the moment trunc_vec passes them —
         exactly as before, when they merely lingered in the id index — so
         the per-origin index sheds them here to stay the contiguous range
         (trunc_vec.(o), vector.(o)]. *)
      let bo = t.by_origin.(o) in
      while
        (not (Deque.is_empty bo))
        && (Deque.peek_front bo).Write.id.seq
           <= Version_vector.get t.trunc_vec o
      do
        ignore (Deque.pop_front bo)
      done;
      if t.evict_on_truncate then shed_dead t o
    done;
    sanitize ~ctx:"wlog.truncate" t;
    drop
  end

let can_serve t v = Version_vector.dominates v t.trunc_vec

let snapshot t =
  {
    snap_db = Db.copy t.committed_db;
    snap_vector = Version_vector.copy t.committed_vec;
    snap_ncommitted = t.ncommitted;
    snap_values =
      (* lint: allow hashtbl-fold — sorted below for a deterministic wire image *)
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.committed_values []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }

let install_snapshot t snap =
  if
    Version_vector.dominates t.committed_vec snap.snap_vector
    (* local state is already at or past the snapshot *)
  then false
  else if not (Version_vector.dominates snap.snap_vector t.committed_vec) then
    (* Incomparable committed states cannot happen under one commitment
       scheme; refuse rather than corrupt. *)
    false
  else begin
    let covered (w : Write.t) =
      Version_vector.covers snap.snap_vector ~origin:w.id.origin ~seq:w.id.seq
    in
    (* Adopt the snapshot as the committed state. *)
    t.committed_db <- Db.copy snap.snap_db;
    t.ncommitted <- snap.snap_ncommitted;
    for o = 0 to t.nreplicas - 1 do
      Version_vector.set t.committed_vec o (Version_vector.get snap.snap_vector o);
      (* Every write the snapshot folds in behaves as truncated locally: we
         cannot serve it write-by-write. *)
      Version_vector.set t.trunc_vec o
        (max (Version_vector.get t.trunc_vec o) (Version_vector.get snap.snap_vector o))
    done;
    (* Retained committed records are all covered by the snapshot; drop them.
       (The commit journal keeps their ids: it describes this log's own
       commit history, which the snapshot does not rewrite.) *)
    Deque.iter
      (fun (w : Write.t) ->
        let s = slot_exn t w.Write.id in
        s.s_write <- None;
        t.nresident <- t.nresident - 1;
        if t.evict_on_truncate then begin
          s.s_outcome <- None;
          s.s_final <- None;
          s.s_committed <- false
        end)
      t.committed;
    Deque.clear t.committed;
    Hashtbl.reset t.committed_values;
    List.iter (fun (k, v) -> Hashtbl.replace t.committed_values k v) snap.snap_values;
    (* Tentative writes the snapshot covers were committed remotely — drop
       them (their final outcomes are not locally recoverable); keep and
       replay the rest. *)
    let kept = ref [] in
    Deque.iter
      (fun (w : Write.t) ->
        if covered w then begin
          let s = slot_exn t w.id in
          s.s_write <- None;
          t.nresident <- t.nresident - 1;
          s.s_committed <- true
        end
        else kept := w :: !kept)
      t.tent;
    Deque.clear t.tent;
    List.iter (Deque.push_back t.tent) (List.rev !kept);
    (* Rebuild the derived quantities: known vector, conit values, tentative
       oweights. *)
    Version_vector.merge_into t.vector snap.snap_vector;
    (* The per-origin index now holds exactly the kept tentative writes:
       everything at or below the snapshot vector was dropped above, and
       the survivors are the contiguous seqs snap_vector.(o)+1 .. vector.(o)
       (the tentative suffix's per-origin subsequence, in seq order). *)
    Array.iter Deque.clear t.by_origin;
    Deque.iter
      (fun (w : Write.t) -> Deque.push_back t.by_origin.(w.id.origin) w)
      t.tent;
    if t.evict_on_truncate then
      for o = 0 to t.nreplicas - 1 do
        shed_dead t o;
        (* If the origin's index emptied, jump its base over the snapshot's
           covered range so the next registration does not pad dead slots for
           seqs this log never held. *)
        let oi = t.index.(o) in
        let cover = Version_vector.get snap.snap_vector o in
        if Deque.is_empty oi.islots && oi.ibase < cover then oi.ibase <- cover
      done;
    Hashtbl.reset t.tent_oweights;
    Hashtbl.reset t.values;
    (* lint: allow hashtbl-iter — table copy, order-independent *)
    Hashtbl.iter (fun k v -> Hashtbl.replace t.values k v) t.committed_values;
    Deque.iter
      (fun (w : Write.t) ->
        List.iter
          (fun { Write.conit; nweight; oweight } ->
            htbl_add t.values conit nweight;
            htbl_add t.tent_oweights conit oweight)
          w.affects)
      t.tent;
    (* Drop pending-buffer entries the snapshot already covers. *)
    let stale =
      (* lint: allow hashtbl-fold — collecting keys to remove, order-independent *)
      Hashtbl.fold
        (fun id _ acc ->
          if Version_vector.covers snap.snap_vector ~origin:id.Write.origin ~seq:id.Write.seq
          then id :: acc
          else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    t.nrollbacks <- t.nrollbacks + 1;
    rebuild t;
    sanitize ~ctx:"wlog.install_snapshot" t;
    true
  end
