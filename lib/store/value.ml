type t =
  | Nil
  | Int of int
  | Float of float
  | Str of string
  | List of t list

let rec equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Str a, Str b -> String.equal a b
  | List a, List b -> (try List.for_all2 equal a b with Invalid_argument _ -> false)
  | (Nil | Int _ | Float _ | Str _ | List _), _ -> false

let rec compare a b =
  match (a, b) with
  | Nil, Nil -> 0
  | Nil, _ -> -1
  | _, Nil -> 1
  | Int a, Int b -> Int.compare a b
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float a, Float b -> Float.compare a b
  | Float _, _ -> -1
  | _, Float _ -> 1
  | Str a, Str b -> String.compare a b
  | Str _, _ -> -1
  | _, Str _ -> 1
  | List a, List b -> List.compare compare a b

let to_int = function
  | Nil -> 0
  | Int i -> i
  | Float f -> int_of_float f
  | Str _ | List _ -> invalid_arg "Value.to_int"

let to_float = function
  | Nil -> 0.0
  | Int i -> float_of_int i
  | Float f -> f
  | Str _ | List _ -> invalid_arg "Value.to_float"

let to_list = function
  | Nil -> []
  | List l -> l
  | v -> invalid_arg (Printf.sprintf "Value.to_list: not a list (%s)"
                        (match v with Int _ -> "int" | Float _ -> "float"
                                    | Str _ -> "str" | Nil | List _ -> "?"))

let rec to_string = function
  | Nil -> "nil"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | List l -> "[" ^ String.concat "; " (List.map to_string l) ^ "]"

(* Exact encoded size under Codec's wire format (tag byte + fixed-width
   payloads + length-prefixed strings); Codec.value_byte_size delegates
   here, and a codec test pins it against the real encoder. *)
let rec wire_size = function
  | Nil -> 1
  | Int _ | Float _ -> 1 + 8
  | Str s -> 1 + 8 + String.length s
  | List l -> List.fold_left (fun acc v -> acc + wire_size v) (1 + 8) l

let rec byte_size = function
  | Nil -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | List l -> List.fold_left (fun acc v -> acc + byte_size v) 4 l
