(* Framed anti-entropy batches: one wire frame per sync round, carrying
   everything the per-write path used to spread over many Transfer messages —
   the sender's vector and cover, the CSN slice, and either a delta (the
   writes the receiver's vector proves it lacks) or, when the sender has
   truncated below the receiver's vector, a full snapshot plus the retained
   tail.  The header carries per-origin sequence ranges so a receiver (or a
   relay) can summarise a frame without decoding its payload. *)

let magic = 0xB6

(* Version 2 added the shard id: with a sharded conit space every frame names
   the shard whose log it carries, so a receiver can reject (and account for)
   deliveries that leaked across shards without decoding the payload. *)
let version = 2

type kind = Push | Pull_reply of int | Gossip

type payload =
  | Delta of Write.t list
  | Full of Wlog.snapshot * Write.t list
      (** snapshot + retained writes past its vector *)

type t = {
  from : int;
  shard : int;  (** the shard whose log this frame carries (0 when unsharded) *)
  kind : kind;
  vector : Version_vector.t;
  cover : float array;
  csn_start : int;
  csn : Write.id list;
  rate : float;
  payload : t_payload;
}

and t_payload = payload

type header = {
  h_from : int;
  h_shard : int;
  h_kind : kind;
  h_rate : float;
  h_csn_start : int;
  h_ranges : (int * int * int) list;
      (** (origin, lo, hi): the batch carries origin's writes seq lo..hi *)
  h_payload : [ `Delta | `Full ];
}

(* Per-origin contiguous sequence ranges of the carried writes.  Delta writes
   are exactly the suffix the receiver's vector lacks, so per origin they are
   contiguous; we compute min/max and leave holes (impossible by
   construction) to the decoder's write-level dedup. *)
let ranges_of_writes writes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (w : Write.t) ->
      let o = w.id.origin and s = w.id.seq in
      match Hashtbl.find_opt tbl o with
      | None -> Hashtbl.replace tbl o (s, s)
      | Some (lo, hi) -> Hashtbl.replace tbl o (min lo s, max hi s))
    writes;
  (* lint: allow hashtbl-fold -- collection only, sorted by origin below *)
  Hashtbl.fold (fun o (lo, hi) acc -> (o, lo, hi) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let ranges b =
  match b.payload with
  | Delta ws | Full (_, ws) -> ranges_of_writes ws

let payload_writes b = match b.payload with Delta ws | Full (_, ws) -> ws

(* ------------------------------------------------------------------ *)
(* Exact arithmetic size — mirrors [encode] below; checked by tests.   *)

let writes_byte_size ws =
  List.fold_left (fun acc w -> acc + Write.byte_size w) 8 ws

let byte_size b =
  let header =
    1 (* magic *) + 1 (* version *) + 8 (* from *) + 8 (* shard *)
    + 1 (* kind tag *)
    + 8 (* round *) + 8 (* rate *) + 8 (* csn_start *)
    + 8 + (24 * List.length (ranges b))
    + 1 (* payload tag *)
  in
  let csn = 8 + (16 * List.length b.csn) in
  let vector = Codec.vector_byte_size b.vector in
  let cover = 8 + (8 * Array.length b.cover) in
  let payload =
    match b.payload with
    | Delta ws -> writes_byte_size ws
    | Full (snap, ws) -> Codec.snapshot_byte_size snap + writes_byte_size ws
  in
  header + csn + vector + cover + payload

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)

let kind_tag = function Push -> 0 | Pull_reply _ -> 1 | Gossip -> 2
let kind_round = function Pull_reply r -> r | Push | Gossip -> 0

let encode frame b =
  let open Codec in
  Frame.preallocate frame (byte_size b);
  put_u8 frame magic;
  put_u8 frame version;
  put_int frame b.from;
  put_int frame b.shard;
  put_u8 frame (kind_tag b.kind);
  put_int frame (kind_round b.kind);
  put_float frame b.rate;
  put_int frame b.csn_start;
  let rs = ranges b in
  put_int frame (List.length rs);
  List.iter
    (fun (o, lo, hi) ->
      put_int frame o;
      put_int frame lo;
      put_int frame hi)
    rs;
  (match b.payload with Delta _ -> put_u8 frame 0 | Full _ -> put_u8 frame 1);
  put_int frame (List.length b.csn);
  List.iter
    (fun (id : Write.id) ->
      put_int frame id.origin;
      put_int frame id.seq)
    b.csn;
  encode_vector frame b.vector;
  put_int frame (Array.length b.cover);
  Array.iter (put_float frame) b.cover;
  match b.payload with
  | Delta ws ->
    put_int frame (List.length ws);
    List.iter (encode_write frame) ws
  | Full (snap, ws) ->
    encode_snapshot frame snap;
    put_int frame (List.length ws);
    List.iter (encode_write frame) ws

let to_string b = Codec.to_string encode b

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)

let decode_kind c =
  let tag = Codec.get_u8 c in
  let round = Codec.get_int c in
  match tag with
  | 0 -> Push
  | 1 -> Pull_reply round
  | 2 -> Gossip
  | t -> raise (Codec.Malformed (Printf.sprintf "bad batch kind %d" t))

let decode_prefix c =
  let open Codec in
  if get_u8 c <> magic then raise (Malformed "bad batch magic");
  let v = get_u8 c in
  if v <> version then
    raise (Malformed (Printf.sprintf "unsupported batch version %d" v));
  let from = get_int c in
  let shard = get_int c in
  if shard < 0 then raise (Malformed "negative shard id");
  let kind = decode_kind c in
  let rate = get_float c in
  let csn_start = get_int c in
  let nranges = get_int c in
  check_items c ~n:nranges ~min_size:24 ~what:"range";
  let ranges =
    List.init nranges (fun _ ->
        let o = get_int c in
        let lo = get_int c in
        let hi = get_int c in
        (o, lo, hi))
  in
  let payload =
    match get_u8 c with
    | 0 -> `Delta
    | 1 -> `Full
    | t -> raise (Malformed (Printf.sprintf "bad payload tag %d" t))
  in
  (from, shard, kind, rate, csn_start, ranges, payload)

let decode_header s =
  let c = Codec.cursor s in
  let h_from, h_shard, h_kind, h_rate, h_csn_start, h_ranges, h_payload =
    decode_prefix c
  in
  { h_from; h_shard; h_kind; h_rate; h_csn_start; h_ranges; h_payload }

let decode_writes c =
  let open Codec in
  let n = get_int c in
  (* id (16) + accept time (8) + affect count (8) + op tag (1) *)
  check_items c ~n ~min_size:33 ~what:"write";
  List.init n (fun _ -> decode_write c)

let of_string s =
  let open Codec in
  let c = cursor s in
  let from, shard, kind, rate, csn_start, _ranges, ptag = decode_prefix c in
  let ncsn = get_int c in
  check_items c ~n:ncsn ~min_size:16 ~what:"csn";
  let csn =
    List.init ncsn (fun _ ->
        let origin = get_int c in
        let seq = get_int c in
        { Write.origin; seq })
  in
  let vector = decode_vector c in
  let ncover = get_int c in
  check_items c ~n:ncover ~min_size:8 ~what:"cover";
  let cover = Array.init ncover (fun _ -> get_float c) in
  let payload =
    match ptag with
    | `Delta -> Delta (decode_writes c)
    | `Full ->
      let snap = decode_snapshot c in
      let ws = decode_writes c in
      Full (snap, ws)
  in
  if c.pos <> String.length c.data then
    raise (Malformed "trailing bytes after batch");
  { from; shard; kind; vector; cover; csn_start; csn; rate; payload }

(* Typed decode for untrusted input: total over arbitrary bytes — truncated,
   corrupt, oversized or trailing-garbage frames come back as
   [Error (Malformed _)], never an exception and (thanks to the
   [check_items] guards above) never an allocation proportional to a corrupt
   count field.  The decode-fuzz test drives mutated frames through here. *)
let wrap_decode f s =
  match f s with
  | v -> Ok v
  | exception Codec.Malformed m -> Error (Transport.Malformed m)
  | exception Invalid_argument m ->
    Error (Transport.Malformed ("decode: " ^ m))

let decode s = wrap_decode of_string s
let decode_header_safe s = wrap_decode decode_header s

(* ------------------------------------------------------------------ *)
(* The batch planner: what one sync round sends to one peer.           *)

(* Delta against the peer's (believed) vector when the log can still serve
   it; otherwise fall back to a full snapshot plus the retained tail — the
   truncation-integration point.  The believed vector only ever lags the
   peer's true state, so a stale belief costs redundant writes (deduped on
   receive), never correctness. *)
let plan ~log ~peer_vector payload_of =
  if Wlog.can_serve log peer_vector then
    payload_of (Delta (Wlog.writes_since log peer_vector))
  else
    let snap = Wlog.snapshot log in
    payload_of (Full (snap, Wlog.writes_since log snap.Wlog.snap_vector))
