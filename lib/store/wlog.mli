(** Per-replica write log (Section 2 of the paper).

    The log holds every write applied to the replica's database image, split
    into a {e committed} prefix — totally ordered, never reordered again — and
    a {e tentative} suffix kept in the canonical timestamp order
    [(accept_time, origin, seq)] and subject to rollback and reapplication
    when writes arrive out of order.  Two database images are maintained: the
    committed image (state after the committed prefix only) and the full image
    (committed plus tentative), which is what reads observe.

    The log also maintains, incrementally, the quantities the conit metrics
    are built from: per-conit observed value (accumulated nweights of all
    known writes — the weight-specification reading of a conit's value,
    Section 3.4) and per-conit tentative oweight (the replica's order error).

    Out-of-order arrival {e within one origin's sequence} (possible only under
    message loss plus reordering) is absorbed by a pending buffer, so the
    version vector always describes a contiguous per-origin prefix. *)

type t

type insertion =
  | Inserted of Op.outcome  (** applied tentatively; outcome of this application *)
  | Duplicate  (** already known *)
  | Buffered  (** a per-origin sequence gap; parked until the gap fills *)

val create : replicas:int -> initial:(string * Value.t) list -> t
(** Equivalent to {!create_bounded} with [journal:true]
    [evict_outcomes:false] — full history retention. *)

val create_bounded :
  journal:bool ->
  evict_outcomes:bool ->
  replicas:int ->
  initial:(string * Value.t) list ->
  t
(** [journal]: keep the append-only commit journal that observation capture
    ({!commit_cursor}) relies on.  Disable it for bounded-memory long runs —
    it grows with every commit, forever — at the price of {!commit_cursor}
    raising [Invalid_argument].

    [evict_outcomes]: make {!truncate} (and snapshot installation) also evict
    the truncated writes' entries from the per-write side tables (tentative
    outcomes, final outcomes, committed-id set), so total memory is bounded
    by the truncation horizon instead of by history.  Safe because no code
    path consults these tables for truncated writes; the visible cost is
    {!final_outcome} returning [None] for them. *)

val accept : t -> Write.t -> Op.outcome
(** Insert a locally originated write.  Must be the next sequence number for
    its origin and must not precede any known write in timestamp order. *)

val insert : t -> Write.t -> insertion
(** Insert one remote write, rolling back / reapplying the tentative suffix
    if it lands in the middle. *)

val insert_batch : t -> Write.t list -> Write.t list
(** Insert many writes with at most one rollback; returns the writes that
    were actually new to this replica (including any pending-buffer entries
    the batch released), in timestamp order. *)

val vector : t -> Version_vector.t
(** The live vector of known writes (do not mutate). *)

val known : t -> Write.id -> bool

val writes_since : t -> Version_vector.t -> Write.t list
(** Every known write not covered by the given vector (anti-entropy payload),
    in timestamp order. *)

val db : t -> Db.t
(** Full view: committed prefix plus tentative suffix applied. *)

val committed_db : t -> Db.t

val tentative : t -> Write.t list
(** The tentative suffix, in timestamp order. *)

val tentative_ids : t -> Write.id list
(** Ids of the tentative suffix, in timestamp order — O(suffix), which is
    bounded by the commit lag, not by history. *)

val iter_tentative : t -> (Write.t -> unit) -> unit
(** Iterate the tentative suffix in timestamp order without materialising a
    list. *)

val committed : t -> Write.t list
(** The committed prefix, in commit order. *)

val committed_count : t -> int
val num_known : t -> int

val commit_stable : t -> cover:float array -> int
(** Stability commitment: [cover.(o)] promises that every write from origin
    [o] with accept time <= [cover.(o)] is known to this replica.  Commits
    the maximal stable prefix of the tentative suffix — writes that no origin
    can still precede in timestamp order — and returns how many were
    committed.  Commit order equals timestamp order, so the full image is
    unaffected. *)

val commit_ids : t -> Write.id list -> int
(** Commitment in an externally supplied order (the primary-CSN scheme).
    Commits each known, not-yet-committed id in the given order; ids must be
    committed in the same order system-wide.  Because the order may differ
    from timestamp order, the full image is re-derived.  Returns how many
    were committed. *)

val tentative_oweight : t -> string -> float
(** Order error of a conit at this replica: summed oweight of tentative
    writes affecting it. *)

val tentative_max_oweight : t -> float
(** Max over conits of {!tentative_oweight} — a cheap upper bound used when a
    single commitment decision covers all conits. *)

val conit_value : t -> string -> float
(** Observed conit value: accumulated nweight over all known writes. *)

val committed_conit_value : t -> string -> float

val outcome : t -> Write.id -> Op.outcome option
(** Latest (tentative or committed) application outcome of a known write. *)

val final_outcome : t -> Write.id -> Op.outcome option
(** Outcome under the committed order; [None] until the write commits. *)

val rollbacks : t -> int
(** Number of rollback/reapply episodes (a cost metric). *)

(** {2 Observation capture}

    Serving an access must record which writes it observed (for later
    consistency verification) without walking the whole committed prefix.
    The log keeps an append-only journal of every commit it has ever made;
    the retained committed prefix is always the most recent slice of that
    journal, so the observation reduces to a pair of journal indices captured
    in O(1) and expandable at any later time. *)

val commit_cursor : t -> int * int
(** [(lo, hi)]: the journal range holding the currently retained committed
    prefix, in commit order.  O(1).  Because the journal is append-only, the
    range denotes the same writes forever. *)

val commit_slice : t -> lo:int -> hi:int -> Write.id list
(** Expand a cursor captured earlier by {!commit_cursor} into the ids it
    denotes, in commit order.  [lo]/[hi] must come from a cursor captured on
    this log. *)

(** {2 Log truncation and snapshots}

    A long-lived replica cannot retain every committed write.  Truncation
    discards the oldest part of the committed prefix; once writes have been
    discarded, anti-entropy can no longer assemble a diff for a peer that is
    missing them, and must fall back to installing a {e snapshot}: the
    committed database image together with the vector of writes it reflects.
    Because the committed order covers a per-origin prefix of each origin's
    sequence (stability commits in timestamp order; the primary assigns CSNs
    in per-origin FIFO order), the committed prefix is always describable by
    a version vector. *)

type snapshot = {
  snap_db : Db.t;  (** the committed image (a private copy) *)
  snap_vector : Version_vector.t;  (** writes reflected in it *)
  snap_ncommitted : int;
  snap_values : (string * float) list;  (** committed conit values *)
}

val truncate : t -> keep:int -> int
(** Discard all but the newest [keep] committed writes; returns how many were
    discarded.  Discarded writes can no longer be served to peers. *)

val retained : t -> int
(** Committed writes still held in the log. *)

val can_serve : t -> Version_vector.t -> bool
(** Can a write-by-write diff against the given peer vector still be
    assembled, or have needed writes been truncated away? *)

val snapshot : t -> snapshot
(** Capture the current committed state for a full-state transfer. *)

val install_snapshot : t -> snapshot -> bool
(** Replace the committed state with the snapshot's if it is strictly ahead
    (its vector dominates the local committed vector); local writes the
    snapshot already covers are dropped (their final outcomes were computed
    remotely and are not recoverable locally), the rest of the tentative
    suffix is replayed on top.  Returns false (and does nothing) if the local
    committed state is not behind the snapshot. *)

val committed_vector : t -> Version_vector.t
(** The vector describing the committed prefix (do not mutate). *)

(** {2 Invariant sanitizer}

    The structural invariants the indexed log relies on — tentative suffix in
    strict timestamp order, undo journal in lockstep with it, retained
    committed prefix equal to the most recent slice of the commit journal,
    version-vector coverage and monotonicity, weight tallies agreeing with a
    recount, and the undo journal reverting the full image exactly to the
    committed image — can be audited on demand, or after every mutation when
    [TACT_SANITIZE=1] (see {!Tact_util.Sanitize}). *)

val invariant_violations : t -> string list
(** Full structural audit; empty when the log is healthy.  O(log size). *)

val sanitize : ?ctx:string -> t -> unit
(** When {!Tact_util.Sanitize.enabled}, run {!invariant_violations} (plus a
    vector-monotonicity check against the previous audit) and raise
    [Tact_util.Sanitize.Violation] with the offending positions.  No-op
    otherwise.  Called internally after every mutating operation. *)

(**/**)

val unsafe_swap_tentative : t -> int -> int -> unit
(** Test-only: corrupt the log by swapping two tentative entries, so tests
    can prove the sanitizer detects real damage.  Never call otherwise. *)
