exception Malformed of string
exception Unserializable of string

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }

(* ------------------------------------------------------------------ *)
(* The frame allocator: a growable byte arena written through reserved
   offsets, so encoding a whole anti-entropy batch costs one allocation
   per round (amortised zero once the arena has grown to steady-state
   size) instead of one buffer per write.  The shape follows the
   [get_allocator : state -> int -> buffer] idiom of shared-memory
   transports: callers that know an exact size up front (writes memoize
   theirs in [Write.byte_size]) reserve the span and fill it in place. *)

module Frame = struct
  type t = {
    mutable buf : Bytes.t;  (* lint: allow — the Frame IS the allocator *)
    mutable len : int;
    mutable allocs : int;  (* arena (re)allocations, for the bench *)
  }

  let create ?(initial = 4096) () =
    (* lint: allow alloc-hot-path -- arena construction: one buffer per
       Frame, reused for every encode thereafter *)
    { buf = Bytes.create (max 16 initial); len = 0; allocs = 1 }

  let clear t = t.len <- 0
  let length t = t.len
  let allocations t = t.allocs
  let capacity t = Bytes.length t.buf

  let grow t need =
    let cap = ref (Bytes.length t.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    (* lint: allow alloc-hot-path -- arena growth: doubling keeps this
       amortised-zero; [allocations] counts it for the bench *)
    let fresh = Bytes.create !cap in
    Bytes.blit t.buf 0 fresh 0 t.len;
    t.buf <- fresh;
    t.allocs <- t.allocs + 1

  let reserve t n =
    if n < 0 then invalid_arg "Frame.reserve: negative size";
    if t.len + n > Bytes.length t.buf then grow t (t.len + n);
    let off = t.len in
    t.len <- t.len + n;
    off

  let preallocate t n =
    (* Callers that know the exact encoded size (arithmetic byte sizes)
       declare it up front, bounding the whole encode to at most one arena
       growth — the one-allocation-per-round batch path. *)
    if t.len + n > Bytes.length t.buf then grow t (t.len + n)

  let contents t = Bytes.sub_string t.buf 0 t.len

  let blit_to t ~dst ~dst_off = Bytes.blit t.buf 0 dst dst_off t.len
end

(* ------------------------------------------------------------------ *)
(* Primitives: tagged, fixed-width integers/floats, length-prefixed
   strings.  Big-endian for determinism across hosts.  Each writes into
   a span reserved from the frame arena. *)

let put_u8 f n =
  let off = Frame.reserve f 1 in
  Bytes.unsafe_set f.Frame.buf off (Char.unsafe_chr (n land 0xff))

let put_i64 f n =
  let off = Frame.reserve f 8 in
  Bytes.set_int64_be f.Frame.buf off n

let put_int f n = put_i64 f (Int64.of_int n)
let put_float f x = put_i64 f (Int64.bits_of_float x)

let put_string f s =
  let n = String.length s in
  let off = Frame.reserve f (8 + n) in
  Bytes.set_int64_be f.Frame.buf off (Int64.of_int n);
  Bytes.blit_string s 0 f.Frame.buf (off + 8) n

let put_raw f s =
  let n = String.length s in
  let off = Frame.reserve f n in
  Bytes.blit_string s 0 f.Frame.buf off n

let need c n =
  if c.pos + n > String.length c.data then
    raise (Malformed (Printf.sprintf "truncated at %d (need %d)" c.pos n))

let get_u8 c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.data c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c = Int64.to_int (get_i64 c)
let get_float c = Int64.float_of_bits (get_i64 c)

let get_string c =
  let n = get_int c in
  if n < 0 then raise (Malformed "negative string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* Guard a decoded element count against the bytes actually left in the
   buffer before allocating anything proportional to it: a corrupt 8-byte
   count field must never balloon memory.  [min_size] is a lower bound on the
   encoded size of one element. *)
let check_items c ~n ~min_size ~what =
  if n < 0 then raise (Malformed (Printf.sprintf "negative %s count" what));
  if min_size > 0 && n > (String.length c.data - c.pos) / min_size then
    raise
      (Malformed
         (Printf.sprintf "%s count %d overruns the remaining %d bytes" what n
            (String.length c.data - c.pos)))

(* ------------------------------------------------------------------ *)
(* Values *)

let rec encode_value f (v : Value.t) =
  match v with
  | Value.Nil -> put_u8 f 0
  | Value.Int i ->
    put_u8 f 1;
    put_int f i
  | Value.Float x ->
    put_u8 f 2;
    put_float f x
  | Value.Str s ->
    put_u8 f 3;
    put_string f s
  | Value.List l ->
    put_u8 f 4;
    put_int f (List.length l);
    List.iter (encode_value f) l

let rec decode_value c =
  match get_u8 c with
  | 0 -> Value.Nil
  | 1 -> Value.Int (get_int c)
  | 2 -> Value.Float (get_float c)
  | 3 -> Value.Str (get_string c)
  | 4 ->
    let n = get_int c in
    check_items c ~n ~min_size:1 ~what:"value list";
    Value.List (List.init n (fun _ -> decode_value c))
  | t -> raise (Malformed (Printf.sprintf "bad value tag %d" t))

(* ------------------------------------------------------------------ *)
(* Operations *)

let encode_op f (op : Op.t) =
  match op with
  | Op.Noop -> put_u8 f 0
  | Op.Set (k, v) ->
    put_u8 f 1;
    put_string f k;
    encode_value f v
  | Op.Add (k, d) ->
    put_u8 f 2;
    put_string f k;
    put_float f d
  | Op.Append (k, v) ->
    put_u8 f 3;
    put_string f k;
    encode_value f v
  | Op.Named (name, arg) ->
    put_u8 f 4;
    put_string f name;
    encode_value f arg
  | Op.Proc p ->
    raise
      (Unserializable
         (Printf.sprintf
            "write procedure %S is a closure; use Op.Named with a registered \
             procedure"
            p.Op.name))

let decode_op c =
  match get_u8 c with
  | 0 -> Op.Noop
  | 1 ->
    let k = get_string c in
    Op.Set (k, decode_value c)
  | 2 ->
    let k = get_string c in
    Op.Add (k, get_float c)
  | 3 ->
    let k = get_string c in
    Op.Append (k, decode_value c)
  | 4 ->
    let name = get_string c in
    Op.Named (name, decode_value c)
  | t -> raise (Malformed (Printf.sprintf "bad op tag %d" t))

(* ------------------------------------------------------------------ *)
(* Writes *)

let encode_write f (w : Write.t) =
  put_int f w.id.origin;
  put_int f w.id.seq;
  put_float f w.accept_time;
  put_int f (List.length w.affects);
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      put_string f conit;
      put_float f nweight;
      put_float f oweight)
    w.affects;
  encode_op f w.op

let decode_write c =
  let origin = get_int c in
  let seq = get_int c in
  let accept_time = get_float c in
  let n = get_int c in
  check_items c ~n ~min_size:24 ~what:"affect";
  let affects =
    List.init n (fun _ ->
        let conit = get_string c in
        let nweight = get_float c in
        let oweight = get_float c in
        { Write.conit; nweight; oweight })
  in
  let op = decode_op c in
  Write.make ~id:{ origin; seq } ~accept_time ~op ~affects

(* ------------------------------------------------------------------ *)
(* Version vectors and snapshots *)

let encode_vector f v =
  let n = Version_vector.size v in
  put_int f n;
  for i = 0 to n - 1 do
    put_int f (Version_vector.get v i)
  done

let decode_vector c =
  let n = get_int c in
  check_items c ~n ~min_size:8 ~what:"vector entry";
  let v = Version_vector.create n in
  for i = 0 to n - 1 do
    Version_vector.set v i (get_int c)
  done;
  v

let encode_snapshot f (s : Wlog.snapshot) =
  encode_vector f s.snap_vector;
  put_int f s.snap_ncommitted;
  put_int f (List.length s.snap_values);
  List.iter
    (fun (conit, v) ->
      put_string f conit;
      put_float f v)
    s.snap_values;
  let keys = List.sort String.compare (Db.keys s.snap_db) in
  put_int f (List.length keys);
  List.iter
    (fun k ->
      put_string f k;
      encode_value f (Db.get s.snap_db k))
    keys

let decode_snapshot c =
  let snap_vector = decode_vector c in
  let snap_ncommitted = get_int c in
  let nvals = get_int c in
  check_items c ~n:nvals ~min_size:16 ~what:"snapshot value";
  let snap_values =
    List.init nvals (fun _ ->
        let conit = get_string c in
        (conit, get_float c))
  in
  let nkeys = get_int c in
  check_items c ~n:nkeys ~min_size:9 ~what:"snapshot key";
  let snap_db = Db.create [] in
  for _ = 1 to nkeys do
    let k = get_string c in
    Db.set snap_db k (decode_value c)
  done;
  { Wlog.snap_db; snap_vector; snap_ncommitted; snap_values }

(* ------------------------------------------------------------------ *)
(* Arithmetic sizes: the encoded byte count without materialising the
   encoding.  Must mirror the encoders above exactly — checked by a test
   against [snapshot_to_string]. *)

let value_byte_size = Value.wire_size

let vector_byte_size v = 8 * (1 + Version_vector.size v)

let snapshot_byte_size (s : Wlog.snapshot) =
  let vector = vector_byte_size s.snap_vector in
  let values =
    List.fold_left
      (fun acc (conit, _) -> acc + 8 + String.length conit + 8)
      8 s.snap_values
  in
  let db =
    List.fold_left
      (fun acc k -> acc + 8 + String.length k + value_byte_size (Db.get s.snap_db k))
      8
      (Db.keys s.snap_db)
  in
  vector + 8 (* ncommitted *) + values + db

(* ------------------------------------------------------------------ *)
(* Whole messages and files *)

let to_string f x =
  let frame = Frame.create ~initial:256 () in
  f frame x;
  Frame.contents frame

let write_to_string w = to_string encode_write w
let write_of_string s = decode_write (cursor s)

let snapshot_to_string s = to_string encode_snapshot s
let snapshot_of_string s = decode_snapshot (cursor s)

let magic = "TACTSNAP1"

let save_snapshot ~path snap =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc (snapshot_to_string snap);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load_snapshot ~path =
  let ic = open_in_bin path in
  let contents =
    try
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with e ->
      close_in_noerr ic;
      raise e
  in
  let mlen = String.length magic in
  if String.length contents < mlen || String.sub contents 0 mlen <> magic then
    raise (Malformed "bad snapshot magic");
  decode_snapshot (cursor (String.sub contents mlen (String.length contents - mlen)))
