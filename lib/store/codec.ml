exception Malformed of string
exception Unserializable of string

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }

(* ------------------------------------------------------------------ *)
(* Primitives: tagged, fixed-width integers/floats, length-prefixed
   strings.  Big-endian for determinism across hosts. *)

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let put_i64 buf n =
  for byte = 7 downto 0 do
    let shift = byte * 8 in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical n shift) land 0xff))
  done

let put_int buf n = put_i64 buf (Int64.of_int n)
let put_float buf f = put_i64 buf (Int64.bits_of_float f)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let need c n =
  if c.pos + n > String.length c.data then
    raise (Malformed (Printf.sprintf "truncated at %d (need %d)" c.pos n))

let get_u8 c =
  need c 1;
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos]));
    c.pos <- c.pos + 1
  done;
  !v

let get_int c = Int64.to_int (get_i64 c)
let get_float c = Int64.float_of_bits (get_i64 c)

let get_string c =
  let n = get_int c in
  if n < 0 then raise (Malformed "negative string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

(* ------------------------------------------------------------------ *)
(* Values *)

let rec encode_value buf (v : Value.t) =
  match v with
  | Value.Nil -> put_u8 buf 0
  | Value.Int i ->
    put_u8 buf 1;
    put_int buf i
  | Value.Float f ->
    put_u8 buf 2;
    put_float buf f
  | Value.Str s ->
    put_u8 buf 3;
    put_string buf s
  | Value.List l ->
    put_u8 buf 4;
    put_int buf (List.length l);
    List.iter (encode_value buf) l

let rec decode_value c =
  match get_u8 c with
  | 0 -> Value.Nil
  | 1 -> Value.Int (get_int c)
  | 2 -> Value.Float (get_float c)
  | 3 -> Value.Str (get_string c)
  | 4 ->
    let n = get_int c in
    if n < 0 then raise (Malformed "negative list length");
    Value.List (List.init n (fun _ -> decode_value c))
  | t -> raise (Malformed (Printf.sprintf "bad value tag %d" t))

(* ------------------------------------------------------------------ *)
(* Operations *)

let encode_op buf (op : Op.t) =
  match op with
  | Op.Noop -> put_u8 buf 0
  | Op.Set (k, v) ->
    put_u8 buf 1;
    put_string buf k;
    encode_value buf v
  | Op.Add (k, d) ->
    put_u8 buf 2;
    put_string buf k;
    put_float buf d
  | Op.Append (k, v) ->
    put_u8 buf 3;
    put_string buf k;
    encode_value buf v
  | Op.Named (name, arg) ->
    put_u8 buf 4;
    put_string buf name;
    encode_value buf arg
  | Op.Proc p ->
    raise
      (Unserializable
         (Printf.sprintf
            "write procedure %S is a closure; use Op.Named with a registered \
             procedure"
            p.Op.name))

let decode_op c =
  match get_u8 c with
  | 0 -> Op.Noop
  | 1 ->
    let k = get_string c in
    Op.Set (k, decode_value c)
  | 2 ->
    let k = get_string c in
    Op.Add (k, get_float c)
  | 3 ->
    let k = get_string c in
    Op.Append (k, decode_value c)
  | 4 ->
    let name = get_string c in
    Op.Named (name, decode_value c)
  | t -> raise (Malformed (Printf.sprintf "bad op tag %d" t))

(* ------------------------------------------------------------------ *)
(* Writes *)

let encode_write buf (w : Write.t) =
  put_int buf w.id.origin;
  put_int buf w.id.seq;
  put_float buf w.accept_time;
  put_int buf (List.length w.affects);
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      put_string buf conit;
      put_float buf nweight;
      put_float buf oweight)
    w.affects;
  encode_op buf w.op

let decode_write c =
  let origin = get_int c in
  let seq = get_int c in
  let accept_time = get_float c in
  let n = get_int c in
  if n < 0 then raise (Malformed "negative affects length");
  let affects =
    List.init n (fun _ ->
        let conit = get_string c in
        let nweight = get_float c in
        let oweight = get_float c in
        { Write.conit; nweight; oweight })
  in
  let op = decode_op c in
  Write.make ~id:{ origin; seq } ~accept_time ~op ~affects

(* ------------------------------------------------------------------ *)
(* Version vectors and snapshots *)

let encode_vector buf v =
  let n = Version_vector.size v in
  put_int buf n;
  for i = 0 to n - 1 do
    put_int buf (Version_vector.get v i)
  done

let decode_vector c =
  let n = get_int c in
  if n < 0 || n > 1_000_000 then raise (Malformed "bad vector size");
  let v = Version_vector.create n in
  for i = 0 to n - 1 do
    Version_vector.set v i (get_int c)
  done;
  v

let encode_snapshot buf (s : Wlog.snapshot) =
  encode_vector buf s.snap_vector;
  put_int buf s.snap_ncommitted;
  put_int buf (List.length s.snap_values);
  List.iter
    (fun (conit, v) ->
      put_string buf conit;
      put_float buf v)
    s.snap_values;
  let keys = List.sort String.compare (Db.keys s.snap_db) in
  put_int buf (List.length keys);
  List.iter
    (fun k ->
      put_string buf k;
      encode_value buf (Db.get s.snap_db k))
    keys

let decode_snapshot c =
  let snap_vector = decode_vector c in
  let snap_ncommitted = get_int c in
  let nvals = get_int c in
  if nvals < 0 then raise (Malformed "negative values length");
  let snap_values =
    List.init nvals (fun _ ->
        let conit = get_string c in
        (conit, get_float c))
  in
  let nkeys = get_int c in
  if nkeys < 0 then raise (Malformed "negative db size");
  let snap_db = Db.create [] in
  for _ = 1 to nkeys do
    let k = get_string c in
    Db.set snap_db k (decode_value c)
  done;
  { Wlog.snap_db; snap_vector; snap_ncommitted; snap_values }

(* ------------------------------------------------------------------ *)
(* Arithmetic sizes: the encoded byte count without materialising the
   encoding.  Must mirror the encoders above exactly — checked by a test
   against [snapshot_to_string]. *)

let value_byte_size = Value.wire_size

let snapshot_byte_size (s : Wlog.snapshot) =
  let vector = 8 * (1 + Version_vector.size s.snap_vector) in
  let values =
    List.fold_left
      (fun acc (conit, _) -> acc + 8 + String.length conit + 8)
      8 s.snap_values
  in
  let db =
    List.fold_left
      (fun acc k -> acc + 8 + String.length k + value_byte_size (Db.get s.snap_db k))
      8
      (Db.keys s.snap_db)
  in
  vector + 8 (* ncommitted *) + values + db

(* ------------------------------------------------------------------ *)
(* Whole messages and files *)

let to_string f x =
  let buf = Buffer.create 256 in
  f buf x;
  Buffer.contents buf

let write_to_string w = to_string encode_write w
let write_of_string s = decode_write (cursor s)

let snapshot_to_string s = to_string encode_snapshot s
let snapshot_of_string s = decode_snapshot (cursor s)

let magic = "TACTSNAP1"

let save_snapshot ~path snap =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc magic;
     output_string oc (snapshot_to_string snap);
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load_snapshot ~path =
  let ic = open_in_bin path in
  let contents =
    try
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with e ->
      close_in_noerr ic;
      raise e
  in
  let mlen = String.length magic in
  if String.length contents < mlen || String.sub contents 0 mlen <> magic then
    raise (Malformed "bad snapshot magic");
  decode_snapshot (cursor (String.sub contents mlen (String.length contents - mlen)))
