(* The pluggable TRANSPORT seam: error taxonomy, the endpoint record a
   replica runs against, the backend module type, and the length-prefix
   framing helpers stream backends share.  No Unix here — real sockets live
   in lib/transport, the only layer admitted to use them. *)

type error =
  | Timeout of string
  | Refused of string
  | Closed of string
  | Reset of string
  | Unreachable of string
  | Malformed of string
  | Too_large of { limit : int; got : int }

let error_to_string = function
  | Timeout m -> "timeout: " ^ m
  | Refused m -> "refused: " ^ m
  | Closed m -> "closed: " ^ m
  | Reset m -> "reset: " ^ m
  | Unreachable m -> "unreachable: " ^ m
  | Malformed m -> "malformed: " ^ m
  | Too_large { limit; got } ->
    Printf.sprintf "frame too large: %d bytes (limit %d)" got limit

let is_transient = function
  | Timeout _ | Refused _ | Reset _ | Unreachable _ -> true
  | Closed _ | Malformed _ | Too_large _ -> false

type endpoint = {
  ep_self : int;
  ep_n : int;
  ep_now : unit -> float;
  ep_schedule : tag:string -> delay:float -> (unit -> unit) -> unit;
  ep_every : tag:string -> period:float -> (unit -> bool) -> unit;
  ep_send : dst:int -> string -> (unit, error) result;
  ep_close : unit -> unit;
}

module type S = sig
  type t

  val self : t -> int
  val size : t -> int
  val send : t -> dst:int -> string -> (unit, error) result
  val set_handler : t -> (src:int -> string -> unit) -> unit
  val close : t -> unit
end

(* ------------------------------------------------------------------ *)
(* Length-prefix framing                                               *)

let frame_header_size = 4
let default_max_frame = 16 * 1024 * 1024

let set_frame_header buf ~off ~len =
  Bytes.set_uint8 buf off ((len lsr 24) land 0xff);
  Bytes.set_uint8 buf (off + 1) ((len lsr 16) land 0xff);
  Bytes.set_uint8 buf (off + 2) ((len lsr 8) land 0xff);
  Bytes.set_uint8 buf (off + 3) (len land 0xff)

let encode_frame_header ~len =
  if len < 0 then invalid_arg "Transport.encode_frame_header: negative length";
  (* lint: allow alloc-hot-path -- standalone header for tests and one-shot
     senders; the batch path writes headers in place via [put_frame] *)
  let b = Bytes.create frame_header_size in
  set_frame_header b ~off:0 ~len;
  Bytes.unsafe_to_string b

let put_frame frame payload =
  let len = String.length payload in
  if len < 0 then invalid_arg "Transport.put_frame: negative length";
  let off = Codec.Frame.reserve frame frame_header_size in
  set_frame_header frame.Codec.Frame.buf ~off ~len;
  Codec.put_raw frame payload

let decode_frame_header ?(max_frame = default_max_frame) buf ~off ~avail =
  if avail < frame_header_size then Ok None
  else begin
    let b i = Bytes.get_uint8 buf (off + i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then Error (Too_large { limit = max_frame; got = len })
    else Ok (Some len)
  end
