type id = { origin : int; seq : int }

type weight = { conit : string; nweight : float; oweight : float }

type t = {
  id : id;
  accept_time : float;
  op : Op.t;
  affects : weight list;
  mutable size_cache : int;
      (* Exact wire size, computed lazily by [byte_size]; -1 = not yet
         computed.  Writes are otherwise immutable, so concurrent domains can
         at worst race to store the same value — a benign race. *)
}

let make ~id ~accept_time ~op ~affects =
  { id; accept_time; op; affects; size_cache = -1 }

let compare_id a b =
  match Int.compare a.origin b.origin with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let id_to_string id = Printf.sprintf "w%d.%d" id.origin id.seq

let ts_compare a b =
  match Float.compare a.accept_time b.accept_time with
  | 0 -> compare_id a.id b.id
  | c -> c

let weight_for w conit = List.find_opt (fun x -> String.equal x.conit conit) w.affects

let affects_conit w conit =
  match weight_for w conit with
  | Some x -> x.nweight <> 0.0 || x.oweight <> 0.0
  | None -> false

let nweight w conit =
  match weight_for w conit with Some x -> x.nweight | None -> 0.0

let oweight w conit =
  match weight_for w conit with Some x -> x.oweight | None -> 0.0

let total_oweight w = List.fold_left (fun acc x -> acc +. x.oweight) 0.0 w.affects

let byte_size w =
  if w.size_cache >= 0 then w.size_cache
  else begin
    (* Mirrors Codec.encode_write: origin + seq + accept_time + naffects
       header (4 × 8 bytes), then per affect a length-prefixed conit name plus
       two weight floats, then the op payload. *)
    let size =
      32 + Op.wire_size w.op
      + List.fold_left (fun acc x -> acc + 24 + String.length x.conit) 0 w.affects
    in
    w.size_cache <- size;
    size
  end

let to_string w =
  Printf.sprintf "%s@%.3f %s" (id_to_string w.id) w.accept_time (Op.describe w.op)
