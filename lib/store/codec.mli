(** Binary codec for the serialisable protocol types.

    A compact, self-describing binary format for values, operations, writes,
    version vectors and snapshots — the groundwork for durable state
    (snapshot files, write-ahead logs) and the exact-size accounting a real
    transport would have.  [Op.Proc] closures are simulation-only and cannot
    be encoded; use {!Op.Named} registered procedures for anything that must
    cross a wire or reach a disk.

    The format is length-prefixed and versioned; decoding a corrupt or
    truncated buffer raises {!Malformed}. *)

exception Malformed of string
exception Unserializable of string
(** Raised when encoding an [Op.Proc] closure. *)

(** {2 The frame allocator}

    A growable byte arena that encoders write into through reserved offsets.
    One frame is reused across an entire anti-entropy round (and across
    rounds, via {!Frame.clear}), so batch encoding performs one arena
    allocation per round — amortised zero once the arena reaches steady-state
    capacity — instead of one buffer per write.  Ownership rule: the arena is
    single-writer; {!Frame.contents} copies out an immutable string at the
    message boundary, after which the frame may be cleared and reused. *)

module Frame : sig
  type t = private {
    mutable buf : Bytes.t;
    mutable len : int;
    mutable allocs : int;
  }

  val create : ?initial:int -> unit -> t
  (** Fresh arena ([?initial] capacity, default 4096 bytes). *)

  val clear : t -> unit
  (** Reset length to zero, retaining capacity — the reuse entry point. *)

  val reserve : t -> int -> int
  (** [reserve t n] extends the frame by [n] bytes (growing the arena by
      doubling if needed) and returns the offset of the reserved span, which
      the caller fills in place.  The allocator-style zero-copy write path:
      callers with exact sizes (see {!Write.byte_size}) reserve once and
      encode directly into the arena. *)

  val preallocate : t -> int -> unit
  (** [preallocate t n] grows the arena (if needed) so the next [n] bytes of
      puts proceed without further allocation, without extending the frame.
      Callers with an exact arithmetic size bound a whole batch encode to at
      most one allocation. *)

  val length : t -> int
  (** Bytes written so far. *)

  val capacity : t -> int
  (** Current arena size in bytes. *)

  val allocations : t -> int
  (** Arena allocations since creation (1 + growth events) — the
      allocations-per-round bench metric. *)

  val contents : t -> string
  (** Copy the written span out as an immutable string. *)

  val blit_to : t -> dst:Bytes.t -> dst_off:int -> unit
  (** Copy the written span into an external buffer without an intermediate
      string. *)
end

(** {2 Frame-level encoders / cursor-based decoders} *)

type cursor = { data : string; mutable pos : int }

val cursor : string -> cursor

val put_u8 : Frame.t -> int -> unit
val put_int : Frame.t -> int -> unit
val put_i64 : Frame.t -> int64 -> unit
val put_float : Frame.t -> float -> unit
val put_string : Frame.t -> string -> unit
(** Length-prefixed. *)

val put_raw : Frame.t -> string -> unit
(** Bytes verbatim, no length prefix. *)

val check_items : cursor -> n:int -> min_size:int -> what:string -> unit
(** Validate a decoded element count against the bytes remaining in the
    cursor before allocating anything proportional to it ([min_size] is a
    lower bound on one element's encoded size); raises {!Malformed} on a
    negative or overrunning count.  Every count-prefixed decoder in this
    module and {!Batch} guards through this, so a corrupt count field can
    never balloon memory. *)

val get_u8 : cursor -> int
val get_int : cursor -> int
val get_i64 : cursor -> int64
val get_float : cursor -> float
val get_string : cursor -> string

val encode_value : Frame.t -> Value.t -> unit
val decode_value : cursor -> Value.t

val encode_op : Frame.t -> Op.t -> unit
val decode_op : cursor -> Op.t

val encode_write : Frame.t -> Write.t -> unit
val decode_write : cursor -> Write.t

val encode_vector : Frame.t -> Version_vector.t -> unit
val decode_vector : cursor -> Version_vector.t

val encode_snapshot : Frame.t -> Wlog.snapshot -> unit
val decode_snapshot : cursor -> Wlog.snapshot

(** {2 Arithmetic sizes} *)

val value_byte_size : Value.t -> int
(** [String.length (to_string encode_value v)] without encoding. *)

val vector_byte_size : Version_vector.t -> int
(** Encoded size of a version vector without encoding it. *)

val snapshot_byte_size : Wlog.snapshot -> int
(** [String.length (snapshot_to_string snap)] without encoding — for wire-size
    accounting on every snapshot send without paying for serialisation. *)

(** {2 Whole-message helpers} *)

val to_string : (Frame.t -> 'a -> unit) -> 'a -> string
(** Run an encoder in a throwaway frame and return its contents. *)

val write_to_string : Write.t -> string
val write_of_string : string -> Write.t

val snapshot_to_string : Wlog.snapshot -> string
val snapshot_of_string : string -> Wlog.snapshot

(** {2 Durable snapshots} *)

val save_snapshot : path:string -> Wlog.snapshot -> unit
(** Write the snapshot to a file (magic header + payload), atomically via a
    temporary file and rename. *)

val load_snapshot : path:string -> Wlog.snapshot
(** Raises {!Malformed} on bad magic/corruption, [Sys_error] on IO failure. *)
