(** Binary codec for the serialisable protocol types.

    A compact, self-describing binary format for values, operations, writes,
    version vectors and snapshots — the groundwork for durable state
    (snapshot files, write-ahead logs) and the exact-size accounting a real
    transport would have.  [Op.Proc] closures are simulation-only and cannot
    be encoded; use {!Op.Named} registered procedures for anything that must
    cross a wire or reach a disk.

    The format is length-prefixed and versioned; decoding a corrupt or
    truncated buffer raises {!Malformed}. *)

exception Malformed of string
exception Unserializable of string
(** Raised when encoding an [Op.Proc] closure. *)

(** {2 Buffer-level encoders / cursor-based decoders} *)

type cursor = { data : string; mutable pos : int }

val cursor : string -> cursor

val encode_value : Buffer.t -> Value.t -> unit
val decode_value : cursor -> Value.t

val encode_op : Buffer.t -> Op.t -> unit
val decode_op : cursor -> Op.t

val encode_write : Buffer.t -> Write.t -> unit
val decode_write : cursor -> Write.t

val encode_vector : Buffer.t -> Version_vector.t -> unit
val decode_vector : cursor -> Version_vector.t

val encode_snapshot : Buffer.t -> Wlog.snapshot -> unit
val decode_snapshot : cursor -> Wlog.snapshot

(** {2 Arithmetic sizes} *)

val value_byte_size : Value.t -> int
(** [String.length (to_string encode_value v)] without encoding. *)

val snapshot_byte_size : Wlog.snapshot -> int
(** [String.length (snapshot_to_string snap)] without encoding — for wire-size
    accounting on every snapshot send without paying for serialisation. *)

(** {2 Whole-message helpers} *)

val write_to_string : Write.t -> string
val write_of_string : string -> Write.t

val snapshot_to_string : Wlog.snapshot -> string
val snapshot_of_string : string -> Wlog.snapshot

(** {2 Durable snapshots} *)

val save_snapshot : path:string -> Wlog.snapshot -> unit
(** Write the snapshot to a file (magic header + payload), atomically via a
    temporary file and rename. *)

val load_snapshot : path:string -> Wlog.snapshot
(** Raises {!Malformed} on bad magic/corruption, [Sys_error] on IO failure. *)
