(** Logical write operations.

    Per the paper's system model (Section 2), writes are {e procedures}: they
    check for conflicts against the underlying database before updating it and
    may take an alternative action on conflict.  Because tentative writes can
    be rolled back and reapplied in a different order, the same operation may
    yield different outcomes across applications; the outcome under the final
    committed order is the write's {e actual} result. *)

type outcome =
  | Applied of Value.t  (** the write's return value *)
  | Conflict of string  (** the write procedure detected a conflict and took
                            its alternative action (a no-op plus this reason) *)

type t =
  | Noop
  | Set of string * Value.t
  | Add of string * float  (** numeric increment (negative = decrement) *)
  | Append of string * Value.t  (** add to the list at the key *)
  | Proc of proc
      (** A full write procedure: [body] inspects the database, decides
          whether it conflicts, and if not performs its updates.  [name] and
          [size] describe it for tracing and traffic accounting.  Closures
          are simulation-only; for a serialisable procedure use {!Named}. *)
  | Named of string * Value.t
      (** A registered write procedure applied to an argument — the
          wire-serialisable form of [Proc] (see {!register_proc} and
          {!Codec}).  Application raises [Invalid_argument] if the name is
          not registered. *)

and proc = { name : string; size : int; body : Db.t -> outcome }

val apply : t -> Db.t -> outcome
(** Execute the operation against the database image, mutating it. *)

val register_proc : string -> (Value.t -> Db.t -> outcome) -> unit
(** Register the behaviour of a {!Named} procedure.  Registration is global
    (all replicas execute the same code, exactly as deployed binaries would)
    and must happen before any [Named] op is applied.  Re-registration
    replaces the previous behaviour. *)

val proc_registered : string -> bool

val guarded :
  name:string ->
  ?size:int ->
  check:(Db.t -> bool) ->
  apply:(Db.t -> Value.t) ->
  ?alt:(Db.t -> string) ->
  unit ->
  t
(** Build a {!Proc}: when [check db] holds, run [apply]; otherwise the write
    conflicts with reason [alt db] (default ["conflict"]). *)

val byte_size : t -> int
(** Estimated wire size of the operation. *)

val wire_size : t -> int
(** Exact encoded size under the {!Codec} wire format; [Proc] falls back to
    its declared modelled size (closures are not serialisable). *)

val describe : t -> string

val conflicted : outcome -> bool
val result : outcome -> Value.t
(** The return value; [Nil] for conflicts. *)
