(** Shard router: a static partition of the conit space.

    The paper's Theorem 2 treats per-data-item conits as the limit case of
    conit granularity; sharding generalises the step in between — the conit
    space is split into [shards] independently replicated units, each with
    its own write log, database images and version vectors, and a replica
    subscribes only to the shards its accesses touch (its {e interest set}).

    A router is an immutable value: routing decisions are pure functions of
    the conit name, so concurrent shard engines may share one router without
    synchronisation (the domain-race analysis relies on this). *)

type t

val single : t
(** One shard; every conit routes to shard 0.  A system built over [single]
    with full interest sets behaves byte-for-byte like an unsharded one. *)

val by_hash : shards:int -> t
(** Route each conit by a deterministic string hash (FNV-1a), modulo
    [shards].  Raises [Invalid_argument] if [shards < 1]. *)

val with_table : t -> (string * int) list -> t
(** Pin specific conits to specific shards; unlisted conits fall back to the
    base router's rule.  Raises [Invalid_argument] on a duplicate conit or a
    shard id out of range. *)

val shards : t -> int
(** Number of shards ([>= 1]). *)

val route : t -> string -> int
(** The shard holding a conit, in [0 .. shards - 1]. *)

val route_write : t -> Write.t -> int
(** The shard a write belongs to: the shard of its affected conits.  Writes
    affecting no conit route to shard 0.  Raises [Invalid_argument] if the
    write's affected conits span more than one shard — cross-shard writes
    are not replicable as one unit. *)

val to_string : t -> string
(** Human-readable description, e.g. ["hash/4"] — for experiment tables. *)
