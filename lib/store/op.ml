type outcome = Applied of Value.t | Conflict of string

type t =
  | Noop
  | Set of string * Value.t
  | Add of string * float
  | Append of string * Value.t
  | Proc of proc
  | Named of string * Value.t

and proc = { name : string; size : int; body : Db.t -> outcome }

(* SA030/SA020 baselined -- write-once procedure table: applications
   register procedures at startup, before any simulation runs, and replay
   only reads it, so re-entrancy is preserved *)
let registry : (string, Value.t -> Db.t -> outcome) Hashtbl.t = Hashtbl.create 16

let register_proc name body = Hashtbl.replace registry name body
let proc_registered name = Hashtbl.mem registry name

let apply t db =
  match t with
  | Noop -> Applied Value.Nil
  | Set (k, v) ->
    Db.set db k v;
    Applied v
  | Add (k, d) ->
    Db.add db k d;
    Applied (Db.get db k)
  | Append (k, v) ->
    Db.append db k v;
    Applied Value.Nil
  | Proc p -> p.body db
  | Named (name, arg) -> (
    match Hashtbl.find_opt registry name with
    | Some body -> body arg db
    | None -> invalid_arg (Printf.sprintf "Op.apply: procedure %S not registered" name))

let guarded ~name ?(size = 32) ~check ~apply ?(alt = fun _ -> "conflict") () =
  Proc
    {
      name;
      size;
      body =
        (fun db -> if check db then Applied (apply db) else Conflict (alt db));
    }

(* Exact encoded size under Codec's wire format.  [Proc] never crosses the
   wire (Codec raises Unserializable); its declared modelled size keeps
   traffic accounting meaningful for closure-based simulations. *)
let wire_size = function
  | Noop -> 1
  | Set (k, v) | Append (k, v) -> 1 + 8 + String.length k + Value.wire_size v
  | Add (k, _) -> 1 + 8 + String.length k + 8
  | Named (name, arg) -> 1 + 8 + String.length name + Value.wire_size arg
  | Proc p -> p.size

let byte_size = function
  | Noop -> 4
  | Set (k, v) -> 8 + String.length k + Value.byte_size v
  | Add (k, _) -> 16 + String.length k
  | Append (k, v) -> 8 + String.length k + Value.byte_size v
  | Proc p -> p.size
  | Named (name, arg) -> 8 + String.length name + Value.byte_size arg

let describe = function
  | Noop -> "noop"
  | Set (k, v) -> Printf.sprintf "set %s := %s" k (Value.to_string v)
  | Add (k, d) -> Printf.sprintf "add %s += %g" k d
  | Append (k, v) -> Printf.sprintf "append %s <- %s" k (Value.to_string v)
  | Proc p -> p.name
  | Named (name, arg) -> Printf.sprintf "%s(%s)" name (Value.to_string arg)

let conflicted = function Conflict _ -> true | Applied _ -> false
let result = function Applied v -> v | Conflict _ -> Value.Nil
