(** Framed anti-entropy batches.

    One frame per sync round per peer, replacing the per-write transfer
    stream: the header carries the sender id, frame kind, rate estimate, CSN
    window start and the per-origin sequence ranges of the carried writes;
    the body carries the CSN slice, the sender's vector and cover, and either
    a {e delta} (exactly the writes the receiver's vector proves it lacks) or
    a {e full} payload (committed snapshot plus the retained tail) when the
    sender has truncated below the receiver's vector.

    Encoding goes through {!Codec.Frame}: the exact frame size is computed
    arithmetically ({!byte_size}, leaning on the memoized
    {!Write.byte_size}), preallocated in one step, and filled in place — one
    arena allocation per round, amortised zero once the arena reaches
    steady-state capacity.

    Frames are self-delimiting and idempotent to apply: every write, CSN
    entry and cover component the receiver already knows deduplicates, so a
    duplicated or re-delivered frame cannot double-apply. *)

type kind = Push | Pull_reply of int | Gossip

type payload =
  | Delta of Write.t list
  | Full of Wlog.snapshot * Write.t list
      (** snapshot + retained writes past its vector *)

type t = {
  from : int;
  shard : int;
      (** the shard whose log this frame carries — [0] when unsharded; a
          receiver serving a different shard must reject the frame *)
  kind : kind;
  vector : Version_vector.t;  (** sender's full vector at send time *)
  cover : float array;  (** sender's per-origin cover times *)
  csn_start : int;
  csn : Write.id list;
  rate : float;
  payload : payload;
}

type header = {
  h_from : int;
  h_shard : int;
  h_kind : kind;
  h_rate : float;
  h_csn_start : int;
  h_ranges : (int * int * int) list;
      (** (origin, lo, hi): the batch carries origin's writes seq lo..hi *)
  h_payload : [ `Delta | `Full ];
}

val ranges : t -> (int * int * int) list
(** Per-origin contiguous sequence ranges of the carried writes, sorted by
    origin — what the wire header advertises. *)

val payload_writes : t -> Write.t list

val byte_size : t -> int
(** Exact encoded size without encoding (mirrors {!encode}; checked by
    tests). *)

val encode : Codec.Frame.t -> t -> unit
(** Append the frame's encoding to the arena, preallocating {!byte_size}
    bytes first so the encode performs at most one arena growth. *)

val to_string : t -> string

val decode_header : string -> header
(** Decode only the fixed-size header — frame summary without touching the
    payload. *)

val of_string : string -> t
(** Full decode.  Raises {!Codec.Malformed} on corrupt, truncated or
    trailing-garbage input. *)

val decode : string -> (t, Transport.error) result
(** Typed full decode for untrusted input: total over arbitrary bytes.
    Corrupt, truncated, oversized-count or trailing-garbage frames return
    [Error (Transport.Malformed _)] — never an exception, and (via
    {!Codec.check_items}) never an allocation proportional to a corrupt count
    field.  Backends feeding network bytes into the protocol decode through
    this. *)

val decode_header_safe : string -> (header, Transport.error) result
(** {!decode_header} with the same totality guarantee as {!decode}. *)

val plan :
  log:Wlog.t -> peer_vector:Version_vector.t -> (payload -> 'a) -> 'a
(** The batch planner: delta against [peer_vector] when the log can still
    serve it ({!Wlog.can_serve}), else a snapshot fallback carrying the
    committed image plus retained tail.  The continuation receives the chosen
    payload. *)
