(** Mutable database image: the state a replica exposes to reads.

    Each replica maintains two images (see {!Wlog}): one reflecting only the
    committed prefix of the write log, and the full view including tentative
    writes.  Rollback of tentative writes works by journalling each write's
    mutations as it is applied ({!recording}) and replaying the journal
    backwards ({!revert}) — so a rollback costs the size of the undone suffix,
    not of the whole image. *)

type t

type undo
(** A journal of mutations, sufficient to revert them (opaque). *)

val create : (string * Value.t) list -> t
val copy : t -> t

val get : t -> string -> Value.t
(** Missing keys read as [Value.Nil]. *)

val set : t -> string -> Value.t -> unit

val get_float : t -> string -> float
val get_int : t -> string -> int

val add : t -> string -> float -> unit
(** Numeric increment; missing keys start at 0. *)

val append : t -> string -> Value.t -> unit
(** Add to the list at [key]; missing keys start as [].  Lists are kept
    newest-first (constant-time add); readers see the most recent element at
    the head. *)

val keys : t -> string list

val equal : t -> t -> bool
(** Value equality of the two images (missing keys read as [Nil]);
    short-circuits on the first mismatch. *)

val size : t -> int

val recording : t -> (unit -> 'a) -> 'a * undo
(** Run the thunk with mutation journalling on, returning its result and the
    undo record for everything it changed.  Recordings do not nest. *)

val revert : t -> undo -> unit
(** Revert the mutations captured by a {!recording}.  Undo records must be
    reverted newest-recording-first to restore a past state. *)
