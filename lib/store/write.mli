(** Write records: an operation plus the conit weight specification.

    This is the unit that anti-entropy propagates between replicas (the paper
    propagates write {e procedures}, not written data).  [affects] is the
    per-write weight specification of Section 3.4: how the write bears on each
    conit's numerical value ([nweight]) and on order sensitivity
    ([oweight]). *)

type id = { origin : int; seq : int }

type weight = { conit : string; nweight : float; oweight : float }

type t = private {
  id : id;
  accept_time : float;
      (** wall-clock (simulated) time at which the originating replica
          accepted the write; the basis of staleness and of the canonical
          ECG order *)
  op : Op.t;
  affects : weight list;
  mutable size_cache : int;  (** lazily-computed wire size; use {!byte_size} *)
}

val make : id:id -> accept_time:float -> op:Op.t -> affects:weight list -> t

val compare_id : id -> id -> int
val id_to_string : id -> string

val ts_compare : t -> t -> int
(** Total order by (accept_time, origin, seq) — the canonical, external- and
    causal-order-compatible global order used both by the stability
    commitment protocol and as the reference ECG history. *)

val affects_conit : t -> string -> bool
(** A write affects a conit iff its nweight or oweight for it is non-zero
    (Section 3.2). *)

val nweight : t -> string -> float
val oweight : t -> string -> float

val total_oweight : t -> float
(** Sum of oweights across all affected conits (used when a single commitment
    order serves every conit). *)

val byte_size : t -> int
(** Exact size of the write's {!Codec} encoding, without materialising it
    ([Proc] ops fall back to their declared modelled size).  Memoized in the
    write on first use, so traffic-accounting folds that visit the same write
    many times pay the size computation once. *)

val to_string : t -> string
