(** Small domain-safe shared-state primitives.

    Everything concurrency-flavoured in this codebase is meant to live in
    lib/util (the [domain-safety] lint rule enforces it); callers that need
    a shared counter, a guarded cell or a concurrent map during a parallel
    phase use these rather than touching [Atomic]/[Mutex] directly. *)

module Counter : sig
  type t

  val make : unit -> t
  val get : t -> int

  val incr : t -> int
  (** Atomically add one; returns the value {e before} the increment. *)
end

module Cell : sig
  (** A mutex-guarded box, for lossless read-modify-write of arbitrary
      values (no CAS retry loop, so ['a] needs no physical-equality
      discipline). *)

  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val update : 'a t -> ('a -> 'a) -> unit
end

module Map : sig
  (** A sharded hash map: shard = hash of the key, one mutex per shard, so
      concurrent updates to different keys rarely contend. *)

  type ('k, 'v) t

  val create : ?shards:int -> int -> ('k, 'v) t
  (** [create ?shards size_hint]; [shards] is rounded up to a power of
      two. *)

  val find_opt : ('k, 'v) t -> 'k -> 'v option

  val update : ('k, 'v) t -> 'k -> ('v option -> 'v option) -> unit
  (** Atomic per-key read-modify-write: [None] result removes the
      binding. *)

  val length : ('k, 'v) t -> int
end
