(* lint: allow-file domain-safety -- this module IS the concurrency layer the
   rule funnels everyone else through *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let get = Atomic.get
  let incr t = Atomic.fetch_and_add t 1
end

module Cell = struct
  type 'a t = { lock : Mutex.t; mutable v : 'a }

  let make v = { lock = Mutex.create (); v }

  let get t =
    Mutex.lock t.lock;
    let v = t.v in
    Mutex.unlock t.lock;
    v

  let update t f =
    Mutex.lock t.lock;
    (match f t.v with
    | v -> t.v <- v
    | exception e ->
      Mutex.unlock t.lock;
      raise e);
    Mutex.unlock t.lock
end

module Map = struct
  type ('k, 'v) shard = { lock : Mutex.t; tbl : ('k, 'v) Hashtbl.t }
  type ('k, 'v) t = ('k, 'v) shard array

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ?(shards = 16) size_hint =
    let n = pow2 (Stdlib.max 1 shards) 1 in
    let per = Stdlib.max 16 (size_hint / n) in
    Array.init n (fun _ ->
        { lock = Mutex.create (); tbl = Hashtbl.create per })

  let shard t k = t.(Hashtbl.hash k land (Array.length t - 1))

  let find_opt t k =
    let s = shard t k in
    Mutex.lock s.lock;
    let r = Hashtbl.find_opt s.tbl k in
    Mutex.unlock s.lock;
    r

  let update t k f =
    let s = shard t k in
    Mutex.lock s.lock;
    (match f (Hashtbl.find_opt s.tbl k) with
    | Some v -> Hashtbl.replace s.tbl k v
    | None -> Hashtbl.remove s.tbl k
    | exception e ->
      Mutex.unlock s.lock;
      raise e);
    Mutex.unlock s.lock

  let length t =
    Array.fold_left (fun acc s ->
        Mutex.lock s.lock;
        let n = Hashtbl.length s.tbl in
        Mutex.unlock s.lock;
        acc + n)
      0 t
end
