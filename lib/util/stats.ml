type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    if n = 1 then sorted.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
  end

let median xs = percentile xs 50.0

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
      (stddev t) t.min t.max
