(* Growable array with a head offset: O(1) amortised push_back and pop_front,
   O(log n) binary search, O(distance-to-tail) mid insertion.  The front slack
   left by pops is reclaimed whenever it exceeds the live length, so memory
   stays within a constant factor of the live contents. *)

type 'a t = { mutable data : 'a array; mutable head : int; mutable len : int }

let create () = { data = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.get: index out of bounds";
  t.data.(t.head + i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Deque.set: index out of bounds";
  t.data.(t.head + i) <- x

(* Reallocate so that [t.len + extra] elements fit starting at head 0.
   Copying into a fresh array also drops references parked in dead slots.
   Only meaningful with live elements (the filler must be a live value). *)
let realloc t extra =
  if t.len > 0 then begin
    let cap = max 16 (max (t.len + extra) (2 * t.len)) in
    let a = Array.make cap t.data.(t.head) in
    Array.blit t.data t.head a 0 t.len;
    t.data <- a;
    t.head <- 0
  end
  else begin
    if Array.length t.data > 64 then t.data <- [||];
    t.head <- 0
  end

(* Make room for one more element at the back; [x] seeds the first alloc. *)
let ensure_back t x =
  if Array.length t.data = 0 then begin
    t.data <- Array.make 16 x;
    t.head <- 0
  end
  else if t.head + t.len >= Array.length t.data then
    if t.head > t.len then begin
      (* Plenty of slack at the front: slide left instead of growing. *)
      Array.blit t.data t.head t.data 0 t.len;
      t.head <- 0
    end
    else realloc t 1

let push_back t x =
  ensure_back t x;
  t.data.(t.head + t.len) <- x;
  t.len <- t.len + 1

let peek_front t =
  if t.len = 0 then invalid_arg "Deque.peek_front: empty";
  t.data.(t.head)

let pop_front t =
  if t.len = 0 then invalid_arg "Deque.pop_front: empty";
  let x = t.data.(t.head) in
  t.head <- t.head + 1;
  t.len <- t.len - 1;
  if t.head > t.len && t.head > 16 then realloc t 0;
  x

let pop_back t =
  if t.len = 0 then invalid_arg "Deque.pop_back: empty";
  let x = t.data.(t.head + t.len - 1) in
  t.len <- t.len - 1;
  x

let drop_front t n =
  if n < 0 || n > t.len then invalid_arg "Deque.drop_front: bad count";
  t.head <- t.head + n;
  t.len <- t.len - n;
  if t.head > t.len && t.head > 16 then realloc t 0

(* Insert at logical index [i], shifting the tail side right: O(len - i),
   which is O(1) for the common land-at-the-tail case. *)
let insert t i x =
  if i < 0 || i > t.len then invalid_arg "Deque.insert: index out of bounds";
  ensure_back t x;
  let p = t.head + i in
  Array.blit t.data p t.data (p + 1) (t.len - i);
  t.data.(p) <- x;
  t.len <- t.len + 1

(* Remove the element at logical index [i], shifting the tail side left. *)
let remove t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.remove: index out of bounds";
  let p = t.head + i in
  let x = t.data.(p) in
  Array.blit t.data (p + 1) t.data p (t.len - i - 1);
  t.len <- t.len - 1;
  x

let clear t =
  t.data <- [||];
  t.head <- 0;
  t.len <- 0

let sub t src len =
  if src < 0 || len < 0 || src + len > t.len then invalid_arg "Deque.sub";
  Array.sub t.data (t.head + src) len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(t.head + i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(t.head + i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(t.head + i))

(* Index of the first element for which [cmp elt probe > 0] — the insertion
   point keeping a sorted deque sorted (stable for equal keys).  O(log n). *)
let upper_bound t ~cmp probe =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp t.data.(t.head + mid) probe > 0 then hi := mid else lo := mid + 1
  done;
  !lo
