(** Fixed-size work-stealing domain pool.

    [create ~jobs] spawns [jobs] worker domains, each owning a deque of
    pending tasks.  A worker drains its own deque LIFO (depth-first, cache
    warm); when empty it takes from the shared injection queue, then steals
    the older half of a victim's deque (breadth-first, so thieves grab the
    biggest remaining subtrees).  Tasks submitted from outside the pool land
    in the injection queue; tasks submitted by a worker land in its own
    deque.

    Exceptions never vanish: a task's exception is captured with its
    backtrace and re-raised at {!await} (for futures) or at the next
    {!await_idle}/{!shutdown} (for fire-and-forget posts).

    The pool is a throughput device, not a synchronisation device: tasks
    must not block on each other except through {!await}, which helps — it
    runs queued tasks while the future is unresolved, so a task may await
    work it submitted without deadlocking the worker it occupies. *)

type t

type 'a future

val create : jobs:int -> t
(** Spawn [max 1 jobs] worker domains.  The calling domain is not a worker;
    it only executes tasks while inside {!await} or {!await_idle}. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Queue a task; its result (or exception) is delivered through the
    future.  Raises [Invalid_argument] after {!shutdown}. *)

val post : t -> (unit -> unit) -> unit
(** Fire-and-forget [submit].  The first exception raised by any posted
    task is re-raised by the next {!await_idle} or {!shutdown}. *)

val await : t -> 'a future -> 'a
(** Block until the future resolves, executing queued tasks in the
    meantime; re-raises the task's exception with its backtrace. *)

val await_idle : t -> unit
(** Block until every submitted task has completed (including tasks they
    submitted), helping in the meantime; then re-raise the first pending
    {!post} exception, if any. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f xs] runs [f] on every element concurrently and returns
    the results in input order.  On failures, the exception of the
    earliest failing {e element} (input order, not wall-clock order) is
    re-raised — deterministic even though execution is not. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map_list} over arrays: run [f] on every element concurrently, results
    in input order, earliest failing element's exception re-raised. *)

val shutdown : t -> unit
(** Wait for quiescence, stop and join the workers, then re-raise any
    pending {!post} exception.  Must be called from outside the pool (a
    task must not shut down its own pool).  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run the body, [shutdown] — also on exceptions. *)

val recommended_jobs : ?cap:int -> unit -> int
(** A sensible pool size for this host: the runtime's recommended domain
    count minus one (the caller's domain keeps working), clamped to
    [\[1, cap\]].  The sanctioned way for upper layers to size a pool
    without touching [Domain] directly. *)
