exception Violation of string

(* The environment is consulted once: flipping TACT_SANITIZE mid-run would
   leave shadow state (previous-vector copies, dispatch clocks) half
   initialised.  Tests toggle programmatically via {!set_enabled}. *)
let env_enabled =
  match Sys.getenv_opt "TACT_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let forced = ref None

let enabled () = match !forced with Some b -> b | None -> env_enabled
let set_enabled b = forced := Some b
let clear_forced () = forced := None

let violation ~ctx fmt =
  Printf.ksprintf (fun m -> raise (Violation (Printf.sprintf "[%s] %s" ctx m))) fmt

let report ~ctx msgs =
  match msgs with
  | [] -> ()
  | _ ->
    raise
      (Violation
         (Printf.sprintf "[%s] %d invariant violation(s):\n  %s" ctx
            (List.length msgs)
            (String.concat "\n  " msgs)))
