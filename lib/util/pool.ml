(* Work-stealing domain pool.  See pool.mli for the contract.

   Locking discipline: each worker deque has its own mutex; everything else
   (injection queue, counters, future states, the error slot) lives under the
   single [lock].  Tasks are coarse here — a task is a whole simulation run
   or experiment — so one global mutex touched a handful of times per task is
   nowhere near contention, and it buys a simple no-lost-wakeup protocol:

   - every deposit bumps [hint] under [lock] (after the task is visible) and
     broadcasts if anyone is waiting;
   - a thread that found nothing re-reads [hint] under [lock] before
     sleeping; if it moved since its failed scan, it rescans instead.

   OCaml's [Condition] has no timed wait, so this stamp protocol is what
   makes sleeping safe without polling. *)

(* lint: allow-file domain-safety -- this module IS the concurrency layer the
   rule funnels everyone else through *)

type task = unit -> unit

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

(* Future state is guarded by the pool's [lock]; the field is mutable but
   only ever touched under it. *)
type 'a future = { mutable f_state : 'a state }

type t = {
  njobs : int;
  queues : task Deque.t array; (* queues.(i) guarded by qlocks.(i) *)
  qlocks : Mutex.t array;
  inject : task Queue.t; (* guarded by lock *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable hint : int; (* deposit stamp; bumped on every enqueue/completion *)
  mutable nwaiting : int; (* threads blocked on cond *)
  mutable pending : int; (* tasks submitted and not yet completed *)
  mutable error : (exn * Printexc.raw_backtrace) option; (* first post error *)
  mutable stop : bool;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

(* Which pool/worker the current domain belongs to, so nested submissions
   land in the submitting worker's own deque. *)
type membership = Member : t * int -> membership

let current : membership option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let size t = t.njobs

(* ------------------------------------------------------------------ *)
(* Task acquisition *)

let pop_own t i =
  Mutex.lock t.qlocks.(i);
  let r =
    if Deque.is_empty t.queues.(i) then None
    else Some (Deque.pop_back t.queues.(i))
  in
  Mutex.unlock t.qlocks.(i);
  r

let pop_inject t =
  Mutex.lock t.lock;
  let r = if Queue.is_empty t.inject then None else Some (Queue.pop t.inject) in
  Mutex.unlock t.lock;
  r

(* Steal the older half of the first non-empty victim deque; the oldest
   stolen task runs immediately, the rest seed our own deque. *)
let steal t i =
  let rec go k =
    if k >= t.njobs then None
    else
      let v = (i + 1 + k) mod t.njobs in
      if v = i then go (k + 1)
      else begin
        Mutex.lock t.qlocks.(v);
        let len = Deque.length t.queues.(v) in
        if len = 0 then begin
          Mutex.unlock t.qlocks.(v);
          go (k + 1)
        end
        else begin
          let take = (len + 1) / 2 in
          let stolen =
            Array.init take (fun _ -> Deque.pop_front t.queues.(v))
          in
          Mutex.unlock t.qlocks.(v);
          if take > 1 then begin
            Mutex.lock t.qlocks.(i);
            for j = 1 to take - 1 do
              Deque.push_back t.queues.(i) stolen.(j)
            done;
            Mutex.unlock t.qlocks.(i)
          end;
          Some stolen.(0)
        end
      end
  in
  go 0

let worker_task t i =
  match pop_own t i with
  | Some _ as s -> s
  | None -> ( match pop_inject t with Some _ as s -> s | None -> steal t i)

(* Acquisition for whoever is running on the current domain: a worker uses
   its own deque first; an outside helper (the owner inside await/await_idle)
   drains the injection queue, then single tasks off deque fronts. *)
let help_task t =
  match Domain.DLS.get current with
  | Some (Member (t', i)) when t' == t -> worker_task t i
  | _ -> (
    match pop_inject t with
    | Some _ as s -> s
    | None ->
      let rec go v =
        if v >= t.njobs then None
        else begin
          Mutex.lock t.qlocks.(v);
          let r =
            if Deque.is_empty t.queues.(v) then None
            else Some (Deque.pop_front t.queues.(v))
          in
          Mutex.unlock t.qlocks.(v);
          match r with Some _ -> r | None -> go (v + 1)
        end
      in
      go 0)

(* ------------------------------------------------------------------ *)
(* Submission *)

(* Under [lock]: record a deposit and wake scanners. *)
let deposited t =
  t.pending <- t.pending + 1;
  t.hint <- t.hint + 1;
  if t.nwaiting > 0 then Condition.broadcast t.cond

let enqueue t task =
  if t.closed then invalid_arg "Tact_util.Pool: submit after shutdown";
  match Domain.DLS.get current with
  | Some (Member (t', i)) when t' == t ->
    Mutex.lock t.qlocks.(i);
    Deque.push_back t.queues.(i) task;
    Mutex.unlock t.qlocks.(i);
    Mutex.lock t.lock;
    deposited t;
    Mutex.unlock t.lock
  | _ ->
    Mutex.lock t.lock;
    Queue.push task t.inject;
    deposited t;
    Mutex.unlock t.lock

(* Under [lock]: record a completion and wake waiters. *)
let completed t =
  t.pending <- t.pending - 1;
  t.hint <- t.hint + 1;
  if t.nwaiting > 0 then Condition.broadcast t.cond

let submit t f =
  let fut = { f_state = Pending } in
  enqueue t (fun () ->
      let r =
        try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      fut.f_state <- r;
      completed t;
      Mutex.unlock t.lock);
  fut

let post t f =
  enqueue t (fun () ->
      let err =
        try
          f ();
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.lock;
      (match (t.error, err) with
      | None, Some _ -> t.error <- err
      | _ -> ());
      completed t;
      Mutex.unlock t.lock)

(* ------------------------------------------------------------------ *)
(* Waiting *)

(* Help until [probe] (checked under [lock]) returns [Some]; between a
   failed scan and sleeping, the hint stamp is re-checked so a concurrent
   deposit forces a rescan rather than a lost wakeup. *)
let help_until t probe =
  let rec go () =
    Mutex.lock t.lock;
    let res = probe () in
    let h = t.hint in
    Mutex.unlock t.lock;
    match res with
    | Some v -> v
    | None -> (
      match help_task t with
      | Some task ->
        task ();
        go ()
      | None ->
        Mutex.lock t.lock;
        (match probe () with
        | Some v ->
          Mutex.unlock t.lock;
          v
        | None ->
          if t.hint = h then begin
            t.nwaiting <- t.nwaiting + 1;
            Condition.wait t.cond t.lock;
            t.nwaiting <- t.nwaiting - 1
          end;
          Mutex.unlock t.lock;
          go ()))
  in
  go ()

let await t fut =
  let st =
    help_until t (fun () ->
        match fut.f_state with Pending -> None | st -> Some st)
  in
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let take_error t =
  (* under [lock] *)
  let e = t.error in
  t.error <- None;
  e

let await_idle t =
  let err =
    help_until t (fun () ->
        if t.pending = 0 then Some (take_error t) else None)
  in
  match err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map (fun fut -> await t fut) futs

let map_array t f xs =
  let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map (fun fut -> await t fut) futs

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let worker t i () =
  Domain.DLS.set current (Some (Member (t, i)));
  let rec loop () =
    match worker_task t i with
    | Some task ->
      task ();
      loop ()
    | None ->
      Mutex.lock t.lock;
      if t.stop then Mutex.unlock t.lock
      else begin
        let h = t.hint in
        Mutex.unlock t.lock;
        (* Rescan: a deposit may have landed between the failed scan above
           and reading the stamp. *)
        match worker_task t i with
        | Some task ->
          task ();
          loop ()
        | None ->
          Mutex.lock t.lock;
          if (not t.stop) && t.hint = h then begin
            t.nwaiting <- t.nwaiting + 1;
            Condition.wait t.cond t.lock;
            t.nwaiting <- t.nwaiting - 1
          end;
          Mutex.unlock t.lock;
          loop ()
      end
  in
  loop ()

let create ~jobs =
  let njobs = Stdlib.max 1 jobs in
  let t =
    {
      njobs;
      queues = Array.init njobs (fun _ -> Deque.create ());
      qlocks = Array.init njobs (fun _ -> Mutex.create ());
      inject = Queue.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      hint = 0;
      nwaiting = 0;
      pending = 0;
      error = None;
      stop = false;
      closed = false;
      domains = [];
    }
  in
  t.domains <- List.init njobs (fun i -> Domain.spawn (worker t i));
  t

let shutdown t =
  if not t.closed then begin
    (* Drain before stopping: workers keep executing until quiescent.  A
       pending post error must not leak the domains, so re-raise it only
       after the join. *)
    let err =
      match await_idle t with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    t.closed <- true;
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- [];
    match err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  match f t with
  | v ->
    shutdown t;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    (try shutdown t with _ -> ());
    Printexc.raise_with_backtrace e bt

let recommended_jobs ?(cap = max_int) () =
  max 1 (min cap (Domain.recommended_domain_count () - 1))
