(** Growable array with a head offset: the indexed backing store for the
    write log.  O(1) amortised [push_back]/[pop_front], O(log n)
    [upper_bound], O(distance-to-tail) mid insertion/removal.  Front slack
    left by pops is reclaimed once it exceeds the live length, keeping memory
    within a constant factor of the live contents. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Logical index: 0 is the front element. *)

val set : 'a t -> int -> 'a -> unit
val push_back : 'a t -> 'a -> unit
val peek_front : 'a t -> 'a
val pop_front : 'a t -> 'a
val pop_back : 'a t -> 'a

val drop_front : 'a t -> int -> unit
(** Discard the first [n] elements (a pointer bump plus occasional
    compaction). *)

val insert : 'a t -> int -> 'a -> unit
(** Insert before logical index [i], shifting the tail side right. *)

val remove : 'a t -> int -> 'a
(** Remove and return the element at logical index [i]. *)

val clear : 'a t -> unit

val sub : 'a t -> int -> int -> 'a array
(** [sub t src len] is a fresh array of the [len] elements at logical
    indices [src..src+len-1] — one [Array.sub], no per-element bounds
    checks. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list

val upper_bound : 'a t -> cmp:('a -> 'a -> int) -> 'a -> int
(** Index of the first element comparing greater than the probe — the
    insertion point that keeps a [cmp]-sorted deque sorted.  The deque must
    be sorted by [cmp]. *)
