(** Runtime invariant checking, off by default.

    Setting [TACT_SANITIZE=1] in the environment (or calling
    {!set_enabled}[ true]) switches the write log, the replicas and the
    simulation engine into a checking mode that audits their structural
    invariants after every mutation and raises {!Violation} — with the
    replica id and log position — instead of silently corrupting state.
    The checks cost O(log size) per operation; production runs leave them
    off and pay only a cached boolean test. *)

exception Violation of string

val enabled : unit -> bool
(** True when checking is on ([TACT_SANITIZE] or a {!set_enabled} override). *)

val set_enabled : bool -> unit
(** Programmatic override of the environment flag (tests). *)

val clear_forced : unit -> unit
(** Drop the {!set_enabled} override, falling back to the environment. *)

val violation : ctx:string -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Violation} with a [\[ctx\]]-prefixed message. *)

val report : ctx:string -> string list -> unit
(** Raise {!Violation} summarising the messages; no-op on the empty list. *)
