(** E22 — extension: batched anti-entropy at 100-replica / million-write
    scale.

    The stress test behind the batched sync mode: a gossip ring of 100
    replicas absorbs a million writes under a fixed truncation horizon, with
    the bounded write log ({!Tact_replica.Config.bounded_log}), access
    recording off, and the omniscient write registry disabled — every
    memory sink that grows with run length closed.  Reports wire traffic
    (messages, bytes, peak frame), batching and snapshot counters, and the
    memory probe: the maximum retained committed prefix and maximum held
    writes observed anywhere during the run.  Correctness bar: every point
    converges and per-replica log memory is bounded by the truncation
    horizon plus the commit lag, independent of the total write count. *)

type row = {
  replicas : int;
  writes : int;
  keep : int;
  virtual_s : float;
  messages : int;
  bytes : int;
  max_frame : int;
  batches : int;
  snapshots : int;
  max_retained : int;
  max_known : int;
  converged : bool;
  heap_mb : float;
}

val run_one : n:int -> writers:int -> total:int -> keep:int -> sample:float -> row
(** One scale point ([writers] adjacent ring-head replicas originate all
    writes), exposed for the smoke test and the bench. *)

val run : ?quick:bool -> unit -> string
