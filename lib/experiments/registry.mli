(** The experiment registry: every table/figure reproduction, indexed by the
    ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;  (** e.g. "E3" *)
  name : string;  (** the bench-target name, e.g. "airline" *)
  paper_artifact : string;  (** which paper artifact it regenerates *)
  run : ?quick:bool -> unit -> string;
}

val all : entry list

val run_all : ?jobs:int -> ?quick:bool -> unit -> (entry * string) list
(** Run every experiment and pair it with its report, in registry order.
    [jobs > 1] runs them concurrently on a {!Tact_util.Pool} (each
    experiment is an independent simulation); the output order — and, since
    each simulation is internally deterministic, every simulated result —
    is the same at any job count.  (Reports that print measured host CPU
    time, e.g. E8's cpu-per-write column, vary between runs regardless of
    [jobs].) *)

val find : string -> entry option
(** Lookup by id (case-insensitive) or name. *)
