open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

type row = {
  scheme : string;
  committed_during_partition : int;
  committed_total : int;
  committed_at_end : int;
  writes : int;
  ext_compatible : bool;
  messages : int;
}

let run_scheme ~scheme ~label ~duration =
  let n = 4 in
  let part_start = duration /. 3.0 and part_end = 2.0 *. duration /. 3.0 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.commit_scheme = scheme;
      antientropy_period = Some 0.5;
    }
  in
  let sys = System.create ~seed:113 ~topology ~config () in
  let monitor = Monitor.start sys ~period:1.0 ~until:(duration +. 30.0) in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:127 in
  let writes = ref 0 in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        incr writes;
        Replica.submit_write r ~deps:[]
          ~affects:[ { Write.conit = "all"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  (* Disconnect replica 3 (never the primary) for the middle third. *)
  Engine.schedule engine ~delay:part_start (fun () ->
      Net.partition (System.net sys) [ 3 ] [ 0; 1; 2 ]);
  let committed_during = ref 0 in
  Engine.schedule engine ~delay:(part_end -. 0.01) (fun () ->
      committed_during := Wlog.committed_count (Replica.log (System.replica sys 0)));
  Engine.schedule engine ~delay:part_end (fun () -> Net.heal (System.net sys));
  System.run ~until:(duration +. 120.0) sys;
  let series =
    (label, Monitor.series monitor ~f:(fun s -> float_of_int s.Monitor.committed.(0)))
  in
  let log0 = Replica.log (System.replica sys 0) in
  let return_time = System.return_time sys in
  ( {
      scheme = label;
      committed_during_partition = !committed_during;
      committed_total = Wlog.committed_count log0;
      committed_at_end = Wlog.committed_count log0;
      writes = !writes;
      ext_compatible =
        Tact_core.Ecg.externally_compatible ~order:(Wlog.committed log0)
          ~return_time;
      messages = (System.traffic sys).Net.messages;
    },
    series )

let run ?(quick = false) () =
  let duration = if quick then 18.0 else 60.0 in
  let results =
    [
      run_scheme ~scheme:Config.Stability ~label:"stability (timestamp)" ~duration;
      run_scheme ~scheme:(Config.Primary 0) ~label:"primary (CSN @ 0)" ~duration;
    ]
  in
  let rows = List.map fst results in
  let progress_series = List.map snd results in
  let tbl =
    Table.create
      ~title:
        "E12 — commitment schemes: replica 3 partitioned for the middle third \
         of the run (4 replicas)"
      ~columns:
        [ "scheme"; "writes"; "committed@0 during partition"; "committed@0 end";
          "ext-order compatible"; "msgs" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ r.scheme; string_of_int r.writes;
          string_of_int r.committed_during_partition;
          string_of_int r.committed_at_end; string_of_bool r.ext_compatible;
          string_of_int r.messages ])
    rows;
  Table.render tbl
  ^ Plot.series ~title:"commit progress at replica 0 over time (partition in the middle third)"
      progress_series
  ^ "expected: stability stalls commitment during the partition (it needs \
     covers from every origin) but yields the external-order-compatible \
     canonical order; the primary scheme keeps committing among the \
     connected replicas.\n"
