open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let conit_counts = [ 1; 10; 100; 1000; 10000 ]

let conit_name c = Printf.sprintf "c%d" c

let run_one ~conits ~duration =
  let n = 4 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = List.init conits (fun c -> Conit.declare ~ne_bound:4.0 (conit_name c));
      antientropy_period = None;
    }
  in
  let sys = System.create ~seed:31 ~topology ~config () in
  let engine = System.engine sys in
  let writes = ref 0 in
  (* SA041 baselined: CPU-time measurement is this benchmark's output *)
  let cpu0 = Sys.time () in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    Tact_workload.Workload.staggered engine ~start:0.5 ~gap:0.25
      ~count:(int_of_float (duration /. 0.25))
      (fun k ->
        incr writes;
        let c = conit_name (((k * n) + i) mod conits) in
        Replica.submit_write r ~deps:[]
          ~affects:[ { Write.conit = c; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add (c, 1.0))
          ~k:ignore)
  done;
  System.run ~until:(duration +. 60.0) sys;
  (* SA041 baselined: CPU-time measurement is this benchmark's output *)
  let cpu = Sys.time () -. cpu0 in
  let traffic = System.traffic sys in
  let book =
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + Replica.bookkeeping_entries (System.replica sys i)
    done;
    !total
  in
  ( !writes,
    traffic.Net.messages,
    traffic.Net.bytes,
    book,
    cpu *. 1000.0 /. float_of_int (max 1 !writes) )

let run ?(quick = false) () =
  let duration = if quick then 10.0 else 30.0 in
  let counts = if quick then [ 1; 10; 100; 1000 ] else conit_counts in
  let tbl =
    Table.create
      ~title:
        "E8 / Section 5 — protocol cost vs number of conits (4 replicas, \
         fixed write rate, NE bound 4 per conit)"
      ~columns:
        [ "conits"; "writes"; "msgs/write"; "bytes/write"; "bookkeeping";
          "cpu ms/write" ]
  in
  List.iter
    (fun c ->
      let writes, msgs, bytes, book, cpu = run_one ~conits:c ~duration in
      Table.add_row tbl
        [ string_of_int c; string_of_int writes;
          Printf.sprintf "%.2f" (float_of_int msgs /. float_of_int writes);
          Printf.sprintf "%.1f" (float_of_int bytes /. float_of_int writes);
          string_of_int book; Printf.sprintf "%.4f" cpu ])
    counts;
  Table.render tbl
  ^ "expected: msgs/write falls (per-conit budgets relax the global push \
     pressure) and cpu/bookkeeping grow far slower than the conit count — \
     bookkeeping tracks active (peer, conit) pairs, not the declared \
     population.\n"
