(** E23 — extension: sharded conit space with interest-set partial
    replication.

    Sweeps replica count x shard count x interest-set overlap (how many
    shards each replica subscribes to).  Conits are pinned round-robin
    across shards; Poisson write load per shard is submitted only at
    subscribed replicas, and the shard engines drain on a domain pool
    ({!Tact_replica.Sharded.run}) — parallel wall-clock speedup is measured
    separately by the bench harness ([--pr9], BENCH_PR9.json).  Reports wire
    traffic, average shard membership, interest-set convergence
    ({!Tact_replica.Sharded.converged}) and the cross-shard containment
    audit.  Correctness bar: every point converges per interest set with
    zero leaks, and traffic falls as overlap narrows. *)

type row = {
  replicas : int;
  shards : int;
  overlap : int;
  writes : int;
  virtual_s : float;
  messages : int;
  bytes : int;
  avg_members : float;
  converged : bool;
  leaks : int;
}

val run_one :
  n:int -> shards:int -> overlap:int -> total:int -> jobs:int -> row
(** One sweep point, exposed for the smoke test and the bench. *)

val run : ?quick:bool -> unit -> string
