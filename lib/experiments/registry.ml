type entry = {
  id : string;
  name : string;
  paper_artifact : string;
  run : ?quick:bool -> unit -> string;
}

let all =
  [
    {
      id = "E1";
      name = "fig4";
      paper_artifact = "Figure 4 (worked NE/OE/ST example)";
      run = E01_fig4.run;
    };
    {
      id = "E2";
      name = "extremes";
      paper_artifact = "Section 3.3 extremes, Theorems 2/3, Corollary 1";
      run = E02_extremes.run;
    };
    {
      id = "E3";
      name = "airline";
      paper_artifact = "Section 4.1 conflict-rate formula (cited eval)";
      run = E03_airline.run;
    };
    {
      id = "E4";
      name = "bboard-ne";
      paper_artifact = "cited eval: bulletin-board traffic vs NE bound";
      run = E04_bboard_ne.run;
    };
    {
      id = "E5";
      name = "bboard-oe";
      paper_artifact = "cited eval: read latency vs OE bound";
      run = E05_bboard_oe.run;
    };
    {
      id = "E6";
      name = "bboard-st";
      paper_artifact = "cited eval: overhead vs staleness bound";
      run = E06_bboard_st.run;
    };
    {
      id = "E7";
      name = "qos";
      paper_artifact = "cited eval: QoS load balancing quality vs NE bound";
      run = E07_qos.run;
    };
    {
      id = "E8";
      name = "conit-scale";
      paper_artifact = "Section 5 scalability-in-conits claim";
      run = E08_conit_scale.run;
    };
    {
      id = "E9";
      name = "models";
      paper_artifact = "Section 4.2 model emulation table";
      run = E09_models.run;
    };
    {
      id = "E10";
      name = "spectrum";
      paper_artifact = "Figure 1 / Section 1 consistency-performance continuum";
      run = E10_spectrum.run;
    };
    {
      id = "E11";
      name = "ablate-budget";
      paper_artifact = "ablation: NE budget allocation policies";
      run = E11_budget.run;
    };
    {
      id = "E12";
      name = "ablate-commit";
      paper_artifact = "ablation: stability vs primary commitment";
      run = E12_commit.run;
    };
    {
      id = "E13";
      name = "replica-scale";
      paper_artifact = "scalability with replicas (Section 1 motivation)";
      run = E13_replica_scale.run;
    };
    {
      id = "E14";
      name = "truncation";
      paper_artifact = "extension: log truncation & snapshot catch-up";
      run = E14_truncation.run;
    };
    {
      id = "E15";
      name = "push-pull";
      paper_artifact = "extension: push vs pull NE enforcement crossover";
      run = E15_push_pull.run;
    };
    {
      id = "E16";
      name = "vworld";
      paper_artifact = "Section 4.1 games: focus/nimbus differentiated QoS";
      run = E16_vworld.run;
    };
    {
      id = "E17";
      name = "wan";
      paper_artifact = "extension: heterogeneous WAN visibility by cluster distance";
      run = E17_wan.run;
    };
    {
      id = "E18";
      name = "editor";
      paper_artifact = "Section 4.1 shared editor: instability bounds";
      run = E18_editor.run;
    };
    {
      id = "E19";
      name = "granularity";
      paper_artifact = "conit granularity: coarse vs per-item definitions";
      run = E19_granularity.run;
    };
    {
      id = "E20";
      name = "availability";
      paper_artifact = "extension: continuous-consistency CAP curve";
      run = E20_availability.run;
    };
    {
      id = "E21";
      name = "gossip";
      paper_artifact = "extension: topology-aware gossip plans";
      run = E21_gossip.run;
    };
    {
      id = "E22";
      name = "scale";
      paper_artifact = "extension: batched anti-entropy at 100-replica scale";
      run = E22_scale.run;
    };
    {
      id = "E23";
      name = "shards";
      paper_artifact =
        "extension: sharded conit space, interest-set partial replication";
      run = E23_shards.run;
    };
  ]

let run_all ?(jobs = 1) ?quick () =
  if jobs <= 1 then List.map (fun e -> (e, e.run ?quick ())) all
  else
    (* Experiments are independent simulations; run them on a domain pool
       and collect outputs back in registry order. *)
    Tact_util.Pool.with_pool ~jobs (fun pool ->
        List.combine all
          (Tact_util.Pool.map_list pool (fun e -> e.run ?quick ()) all))

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun e -> String.lowercase_ascii e.id = k || String.lowercase_ascii e.name = k)
    all
