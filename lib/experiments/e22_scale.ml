open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

type row = {
  replicas : int;
  writes : int;
  keep : int;
  virtual_s : float;
  messages : int;
  bytes : int;
  max_frame : int;
  batches : int;
  snapshots : int;
  max_retained : int;
  max_known : int;
  converged : bool;
  heap_mb : float;
}

(* One scale point: [n] replicas on a gossip ring, [total] writes from
   [writers] adjacent replicas at the ring head, batched sync, truncation
   horizon [keep], bounded log.

   The ring (fanout 1) is what makes 100 replicas tractable: every write
   crosses each replica boundary exactly once, so the system-wide transfer
   work is [n * total] write deliveries — the epidemic minimum for full
   replication — instead of the all-pairs flood a round-robin plan produces.
   Clustering the writers matters just as much: downstream of the cluster,
   frames arrive already in timestamp order, so every insert is an
   append — no positional rollback/replay, whose cost would otherwise grow
   with the ring delay.  Covers (and hence stability commitment) ride every
   frame, so the commit lag is one ring circumference and the tentative
   suffix stays bounded by [rate * lag] regardless of how long the run is. *)
let run_one ~n ~writers ~total ~keep ~sample =
  let rate = 1000.0 in
  let duration = float_of_int total /. (float_of_int writers *. rate) in
  let drain = 90.0 in
  let topology = Topology.uniform ~n ~latency:0.02 ~bandwidth:1e9 in
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.1;
      truncate_keep = Some keep;
      sync = Config.Batched;
      batch_flush = 0.05;
      record_accesses = false;
      bounded_log = true;
      gossip_plan = Some (fun i -> [| (i + 1) mod n |]);
    }
  in
  let sys = System.create ~seed:22 ~jitter:0.02 ~track_writes:false ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:220 in
  let submitted = ref 0 in
  for i = 0 to writers - 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate ~until:duration
      (fun () ->
        if !submitted < total then begin
          incr submitted;
          let k = !submitted in
          Replica.submit_write (System.replica sys i) ~deps:[]
            ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x" ^ string_of_int (k mod 64), 1.0))
            ~k:ignore
        end)
  done;
  (* Periodic memory probe: the retained committed prefix must track the
     truncation horizon, and the total held writes (retained + tentative)
     must stay bounded by horizon + commit lag — never by the run length. *)
  let max_retained = ref 0 and max_known = ref 0 in
  Engine.every engine ~period:sample (fun () ->
      for i = 0 to n - 1 do
        let log = Replica.log (System.replica sys i) in
        max_retained := max !max_retained (Wlog.retained log);
        max_known := max !max_known (Wlog.num_known log)
      done;
      Engine.now engine < duration +. drain);
  System.run ~until:(duration +. drain) sys;
  let traffic = System.traffic sys in
  let stats = System.total_stats sys in
  {
    replicas = n;
    writes = !submitted;
    keep;
    virtual_s = Engine.now engine;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    max_frame = traffic.Net.max_message;
    batches = stats.Replica.batches;
    snapshots = stats.Replica.snapshots_installed;
    max_retained = !max_retained;
    max_known = !max_known;
    converged = System.converged sys;
    heap_mb =
      (* Live heap after a full collection: the honest bounded-memory
         number.  (Peak heap is dominated by GC headroom under this
         allocation rate — measured live-after-major is ~0 even when the
         peak tops 500 MB.) *)
      (Gc.full_major ();
       float_of_int ((Gc.stat ()).Gc.live_words * (Sys.word_size / 8)) /. 1e6);
  }

let points ~quick =
  if quick then [ (24, 1, 30_000, 500); (24, 1, 30_000, 2_000) ]
  else
    [
      (50, 1, 250_000, 1_000); (100, 1, 250_000, 5_000);
      (100, 1, 1_000_000, 1_000);
    ]

let run ?(quick = false) () =
  let tbl =
    Table.create
      ~title:
        "E22 — batched anti-entropy at scale (gossip ring, stability \
         commitment, bounded log)"
      ~columns:
        [ "replicas"; "writes"; "keep"; "virt-s"; "msgs"; "MB"; "max frame";
          "batches"; "snapshots"; "max retained"; "max known"; "live MB";
          "converged" ]
  in
  List.iter
    (fun (n, writers, total, keep) ->
      let r = run_one ~n ~writers ~total ~keep ~sample:(if quick then 1.0 else 5.0) in
      Table.add_row tbl
        [ string_of_int r.replicas; string_of_int r.writes;
          string_of_int r.keep; Printf.sprintf "%.0f" r.virtual_s;
          string_of_int r.messages;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1e6);
          string_of_int r.max_frame; string_of_int r.batches;
          string_of_int r.snapshots; string_of_int r.max_retained;
          string_of_int r.max_known; Printf.sprintf "%.0f" r.heap_mb;
          string_of_bool r.converged ])
    (points ~quick);
  Table.render tbl
  ^ "expected: every point converges; the retained committed prefix stays at \
     the truncation horizon (max retained <= keep + one commit round) and \
     total held writes stay bounded by horizon + commit lag — per-replica \
     memory is independent of the number of writes in the run.\n"
