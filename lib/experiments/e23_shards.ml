open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

(* E23 — sharded conit space with interest-set partial replication.

   Sweep replica count x shard count x interest-set overlap (how many shards
   each replica subscribes to).  Conits are pinned round-robin across
   shards; writes arrive Poisson over the conits, each submitted at a
   replica subscribed to the conit's shard.  The point of the table:

   - sync traffic falls with overlap: a replica stores and syncs only its
     interest set, so total messages scale with [sum of shard membership]
     rather than [n * shards];
   - convergence is per interest set ([Sharded.converged]) and the
     cross-shard containment audit stays clean;
   - the unsharded column (shards = 1, full overlap) is the baseline the
     1-shard differential tests pin byte-identical to a plain [System]. *)

type row = {
  replicas : int;
  shards : int;
  overlap : int;
  writes : int;
  virtual_s : float;
  messages : int;
  bytes : int;
  avg_members : float;
  converged : bool;
  leaks : int;
}

let conits_per_shard = 4

let run_one ~n ~shards ~overlap ~total ~jobs =
  let nconits = shards * conits_per_shard in
  let conit_name k = Printf.sprintf "c%02d" k in
  let router =
    Shard.with_table (Shard.by_hash ~shards)
      (List.init nconits (fun k -> (conit_name k, k mod shards)))
  in
  let interest r =
    List.init overlap (fun i -> (r + i) mod shards) |> List.sort_uniq Int.compare
  in
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.2;
      sync = Config.Batched;
      batch_flush = 0.05;
      record_accesses = false;
      shards;
      interest = (if overlap >= shards then None else Some interest);
    }
  in
  let topology = Topology.uniform ~n ~latency:0.02 ~bandwidth:1e8 in
  let sh = Sharded.create ~seed:23 ~jitter:0.02 ~router ~topology ~config () in
  let rng = Prng.create ~seed:230 in
  let rate = 200.0 in
  let duration = float_of_int total /. rate in
  let drain = 30.0 in
  let submitted = ref 0 in
  (* One Poisson arrival process per shard, drawing conits from the shard's
     slice and writers from its membership — client load follows interest. *)
  for s = 0 to shards - 1 do
    let members = Sharded.members sh s in
    let prng = Prng.split rng in
    let wrng = Prng.split rng in
    Tact_workload.Workload.poisson
      (Sharded.engine sh ~shard:s)
      ~rng:prng
      ~rate:(rate /. float_of_int shards)
      ~until:duration
      (fun () ->
        incr submitted;
        let k = Prng.int wrng conits_per_shard in
        let conit = conit_name ((k * shards) + s) in
        let writer = members.(Prng.int wrng (Array.length members)) in
        Sharded.submit_write sh ~replica:writer ~deps:[]
          ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x:" ^ conit, 1.0))
          ~k:ignore)
  done;
  Sharded.run ~jobs ~until:(duration +. drain) sh;
  let traffic = Sharded.traffic sh in
  let members_total =
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      acc := !acc + Array.length (Sharded.members sh s)
    done;
    !acc
  in
  {
    replicas = n;
    shards;
    overlap;
    writes = !submitted;
    virtual_s = Sharded.now sh;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    avg_members = float_of_int members_total /. float_of_int shards;
    converged = Sharded.converged sh;
    leaks = List.length (Sharded.shard_leaks sh);
  }

(* (n, shards, overlap, writes) *)
let points ~quick =
  if quick then
    [ (8, 1, 1, 2_000); (8, 4, 4, 2_000); (8, 4, 2, 2_000); (8, 4, 1, 2_000) ]
  else
    [
      (16, 1, 1, 20_000);
      (16, 4, 4, 20_000); (16, 4, 2, 20_000); (16, 4, 1, 20_000);
      (32, 8, 8, 20_000); (32, 8, 2, 20_000); (32, 8, 1, 20_000);
    ]

let run ?(quick = false) () =
  let jobs = Pool.recommended_jobs ~cap:4 () in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E23 — sharded conit space: interest-set partial replication \
            (domain-parallel shard engine, jobs=%d)"
           jobs)
      ~columns:
        [ "replicas"; "shards"; "overlap"; "writes"; "virt-s"; "msgs"; "MB";
          "avg members"; "converged"; "leaks" ]
  in
  List.iter
    (fun (n, shards, overlap, total) ->
      let r = run_one ~n ~shards ~overlap ~total ~jobs in
      Table.add_row tbl
        [ string_of_int r.replicas; string_of_int r.shards;
          string_of_int r.overlap; string_of_int r.writes;
          Printf.sprintf "%.0f" r.virtual_s; string_of_int r.messages;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1e6);
          Printf.sprintf "%.1f" r.avg_members; string_of_bool r.converged;
          string_of_int r.leaks ])
    (points ~quick);
  Table.render tbl
  ^ "expected: every point converges per interest set with zero cross-shard \
     leaks; messages and bytes fall as overlap narrows (partial replication \
     syncs each shard only among its subscribers); shards=1/overlap=1 is the \
     unsharded baseline the differential tests pin byte-identical to a \
     plain System.\n"
