open Tact_store
open Tact_core
open Tact_util

type outcome = {
  ne_f1 : float;
  oe_f1 : float;
  st_f1 : float;
  ne_f2 : float;
  oe_f2 : float;
  st_f2 : float;
}

let unit_w conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

let mk ~origin ~seq ~t affects =
  Write.make ~id:{ origin; seq } ~accept_time:t ~op:Op.Noop
    ~affects:(List.map unit_w affects)

(* The reconstructed instance (see the .mli):
     W1{F1,F2}  W2{F3}  W3{F1}  W4{F2}  W5{F1}   at times 1..5
   R2 runs at replica 1 at stime = 6.  Replica 1 has seen W1..W4 (W5 is
   unseen); its committed prefix is [W1; W2], its tentative suffix
   [W3; W4]. *)
let w1 = mk ~origin:0 ~seq:1 ~t:1.0 [ "F1"; "F2" ]
let w2 = mk ~origin:2 ~seq:1 ~t:2.0 [ "F3" ]
let w3 = mk ~origin:0 ~seq:2 ~t:3.0 [ "F1" ]
let w4 = mk ~origin:2 ~seq:2 ~t:4.0 [ "F2" ]
let w5 = mk ~origin:3 ~seq:1 ~t:5.0 [ "F1" ]

let ecg = [ w1; w2; w3; w4; w5 ]
let observed = [ w1; w2; w3; w4 ]
let tentative = [ w3; w4 ]
let unseen = [ w5 ]
let stime_r2 = 6.0

let compute () =
  let ne c = Metrics.numerical_error ~actual:ecg ~observed c in
  let oe c = Metrics.order_error_tentative ~tentative c in
  let st c = Metrics.staleness ~now:stime_r2 ~unseen c in
  {
    ne_f1 = ne "F1";
    oe_f1 = oe "F1";
    st_f1 = st "F1";
    ne_f2 = ne "F2";
    oe_f2 = oe "F2";
    st_f2 = st "F2";
  }

let run ?quick:_ () =
  let o = compute () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "E1 / Figure 4 — conit consistency example (reconstructed instance)\n\
     ECG history:   W1{F1,F2}  W2{F3}  W3{F1}  W4{F2}  W5{F1}   (unit weights)\n\
     Replica 1:     committed [W1 W2], tentative [W3 W4], unseen [W5]\n\
     Read R2:       at replica 1, stime = 6, dep-on {F1, F2}\n\n";
  let tbl =
    Table.create ~title:"Consistency of (R2, conit)"
      ~columns:[ "conit"; "NE(absolute)"; "OE"; "ST" ]
  in
  Table.add_row tbl
    [ "F1"; Table.cell_f o.ne_f1; Table.cell_f o.oe_f1;
      Printf.sprintf "%s (= stime(R2) - rtime(W5))" (Table.cell_f o.st_f1) ];
  Table.add_row tbl
    [ "F2"; Table.cell_f o.ne_f2; Table.cell_f o.oe_f2; Table.cell_f o.st_f2 ];
  Buffer.add_string buf (Table.render tbl);
  Buffer.add_string buf
    "paper: F1 -> NE 1, OE 1, ST = stime(R2)-rtime(W5);  F2 -> NE 0, OE 1, ST 0\n";
  Buffer.contents buf
