examples/stock_ticker.ml: Config Conit Db Engine Float List Net Op Printf Replica Session System Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Value Verify
