examples/quickstart.ml: Array Config Conit Engine List Net Printf Session System Tact_apps Tact_core Tact_replica Tact_sim Tact_workload Topology Verify
