examples/collaborative_editor.ml: Config Editor Engine List Net Printf Replica Session String System Tact_apps Tact_replica Tact_sim Tact_workload Topology Verify
