examples/load_balancer.ml: Printf Tact_apps
