examples/session_migration.ml: Config Db Engine List Op Printf Session System Tact_replica Tact_sim Tact_store Topology Value
