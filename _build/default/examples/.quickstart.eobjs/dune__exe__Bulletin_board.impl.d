examples/bulletin_board.ml: Bboard Bounds Config Conit Engine List Printf Session System Tact_apps Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Value Verify
