examples/consistency_zoo.mli:
