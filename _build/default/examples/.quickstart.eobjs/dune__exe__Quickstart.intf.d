examples/quickstart.mli:
