examples/flight_booking.ml: Printf Tact_apps
