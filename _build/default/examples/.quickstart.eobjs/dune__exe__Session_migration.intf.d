examples/session_migration.mli:
