examples/flight_booking.mli:
