examples/collaborative_editor.mli:
