(* The benchmark harness.

   Part 1 regenerates every table and figure indexed in DESIGN.md §5 /
   EXPERIMENTS.md (one experiment per paper artifact, printed as tables and
   ASCII plots).  Part 2 runs Bechamel micro-benchmarks of the protocol
   kernels the experiments exercise.

   Usage:
     dune exec bench/main.exe                 # quick experiments + micro
     dune exec bench/main.exe -- --full       # full-length experiments
     dune exec bench/main.exe -- --no-micro   # skip Bechamel
     dune exec bench/main.exe -- E3 E12       # a subset, by id or name *)

open Tact_experiments

let run_experiments ~quick ~only =
  let selected =
    match only with
    | [] -> Registry.all
    | keys ->
      List.filter_map
        (fun k ->
          match Registry.find k with
          | Some e -> Some e
          | None ->
            Printf.printf
              "unknown experiment %S (use an id like E3 or a name like airline)\n" k;
            None)
        keys
  in
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "\n%s\n" (String.make 78 '=');
      Printf.printf "%s [%s] — %s\n" e.id e.name e.paper_artifact;
      Printf.printf "%s\n" (String.make 78 '=');
      let t0 = Sys.time () in
      print_string (e.run ~quick ());
      Printf.printf "(%s ran in %.1fs cpu)\n" e.id (Sys.time () -. t0);
      flush stdout)
    selected

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels underneath the experiments *)

open Bechamel
open Toolkit

let wlog_kernel ~writes () =
  let open Tact_store in
  let log = Wlog.create ~replicas:2 ~initial:[] in
  for seq = 1 to writes do
    ignore
      (Wlog.accept log
         {
           Write.id = { origin = 0; seq };
           accept_time = float_of_int seq;
           op = Op.Add ("x", 1.0);
           affects = [ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ];
         })
  done;
  ignore (Wlog.commit_stable log ~cover:[| infinity; infinity |])

let metrics_kernel ~writes () =
  let open Tact_store in
  let ws =
    List.init writes (fun i ->
        {
          Write.id = { origin = i mod 3; seq = (i / 3) + 1 };
          accept_time = float_of_int i;
          op = Op.Noop;
          affects = [ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ];
        })
  in
  ignore (Tact_core.Metrics.order_error_lcp ~ecg:ws ~local:ws "c");
  ignore (Tact_core.Metrics.value ws "c")

let sim_kernel ~events () =
  let open Tact_sim in
  let e = Engine.create () in
  for i = 1 to events do
    Engine.schedule e ~delay:(float_of_int (i mod 97)) ignore
  done;
  Engine.run e

let bboard_kernel () =
  ignore
    (Tact_apps.Bboard.run ~seed:3 ~n:3 ~post_rate:2.0 ~read_rate:1.0
       ~duration:5.0 ~ne_bound:4.0 ~antientropy:None ())

let vv_kernel () =
  let open Tact_store in
  let a = Version_vector.create 16 and b = Version_vector.create 16 in
  for i = 0 to 15 do
    Version_vector.set a i (i * 3);
    Version_vector.set b i (48 - (i * 3))
  done;
  for _ = 1 to 1000 do
    let c = Version_vector.copy a in
    Version_vector.merge_into c b;
    ignore (Version_vector.dominates c a)
  done

let budget_kernel () =
  let rates = [| 5.0; 1.0; 0.5; 2.0 |] in
  for self = 1 to 3 do
    for _ = 1 to 1000 do
      ignore
        (Tact_protocols.Budget.share Tact_protocols.Budget.Adaptive ~bound:10.0
           ~n:4 ~self ~receiver:0 ~rates)
    done
  done

let csn_kernel () =
  let open Tact_store in
  let b = Tact_protocols.Csn_buffer.create () in
  for i = 0 to 999 do
    Tact_protocols.Csn_buffer.offer b ~start:i [ { Write.origin = 0; seq = i + 1 } ]
  done;
  ignore (Tact_protocols.Csn_buffer.slice_from b 900)

let micro_tests =
  [
    Test.make ~name:"wlog: 500 accepts + stability commit"
      (Staged.stage (wlog_kernel ~writes:500));
    Test.make ~name:"metrics: LCP order error over 300 writes"
      (Staged.stage (metrics_kernel ~writes:300));
    Test.make ~name:"sim: 10k events through the engine"
      (Staged.stage (sim_kernel ~events:10_000));
    Test.make ~name:"version vectors: 1k merge/dominate (n=16)"
      (Staged.stage vv_kernel);
    Test.make ~name:"budget: 3k adaptive share computations"
      (Staged.stage budget_kernel);
    Test.make ~name:"csn buffer: 1k slice offers"
      (Staged.stage csn_kernel);
    Test.make ~name:"end-to-end: 5s bulletin-board simulation"
      (Staged.stage bboard_kernel);
  ]

let run_micro () =
  Printf.printf "\n%s\nBechamel micro-benchmarks (protocol kernels)\n%s\n"
    (String.make 78 '=') (String.make 78 '=');
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let test = Test.make_grouped ~name:"tact" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-55s %14.1f ns/run (%s)\n" name est measure
          | Some _ | None -> ())
        tbl)
    results

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let no_micro = List.mem "--no-micro" args in
  let only =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  run_experiments ~quick:(not full) ~only;
  if not no_micro then run_micro ()
