open Tact_store

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type t = {
  mutable target : Replica.t;
  guarantees : guarantee list;
  mutable deps : (string * Tact_core.Bounds.t) list;
  mutable affects : Write.weight list;
  (* Session state for the guarantees: what this session has written and
     what it has read from. *)
  mutable write_vec : Version_vector.t option;
  mutable read_vec : Version_vector.t option;
}

let create ?(guarantees = []) replica =
  {
    target = replica;
    guarantees;
    deps = [];
    affects = [];
    write_vec = None;
    read_vec = None;
  }

let migrate t replica = t.target <- replica

let dependon_conit t name ?ne ?ne_rel ?oe ?st () =
  t.deps <- (name, Tact_core.Bounds.make ?ne ?ne_rel ?oe ?st ()) :: t.deps

let affect_conit t name ~nweight ~oweight =
  t.affects <- { Write.conit = name; nweight; oweight } :: t.affects

let wants t g = List.mem g t.guarantees

let merge_opt a b =
  match (a, b) with
  | None, v | v, None -> Option.map Version_vector.copy v
  | Some x, Some y ->
    let m = Version_vector.copy x in
    Version_vector.merge_into m y;
    Some m

let requirement t ~for_read =
  if for_read then
    merge_opt
      (if wants t Read_your_writes then t.write_vec else None)
      (if wants t Monotonic_reads then t.read_vec else None)
  else
    merge_opt
      (if wants t Writes_follow_reads then t.read_vec else None)
      (if wants t Monotonic_writes then t.write_vec else None)

(* Fold the replica's current vector into a session vector (called inside the
   completion continuation, so it reflects exactly what the access saw or
   produced). *)
let absorb t vec_opt =
  let current = Version_vector.copy (Wlog.vector (Replica.log t.target)) in
  match vec_opt with
  | None -> Some current
  | Some v ->
    Version_vector.merge_into current v;
    Some current

let read t f ~k =
  let deps = t.deps in
  t.deps <- [];
  let require = requirement t ~for_read:true in
  Replica.submit_read ?require t.target ~deps ~f ~k:(fun v ->
      if wants t Monotonic_reads || wants t Writes_follow_reads then
        t.read_vec <- absorb t t.read_vec;
      k v)

let write t op ~k =
  let deps = t.deps and affects = t.affects in
  t.deps <- [];
  t.affects <- [];
  let require = requirement t ~for_read:false in
  Replica.submit_write ?require t.target ~deps ~affects ~op ~k:(fun outcome ->
      if wants t Read_your_writes || wants t Monotonic_writes then
        t.write_vec <- absorb t t.write_vec;
      k outcome)

let replica t = t.target
