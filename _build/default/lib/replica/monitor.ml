type sample = {
  time : float;
  committed : int array;
  known : int array;
  pending : int array;
  messages : int;
  bytes : int;
}

type t = { mutable samples : sample list (* newest first *) }

let take sys =
  let n = System.size sys in
  let traffic = System.traffic sys in
  {
    time = System.now sys;
    committed =
      Array.init n (fun i ->
          Tact_store.Wlog.committed_count (Replica.log (System.replica sys i)));
    known =
      Array.init n (fun i ->
          Tact_store.Wlog.num_known (Replica.log (System.replica sys i)));
    pending = Array.init n (fun i -> Replica.pending_count (System.replica sys i));
    messages = traffic.Tact_sim.Net.messages;
    bytes = traffic.Tact_sim.Net.bytes;
  }

let start sys ~period ~until =
  let t = { samples = [] } in
  let engine = System.engine sys in
  Tact_sim.Engine.every engine ~period (fun () ->
      t.samples <- take sys :: t.samples;
      Tact_sim.Engine.now engine < until);
  t

let samples t = List.rev t.samples

let series t ~f = List.map (fun s -> (s.time, f s)) (samples t)
