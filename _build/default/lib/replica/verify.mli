(** Omniscient, after-the-fact verification that every served access respected
    its declared (NE, OE, ST) bounds — the correctness oracle behind the
    integration and property tests.

    For each access record and each conit it depends on, the checker
    recomputes the true metrics against the reference history:

    - the {e observed prefix} is the set of writes covered by the replica's
      version vector at service time;
    - the {e actual prefix} is the most permissive prefix every ECG history
      must contain: writes that returned to their users before the access was
      submitted (external order) plus the observed ones (causal order) —
      see {!Tact_core.Ecg.actual_prefix};
    - NE is the absolute difference of accumulated numerical weights between
      the two prefixes, relative NE divides by the actual value offset by the
      conit's declared initial value;
    - OE is checked in both readings: the enforcement reading (tentative
      oweight at service) always, the definitional LCP reading optionally
      (it is guaranteed only under stability commitment);
    - ST is the age, at submission, of the oldest write affecting the conit
      that had returned before submission but was not observed. *)

type computed = {
  conit : string;
  ne : float;
  ne_rel : float;
  oe_tentative : float;
  oe_lcp : float;
  st : float;
}

type violation = {
  access : Tact_core.Access.t;
  metrics : computed;
  dimension : string;  (** which bound failed: "ne" | "ne_rel" | "oe" | "st" | "oe_lcp" *)
  bound : float;
}

val access_metrics : System.t -> Tact_core.Access.t -> computed list
(** The true metrics of each conit the access depends on. *)

val check : ?lcp:bool -> ?eps:float -> System.t -> violation list
(** Verify every recorded access.  [lcp] additionally checks the definitional
    order-error reading against the OE bound (sound under stability
    commitment; default false).  [eps] absorbs floating-point noise
    (default 1e-9). *)

val summarize : violation list -> string
