lib/replica/verify.ml: Access Bounds Buffer Config Conit Ecg Float List Metrics Printf System Tact_core Tact_store Version_vector Write
