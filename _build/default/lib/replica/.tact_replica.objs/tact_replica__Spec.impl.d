lib/replica/spec.ml: Bounds Db List Op Session Tact_core Tact_store Value
