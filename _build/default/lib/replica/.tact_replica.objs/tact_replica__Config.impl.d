lib/replica/config.ml: List Printf String Tact_core Tact_protocols Tact_store Tact_util
