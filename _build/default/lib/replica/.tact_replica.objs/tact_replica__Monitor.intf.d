lib/replica/monitor.mli: System
