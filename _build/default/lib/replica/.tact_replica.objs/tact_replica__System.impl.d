lib/replica/system.ml: Array Config Db Engine Hashtbl List Net Option Prng Replica Tact_core Tact_sim Tact_store Tact_util Topology Version_vector Write
