lib/replica/monitor.ml: Array List Replica System Tact_sim Tact_store
