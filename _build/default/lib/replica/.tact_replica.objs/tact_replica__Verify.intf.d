lib/replica/verify.mli: System Tact_core
