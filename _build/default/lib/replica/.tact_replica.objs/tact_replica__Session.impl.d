lib/replica/session.ml: List Option Replica Tact_core Tact_store Version_vector Wlog Write
