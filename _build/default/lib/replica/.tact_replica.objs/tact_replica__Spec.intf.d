lib/replica/spec.mli: Session Tact_core Tact_store
