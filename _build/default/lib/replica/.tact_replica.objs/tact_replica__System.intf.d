lib/replica/system.mli: Config Replica Tact_core Tact_sim Tact_store
