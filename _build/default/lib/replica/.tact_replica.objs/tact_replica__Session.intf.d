lib/replica/session.mli: Replica Tact_store
