lib/replica/config.mli: Tact_core Tact_protocols Tact_store Tact_util
