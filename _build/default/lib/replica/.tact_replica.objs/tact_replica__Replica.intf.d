lib/replica/replica.mli: Config Tact_core Tact_sim Tact_store
