type commit_scheme = Stability | Primary of int

type t = {
  conits : Tact_core.Conit.t list;
  commit_scheme : commit_scheme;
  budget_policy : Tact_protocols.Budget.policy;
  antientropy_period : float option;
  retry_period : float;
  truncate_keep : int option;
  initial_db : (string * Tact_store.Value.t) list;
  trace : Tact_util.Trace.t option;
  gossip_plan : (int -> int array) option;
}

let default =
  {
    conits = [];
    commit_scheme = Stability;
    budget_policy = Tact_protocols.Budget.Even;
    antientropy_period = None;
    retry_period = 1.0;
    truncate_keep = None;
    initial_db = [];
    trace = None;
    gossip_plan = None;
  }

let conit t name =
  match List.find_opt (fun c -> String.equal c.Tact_core.Conit.name name) t.conits with
  | Some c -> c
  | None -> Tact_core.Conit.unconstrained name

let validate ~n t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if n <= 0 then err "system size must be positive (got %d)" n
  else
    match t.commit_scheme with
    | Primary p when p < 0 || p >= n ->
      err "primary %d is not a replica id (n = %d)" p n
    | Primary _ | Stability -> (
      match t.antientropy_period with
      | Some p when p <= 0.0 -> err "anti-entropy period must be positive"
      | _ ->
        if t.retry_period <= 0.0 then err "retry period must be positive"
        else if (match t.truncate_keep with Some k -> k < 0 | None -> false)
        then err "truncate_keep must be non-negative"
        else begin
          let names = List.map (fun c -> c.Tact_core.Conit.name) t.conits in
          if List.length (List.sort_uniq String.compare names) <> List.length names
          then err "duplicate conit declarations"
          else if
            List.exists
              (fun (c : Tact_core.Conit.t) ->
                c.ne_bound < 0.0 || c.ne_rel_bound < 0.0)
              t.conits
          then err "conit bounds must be non-negative"
          else Ok ()
        end)
