(** Client sessions — the weight-specification API of Section 3.4 / Figure 5,
    plus Bayou-style session guarantees.

    A session accumulates [DependonConit] and [AffectConit] statements; the
    next read or write consumes (and clears) them:

    {[
      let s = Session.create replica in
      (* PostMessage *)
      Session.affect_conit s "AllMsg" ~nweight:1.0 ~oweight:1.0;
      if author_is_friend then
        Session.affect_conit s "MsgFromFriends" ~nweight:1.0 ~oweight:1.0;
      Session.write s (Op.Append ("board", Value.Str msg)) ~k:ignore;

      (* ReadMessages *)
      Session.dependon_conit s "MsgFromFriends" ~ne:3.0 ~oe:0.0 ~st:60.0 ();
      Session.dependon_conit s "AllMsg" ~ne:10.0 ~oe:5.0 ~st:9999.0 ();
      Session.read s (fun db -> Db.get db "board") ~k:display
    ]}

    The conit definition functions themselves are never exported — the system
    only ever sees names, weights and bounds.

    {2 Session guarantees}

    Conit bounds constrain a replica's divergence from the global state;
    session guarantees (Terry et al. 1994, implemented in Bayou, the paper's
    substrate) constrain what one {e client} observes as it moves between
    replicas.  A session tracks the vectors of writes it has written and
    read-from; when the session {!migrate}s to another replica, accesses are
    delayed until the new replica can honour the selected guarantees:

    - {b Read-your-writes}: reads see every earlier write of this session.
    - {b Monotonic reads}: reads never observe less than previous reads.
    - {b Writes-follow-reads}: this session's writes are causally ordered
      after the writes it previously read.
    - {b Monotonic writes}: this session's writes are causally ordered after
      its own earlier writes.

    Guarantees compose freely with per-access conit bounds. *)

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type t

val create : ?guarantees:guarantee list -> Replica.t -> t
(** A session bound to a replica; no guarantees by default (at a fixed
    replica, read-your-writes and monotonic reads hold anyway). *)

val migrate : t -> Replica.t -> unit
(** Rebind the session to another replica; the selected guarantees carry
    over (subsequent accesses block until the new replica has seen enough). *)

val dependon_conit :
  t -> string -> ?ne:float -> ?ne_rel:float -> ?oe:float -> ?st:float -> unit -> unit
(** Declare that the next access depends on the conit at the given
    consistency level (unspecified components unconstrained). *)

val affect_conit : t -> string -> nweight:float -> oweight:float -> unit
(** Declare how the next write affects the conit. *)

val read : t -> (Tact_store.Db.t -> Tact_store.Value.t) -> k:(Tact_store.Value.t -> unit) -> unit

val write : t -> Tact_store.Op.t -> k:(Tact_store.Op.outcome -> unit) -> unit

val replica : t -> Replica.t
