(** Periodic system sampling: time series of the quantities the experiments
    plot (commit progress, knowledge, traffic, parked accesses).

    Start a monitor before [System.run]; it samples on the virtual clock and
    the collected series can be rendered with {!Tact_util.Plot}. *)

type sample = {
  time : float;
  committed : int array;  (** per replica: committed write count *)
  known : int array;  (** per replica: known write count *)
  pending : int array;  (** per replica: parked accesses *)
  messages : int;  (** cumulative network messages *)
  bytes : int;
}

type t

val start : System.t -> period:float -> until:float -> t
val samples : t -> sample list
(** Chronological. *)

val series : t -> f:(sample -> float) -> (float * float) list
(** (time, f sample) pairs, ready for {!Tact_util.Plot.series}. *)
