(** Conflict-matrix concurrency control for abstract data types, expressed as
    a conit instance (Section 4.2).

    Row [i] of the matrix gets a conit [F_i].  Invoking method [j] affects
    [F_i] (unit numerical weight) iff entry [(i, j)] is a conflict entry, and
    depends on its own row conit [F_j] with zero numerical error.  Two
    non-conflicting invocations then proceed in parallel, while conflicting
    ones are processed in a manner equivalent to 1SR.

    Requiring a {e finite} instead of zero error yields the paper's "bounded
    conflict" semantics that a plain matrix cannot express (e.g. a
    [getBalance] allowed to miss at most $50 of deposits). *)

type t = bool array array
(** [t.(i).(j)]: do methods [i] and [j] conflict?  Must be square and
    symmetric. *)

val check : t -> unit
(** Raises [Invalid_argument] if not square/symmetric. *)

val row_conit : int -> string

val conits : t -> Tact_core.Conit.t list
(** One unconstrained conit declaration per row. *)

val affects_of_method : t -> int -> Tact_store.Write.weight list
(** The weight specification of an invocation of method [j]. *)

val deps_of_method :
  ?ne:float -> t -> int -> (string * Tact_core.Bounds.t) list
(** The dependency of method [j]: its own row conit at zero numerical {e and}
    order error (the 1SR-equivalent behaviour of Theorem 3 needs both), or at
    the given finite numerical error for bounded conflict. *)

val invoke :
  ?ne:float ->
  Tact_replica.Session.t ->
  matrix:t ->
  method_:int ->
  op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit
