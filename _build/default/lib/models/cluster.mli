(** Cluster consistency for mobile environments (Pitoura & Bhargava 1995) as
    a conit instance (Section 4.2).

    Data copies are partitioned into clusters; intra-cluster consistency is
    preserved while inter-cluster consistency may be violated.  Each cluster
    gets a conit; {e strict} operations depend on their cluster's conit with
    zero error, {e weak} operations carry no dependency.  "m-consistency"
    arises from a finite bound [m] instead of zero. *)

val cluster_conit : int -> string

val conits : clusters:int -> Tact_core.Conit.t list

val strict_op :
  ?m:float -> Tact_replica.Session.t -> cluster:int -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Affects and depends on the cluster conit; [m] relaxes the zero bound to
    m-consistency. *)

val weak_op :
  Tact_replica.Session.t -> cluster:int -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Affects the cluster conit but requires nothing. *)
