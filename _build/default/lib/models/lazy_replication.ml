open Tact_replica

let forced_conit = "lr.forced"
let immediate_conit = "lr.immediate"

let conits =
  [
    Tact_core.Conit.unconstrained forced_conit;
    Tact_core.Conit.unconstrained immediate_conit;
  ]

(* Every transaction, whatever its level, must be ordered after any immediate
   transaction it could have observed. *)
let dep_immediate session =
  Session.dependon_conit session immediate_conit ~ne:0.0 ~oe:0.0 ()

let causal session ~op ~k =
  dep_immediate session;
  Session.write session op ~k

let forced session ~op ~k =
  Session.affect_conit session forced_conit ~nweight:1.0 ~oweight:1.0;
  Session.dependon_conit session forced_conit ~ne:0.0 ~oe:0.0 ();
  dep_immediate session;
  Session.write session op ~k

let immediate session ~op ~k =
  Session.affect_conit session forced_conit ~nweight:1.0 ~oweight:1.0;
  Session.affect_conit session immediate_conit ~nweight:1.0 ~oweight:1.0;
  Session.dependon_conit session forced_conit ~ne:0.0 ~oe:0.0 ();
  Session.dependon_conit session immediate_conit ~ne:0.0 ~oe:0.0 ();
  Session.write session op ~k
