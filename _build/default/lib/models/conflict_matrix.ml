open Tact_store
open Tact_core

type t = bool array array

let check m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Conflict_matrix: not square")
    m;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if m.(i).(j) <> m.(j).(i) then invalid_arg "Conflict_matrix: not symmetric"
    done
  done

let row_conit i = Printf.sprintf "cm.row.%d" i

let conits m = List.init (Array.length m) (fun i -> Conit.unconstrained (row_conit i))

let affects_of_method m j =
  let n = Array.length m in
  List.concat
    (List.init n (fun i ->
         if m.(i).(j) then
           [ { Write.conit = row_conit i; nweight = 1.0; oweight = 1.0 } ]
         else []))

let deps_of_method ?(ne = 0.0) _m j =
  (* Zero error means full 1SR behaviour for conflicting invocations, which
     needs both dimensions pinned (Theorem 3's write condition); a finite
     bound is the "bounded conflict" relaxation of the numerical dimension
     only. *)
  let oe = if ne = 0.0 then 0.0 else infinity in
  [ (row_conit j, Bounds.make ~ne ~oe ()) ]

let invoke ?ne session ~matrix ~method_ ~op ~k =
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      Tact_replica.Session.affect_conit session conit ~nweight ~oweight)
    (affects_of_method matrix method_);
  List.iter
    (fun (c, (b : Bounds.t)) ->
      Tact_replica.Session.dependon_conit session c ~ne:b.ne ~ne_rel:b.ne_rel
        ~oe:b.oe ~st:b.st ())
    (deps_of_method ?ne matrix method_);
  Tact_replica.Session.write session op ~k
