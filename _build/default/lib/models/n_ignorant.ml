open Tact_store
open Tact_replica

let conit_name = "txn.count"

let conits ~n_bound = [ Tact_core.Conit.declare ~ne_bound:n_bound conit_name ]

let transaction session ~op ~k =
  Session.affect_conit session conit_name ~nweight:1.0 ~oweight:1.0;
  Session.write session op ~k

let ignorance sys ~replica =
  let local = Wlog.conit_value (Replica.log (System.replica sys replica)) conit_name in
  (* Count only returned transactions: a write is in the reference history
     once it returns to its client. *)
  let returned =
    List.filter
      (fun (w : Write.t) ->
        Write.affects_conit w conit_name
        && System.return_time sys w.id <= System.now sys)
      (System.all_writes sys)
  in
  float_of_int (List.length returned) -. local
