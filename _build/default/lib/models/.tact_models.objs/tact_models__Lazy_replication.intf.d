lib/models/lazy_replication.mli: Tact_core Tact_replica Tact_store
