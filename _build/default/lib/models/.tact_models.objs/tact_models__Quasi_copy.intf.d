lib/models/quasi_copy.mli: Tact_replica Tact_store
