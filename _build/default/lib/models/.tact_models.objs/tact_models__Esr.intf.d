lib/models/esr.mli: Tact_core Tact_replica Tact_store
