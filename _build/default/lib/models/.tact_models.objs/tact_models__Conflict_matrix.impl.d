lib/models/conflict_matrix.ml: Array Bounds Conit List Printf Tact_core Tact_replica Tact_store Write
