lib/models/memdag.mli: Tact_core Tact_replica Tact_store
