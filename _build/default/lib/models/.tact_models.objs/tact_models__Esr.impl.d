lib/models/esr.ml: Db List Op Session Tact_core Tact_replica Tact_store Value
