lib/models/cluster.mli: Tact_core Tact_replica Tact_store
