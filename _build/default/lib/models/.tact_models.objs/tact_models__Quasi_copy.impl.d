lib/models/quasi_copy.ml: Db Op Session Tact_replica Tact_store
