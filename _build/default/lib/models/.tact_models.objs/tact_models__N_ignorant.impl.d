lib/models/n_ignorant.ml: List Replica Session System Tact_core Tact_replica Tact_store Wlog Write
