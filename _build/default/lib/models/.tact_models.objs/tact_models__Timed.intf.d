lib/models/timed.mli: Tact_replica Tact_store
