lib/models/timed.ml: Session Tact_replica
