lib/models/memdag.ml: Array Bounds Hashtbl List Printf Session Tact_core Tact_replica Tact_store Write
