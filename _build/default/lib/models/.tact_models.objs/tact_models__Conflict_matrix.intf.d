lib/models/conflict_matrix.mli: Tact_core Tact_replica Tact_store
