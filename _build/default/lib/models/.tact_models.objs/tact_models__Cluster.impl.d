lib/models/cluster.ml: List Printf Session Tact_core Tact_replica
