lib/models/lazy_replication.ml: Session Tact_core Tact_replica
