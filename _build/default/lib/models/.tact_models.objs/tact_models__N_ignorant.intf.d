lib/models/n_ignorant.mli: Tact_core Tact_replica Tact_store
