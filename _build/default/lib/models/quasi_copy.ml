open Tact_store
open Tact_replica

let update_conit key = "qc.upd." ^ key
let value_conit key = "qc.val." ^ key

let write_numeric session ~key ~delta ~k =
  Session.affect_conit session (update_conit key) ~nweight:1.0 ~oweight:1.0;
  Session.affect_conit session (value_conit key) ~nweight:delta ~oweight:1.0;
  Session.write session (Op.Add (key, delta)) ~k

let read_item session key ~k =
  Session.read session (fun db -> Db.get db key) ~k

let read_delay session ~key ~alpha ~k =
  Session.dependon_conit session (update_conit key) ~st:alpha ();
  read_item session key ~k

let read_arithmetic session ~key ~epsilon ~k =
  Session.dependon_conit session (value_conit key) ~ne:epsilon ();
  read_item session key ~k

let read_version session ~key ~versions ~k =
  Session.dependon_conit session (update_conit key) ~ne:versions ();
  read_item session key ~k

module Object_condition = struct
  let count_conit obj = "qc.obj." ^ obj ^ ".count"
  let percent_conit obj = "qc.obj." ^ obj ^ ".percent"
  let sub_conit obj sub = "qc.obj." ^ obj ^ ".sub." ^ sub

  let modify session ~obj ~sub ~first_change ~op ~k =
    if first_change then begin
      Session.affect_conit session (count_conit obj) ~nweight:1.0 ~oweight:0.0;
      Session.affect_conit session (percent_conit obj) ~nweight:1.0 ~oweight:0.0
    end;
    Session.affect_conit session (sub_conit obj sub) ~nweight:1.0 ~oweight:0.0;
    Session.write session op ~k

  let read session ~obj ~k_subs ~p_percent ~watch_sub ~f ~k =
    Session.dependon_conit session (count_conit obj) ~ne:k_subs ();
    Session.dependon_conit session (percent_conit obj) ~ne_rel:p_percent ();
    (match watch_sub with
    | Some sub -> Session.dependon_conit session (sub_conit obj sub) ~ne:0.0 ()
    | None -> ());
    Session.read session f ~k
end
