open Tact_store
open Tact_core
open Tact_replica

type dag = { nodes : int; edges : (int * int) list }

let check d =
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Memdag: self edge";
      if a < 0 || b < 0 || a >= d.nodes || b >= d.nodes then
        invalid_arg "Memdag: node out of range")
    d.edges;
  (* Cycle check by repeated removal of in-degree-0 nodes. *)
  let indeg = Array.make d.nodes 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) d.edges;
  let removed = Array.make d.nodes false in
  let progress = ref true in
  let remaining = ref d.nodes in
  while !progress do
    progress := false;
    for v = 0 to d.nodes - 1 do
      if (not removed.(v)) && indeg.(v) = 0 then begin
        removed.(v) <- true;
        decr remaining;
        progress := true;
        List.iter (fun (a, b) -> if a = v then indeg.(b) <- indeg.(b) - 1) d.edges
      end
    done
  done;
  if !remaining > 0 then invalid_arg "Memdag: cyclic"

let edge_conit a b = Printf.sprintf "dag.%d.%d" a b

let affects_of_node d v =
  List.filter_map
    (fun (a, b) ->
      if a = v then Some { Write.conit = edge_conit a b; nweight = 1.0; oweight = 1.0 }
      else None)
    d.edges

let deps_of_node d v =
  List.filter_map
    (fun (a, b) ->
      if b = v then Some (edge_conit a b, Bounds.make ~ne:0.0 ()) else None)
    d.edges

let submit session ~dag ~node ~op ~k =
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      Session.affect_conit session conit ~nweight ~oweight)
    (affects_of_node dag node);
  List.iter
    (fun (c, (b : Bounds.t)) ->
      Session.dependon_conit session c ~ne:b.ne ~oe:b.oe ())
    (deps_of_node dag node);
  Session.write session op ~k

let execution_respects_dag d ~accept_order =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) accept_order;
  List.for_all
    (fun (a, b) ->
      match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
      | Some pa, Some pb -> pa < pb
      | _ -> false)
    d.edges
