(** Epsilon-serializability (Pu & Leff 1991; Wu, Yu & Pu 1992) as a conit
    instance (the paper's Section 6 positions conits as strictly more general
    than ESR).

    ESR lets a query transaction tolerate a bounded amount of inconsistency
    {e imported} from concurrent update transactions, measured in the value
    domain.  The conit rendering: one conit per data item whose numerical
    weight is the magnitude of each update's change; an epsilon-query bounds
    the conit's absolute numerical error by its import limit.  Update
    transactions export inconsistency implicitly — the proactive budget
    protocol caps any replica's imported error at the declared epsilon, which
    is ESR's safety condition. *)

val item_conit : string -> string

val conits : items:string list -> epsilon:float -> Tact_core.Conit.t list
(** Declare each item's conit with [ne_bound = epsilon] (the system-wide
    export cap). *)

val update :
  Tact_replica.Session.t -> item:string -> delta:float ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** An update transaction changing the item by [delta] (nweight |delta|). *)

val epsilon_query :
  Tact_replica.Session.t -> items:string list -> epsilon:float ->
  k:(float list -> unit) -> unit
(** A query transaction reading the items with import limit [epsilon] on
    each. *)
