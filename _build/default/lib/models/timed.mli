(** Timed / delta consistency (Torres-Rojas et al.; Singla et al.) as a conit
    instance (Section 4.2): the effect of a write must be observable
    everywhere within [delta] seconds.

    Every write affects a single clock conit; a delta-consistent read simply
    bounds that conit's staleness by [delta].  (The original models are
    writer-driven; reader-driven staleness gives the same observable
    guarantee — no read ever misses a write older than [delta].) *)

val conit_name : string

val write :
  Tact_replica.Session.t ->
  op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit

val read :
  Tact_replica.Session.t ->
  delta:float ->
  f:(Tact_store.Db.t -> Tact_store.Value.t) ->
  k:(Tact_store.Value.t -> unit) ->
  unit
