open Tact_replica

let conit_name = "timed.clock"

let write session ~op ~k =
  Session.affect_conit session conit_name ~nweight:1.0 ~oweight:0.0;
  Session.write session op ~k

let read session ~delta ~f ~k =
  Session.dependon_conit session conit_name ~st:delta ();
  Session.read session f ~k
