open Tact_store
open Tact_replica

let item_conit item = "esr." ^ item

let conits ~items ~epsilon =
  List.map (fun i -> Tact_core.Conit.declare ~ne_bound:epsilon (item_conit i)) items

let update session ~item ~delta ~k =
  Session.affect_conit session (item_conit item) ~nweight:delta ~oweight:1.0;
  Session.write session (Op.Add (item, delta)) ~k

let epsilon_query session ~items ~epsilon ~k =
  List.iter
    (fun i -> Session.dependon_conit session (item_conit i) ~ne:epsilon ())
    items;
  Session.read session
    (fun db -> Value.List (List.map (fun i -> Value.Float (Db.get_float db i)) items))
    ~k:(fun v ->
      match v with
      | Value.List vs -> k (List.map Value.to_float vs)
      | _ -> k [])
