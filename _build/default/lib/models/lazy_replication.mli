(** The three consistency levels of lazy replication (Ladin et al. 1992) as a
    conit instance (Section 4.2).

    - a {b causal} transaction is causally ordered with respect to all other
      causal transactions (the anti-entropy substrate already guarantees
      causal delivery, so no dependency is needed);
    - a {b forced} transaction is totally ordered with respect to all other
      forced transactions: it affects and depends (zero NE, zero OE) on the
      forced conit;
    - an {b immediate} transaction is totally ordered with respect to {e all}
      transactions: it affects the immediate conit (and the forced one) and
      every transaction type depends on the immediate conit with zero error. *)

val forced_conit : string
val immediate_conit : string

val conits : Tact_core.Conit.t list

val causal :
  Tact_replica.Session.t -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit

val forced :
  Tact_replica.Session.t -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit

val immediate :
  Tact_replica.Session.t -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit
