(** Quasi-copy caching coherency conditions (Alonso et al. 1990;
    Gallersdörfer & Nicola 1995) as conit instances (Section 4.2).

    Each condition becomes a dependency vector on a suitably defined conit:

    - {b delay condition} (propagation delay of item [x] at most [alpha]) —
      staleness [alpha] on the item's update conit;
    - {b frequency condition} (copies synchronised every [w] seconds) — also
      staleness, which the paper notes is usually the more efficient
      rendering;
    - {b arithmetic condition} (numeric copies within [epsilon]) — absolute
      numerical error on a conit whose weights are the written deltas;
    - {b version condition} (at most [v] versions behind) — absolute
      numerical error on a conit counting updates (unit weights);
    - {b object condition} (sync object [o] when (i) at least [k]
      sub-objects changed, (ii) at least [p]% of sub-objects changed, or
      (iii) sub-object [x] changed) — three conits per object: a modified-
      sub-object counter bounded absolutely by [k], the same counter bounded
      relatively by [p] (relative to the object's sub-object population,
      declared as the conit's initial value), and a per-sub-object update
      counter bounded by zero. *)

val update_conit : string -> string
(** Update-count conit of a data item (version/delay/frequency conditions). *)

val value_conit : string -> string
(** Value-delta conit of a numeric item (arithmetic condition). *)

val write_numeric :
  Tact_replica.Session.t -> key:string -> delta:float ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Update a numeric item; affects both its update conit (weight 1) and its
    value conit (weight [delta]). *)

val read_delay :
  Tact_replica.Session.t -> key:string -> alpha:float ->
  k:(Tact_store.Value.t -> unit) -> unit

val read_arithmetic :
  Tact_replica.Session.t -> key:string -> epsilon:float ->
  k:(Tact_store.Value.t -> unit) -> unit

val read_version :
  Tact_replica.Session.t -> key:string -> versions:float ->
  k:(Tact_store.Value.t -> unit) -> unit

(** Object condition over an object with named sub-objects. *)
module Object_condition : sig
  val count_conit : string -> string
  val percent_conit : string -> string
  val sub_conit : string -> string -> string

  val modify :
    Tact_replica.Session.t -> obj:string -> sub:string -> first_change:bool ->
    op:Tact_store.Op.t -> k:(Tact_store.Op.outcome -> unit) -> unit
  (** [first_change] marks the first modification of this sub-object since
      the last synchronisation (only those advance the modified-sub-object
      counters). *)

  val read :
    Tact_replica.Session.t -> obj:string -> k_subs:float -> p_percent:float ->
    watch_sub:string option ->
    f:(Tact_store.Db.t -> Tact_store.Value.t) -> k:(Tact_store.Value.t -> unit) ->
    unit
end
