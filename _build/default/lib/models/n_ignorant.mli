(** N-ignorant systems (Krishnakumar & Bernstein 1994) as a conit instance
    (Section 4.2): a transaction may run in parallel with at most N other
    transactions it is ignorant of.

    One conit counts all transactions (every transaction affects it with unit
    numerical weight); bounding its numerical error within N yields exactly
    N-ignorance — a replica accepting a transaction can be missing at most N
    concurrent ones. *)

val conit_name : string

val conits : n_bound:float -> Tact_core.Conit.t list
(** Declare the counting conit with [ne_bound = n_bound], so the proactive
    push protocol maintains system-wide N-ignorance. *)

val transaction :
  Tact_replica.Session.t ->
  op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit
(** Run one transaction: affects the counting conit with unit weight. *)

val ignorance : Tact_replica.System.t -> replica:int -> float
(** How many globally accepted transactions this replica has not seen —
    must never exceed N (plus the in-flight allowance) when the conit is
    declared with [ne_bound = N]. *)
