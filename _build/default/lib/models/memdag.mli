(** DAG-encoded memory consistency models (Section 4.2's sketch for
    multiprocessor models).

    The ordering requirements a memory model imposes on a program form a DAG
    over instructions.  The paper's encoding: assign a conit to every edge;
    model each instruction as a write that affects the conits of its outgoing
    edges and depends (zero numerical error) on the conits of its incoming
    edges.  Enforcing zero error then makes every execution respect the DAG.

    This module realises the encoding over our replica substrate and provides
    an executor that runs a DAG-program with instructions submitted at
    arbitrary replicas, for the equivalence test of experiment E9. *)

type dag = { nodes : int; edges : (int * int) list }

val check : dag -> unit
(** Raises [Invalid_argument] on self-edges, out-of-range nodes or cycles. *)

val edge_conit : int -> int -> string

val affects_of_node : dag -> int -> Tact_store.Write.weight list
val deps_of_node : dag -> int -> (string * Tact_core.Bounds.t) list

val submit :
  Tact_replica.Session.t -> dag:dag -> node:int -> op:Tact_store.Op.t ->
  k:(Tact_store.Op.outcome -> unit) -> unit

val execution_respects_dag : dag -> accept_order:int list -> bool
(** Given the global acceptance order of the nodes (each appearing once), is
    it a topological order of the DAG? *)
