open Tact_replica

let cluster_conit c = Printf.sprintf "cluster.%d" c

let conits ~clusters =
  List.init clusters (fun c -> Tact_core.Conit.unconstrained (cluster_conit c))

let strict_op ?(m = 0.0) session ~cluster ~op ~k =
  Session.affect_conit session (cluster_conit cluster) ~nweight:1.0 ~oweight:1.0;
  Session.dependon_conit session (cluster_conit cluster) ~ne:m ~oe:m ();
  Session.write session op ~k

let weak_op session ~cluster ~op ~k =
  Session.affect_conit session (cluster_conit cluster) ~nweight:1.0 ~oweight:1.0;
  Session.write session op ~k
