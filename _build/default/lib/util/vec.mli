(** Minimal growable array (OCaml 5.1 predates stdlib [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val push : 'a t -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list

val sub_list : 'a t -> pos:int -> 'a list
(** Elements from index [pos] (clamped) to the end, in order. *)
