type event = { time : float; source : string; kind : string; detail : string }

type t = {
  buf : event option array;
  mutable next : int;  (** total events recorded *)
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { buf = Array.make capacity None; next = 0 }

let record t ~time ~source ~kind detail =
  t.buf.(t.next mod Array.length t.buf) <- Some { time; source; kind; detail };
  t.next <- t.next + 1

let count t = t.next

let events t =
  let cap = Array.length t.buf in
  let start = if t.next > cap then t.next - cap else 0 in
  let out = ref [] in
  for i = t.next - 1 downto start do
    match t.buf.(i mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let render ?last t =
  let evs = events t in
  let evs =
    match last with
    | None -> evs
    | Some k ->
      let n = List.length evs in
      List.filteri (fun i _ -> i >= n - k) evs
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "[%9.4f] %-12s %-10s %s\n" e.time e.source e.kind e.detail))
    evs;
  Buffer.contents buf

let find t ~kind = List.filter (fun e -> String.equal e.kind kind) (events t)
