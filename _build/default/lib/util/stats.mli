(** Streaming and batch descriptive statistics for experiment measurements. *)

type t
(** A streaming accumulator (Welford's algorithm): O(1) memory, numerically
    stable mean and variance, plus min/max and total. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: linear-interpolation percentile of
    a batch.  Sorts a copy; [nan] when empty. *)

val median : float array -> float

val summary : t -> string
(** One-line human-readable summary: n / mean / sd / min / max. *)
