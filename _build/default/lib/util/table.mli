(** Aligned ASCII tables — every experiment prints its paper table/figure rows
    through this module so that bench output is uniform and diffable. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows must have the same arity as [columns]. *)

val add_rowf : t -> float list -> unit
(** Convenience: formats each float with [%.4g]. *)

val render : t -> string
(** Render with a title line, a header, a separator, and aligned columns. *)

val cell_f : float -> string
(** The standard float cell format ([%.4g]), exposed for mixed rows. *)
