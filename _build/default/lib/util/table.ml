type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.columns);
  t.rows <- row :: t.rows

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let add_rowf t row = add_row t (List.map cell_f row)

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell)
        row)
    all;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.contents buf
