(** Fixed-bucket histograms for latency / error distributions. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** Uniform buckets over [lo, hi); observations outside the range are counted
    in saturating end buckets. *)

val add : t -> float -> unit
val count : t -> int
val bucket_counts : t -> int array
val bucket_bounds : t -> (float * float) array

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per non-empty bucket. *)
