(** Lightweight structured event tracing.

    A bounded ring buffer of timestamped events.  Subsystems record what they
    do (writes accepted, transfers sent/received, commits, accesses blocked
    and served, snapshots installed); tests and the CLI render the tail to
    understand a run.  A [None] trace costs nothing — producers guard on the
    option. *)

type t

type event = {
  time : float;
  source : string;  (** e.g. "replica 2" *)
  kind : string;  (** e.g. "accept", "transfer", "commit", "blocked" *)
  detail : string;
}

val create : ?capacity:int -> unit -> t
(** Ring buffer; default capacity 4096 events (oldest overwritten). *)

val record : t -> time:float -> source:string -> kind:string -> string -> unit

val count : t -> int
(** Total events ever recorded (including overwritten ones). *)

val events : t -> event list
(** Retained events, oldest first. *)

val render : ?last:int -> t -> string
(** Human-readable tail of the trace (default: everything retained). *)

val find : t -> kind:string -> event list
(** Retained events of one kind, oldest first. *)
