type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 finaliser (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t n =
  assert (n > 0);
  (* Rejection-free modulo is fine for simulation: bias is < 2^-40 for the
     ranges in use (n <= 2^20). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1.0 -. u)

let uniform_in t ~lo ~hi = lo +. float t (hi -. lo)

(* Cache of Zipf normalisation constants, keyed on (n, theta). *)
let zipf_cache : (int * float, float) Hashtbl.t = Hashtbl.create 7

let zipf_norm n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some z -> z
  | None ->
    let z = ref 0.0 in
    for i = 1 to n do
      z := !z +. (1.0 /. (float_of_int i ** theta))
    done;
    Hashtbl.replace zipf_cache (n, theta) !z;
    !z

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let z = zipf_norm n theta in
    let u = float t 1.0 *. z in
    let rec find i acc =
      if i > n then n - 1
      else
        let acc = acc +. (1.0 /. (float_of_int i ** theta)) in
        if acc >= u then i - 1 else find (i + 1) acc
    in
    find 1 0.0
  end

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
