(** Minimal ASCII scatter/line plots so that "figure" experiments can render a
    visual shape alongside their numeric table. *)

val series :
  ?height:int -> ?width:int -> title:string -> (string * (float * float) list) list -> string
(** [series ~title named_series] renders the given (x, y) series on shared
    axes.  Each series is drawn with its own glyph (a, b, c, ...); a legend
    line maps glyphs to names.  Axes are linear and auto-scaled. *)
