type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let push t x =
  if t.len = Array.length t.data then begin
    let ncap = if t.len = 0 then 16 else t.len * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))

let sub_list t ~pos =
  let pos = if pos < 0 then 0 else pos in
  if pos >= t.len then [] else List.init (t.len - pos) (fun i -> t.data.(pos + i))
