let glyphs = [| 'a'; 'b'; 'c'; 'd'; 'e'; 'f'; 'g'; 'h' |]

let series ?(height = 16) ?(width = 64) ~title named =
  let pts = List.concat_map snd named in
  match pts with
  | [] -> Printf.sprintf "== %s == (no data)\n" title
  | _ ->
    let xs = List.map fst pts and ys = List.map snd pts in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let xmin = fmin xs and xmax = fmax xs in
    let ymin = min 0.0 (fmin ys) and ymax = fmax ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, pts) ->
        let g = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let col = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
            let row = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
            let row = height - 1 - row in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- g)
          pts)
      named;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
    Array.iteri
      (fun r line ->
        let label =
          if r = 0 then Printf.sprintf "%10.3g |" ymax
          else if r = height - 1 then Printf.sprintf "%10.3g |" ymin
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    let xlo = Printf.sprintf "%.3g" xmin and xhi = Printf.sprintf "%.3g" xmax in
    let gap = max 1 (width - String.length xlo - String.length xhi) in
    Buffer.add_string buf
      (Printf.sprintf "%10s  %s%s%s\n" "" xlo (String.make gap ' ') xhi);
    Buffer.add_string buf "legend: ";
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "%c=%s " glyphs.(si mod Array.length glyphs) name))
      named;
    Buffer.add_char buf '\n';
    Buffer.contents buf
