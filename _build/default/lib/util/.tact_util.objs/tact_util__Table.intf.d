lib/util/table.mli:
