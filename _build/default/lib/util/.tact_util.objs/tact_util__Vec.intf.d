lib/util/vec.mli:
