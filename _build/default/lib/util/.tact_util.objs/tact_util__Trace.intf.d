lib/util/trace.mli:
