lib/util/plot.mli:
