lib/util/plot.ml: Array Buffer List Printf String
