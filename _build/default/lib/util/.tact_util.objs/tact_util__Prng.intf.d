lib/util/prng.mli:
