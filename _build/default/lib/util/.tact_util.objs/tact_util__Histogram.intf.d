lib/util/histogram.mli:
