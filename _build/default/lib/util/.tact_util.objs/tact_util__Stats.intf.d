lib/util/stats.mli:
