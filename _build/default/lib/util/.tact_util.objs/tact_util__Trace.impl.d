lib/util/trace.ml: Array Buffer List Printf String
