(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction (workload generators,
    network jitter, failure injection) draws from an explicit [Prng.t] so that
    a simulation run is a pure function of its seed.  The generator is
    splitmix64: fast, high quality for simulation purposes, and splittable so
    that independent subsystems can be given statistically independent streams
    derived from one master seed. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    remainder of [t]'s stream.  [t] itself advances by one step. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed variate; used for Poisson inter-arrival
    times.  Requires [mean > 0]. *)

val uniform_in : t -> lo:float -> hi:float -> float

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipf distribution over [0, n-1] with skew
    [theta] (0 = uniform; typical web skew 0.8–1.0).  Uses the standard
    rejection-free inverse method with precomputation amortised per call; for
    the sizes used here (n <= 10^5) the direct harmonic computation is cached
    keyed on [(n, theta)]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
