type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable n : int;
}

let create ~lo ~hi ~buckets =
  assert (buckets > 0 && hi > lo);
  { lo; hi; counts = Array.make buckets 0; n = 0 }

let bucket_of t x =
  let k = Array.length t.counts in
  let i = int_of_float (float_of_int k *. ((x -. t.lo) /. (t.hi -. t.lo))) in
  if i < 0 then 0 else if i >= k then k - 1 else i

let add t x =
  t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
  t.n <- t.n + 1

let count t = t.n
let bucket_counts t = Array.copy t.counts

let bucket_bounds t =
  let k = Array.length t.counts in
  let w = (t.hi -. t.lo) /. float_of_int k in
  Array.init k (fun i ->
      (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w)))

let render ?(width = 50) t =
  let bounds = bucket_bounds t in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bounds.(i) in
        let bar = String.make (c * width / peak) '#' in
        Buffer.add_string buf (Printf.sprintf "[%8.3g, %8.3g) %6d %s\n" lo hi c bar)
      end)
    t.counts;
  Buffer.contents buf
