open Tact_sim

let poisson engine ~rng ~rate ~until f =
  assert (rate > 0.0);
  let rec next () =
    let gap = Tact_util.Prng.exponential rng ~mean:(1.0 /. rate) in
    let at = Engine.now engine +. gap in
    if at <= until then
      Engine.schedule engine ~delay:gap (fun () ->
          f ();
          next ())
  in
  next ()

let uniform_times engine ~rng ~count ~until f =
  let base = Engine.now engine in
  for _ = 1 to count do
    let at = Tact_util.Prng.uniform_in rng ~lo:base ~hi:until in
    Engine.schedule engine ~delay:(at -. base) f
  done

let staggered engine ~start ~gap ~count f =
  let base = Engine.now engine in
  for i = 0 to count - 1 do
    Engine.schedule engine
      ~delay:(start -. base +. (gap *. float_of_int i))
      (fun () -> f i)
  done
