(** Declarative scenario scripts: a timeline of workload and fault events
    over a system, for tests, examples and the CLI.

    {[
      Scenario.run sys
        [
          at 1.0 (write ~replica:0 ~conit:"c" (Op.Add ("x", 1.0)));
          at 2.0 (partition [ 2 ] [ 0; 1 ]);
          at 3.0 (strong_read ~replica:2 ~conit:"c" ~key:"x" results);
          at 8.0 heal;
          at 9.0 (crash 1);
          at 12.0 (recover 1);
        ]
        ~until:60.0
    ]}

    Events at equal times run in list order.  [results] collects read
    results as [(virtual completion time, value)] pairs. *)

type event

val at : float -> (Tact_replica.System.t -> unit) -> event

val write :
  replica:int -> conit:string -> Tact_store.Op.t -> Tact_replica.System.t -> unit
(** Submit an unconstrained unit-weight write at the replica. *)

val read :
  replica:int ->
  deps:(string * Tact_core.Bounds.t) list ->
  key:string ->
  (float * Tact_store.Value.t) list ref ->
  Tact_replica.System.t ->
  unit
(** Submit a read of [key]; its completion (time, value) is appended to the
    collector. *)

val strong_read :
  replica:int -> conit:string -> key:string ->
  (float * Tact_store.Value.t) list ref -> Tact_replica.System.t -> unit

val partition : int list -> int list -> Tact_replica.System.t -> unit
val heal : Tact_replica.System.t -> unit
val crash : int -> Tact_replica.System.t -> unit
val recover : int -> Tact_replica.System.t -> unit

val run : ?until:float -> Tact_replica.System.t -> event list -> unit
(** Schedule every event at its time and drain the engine. *)
