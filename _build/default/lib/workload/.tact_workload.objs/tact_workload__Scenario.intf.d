lib/workload/scenario.mli: Tact_core Tact_replica Tact_store
