lib/workload/workload.mli: Tact_sim Tact_util
