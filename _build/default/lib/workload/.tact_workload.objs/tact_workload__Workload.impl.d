lib/workload/workload.ml: Engine Tact_sim Tact_util
