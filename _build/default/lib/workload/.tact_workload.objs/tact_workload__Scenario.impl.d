lib/workload/scenario.ml: Db Float List Replica System Tact_core Tact_replica Tact_sim Tact_store Write
