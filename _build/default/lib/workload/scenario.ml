open Tact_store
open Tact_replica

type event = { time : float; action : System.t -> unit }

let at time action = { time; action }

let write ~replica ~conit op sys =
  Replica.submit_write (System.replica sys replica) ~deps:[]
    ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
    ~op ~k:ignore

let read ~replica ~deps ~key results sys =
  Replica.submit_read (System.replica sys replica) ~deps
    ~f:(fun db -> Db.get db key)
    ~k:(fun v -> results := !results @ [ (System.now sys, v) ])

let strong_read ~replica ~conit ~key results sys =
  read ~replica ~deps:[ (conit, Tact_core.Bounds.strong) ] ~key results sys

let partition a b sys = Tact_sim.Net.partition (System.net sys) a b
let heal sys = Tact_sim.Net.heal (System.net sys)
let crash i sys = Replica.crash (System.replica sys i)
let recover i sys = Replica.recover (System.replica sys i)

let run ?until sys events =
  let engine = System.engine sys in
  List.iter
    (fun e ->
      Tact_sim.Engine.schedule engine
        ~delay:(Float.max 0.0 (e.time -. Tact_sim.Engine.now engine))
        (fun () -> e.action sys))
    events;
  System.run ?until sys
