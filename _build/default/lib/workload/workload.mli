(** Synthetic workload generation.

    The paper's evaluation workloads are Poisson arrival processes over
    uniformly or Zipf-chosen items; these helpers schedule such processes on
    the simulation engine deterministically from a seed. *)

val poisson :
  Tact_sim.Engine.t ->
  rng:Tact_util.Prng.t ->
  rate:float ->
  until:float ->
  (unit -> unit) ->
  unit
(** Schedule events with exponential inter-arrival times of mean [1/rate]
    from now until virtual time [until]. *)

val uniform_times :
  Tact_sim.Engine.t -> rng:Tact_util.Prng.t -> count:int -> until:float -> (unit -> unit) -> unit
(** Schedule exactly [count] events at uniformly random times in
    (now, until). *)

val staggered :
  Tact_sim.Engine.t -> start:float -> gap:float -> count:int -> (int -> unit) -> unit
(** Schedule [count] events at [start], [start+gap], ... — deterministic
    fixed-rate workloads. *)
