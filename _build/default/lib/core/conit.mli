(** Conit declarations.

    A conit is logically a function from database state to a real number
    (Section 3.2), but applications never write that function down: under the
    weight-specification discipline of Section 3.4, a conit's value is the
    accumulated numerical weight of the writes affecting it, and the conit
    itself is identified by a symbolic name (e.g. ["AllMsg"],
    ["MsgFromFriends"]).

    A declaration optionally fixes the {e system-wide} numerical-error bound
    that the proactive push protocol maintains for the conit.  Per-access NE
    requirements no looser than the declared bound are then satisfied without
    blocking; tighter one-off requirements trigger an on-demand pull. *)

type t = {
  name : string;
  ne_bound : float;  (** system-wide absolute NE maintained by pushes *)
  ne_rel_bound : float;  (** system-wide relative NE maintained by pushes *)
  initial_value : float;
      (** the conit's value over the initial database (e.g. seats initially
          available on a flight); accumulated write weights are offsets from
          this base.  Only relative error depends on it. *)
}

val declare :
  ?ne_bound:float -> ?ne_rel_bound:float -> ?initial_value:float -> string -> t
(** Unspecified bounds are unconstrained; [initial_value] defaults to 0. *)

val unconstrained : string -> t
