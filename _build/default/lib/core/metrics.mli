(** The three conit consistency metrics (Section 3.2, Figure 3), as pure
    functions over explicit write histories.

    Two readings of order error are provided:

    - {!order_error_tentative} — the {e enforcement} reading used by the TACT
      prototype and by our protocols: the weighted count of writes still
      subject to reordering (the tentative suffix) that affect the conit.
      This is what the replica can observe locally and bound.
    - {!order_error_lcp} — the {e definitional} reading of Section 3.2: the
      weighted count of writes in the local history's projection on the conit
      that lie beyond the longest common prefix with the reference (ECG)
      history's projection.

    Under stability commitment the local order is a prefix-interleaving of the
    canonical ECG order and [order_error_lcp <= order_error_tentative]
    (bounding the tentative suffix soundly bounds definitional order error);
    this relationship is property-tested. *)

val value : Tact_store.Write.t list -> string -> float
(** Accumulated numerical weight of a history for a conit — the conit's value
    under the weight-specification discipline (Section 3.4). *)

val numerical_error : actual:Tact_store.Write.t list -> observed:Tact_store.Write.t list -> string -> float
(** Absolute numerical error: |value actual - value observed|. *)

val relative_error : actual:Tact_store.Write.t list -> observed:Tact_store.Write.t list -> string -> float
(** Relative numerical error: absolute error divided by |value actual|;
    0 when both are empty of the conit, [infinity] when only the actual value
    is 0. *)

val projection : Tact_store.Write.t list -> string -> Tact_store.Write.t list
(** Writes of the history affecting the conit, in history order
    (the paper's write order projection). *)

val order_error_lcp : ecg:Tact_store.Write.t list -> local:Tact_store.Write.t list -> string -> float
(** Summed oweight of the local projection's writes beyond the longest common
    prefix with the ECG projection. *)

val order_error_tentative : tentative:Tact_store.Write.t list -> string -> float
(** Summed oweight of tentative writes affecting the conit. *)

val staleness : now:float -> unseen:Tact_store.Write.t list -> string -> float
(** Age of the oldest write affecting the conit not seen locally; 0 when
    every write affecting it has been seen. *)
