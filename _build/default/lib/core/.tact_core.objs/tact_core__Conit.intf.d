lib/core/conit.mli:
