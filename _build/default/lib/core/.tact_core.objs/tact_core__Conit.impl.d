lib/core/conit.ml:
