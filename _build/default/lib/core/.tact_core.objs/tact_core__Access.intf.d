lib/core/access.mli: Bounds Tact_store
