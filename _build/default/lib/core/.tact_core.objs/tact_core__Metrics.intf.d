lib/core/metrics.mli: Tact_store
