lib/core/bounds.mli:
