lib/core/access.ml: Bounds List Option String Tact_store
