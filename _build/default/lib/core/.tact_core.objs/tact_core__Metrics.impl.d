lib/core/metrics.ml: Float List Tact_store Write
