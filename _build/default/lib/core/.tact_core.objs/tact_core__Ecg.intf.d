lib/core/ecg.mli: Tact_store
