lib/core/bounds.ml: Float Printf
