lib/core/ecg.ml: Array List Tact_store Version_vector Write
