(** Per-(access, conit) consistency levels: the three-dimensional vector
    (numerical error, order error, staleness) of Section 3.2.

    [infinity] in a component means that dimension is unconstrained.  The
    consistency spectrum of Section 3.3 runs from {!strong} (all zero) to
    {!weak} (all infinite). *)

type t = {
  ne : float;  (** max absolute numerical error *)
  ne_rel : float;  (** max relative numerical error, as a fraction of the
                       actual value *)
  oe : float;  (** max order error (weighted out-of-order writes) *)
  st : float;  (** max staleness, seconds *)
}

val weak : t
(** No constraints: the weak-consistency extreme. *)

val strong : t
(** All bounds zero: the 1SR+EXT extreme (Theorem 2). *)

val make : ?ne:float -> ?ne_rel:float -> ?oe:float -> ?st:float -> unit -> t
(** Unspecified components default to unconstrained. *)

val is_strong : t -> bool
val is_weak : t -> bool

val within : ne:float -> ne_rel:float -> oe:float -> st:float -> t -> bool
(** Are the given observed metric values inside the bound vector? *)

val tighten : t -> t -> t
(** Componentwise minimum. *)

val to_string : t -> string
