type t = {
  name : string;
  ne_bound : float;
  ne_rel_bound : float;
  initial_value : float;
}

let declare ?(ne_bound = infinity) ?(ne_rel_bound = infinity) ?(initial_value = 0.0)
    name =
  { name; ne_bound; ne_rel_bound; initial_value }

let unconstrained name = declare name
