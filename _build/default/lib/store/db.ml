type t = (string, Value.t) Hashtbl.t

let create bindings =
  let t = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
  t

let copy = Hashtbl.copy

let get t k = match Hashtbl.find_opt t k with Some v -> v | None -> Value.Nil
let set t k v = Hashtbl.replace t k v

let get_float t k = Value.to_float (get t k)
let get_int t k = Value.to_int (get t k)

let add t k delta =
  let v = get_float t k in
  set t k (Value.Float (v +. delta))

let append t k v = set t k (Value.List (v :: Value.to_list (get t k)))

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let equal a b =
  let subset x y =
    Hashtbl.fold (fun k v acc -> acc && Value.equal v (match Hashtbl.find_opt y k with Some w -> w | None -> Value.Nil)) x true
  in
  subset a b && subset b a

let size = Hashtbl.length
