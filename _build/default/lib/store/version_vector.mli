(** Version vectors over a fixed replica population.

    Component [i] records the highest contiguous write sequence number seen
    from origin [i].  Anti-entropy ships, for each origin, the contiguous
    range of writes above the receiver's component — so version vectors
    summarise exactly which writes a replica knows. *)

type t

val create : int -> t
(** All components zero.  Sequence numbers start at 1. *)

val size : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

val copy : t -> t
val merge_into : t -> t -> unit
(** [merge_into dst src]: pointwise max, in place. *)

val dominates : t -> t -> bool
(** [dominates a b] iff every component of [a] >= that of [b]. *)

val equal : t -> t -> bool

val covers : t -> origin:int -> seq:int -> bool
(** Does this vector include write [seq] from [origin]? *)

val total : t -> int
(** Sum of components = number of writes known. *)

val byte_size : t -> int
val to_string : t -> string
