type insertion = Inserted of Op.outcome | Duplicate | Buffered

type snapshot = {
  snap_db : Db.t;
  snap_vector : Version_vector.t;
  snap_ncommitted : int;
  snap_values : (string * float) list;
}

(* The tentative suffix is stored newest-first ([tent_rev]) so that the common
   case — a write landing at the tail of the timestamp order — is a constant
   time cons.  All consumers that need oldest-first order reverse it. *)
type t = {
  nreplicas : int;
  initial : (string * Value.t) list;
  mutable committed_rev : Write.t list; (* committed prefix, newest first *)
  mutable ncommitted : int;
  mutable committed_db : Db.t;
  mutable tent_rev : Write.t list; (* tentative suffix, ts order reversed *)
  mutable full_db : Db.t;
  vector : Version_vector.t;
  committed_vec : Version_vector.t;  (* writes in the committed prefix *)
  trunc_vec : Version_vector.t;  (* writes that may have been discarded *)
  by_id : (Write.id, Write.t) Hashtbl.t;
  committed_ids : (Write.id, unit) Hashtbl.t;
  pending : (Write.id, Write.t) Hashtbl.t; (* per-origin sequence gaps *)
  outcomes : (Write.id, Op.outcome) Hashtbl.t;
  finals : (Write.id, Op.outcome) Hashtbl.t;
  values : (string, float) Hashtbl.t; (* conit -> accumulated nweight *)
  committed_values : (string, float) Hashtbl.t;
  tent_oweights : (string, float) Hashtbl.t; (* conit -> tentative oweight *)
  mutable nrollbacks : int;
}

let create ~replicas ~initial =
  {
    nreplicas = replicas;
    initial;
    committed_rev = [];
    ncommitted = 0;
    committed_db = Db.create initial;
    tent_rev = [];
    full_db = Db.create initial;
    vector = Version_vector.create replicas;
    committed_vec = Version_vector.create replicas;
    trunc_vec = Version_vector.create replicas;
    by_id = Hashtbl.create 256;
    committed_ids = Hashtbl.create 256;
    pending = Hashtbl.create 8;
    outcomes = Hashtbl.create 256;
    finals = Hashtbl.create 256;
    values = Hashtbl.create 16;
    committed_values = Hashtbl.create 16;
    tent_oweights = Hashtbl.create 16;
    nrollbacks = 0;
  }

let htbl_add tbl key delta =
  let v = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0 in
  Hashtbl.replace tbl key (v +. delta)

let htbl_get tbl key =
  match Hashtbl.find_opt tbl key with Some v -> v | None -> 0.0

(* Bookkeeping common to every successful insertion. *)
let register t (w : Write.t) =
  Hashtbl.replace t.by_id w.id w;
  Version_vector.set t.vector w.id.origin w.id.seq;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.values conit nweight;
      htbl_add t.tent_oweights conit oweight)
    w.affects

let apply_tentative t (w : Write.t) =
  let outcome = Op.apply w.op t.full_db in
  Hashtbl.replace t.outcomes w.id outcome;
  outcome

(* Rebuild the full image by replaying the tentative suffix over a fresh copy
   of the committed image, re-recording outcomes (they may change — that is
   the point of write procedures under reordering). *)
let replay t =
  t.nrollbacks <- t.nrollbacks + 1;
  t.full_db <- Db.copy t.committed_db;
  List.iter (fun w -> ignore (apply_tentative t w)) (List.rev t.tent_rev)

(* Insert into the tentative suffix; returns true when the write lands at the
   tail of the timestamp order (no rollback needed). *)
let insert_sorted t w =
  match t.tent_rev with
  | [] ->
    t.tent_rev <- [ w ];
    true
  | newest :: _ when Write.ts_compare newest w < 0 ->
    t.tent_rev <- w :: t.tent_rev;
    true
  | _ ->
    (* Insert into the descending-order list. *)
    let rec ins = function
      | [] -> [ w ]
      | x :: tl as l -> if Write.ts_compare w x > 0 then w :: l else x :: ins tl
    in
    t.tent_rev <- ins t.tent_rev;
    false

let next_seq t origin = Version_vector.get t.vector origin + 1

let accept t (w : Write.t) =
  if w.id.seq <> next_seq t w.id.origin then
    invalid_arg
      (Printf.sprintf "Wlog.accept: %s out of sequence (expected seq %d)"
         (Write.id_to_string w.id) (next_seq t w.id.origin));
  register t w;
  if insert_sorted t w then apply_tentative t w
  else begin
    replay t;
    match Hashtbl.find_opt t.outcomes w.id with
    | Some o -> o
    | None -> assert false
  end

let known t id =
  Version_vector.covers t.vector ~origin:id.Write.origin ~seq:id.Write.seq

(* Drain the pending buffer for an origin after its gap filled.  Each drained
   write must be registered before looking for the next one — registration is
   what advances the vector the lookup keys on. *)
let rec drain_pending t origin acc =
  let id = { Write.origin; seq = next_seq t origin } in
  match Hashtbl.find_opt t.pending id with
  | None -> List.rev acc
  | Some w ->
    Hashtbl.remove t.pending id;
    register t w;
    ignore (insert_sorted t w);
    drain_pending t origin (w :: acc)

let insert_one t (w : Write.t) =
  if known t w.id then `Duplicate
  else if w.id.seq > next_seq t w.id.origin then begin
    Hashtbl.replace t.pending w.id w;
    `Buffered
  end
  else begin
    register t w;
    let at_tail = insert_sorted t w in
    let ready = drain_pending t w.id.origin [] in
    `Inserted (at_tail && ready = [], w :: ready)
  end

let insert t w =
  match insert_one t w with
  | `Duplicate -> Duplicate
  | `Buffered -> Buffered
  | `Inserted (at_tail, fresh) ->
    let only_w = match fresh with [ x ] -> x.Write.id = w.Write.id | _ -> false in
    if at_tail && only_w then Inserted (apply_tentative t w)
    else begin
      replay t;
      match Hashtbl.find_opt t.outcomes w.id with
      | Some o -> Inserted o
      | None -> assert false
    end

let insert_batch t ws =
  (* Apply cheaply when everything lands at the tail; otherwise one replay. *)
  let sorted = List.sort Write.ts_compare ws in
  let fresh = ref [] in
  let clean = ref true in
  List.iter
    (fun w ->
      match insert_one t w with
      | `Duplicate -> ()
      | `Buffered -> ()
      | `Inserted (at_tail, new_writes) ->
        fresh := List.rev_append new_writes !fresh;
        let only_w =
          match new_writes with [ x ] -> x.Write.id = w.Write.id | _ -> false
        in
        if at_tail && only_w && !clean then ignore (apply_tentative t w)
        else clean := false)
    sorted;
  if not !clean then replay t;
  List.sort Write.ts_compare !fresh

let vector t = t.vector

let writes_since t v =
  let out = ref [] in
  for origin = 0 to t.nreplicas - 1 do
    for seq = Version_vector.get v origin + 1 to Version_vector.get t.vector origin do
      match Hashtbl.find_opt t.by_id { Write.origin; seq } with
      | Some w -> out := w :: !out
      | None ->
        invalid_arg
          (Printf.sprintf
             "Wlog.writes_since: w%d.%d was truncated (check can_serve first)"
             origin seq)
    done
  done;
  List.sort Write.ts_compare !out

let db t = t.full_db
let committed_db t = t.committed_db
let tentative t = List.rev t.tent_rev
let committed t = List.rev t.committed_rev
let committed_count t = t.ncommitted
let num_known t = Hashtbl.length t.by_id

(* Move one write into the committed prefix, applying it to the committed
   image and recording its final outcome. *)
let commit_one t (w : Write.t) =
  let outcome = Op.apply w.op t.committed_db in
  Hashtbl.replace t.finals w.id outcome;
  Hashtbl.replace t.committed_ids w.id ();
  Version_vector.set t.committed_vec w.id.origin
    (max w.id.seq (Version_vector.get t.committed_vec w.id.origin));
  t.committed_rev <- w :: t.committed_rev;
  t.ncommitted <- t.ncommitted + 1;
  List.iter
    (fun { Write.conit; nweight; oweight } ->
      htbl_add t.committed_values conit nweight;
      htbl_add t.tent_oweights conit (-.oweight))
    w.affects

(* A tentative write is stable when no origin can still produce a write that
   precedes it in timestamp order.  The strict comparison handles simultaneous
   accept times: origin [o] may yet produce a write at exactly [cover.(o)],
   which would precede [w] iff [o < w.origin]. *)
let stable ~cover (w : Write.t) =
  let ok = ref true in
  Array.iteri
    (fun o c ->
      if o <> w.id.origin then
        if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then ok := false)
    cover;
  !ok

let commit_stable t ~cover =
  if Array.length cover <> t.nreplicas then
    invalid_arg "Wlog.commit_stable: cover arity mismatch";
  let rec take n = function
    | w :: rest when stable ~cover w ->
      commit_one t w;
      take (n + 1) rest
    | rest ->
      t.tent_rev <- List.rev rest;
      n
  in
  take 0 (List.rev t.tent_rev)

let commit_ids t ids =
  let n = ref 0 in
  let reordered = ref false in
  List.iter
    (fun id ->
      if known t id && not (Hashtbl.mem t.committed_ids id) then begin
        let w = Hashtbl.find t.by_id id in
        (* Commit order agrees with the full-image order only when the write
           being committed is the oldest tentative one. *)
        (match List.rev t.tent_rev with
        | oldest :: _ when oldest.Write.id = id -> ()
        | _ -> reordered := true);
        t.tent_rev <- List.filter (fun x -> x.Write.id <> id) t.tent_rev;
        commit_one t w;
        incr n
      end)
    ids;
  if !n > 0 && !reordered then replay t;
  !n

let tentative_oweight t conit = htbl_get t.tent_oweights conit

let tentative_max_oweight t =
  Hashtbl.fold (fun _ v acc -> Float.max v acc) t.tent_oweights 0.0

let conit_value t conit = htbl_get t.values conit
let committed_conit_value t conit = htbl_get t.committed_values conit

let outcome t id = Hashtbl.find_opt t.outcomes id
let final_outcome t id = Hashtbl.find_opt t.finals id
let rollbacks t = t.nrollbacks

(* ------------------------------------------------------------------ *)
(* Truncation and snapshots                                            *)

let retained t = List.length t.committed_rev

let committed_vector t = t.committed_vec

let truncate t ~keep =
  let n = retained t in
  if n <= keep then 0
  else begin
    (* committed_rev is newest-first: keep the first [keep], drop the rest. *)
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | l when i = keep -> (List.rev acc, l)
      | x :: tl -> split (i + 1) (x :: acc) tl
    in
    let kept_rev, dropped = split 0 [] t.committed_rev in
    t.committed_rev <- kept_rev;
    List.iter
      (fun (w : Write.t) ->
        Hashtbl.remove t.by_id w.id;
        Version_vector.set t.trunc_vec w.id.origin
          (max w.id.seq (Version_vector.get t.trunc_vec w.id.origin)))
      dropped;
    List.length dropped
  end

let can_serve t v = Version_vector.dominates v t.trunc_vec

let snapshot t =
  {
    snap_db = Db.copy t.committed_db;
    snap_vector = Version_vector.copy t.committed_vec;
    snap_ncommitted = t.ncommitted;
    snap_values = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.committed_values [];
  }

let install_snapshot t snap =
  if
    Version_vector.dominates t.committed_vec snap.snap_vector
    (* local state is already at or past the snapshot *)
  then false
  else if not (Version_vector.dominates snap.snap_vector t.committed_vec) then
    (* Incomparable committed states cannot happen under one commitment
       scheme; refuse rather than corrupt. *)
    false
  else begin
    let covered (w : Write.t) =
      Version_vector.covers snap.snap_vector ~origin:w.id.origin ~seq:w.id.seq
    in
    (* Adopt the snapshot as the committed state. *)
    t.committed_db <- Db.copy snap.snap_db;
    t.ncommitted <- snap.snap_ncommitted;
    for o = 0 to t.nreplicas - 1 do
      Version_vector.set t.committed_vec o (Version_vector.get snap.snap_vector o);
      (* Every write the snapshot folds in behaves as truncated locally: we
         cannot serve it write-by-write. *)
      Version_vector.set t.trunc_vec o
        (max (Version_vector.get t.trunc_vec o) (Version_vector.get snap.snap_vector o))
    done;
    (* Retained committed records are all covered by the snapshot; drop them. *)
    List.iter (fun (w : Write.t) -> Hashtbl.remove t.by_id w.id) t.committed_rev;
    t.committed_rev <- [];
    Hashtbl.reset t.committed_values;
    List.iter (fun (k, v) -> Hashtbl.replace t.committed_values k v) snap.snap_values;
    (* Tentative writes the snapshot covers were committed remotely — drop
       them (their final outcomes are not locally recoverable); keep and
       replay the rest. *)
    let kept, folded = List.partition (fun w -> not (covered w)) t.tent_rev in
    List.iter
      (fun (w : Write.t) ->
        Hashtbl.remove t.by_id w.id;
        Hashtbl.replace t.committed_ids w.id ())
      folded;
    t.tent_rev <- kept;
    (* Rebuild the derived quantities: known vector, conit values, tentative
       oweights. *)
    Version_vector.merge_into t.vector snap.snap_vector;
    Hashtbl.reset t.tent_oweights;
    Hashtbl.reset t.values;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.values k v) t.committed_values;
    List.iter
      (fun (w : Write.t) ->
        List.iter
          (fun { Write.conit; nweight; oweight } ->
            htbl_add t.values conit nweight;
            htbl_add t.tent_oweights conit oweight)
          w.affects)
      kept;
    (* Drop pending-buffer entries the snapshot already covers. *)
    let stale =
      Hashtbl.fold
        (fun id _ acc ->
          if Version_vector.covers snap.snap_vector ~origin:id.Write.origin ~seq:id.Write.seq
          then id :: acc
          else acc)
        t.pending []
    in
    List.iter (Hashtbl.remove t.pending) stale;
    replay t;
    true
  end
