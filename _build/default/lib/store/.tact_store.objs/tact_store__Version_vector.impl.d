lib/store/version_vector.ml: Array String
