lib/store/value.mli:
