lib/store/write.ml: List Op Printf Stdlib String
