lib/store/wlog.mli: Db Op Value Version_vector Write
