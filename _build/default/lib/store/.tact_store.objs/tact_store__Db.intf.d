lib/store/db.mli: Value
