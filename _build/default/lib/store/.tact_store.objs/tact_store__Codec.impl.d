lib/store/codec.ml: Buffer Char Db Int64 List Op Printf String Sys Value Version_vector Wlog Write
