lib/store/version_vector.mli:
