lib/store/codec.mli: Buffer Op Value Version_vector Wlog Write
