lib/store/db.ml: Hashtbl List Value
