lib/store/op.ml: Db Hashtbl Printf String Value
