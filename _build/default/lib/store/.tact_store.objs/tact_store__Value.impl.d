lib/store/value.ml: List Printf Stdlib String
