lib/store/wlog.ml: Array Db Float Hashtbl List Op Printf Value Version_vector Write
