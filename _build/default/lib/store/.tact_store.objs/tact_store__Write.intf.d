lib/store/write.mli: Op
