lib/store/op.mli: Db Value
