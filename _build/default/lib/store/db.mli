(** Mutable database image: the state a replica exposes to reads.

    Each replica maintains two images (see {!Wlog}): one reflecting only the
    committed prefix of the write log, and the full view including tentative
    writes.  Rollback/reapply of tentative writes works by copying the
    committed image and replaying. *)

type t

val create : (string * Value.t) list -> t
val copy : t -> t

val get : t -> string -> Value.t
(** Missing keys read as [Value.Nil]. *)

val set : t -> string -> Value.t -> unit

val get_float : t -> string -> float
val get_int : t -> string -> int

val add : t -> string -> float -> unit
(** Numeric increment; missing keys start at 0. *)

val append : t -> string -> Value.t -> unit
(** Add to the list at [key]; missing keys start as [].  Lists are kept
    newest-first (constant-time add); readers see the most recent element at
    the head. *)

val keys : t -> string list
val equal : t -> t -> bool
val size : t -> int
