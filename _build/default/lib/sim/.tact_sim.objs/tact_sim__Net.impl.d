lib/sim/net.ml: Engine Float Hashtbl List Tact_util Topology
