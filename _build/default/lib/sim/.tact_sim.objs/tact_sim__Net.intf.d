lib/sim/net.mli: Engine Tact_util Topology
