lib/sim/topology.mli:
