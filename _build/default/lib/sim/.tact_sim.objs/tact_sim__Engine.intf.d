lib/sim/engine.mli:
