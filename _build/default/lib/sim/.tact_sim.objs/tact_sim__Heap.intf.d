lib/sim/heap.mli:
