(** Message-passing network on top of the event engine.

    Provides point-to-point delivery with topology-derived delay plus optional
    jitter, full traffic accounting (the raw material of the paper's overhead
    figures), and failure injection: link or node partitions that silently
    drop messages until healed, emulating wide-area outages. *)

type t

type stats = {
  messages : int;
  bytes : int;
  dropped : int;  (** messages lost to partitions *)
}

val create :
  Engine.t ->
  Topology.t ->
  ?jitter:(Tact_util.Prng.t * float) ->
  ?loss:(Tact_util.Prng.t * float) ->
  ?queued:bool ->
  unit ->
  t
(** [jitter = (rng, frac)] adds a uniform [0, frac * delay) random extra
    delay to every message.  [loss = (rng, rate)] drops each message
    independently with probability [rate] — the protocol layers must (and do)
    tolerate this via acknowledgement-driven retransmission and retry
    rounds.  [queued] (default false) models each directed link as a FIFO
    with finite bandwidth: a message must wait for the link to finish
    serialising earlier ones, so bursts experience queueing delay instead of
    transmitting in parallel. *)

val engine : t -> Engine.t
val size : t -> int
(** Number of nodes in the topology. *)

val send : t -> src:int -> dst:int -> size:int -> (unit -> unit) -> unit
(** Deliver [deliver] at the destination after the link delay.  Messages on
    the same link are NOT ordered (models independent datagrams / parallel
    connections); protocol layers must tolerate reordering.  Dropped silently
    if the pair is partitioned at send time. *)

val partition : t -> int list -> int list -> unit
(** Cut all links between the two node groups (both directions). *)

val heal : t -> unit
(** Remove all partitions. *)

val partitioned : t -> int -> int -> bool

val stats : t -> stats

val traffic_where : t -> (src:int -> dst:int -> bool) -> stats
(** Aggregate traffic over the directed links matching the predicate — e.g.
    split WAN from LAN bytes in a clustered topology.  [dropped] is not
    tracked per link and reads 0. *)

val reset_stats : t -> unit
