(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  All replica logic,
    client workloads and network deliveries run as events: closures scheduled
    at a virtual time.  Execution is single-threaded and deterministic —
    simultaneous events fire in scheduling order.

    This is the repo's substitute for the paper's wide-area testbed: "time"
    below is simulated wall-clock time, which is exactly the timebase in which
    the paper defines staleness and external order. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the thunk [delay] seconds from now.  [delay] must be >= 0. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Run the thunk at absolute virtual [time] (>= now). *)

val every : t -> period:float -> ?jitter:(unit -> float) -> (unit -> bool) -> unit
(** Periodic event: the thunk runs every [period] (+ optional jitter) seconds
    for as long as it returns [true]. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue.  Stops when the queue is empty, when virtual time
    would exceed [until], or after [max_events] events (a runaway guard —
    raises [Failure] if hit). *)

val events_executed : t -> int
