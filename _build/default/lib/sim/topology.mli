(** Network topologies: pairwise latency and bandwidth between replicas.

    The paper's evaluation ran replicas across wide-area links; here the link
    characteristics are explicit parameters.  Latency is one-way propagation
    delay in seconds; bandwidth is in bytes/second and is applied to the
    message size as a serialisation delay. *)

type t = {
  n : int;  (** number of nodes, ids [0, n-1] *)
  latency : int -> int -> float;  (** one-way propagation delay (s) *)
  bandwidth : int -> int -> float;  (** link bandwidth (bytes/s) *)
}

val uniform : n:int -> latency:float -> bandwidth:float -> t
(** Every pair of distinct nodes connected with the same characteristics.
    Models the paper's homogeneous wide-area setting (e.g. 40 ms, 1 MB/s). *)

val clustered :
  clusters:int -> per_cluster:int -> local:float -> wan:float -> bandwidth:float -> t
(** [clusters] groups of [per_cluster] nodes; intra-cluster latency [local],
    inter-cluster latency [wan].  Models LAN clusters joined by WAN links. *)

val star : n:int -> spoke:float -> bandwidth:float -> t
(** Node 0 is the hub; every other pair communicates via accumulated
    hub latency (2 * spoke).  Models a primary-site deployment. *)

val from_matrix : latency:float array array -> bandwidth:float -> t
(** Arbitrary latency matrix (must be square). *)

val delay : t -> src:int -> dst:int -> size:int -> float
(** Total message delay: propagation + size/bandwidth.  Zero for src = dst. *)
