type t = {
  n : int;
  latency : int -> int -> float;
  bandwidth : int -> int -> float;
}

let uniform ~n ~latency ~bandwidth =
  {
    n;
    latency = (fun a b -> if a = b then 0.0 else latency);
    bandwidth = (fun _ _ -> bandwidth);
  }

let clustered ~clusters ~per_cluster ~local ~wan ~bandwidth =
  let n = clusters * per_cluster in
  let cluster_of i = i / per_cluster in
  {
    n;
    latency =
      (fun a b ->
        if a = b then 0.0
        else if cluster_of a = cluster_of b then local
        else wan);
    bandwidth = (fun _ _ -> bandwidth);
  }

let star ~n ~spoke ~bandwidth =
  {
    n;
    latency =
      (fun a b ->
        if a = b then 0.0
        else if a = 0 || b = 0 then spoke
        else 2.0 *. spoke);
    bandwidth = (fun _ _ -> bandwidth);
  }

let from_matrix ~latency ~bandwidth =
  let n = Array.length latency in
  Array.iter (fun row -> assert (Array.length row = n)) latency;
  { n; latency = (fun a b -> latency.(a).(b)); bandwidth = (fun _ _ -> bandwidth) }

let delay t ~src ~dst ~size =
  if src = dst then 0.0
  else t.latency src dst +. (float_of_int size /. t.bandwidth src dst)
