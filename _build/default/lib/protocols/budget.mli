(** Numerical-error budget allocation.

    The absolute numerical-error bounding algorithm (Section 5, following the
    authors' VLDB 2000 protocols) is sender-driven: the system-wide bound
    [B_c] of a conit at each receiver is split into per-writer shares, and a
    writer must push its unacknowledged writes to a receiver before letting
    its outstanding (unacked) weight for that receiver exceed its share.  The
    sum of shares never exceeds the bound, so the receiver's true numerical
    error is bounded without it ever being measured.

    How the bound is split is a policy choice and an ablation axis (E11):

    - {!Even} — each of the other [n-1] replicas gets an equal share.  Always
      safe; wasteful when write rates are skewed (a hot writer exhausts its
      small share and pushes constantly while idle writers' shares sit
      unused).
    - [Proportional rates] — static split proportional to a known write-rate
      vector.
    - {!Adaptive} — like proportional, but over write rates learned at run
      time (each replica gossips an exponentially weighted moving average of
      its own write rate).  Writers may transiently disagree on the rate
      vector, so the invariant can be transiently exceeded by a small factor;
      E11 measures both the traffic saved and the achieved error. *)

type policy = Even | Proportional of float array | Adaptive

val share :
  policy -> bound:float -> n:int -> self:int -> receiver:int -> rates:float array -> float
(** The slice of [receiver]'s bound that writer [self] may consume.
    [rates.(j)] is the (believed) write rate of replica [j]; it is ignored by
    {!Even}.  Zero-rate corner cases fall back to the even split. *)

val policy_name : policy -> string
