(** Commit-sequence-number bookkeeping for the primary commitment scheme.

    Under the primary scheme (Bayou-style), one replica assigns a global
    commit order by appending write ids to a growing sequence.  Other replicas
    learn contiguous slices of that sequence through transfers.  Because
    messages may be reordered in flight, a slice can arrive whose start index
    is beyond the locally known prefix; such slices are parked until the gap
    fills. *)

type t

val create : unit -> t

val known : t -> int
(** Length of the contiguous known prefix. *)

val append : t -> Tact_store.Write.id -> unit
(** Primary only: extend the order by one id. *)

val offer : t -> start:int -> Tact_store.Write.id list -> unit
(** Merge a slice beginning at index [start].  Overlapping entries are
    ignored (they must agree — checked); a gapped slice is buffered. *)

val slice_from : t -> int -> Tact_store.Write.id list
(** The known suffix starting at the given index (for outbound transfers). *)

val get : t -> int -> Tact_store.Write.id
