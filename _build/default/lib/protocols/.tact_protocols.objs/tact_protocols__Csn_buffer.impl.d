lib/protocols/csn_buffer.ml: List Tact_store Tact_util Vec
