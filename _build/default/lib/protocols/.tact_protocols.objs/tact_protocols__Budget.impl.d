lib/protocols/budget.ml: Array
