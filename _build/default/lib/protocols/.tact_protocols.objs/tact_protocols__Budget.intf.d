lib/protocols/budget.mli:
