lib/protocols/csn_buffer.mli: Tact_store
