open Tact_util

type t = {
  order : Tact_store.Write.id Vec.t;
  mutable pending : (int * Tact_store.Write.id list) list; (* (start, slice) *)
}

let create () = { order = Vec.create (); pending = [] }

let known t = Vec.length t.order

let append t id = Vec.push t.order id

(* Apply a slice that starts at or before the known prefix end: skip the
   overlap (which must agree), append the tail. *)
let apply t start ids =
  List.iteri
    (fun i id ->
      let pos = start + i in
      if pos < Vec.length t.order then assert (Vec.get t.order pos = id)
      else Vec.push t.order id)
    ids

let rec drain t =
  let len = Vec.length t.order in
  let applicable, rest =
    List.partition (fun (start, _) -> start <= len) t.pending
  in
  t.pending <- rest;
  match applicable with
  | [] -> ()
  | _ ->
    List.iter (fun (start, ids) -> apply t start ids) applicable;
    if Vec.length t.order > len then drain t

let offer t ~start ids =
  if ids <> [] then begin
    if start <= Vec.length t.order then apply t start ids
    else t.pending <- (start, ids) :: t.pending;
    drain t
  end

let slice_from t pos = Vec.sub_list t.order ~pos

let get t i = Vec.get t.order i
