(** Replicated bulletin board — the paper's running example (Sections 1, 3.4,
    Figure 5) and the first of its three sample applications.

    Messages are posted at any replica and propagate via anti-entropy.  Two
    conits are exported: ["AllMsg"], the total number of messages, and
    ["MsgFromFriends"], the number of messages posted by a distinguished
    user's friends.  Posts affect both (when applicable) with unit weights;
    reads bound (NE, OE, ST) per conit exactly as in Figure 5. *)

val conit_all : string
val conit_friends : string
val board_key : string

val post :
  Tact_replica.Session.t -> author:int -> friends:int list -> text:string ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Figure 5(a): appends the message; affects ["AllMsg"] with unit weights and
    ["MsgFromFriends"] too when [author] is in [friends]. *)

val read_messages :
  Tact_replica.Session.t ->
  all_bound:Tact_core.Bounds.t ->
  friends_bound:Tact_core.Bounds.t ->
  k:(Tact_store.Value.t -> unit) ->
  unit
(** Figure 5(b): retrieves the message list under the given per-conit
    consistency levels. *)

type result = {
  posts : int;  (** writes accepted *)
  reads : int;  (** reads served *)
  messages : int;  (** network messages *)
  bytes : int;  (** network bytes *)
  mean_read_latency : float;
  p99_read_latency : float;
  mean_write_latency : float;
  mean_observed_ne : float;  (** posts missing from the reader's view, averaged *)
  max_observed_ne : float;
  converged : bool;
  violations : int;
  oe_syncs : int;  (** sync actions forced by order-error bounds *)
  st_pulls : int;  (** pulls forced by staleness bounds *)
  ne_rounds : int;  (** full pull rounds for tighter-than-declared NE *)
}

val run :
  ?seed:int ->
  ?n:int ->
  ?post_rate:float ->  (* posts/s per replica *)
  ?read_rate:float ->  (* reads/s per replica *)
  ?duration:float ->
  ?latency:float ->
  ?ne_bound:float ->  (* declared bound on ["AllMsg"] (proactive pushes) *)
  ?read_bounds:Tact_core.Bounds.t ->  (* per-read requirement on ["AllMsg"] *)
  ?antientropy:float option ->
  unit ->
  result
(** One bulletin-board simulation; the workload posts from every replica and
    reads at every replica, both Poisson. *)
