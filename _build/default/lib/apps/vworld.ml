open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

let pos_conit e = Printf.sprintf "pos.%d" e
let x_key e = Printf.sprintf "pos.%d.x" e
let y_key e = Printf.sprintf "pos.%d.y" e

let move session ~entity ~dx ~dy ~k =
  let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
  Session.affect_conit session (pos_conit entity) ~nweight:dist ~oweight:0.0;
  let op =
    Op.Proc
      {
        name = Printf.sprintf "move e%d" entity;
        size = 24;
        body =
          (fun db ->
            Db.add db (x_key entity) dx;
            Db.add db (y_key entity) dy;
            Op.Applied Value.Nil);
      }
  in
  Session.write session op ~k

let position db ~entity = (Db.get_float db (x_key entity), Db.get_float db (y_key entity))

let observe session ~entity ~accuracy ~k =
  Session.dependon_conit session (pos_conit entity) ~ne:accuracy ();
  Session.read session
    (fun db ->
      let x, y = position db ~entity in
      Value.List [ Value.Float x; Value.Float y ])
    ~k:(fun v ->
      match v with
      | Value.List [ Value.Float x; Value.Float y ] -> k (x, y)
      | _ -> k (nan, nan))

type result = {
  moves : int;
  near_err : float;
  far_err : float;
  near_lat : float;
  far_lat : float;
  near_bound : float;
  far_bound : float;
  messages : int;
  bytes : int;
  violations : int;
}

let run ?(seed = 1) ?(n = 4) ?(move_rate = 4.0) ?(observe_rate = 2.0)
    ?(duration = 30.0) ?(near_bound = 1.0) ?(far_bound = 20.0) () =
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        (* Pushes maintain only the loose, peripheral accuracy system-wide;
           an in-focus observation requests a tighter bound and pays for it
           itself with a pull round (self-determination, Theorem 1). *)
        List.init n (fun e -> Tact_core.Conit.declare ~ne_bound:far_bound (pos_conit e));
      antientropy_period = Some 2.0;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed + 23) in
  (* Omniscient true positions. *)
  let true_x = Array.make n 0.0 and true_y = Array.make n 0.0 in
  let moves = ref 0 in
  let near_err = Stats.create () and far_err = Stats.create () in
  let near_lat = Stats.create () and far_lat = Stats.create () in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let mrng = Prng.split rng in
    (* Avatar i random-walks. *)
    Tact_workload.Workload.poisson engine ~rng:mrng ~rate:move_rate ~until:duration
      (fun () ->
        incr moves;
        let dx = Prng.uniform_in mrng ~lo:(-0.5) ~hi:0.5 in
        let dy = Prng.uniform_in mrng ~lo:(-0.5) ~hi:0.5 in
        true_x.(i) <- true_x.(i) +. dx;
        true_y.(i) <- true_y.(i) +. dy;
        move session ~entity:i ~dx ~dy ~k:ignore);
    (* Avatar i observes: its focus target tightly, the rest loosely. *)
    let orng = Prng.split rng in
    let focus = if i = 0 then 1 else 0 in
    Tact_workload.Workload.poisson engine ~rng:orng ~rate:observe_rate ~until:duration
      (fun () ->
        let target =
          if Prng.bool orng then focus
          else begin
            let other = ref (Prng.int orng n) in
            while !other = i do
              other := Prng.int orng n
            done;
            !other
          end
        in
        let accuracy = if target = focus then near_bound else far_bound in
        let tx = true_x.(target) and ty = true_y.(target) in
        let t0 = Engine.now engine in
        observe session ~entity:target ~accuracy ~k:(fun (x, y) ->
            let err = sqrt (((x -. tx) ** 2.0) +. ((y -. ty) ** 2.0)) in
            if target = focus then begin
              Stats.add near_err err;
              Stats.add near_lat (Engine.now engine -. t0)
            end
            else begin
              Stats.add far_err err;
              Stats.add far_lat (Engine.now engine -. t0)
            end))
  done;
  System.run ~until:(duration +. 90.0) sys;
  let traffic = System.traffic sys in
  {
    moves = !moves;
    near_err = (if Stats.count near_err = 0 then 0.0 else Stats.mean near_err);
    far_err = (if Stats.count far_err = 0 then 0.0 else Stats.mean far_err);
    near_lat = (if Stats.count near_lat = 0 then 0.0 else Stats.mean near_lat);
    far_lat = (if Stats.count far_lat = 0 then 0.0 else Stats.mean far_lat);
    near_bound;
    far_bound;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    violations = List.length (Verify.check sys);
  }
