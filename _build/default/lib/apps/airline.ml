open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let flight_conit f = Printf.sprintf "flight.%d" f
let flight_key f = Printf.sprintf "taken.%d" f

let taken_seats db flight =
  List.map Value.to_int (Value.to_list (Db.get db (flight_key flight)))

(* The reservation write procedure: re-checks the seat against the database
   it is being applied to — the application-specific conflict check of the
   paper's system model. *)
let reserve_op ~flight ~seat =
  Op.Proc
    {
      name = Printf.sprintf "reserve f%d s%d" flight seat;
      size = 32;
      body =
        (fun db ->
          let taken = taken_seats db flight in
          if List.mem seat taken then
            Op.Conflict (Printf.sprintf "seat %d already taken" seat)
          else begin
            Db.append db (flight_key flight) (Value.Int seat);
            Op.Applied (Value.Int seat)
          end);
    }

let reserve session ~rng ~flight ~seats ~k =
  let replica = Session.replica session in
  let taken = taken_seats (Replica.db replica) flight in
  let free = List.filter (fun s -> not (List.mem s taken)) (List.init seats Fun.id) in
  match free with
  | [] -> k (Op.Conflict "flight observed full")
  | _ ->
    let seat = List.nth free (Prng.int rng (List.length free)) in
    Session.affect_conit session (flight_conit flight) ~nweight:(-1.0) ~oweight:1.0;
    Session.write session (reserve_op ~flight ~seat) ~k

type result = {
  attempts : int;
  tentative_conflicts : int;
  final_conflicts : int;
  conflict_rate : float;
  mean_rel_ne : float;
  messages : int;
  bytes : int;
  mean_write_latency : float;
  violations : int;
}

let run ?(seed = 1) ?(n = 4) ?(flights = 4) ?(seats = 200) ?(rate = 2.0)
    ?(duration = 60.0) ?(latency = 0.04) ?(ne_rel = infinity) () =
  let topology = Topology.uniform ~n ~latency ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        List.init flights (fun f ->
            Conit.declare ~ne_rel_bound:ne_rel
              ~initial_value:(float_of_int seats) (flight_conit f));
      antientropy_period = Some 1.0;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed + 13) in
  let attempts = ref 0 and tentative_conflicts = ref 0 in
  let write_lat = Stats.create () in
  let rel_ne = Stats.create () in
  (* Omniscient per-flight acceptance counters, for measuring true relative
     NE at reservation time. *)
  let global_reserved = Array.make flights 0 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let wrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:wrng ~rate ~until:duration (fun () ->
        let flight = Prng.int wrng flights in
        let t0 = Engine.now engine in
        (* True relative NE of this flight's conit at this replica, now. *)
        let local =
          -.Wlog.conit_value (Replica.log (System.replica sys i)) (flight_conit flight)
        in
        let actual_avail = float_of_int (seats - global_reserved.(flight)) in
        if actual_avail > 0.0 then
          Stats.add rel_ne ((float_of_int global_reserved.(flight) -. local) /. actual_avail);
        incr attempts;
        global_reserved.(flight) <- global_reserved.(flight) + 1;
        reserve session ~rng:wrng ~flight ~seats ~k:(fun outcome ->
            Stats.add write_lat (Engine.now engine -. t0);
            if Op.conflicted outcome then begin
              incr tentative_conflicts;
              (* The seat was never taken; correct the omniscient counter. *)
              global_reserved.(flight) <- global_reserved.(flight) - 1
            end))
  done;
  System.run ~until:(duration +. 120.0) sys;
  (* Count conflicts under the committed order (the actual results). *)
  let log0 = Replica.log (System.replica sys 0) in
  let final_conflicts = ref 0 and committed_writes = ref 0 in
  List.iter
    (fun (w : Write.t) ->
      incr committed_writes;
      match Wlog.final_outcome log0 w.id with
      | Some o -> if Op.conflicted o then incr final_conflicts
      | None -> ())
    (Wlog.committed log0);
  let traffic = System.traffic sys in
  {
    attempts = !attempts;
    tentative_conflicts = !tentative_conflicts;
    final_conflicts = !final_conflicts;
    conflict_rate =
      (if !attempts = 0 then 0.0
       else float_of_int !final_conflicts /. float_of_int !attempts);
    mean_rel_ne = (if Stats.count rel_ne = 0 then 0.0 else Stats.mean rel_ne);
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    mean_write_latency =
      (if Stats.count write_lat = 0 then 0.0 else Stats.mean write_lat);
    violations = List.length (Verify.check sys);
  }
