open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let conit_all = "AllMsg"
let conit_friends = "MsgFromFriends"
let board_key = "board"

let post session ~author ~friends ~text ~k =
  Session.affect_conit session conit_all ~nweight:1.0 ~oweight:1.0;
  if List.mem author friends then
    Session.affect_conit session conit_friends ~nweight:1.0 ~oweight:1.0;
  Session.write session
    (Op.Append (board_key, Value.List [ Value.Int author; Value.Str text ]))
    ~k

let dep_of_bounds (b : Bounds.t) = (b.ne, b.ne_rel, b.oe, b.st)

let read_messages session ~all_bound ~friends_bound ~k =
  let ne, ne_rel, oe, st = dep_of_bounds all_bound in
  Session.dependon_conit session conit_all ~ne ~ne_rel ~oe ~st ();
  let ne, ne_rel, oe, st = dep_of_bounds friends_bound in
  Session.dependon_conit session conit_friends ~ne ~ne_rel ~oe ~st ();
  Session.read session (fun db -> Db.get db board_key) ~k

type result = {
  posts : int;
  reads : int;
  messages : int;
  bytes : int;
  mean_read_latency : float;
  p99_read_latency : float;
  mean_write_latency : float;
  mean_observed_ne : float;
  max_observed_ne : float;
  converged : bool;
  violations : int;
  oe_syncs : int;
  st_pulls : int;
  ne_rounds : int;
}

let run ?(seed = 1) ?(n = 4) ?(post_rate = 2.0) ?(read_rate = 2.0)
    ?(duration = 60.0) ?(latency = 0.04) ?(ne_bound = infinity)
    ?(read_bounds = Bounds.weak) ?(antientropy = Some 1.0) () =
  let topology = Topology.uniform ~n ~latency ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound conit_all ];
      antientropy_period = antientropy;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed + 7) in
  let posts = ref 0 and reads = ref 0 in
  let read_lat = ref [] and write_lat = ref [] in
  let obs_ne = Stats.create () in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let wrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:wrng ~rate:post_rate ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        incr posts;
        post session ~author:i ~friends:[ 0; 1 ] ~text:(Printf.sprintf "m%d" !posts)
          ~k:(fun _ -> write_lat := (Engine.now engine -. t0) :: !write_lat));
    let rrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:rrng ~rate:read_rate ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        let local_before = Wlog.conit_value (Replica.log (System.replica sys i)) conit_all in
        let global_before = float_of_int (System.write_count sys) in
        Stats.add obs_ne (global_before -. local_before);
        read_messages session ~all_bound:read_bounds ~friends_bound:Bounds.weak
          ~k:(fun _ ->
            incr reads;
            read_lat := (Engine.now engine -. t0) :: !read_lat))
  done;
  (* Let the system quiesce well past the workload horizon. *)
  System.run ~until:(duration +. 120.0) sys;
  let traffic = System.traffic sys in
  let rl = Array.of_list !read_lat and wl = Array.of_list !write_lat in
  let mean a =
    if Array.length a = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
  in
  {
    posts = !posts;
    reads = !reads;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    mean_read_latency = mean rl;
    p99_read_latency = Stats.percentile rl 99.0;
    mean_write_latency = mean wl;
    mean_observed_ne = (if Stats.count obs_ne = 0 then 0.0 else Stats.mean obs_ne);
    max_observed_ne = (if Stats.count obs_ne = 0 then 0.0 else Stats.max obs_ne);
    converged = System.converged sys;
    violations = List.length (Verify.check sys);
    oe_syncs = (System.total_stats sys).Replica.pulls_oe;
    st_pulls = (System.total_stats sys).Replica.pulls_st;
    ne_rounds = (System.total_stats sys).Replica.pulls_ne;
  }
