open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

let section_conit s = Printf.sprintf "road.%d" s
let section_key s = Printf.sprintf "road.%d" s

let reserve_section ?(weight = 1.0) session ~section ~capacity ~k =
  Session.affect_conit session (section_conit section) ~nweight:weight ~oweight:1.0;
  let op =
    Op.Proc
      {
        name = Printf.sprintf "enter s%d" section;
        size = 24;
        body =
          (fun db ->
            if Db.get_float db (section_key section) +. weight > float_of_int capacity
            then Op.Conflict "section full"
            else begin
              Db.add db (section_key section) weight;
              Op.Applied (Db.get db (section_key section))
            end);
      }
  in
  Session.write session op ~k

let leave_section session ~section ~weight ~k =
  Session.affect_conit session (section_conit section) ~nweight:(-.weight) ~oweight:1.0;
  Session.write session (Op.Add (section_key section, -.weight)) ~k

let observed_occupancy db ~section = Db.get_float db (section_key section)

type result = {
  trips : int;
  rejected : int;
  mean_spread : float;
  worst_overload : float;
  messages : int;
  violations : int;
}

let run ?(seed = 1) ?(n = 4) ?(sections = 4) ?(capacity = 1000) ?(rate = 3.0)
    ?(trip_time = 5.0) ?(duration = 40.0) ?(ne_bound = infinity) () =
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        List.init sections (fun s -> Tact_core.Conit.declare ~ne_bound (section_conit s));
      antientropy_period = Some 2.0;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed + 29) in
  let trips = ref 0 and rejected = ref 0 in
  let true_occ = Array.make sections 0.0 in
  let spread = Stats.create () in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate ~until:duration (fun () ->
        incr trips;
        (* The driver picks the least-occupied section as observed locally. *)
        let db = Replica.db (System.replica sys i) in
        let best = ref 0 and best_occ = ref infinity in
        for s = 0 to sections - 1 do
          let occ = observed_occupancy db ~section:s in
          if occ < !best_occ then begin
            best_occ := occ;
            best := s
          end
        done;
        let s = !best in
        reserve_section session ~section:s ~capacity ~k:(fun outcome ->
            if Op.conflicted outcome then incr rejected
            else begin
              true_occ.(s) <- true_occ.(s) +. 1.0;
              if true_occ.(s) > !worst then worst := true_occ.(s);
              Engine.schedule engine
                ~delay:(Prng.exponential prng ~mean:trip_time)
                (fun () ->
                  true_occ.(s) <- true_occ.(s) -. 1.0;
                  leave_section session ~section:s ~weight:1.0 ~k:ignore)
            end))
  done;
  Engine.every engine ~period:1.0 (fun () ->
      let st = Stats.create () in
      Array.iter (Stats.add st) true_occ;
      Stats.add spread (Stats.stddev st);
      Engine.now engine < duration);
  System.run ~until:(duration +. 90.0) sys;
  {
    trips = !trips;
    rejected = !rejected;
    mean_spread = (if Stats.count spread = 0 then 0.0 else Stats.mean spread);
    worst_overload = !worst;
    messages = (System.traffic sys).Net.messages;
    violations = List.length (Verify.check sys);
  }
