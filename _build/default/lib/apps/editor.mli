(** Wide-area shared editor — Section 4.1's collaborative application.

    The document is a set of paragraphs.  Per the paper, each paragraph
    exports two conits: one accumulating characters {e added}, one characters
    {e deleted}; an edit's weights equal the number of characters it touches.
    Numerical error then measures the "amount" of unseen remote modification,
    order error the "instability" of the observed version (uncommitted edits,
    weighted by size), and staleness the propagation delay of edits.
    Per-(paragraph, author) conits give per-author consistency levels. *)

val add_conit : para:int -> string
val del_conit : para:int -> string
val author_conit : para:int -> author:int -> string
val para_key : para:int -> string

val insert_text :
  Tact_replica.Session.t -> para:int -> author:int -> text:string ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Append [text] to the paragraph; affects the add conit (and the author's
    conit) with weight [String.length text]. *)

val delete_chars :
  Tact_replica.Session.t -> para:int -> author:int -> count:int ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Remove the last [count] characters of the paragraph (clamped); affects
    the delete conit with weight [count]. *)

val read_paragraph :
  Tact_replica.Session.t ->
  para:int ->
  max_unseen_chars:float ->  (* NE bound on both conits *)
  max_instability:float ->  (* OE bound: uncommitted character churn *)
  max_delay:float ->  (* ST bound on modification propagation *)
  k:(string -> unit) ->
  unit

val document : Tact_store.Db.t -> paras:int -> string list
(** The observed paragraphs in order. *)
