(** QoS load balancing for replicated web servers — the paper's third sample
    application.

    Every replica hosts a web server and a load balancer.  A request entering
    at replica [i] is routed to the server whose {e observed} load is lowest;
    the routing decision writes +1 to the chosen server's load conit and −1
    when the request completes.  Consistency is the accuracy of the load
    view: looser numerical-error bounds mean cheaper load dissemination but
    worse routing (requests sent to servers that are not actually least
    loaded), which experiment E7 quantifies. *)

val load_conit : int -> string
val load_key : int -> string

type result = {
  requests : int;
  misroutes : int;  (** routed to a server that was not truly least-loaded *)
  misroute_rate : float;
  mean_imbalance : float;  (** time-averaged (max-min) true load *)
  mean_load_error : float;  (** |observed - true| of the chosen server's load *)
  messages : int;
  bytes : int;
  violations : int;
}

val run :
  ?seed:int ->
  ?n:int ->
  ?rate:float ->  (* request arrivals/s per replica *)
  ?service_time:float ->  (* mean request service time, seconds *)
  ?duration:float ->
  ?latency:float ->
  ?ne_bound:float ->  (* declared absolute NE bound per load conit *)
  unit ->
  result
