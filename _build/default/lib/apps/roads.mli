(** Traffic monitoring and road reservation (Section 4.1).

    Each road section is a conit whose value is the number of vehicles in
    (or holding reservations for) it; every entry carries unit weight (the
    paper notes heavier vehicles can carry bigger weights — supported via
    [weight]).  Base stations (replicas) collect reservations from the
    vehicles near them; a driver picks the least-occupied of the candidate
    sections {e as observed} under a numerical-error bound, then reserves it
    with a write procedure that re-checks the section's capacity.  Stale
    occupancy views send everyone down the same "best" route — the
    over-crowding failure the paper motivates road reservation with. *)

val section_conit : int -> string
val section_key : int -> string

val reserve_section :
  ?weight:float -> Tact_replica.Session.t -> section:int -> capacity:int ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Reserve a slot in the section; conflicts when the section is full at
    application time. *)

val observed_occupancy : Tact_store.Db.t -> section:int -> float

type result = {
  trips : int;
  rejected : int;  (** reservations that conflicted (section full) *)
  mean_spread : float;
      (** time-averaged std-dev of true section occupancy — low spread means
          traffic actually spread across equivalent routes *)
  worst_overload : float;  (** max true occupancy observed on any section *)
  messages : int;
  violations : int;
}

val run :
  ?seed:int ->
  ?n:int ->  (* base stations *)
  ?sections:int ->  (* parallel, equivalent road sections *)
  ?capacity:int ->
  ?rate:float ->  (* trip starts per second per station *)
  ?trip_time:float ->
  ?duration:float ->
  ?ne_bound:float ->
  unit ->
  result
