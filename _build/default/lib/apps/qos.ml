open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let load_conit j = Printf.sprintf "load.%d" j
let load_key j = Printf.sprintf "load.%d" j

type result = {
  requests : int;
  misroutes : int;
  misroute_rate : float;
  mean_imbalance : float;
  mean_load_error : float;
  messages : int;
  bytes : int;
  violations : int;
}

let run ?(seed = 1) ?(n = 4) ?(rate = 4.0) ?(service_time = 2.0)
    ?(duration = 60.0) ?(latency = 0.04) ?(ne_bound = infinity) () =
  let topology = Topology.uniform ~n ~latency ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = List.init n (fun j -> Conit.declare ~ne_bound (load_conit j));
      antientropy_period = Some 1.0;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed + 19) in
  let requests = ref 0 and misroutes = ref 0 in
  let load_error = Stats.create () in
  let imbalance = Stats.create () in
  (* Omniscient true loads. *)
  let true_load = Array.make n 0 in
  let adjust_load session j delta ~k =
    Session.affect_conit session (load_conit j) ~nweight:delta ~oweight:0.0;
    Session.write session (Op.Add (load_key j, delta)) ~k
  in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let wrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:wrng ~rate ~until:duration (fun () ->
        incr requests;
        (* Route to the server with the lowest observed load. *)
        let db = Replica.db (System.replica sys i) in
        let best = ref 0 and best_load = ref infinity in
        for j = 0 to n - 1 do
          let l = Db.get_float db (load_key j) in
          if l < !best_load then begin
            best_load := l;
            best := j
          end
        done;
        let j = !best in
        let true_min = Array.fold_left min max_int true_load in
        if true_load.(j) > true_min then incr misroutes;
        Stats.add load_error (Float.abs (!best_load -. float_of_int true_load.(j)));
        true_load.(j) <- true_load.(j) + 1;
        adjust_load session j 1.0 ~k:(fun _ ->
            (* Service completes after an exponential service time. *)
            Engine.schedule engine
              ~delay:(Prng.exponential wrng ~mean:service_time)
              (fun () ->
                true_load.(j) <- true_load.(j) - 1;
                adjust_load session j (-1.0) ~k:ignore)))
  done;
  (* Sample the true imbalance once a second over the workload. *)
  Engine.every engine ~period:1.0 (fun () ->
      let hi = Array.fold_left max min_int true_load in
      let lo = Array.fold_left min max_int true_load in
      Stats.add imbalance (float_of_int (hi - lo));
      Engine.now engine < duration);
  System.run ~until:(duration +. 120.0) sys;
  let traffic = System.traffic sys in
  {
    requests = !requests;
    misroutes = !misroutes;
    misroute_rate =
      (if !requests = 0 then 0.0 else float_of_int !misroutes /. float_of_int !requests);
    mean_imbalance = (if Stats.count imbalance = 0 then 0.0 else Stats.mean imbalance);
    mean_load_error = (if Stats.count load_error = 0 then 0.0 else Stats.mean load_error);
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    violations = List.length (Verify.check sys);
  }
