(** Distributed games / virtual reality (Section 4.1).

    Entities move in a 2-D world; each entity's position is a conit whose
    numerical weight is the {e distance moved}, so a bound of [d] on the conit
    means an observer's view of the entity is within [d] world units of its
    true position (by the triangle inequality over unseen moves).

    The paper's point about focus and nimbus: different observers can ask for
    {e different} accuracy on the same entity — tight bounds for entities in
    one's focus (nearby), loose for peripheral ones — and self-determination
    means each observation pays only for its own accuracy. *)

val pos_conit : int -> string
val x_key : int -> string
val y_key : int -> string

val move :
  Tact_replica.Session.t -> entity:int -> dx:float -> dy:float ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Displace the entity; affects its position conit with nweight = the
    Euclidean length of the move. *)

val observe :
  Tact_replica.Session.t -> entity:int -> accuracy:float ->
  k:(float * float -> unit) -> unit
(** Read the entity's position, requiring the view to be within [accuracy]
    world units of the true position. *)

val position : Tact_store.Db.t -> entity:int -> float * float

type result = {
  moves : int;
  near_err : float;  (** mean true position error of in-focus observations *)
  far_err : float;  (** mean error of peripheral observations *)
  near_lat : float;  (** mean latency of in-focus observations (they pull) *)
  far_lat : float;  (** mean latency of peripheral observations (local) *)
  near_bound : float;
  far_bound : float;
  messages : int;
  bytes : int;
  violations : int;
}

val run :
  ?seed:int ->
  ?n:int ->  (* replicas; one avatar per replica *)
  ?move_rate:float ->
  ?observe_rate:float ->
  ?duration:float ->
  ?near_bound:float ->
  ?far_bound:float ->
  unit ->
  result
(** Avatars random-walk and observe each other: the avatar with the lowest id
    other than one's own is "in focus" (tight bound), the rest are peripheral
    (loose bound).  Errors are measured against the omniscient true
    positions. *)
