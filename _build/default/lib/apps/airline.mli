(** Airline reservation — the paper's Section 4.1 flagship for relative
    numerical error.

    One conit per flight whose value is the number of {e available} seats
    (declared initial value = capacity; every reservation carries nweight −1).
    A reservation is a write {e procedure}: the client picks a random seat
    that looks free in its replica's view, and the procedure re-checks the
    seat when (re)applied — taking it, or conflicting if a reservation
    ordered earlier already holds it.  The write's {e actual} result is its
    outcome under the final committed order, so a reservation that looked
    fine tentatively can turn out to have conflicted.

    Section 4.1 derives that for reservations aimed at uniformly random free
    seats, the probability a reservation conflicts with an unseen remote
    reservation equals the conit's relative numerical error — so bounding
    relative NE bounds the conflict rate.  Experiment E3 reproduces this:
    measured conflict rate should track the measured mean relative NE across
    the bound sweep. *)

val flight_conit : int -> string
val flight_key : int -> string

val reserve :
  Tact_replica.Session.t ->
  rng:Tact_util.Prng.t ->
  flight:int ->
  seats:int ->
  k:(Tact_store.Op.outcome -> unit) ->
  unit
(** Pick a random observed-free seat on [flight] and submit the guarded
    reservation procedure.  [k] receives the {e tentative} outcome; the final
    outcome is determined at commit. *)

type result = {
  attempts : int;
  tentative_conflicts : int;  (** conflicts visible at acceptance *)
  final_conflicts : int;  (** conflicts under the committed order *)
  conflict_rate : float;  (** final conflicts / attempts *)
  mean_rel_ne : float;  (** measured relative NE at reservation time *)
  messages : int;
  bytes : int;
  mean_write_latency : float;
  violations : int;
}

val run :
  ?seed:int ->
  ?n:int ->
  ?flights:int ->
  ?seats:int ->
  ?rate:float ->  (* reservations/s per replica *)
  ?duration:float ->
  ?latency:float ->
  ?ne_rel:float ->  (* declared relative NE bound per flight conit *)
  unit ->
  result
