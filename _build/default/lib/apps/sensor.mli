(** WAN resource accounting / sensor networks — Section 4.1's "pure numerical
    records read/updated from multiple locations".

    One conit per record; numerical error captures the accuracy of the
    record's value.  An update adds a (possibly negative) delta with
    |delta| as its numerical weight, so the declared NE bound is a hard
    accuracy guarantee on every replica's view of the record. *)

val record_conit : string -> string

val report :
  Tact_replica.Session.t -> record:string -> delta:float ->
  k:(Tact_store.Op.outcome -> unit) -> unit
(** Accumulate [delta] into the record (a sensor reading increment, resource
    consumption, ...). *)

val query :
  Tact_replica.Session.t -> record:string -> max_error:float ->
  k:(float -> unit) -> unit
(** Read the record with the given absolute-accuracy requirement. *)
