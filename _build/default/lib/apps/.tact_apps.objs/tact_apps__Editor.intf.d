lib/apps/editor.mli: Tact_replica Tact_store
