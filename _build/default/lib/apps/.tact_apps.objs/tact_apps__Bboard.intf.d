lib/apps/bboard.mli: Tact_core Tact_replica Tact_store
