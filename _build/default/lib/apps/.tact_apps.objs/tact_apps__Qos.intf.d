lib/apps/qos.mli:
