lib/apps/vworld.mli: Tact_replica Tact_store
