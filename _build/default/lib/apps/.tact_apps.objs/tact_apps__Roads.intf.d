lib/apps/roads.mli: Tact_replica Tact_store
