lib/apps/sensor.ml: Db Op Session Tact_replica Tact_store Value
