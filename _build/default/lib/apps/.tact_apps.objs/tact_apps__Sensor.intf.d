lib/apps/sensor.mli: Tact_replica Tact_store
