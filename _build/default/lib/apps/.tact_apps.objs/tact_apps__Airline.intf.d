lib/apps/airline.mli: Tact_replica Tact_store Tact_util
