lib/apps/vworld.ml: Array Config Db Engine List Net Op Printf Prng Session Stats System Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Value Verify
