lib/apps/editor.ml: Db List Op Printf Session String Tact_replica Tact_store Value
