open Tact_store
open Tact_replica

let add_conit ~para = Printf.sprintf "para.%d.add" para
let del_conit ~para = Printf.sprintf "para.%d.del" para
let author_conit ~para ~author = Printf.sprintf "para.%d.author.%d" para author
let para_key ~para = Printf.sprintf "para.%d" para

let text_of db para =
  match Db.get db (para_key ~para) with
  | Value.Str s -> s
  | Value.Nil -> ""
  | _ -> invalid_arg "Editor: paragraph is not text"

let insert_text session ~para ~author ~text ~k =
  let w = float_of_int (String.length text) in
  Session.affect_conit session (add_conit ~para) ~nweight:w ~oweight:w;
  Session.affect_conit session (author_conit ~para ~author) ~nweight:w ~oweight:w;
  let op =
    Op.Proc
      {
        name = Printf.sprintf "insert p%d (%d chars)" para (String.length text);
        size = 16 + String.length text;
        body =
          (fun db ->
            Db.set db (para_key ~para) (Value.Str (text_of db para ^ text));
            Op.Applied Value.Nil);
      }
  in
  Session.write session op ~k

let delete_chars session ~para ~author ~count ~k =
  let w = float_of_int count in
  Session.affect_conit session (del_conit ~para) ~nweight:w ~oweight:w;
  Session.affect_conit session (author_conit ~para ~author) ~nweight:w ~oweight:w;
  let op =
    Op.Proc
      {
        name = Printf.sprintf "delete p%d (%d chars)" para count;
        size = 24;
        body =
          (fun db ->
            let s = text_of db para in
            let keep = max 0 (String.length s - count) in
            Db.set db (para_key ~para) (Value.Str (String.sub s 0 keep));
            Op.Applied (Value.Int (String.length s - keep)));
      }
  in
  Session.write session op ~k

let read_paragraph session ~para ~max_unseen_chars ~max_instability ~max_delay ~k =
  Session.dependon_conit session (add_conit ~para) ~ne:max_unseen_chars
    ~oe:max_instability ~st:max_delay ();
  Session.dependon_conit session (del_conit ~para) ~ne:max_unseen_chars
    ~oe:max_instability ~st:max_delay ();
  Session.read session
    (fun db -> Value.Str (text_of db para))
    ~k:(fun v -> k (match v with Value.Str s -> s | _ -> ""))

let document db ~paras = List.init paras (fun p -> text_of db p)
