open Tact_store
open Tact_replica

let record_conit name = "record." ^ name

let report session ~record ~delta ~k =
  Session.affect_conit session (record_conit record) ~nweight:delta ~oweight:1.0;
  Session.write session (Op.Add (record, delta)) ~k

let query session ~record ~max_error ~k =
  Session.dependon_conit session (record_conit record) ~ne:max_error ();
  Session.read session
    (fun db -> Db.get db record)
    ~k:(fun v -> k (Value.to_float v))
