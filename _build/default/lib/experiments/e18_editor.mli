(** E18 — Section 4.1's shared editor: bounding the instability of the
    observed document.

    Authors at three sites type concurrently into one paragraph; reviewers
    read under a bound on {e instability} — the order-error reading: how many
    characters of the view are still uncommitted and subject to reordering.
    The sweep reports the instability actually observed and the read latency
    paid for commitment.  Expected shape: observed instability stays under
    the bound and grows with it, latency shrinks. *)

val run : ?quick:bool -> unit -> string
