(** E14 — extension: log truncation and snapshot catch-up.

    A Bayou-style log grows without bound unless committed writes are
    discarded; but a truncated log can no longer serve write-by-write diffs
    to a replica that fell behind, forcing a full-state snapshot transfer.
    This experiment partitions one replica while the rest keep committing
    (primary scheme) under different retention limits, and reports the
    memory/traffic tradeoff: retained log size versus snapshot transfers and
    catch-up bytes.  Correctness bar: the lagging replica always converges. *)

type row = {
  keep : string;
  max_retained : int;
  snapshots : int;
  bytes : int;
  converged : bool;
}

val run : ?quick:bool -> unit -> string
