open Tact_util

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 40.0 in
  let tbl =
    Table.create
      ~title:
        "E16 / Section 4.1 — virtual world: focus vs nimbus accuracy (4 \
         avatars, moves of <=0.5 units)"
      ~columns:
        [ "observation class"; "bound"; "mean pos error"; "mean latency(s)" ]
  in
  let r =
    Tact_apps.Vworld.run ~seed:151 ~n:4 ~move_rate:4.0 ~observe_rate:2.0
      ~duration ~near_bound:1.0 ~far_bound:20.0 ()
  in
  Table.add_row tbl
    [ "focus (near)"; Printf.sprintf "%.1f" r.near_bound;
      Printf.sprintf "%.3f" r.near_err; Printf.sprintf "%.4f" r.near_lat ];
  Table.add_row tbl
    [ "nimbus (far)"; Printf.sprintf "%.1f" r.far_bound;
      Printf.sprintf "%.3f" r.far_err; Printf.sprintf "%.4f" r.far_lat ];
  Table.render tbl
  ^ Printf.sprintf
      "moves: %d, traffic: %d msgs / %.1f KB, violations: %d\n\
       expected: focus observations are an order of magnitude more accurate \
       and pay a WAN round per observation; peripheral ones are free and \
       loose — per-access quality of service from one shared state.\n"
      r.moves r.messages
      (float_of_int r.bytes /. 1024.0)
      r.violations

