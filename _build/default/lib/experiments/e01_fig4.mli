(** E1 — Figure 4: the paper's worked example of the three consistency
    metrics.

    The OCR of the figure's write/conit table is partially garbled, so the
    instance is reconstructed to be consistent with every legible datum: five
    unit-weight writes W1..W5, a read R2 at replica 1 depending on conits F1
    and F2, and the stated results — for F1: NE(absolute) = 1, OE = 1,
    ST = stime(R2) − rtime(W5); for F2: NE(absolute) = 0, OE = 1, ST = 0.
    The reconstruction (documented in EXPERIMENTS.md) uses the enforcement
    reading of order error (weighted tentative writes), which matches all the
    stated numbers. *)

type outcome = {
  ne_f1 : float;
  oe_f1 : float;
  st_f1 : float;
  ne_f2 : float;
  oe_f2 : float;
  st_f2 : float;
}

val compute : unit -> outcome
(** Build the example histories and evaluate the metrics. *)

val run : ?quick:bool -> unit -> string
(** Render the example and the computed metrics as the figure's table. *)
