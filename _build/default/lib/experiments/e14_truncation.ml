open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

type row = {
  keep : string;
  max_retained : int;
  snapshots : int;
  bytes : int;
  converged : bool;
}

let run_one ~keep ~duration =
  let n = 3 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.commit_scheme = Config.Primary 0;
      antientropy_period = Some 0.5;
      truncate_keep = keep;
    }
  in
  let sys = System.create ~seed:131 ~topology ~config () in
  let engine = System.engine sys in
  (* Replica 2 is cut off for the middle half of the run. *)
  Engine.schedule engine ~delay:(duration /. 4.0) (fun () ->
      Net.partition (System.net sys) [ 2 ] [ 0; 1 ]);
  Engine.schedule engine ~delay:(3.0 *. duration /. 4.0) (fun () ->
      Net.heal (System.net sys));
  let rng = Prng.create ~seed:137 in
  for i = 0 to 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:4.0 ~until:duration
      (fun () ->
        Replica.submit_write (System.replica sys i) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  let max_retained = ref 0 in
  Engine.every engine ~period:0.5 (fun () ->
      for i = 0 to n - 1 do
        max_retained := max !max_retained (Wlog.retained (Replica.log (System.replica sys i)))
      done;
      Engine.now engine < duration +. 60.0);
  System.run ~until:(duration +. 90.0) sys;
  let stats = System.total_stats sys in
  {
    keep = (match keep with None -> "unbounded" | Some k -> string_of_int k);
    max_retained = !max_retained;
    snapshots = stats.Replica.snapshots_installed;
    bytes = (System.traffic sys).Net.bytes;
    converged = System.converged sys;
  }

let run ?(quick = false) () =
  let duration = if quick then 20.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        "E14 — log truncation: retained log vs snapshot catch-up (replica 2 \
         partitioned mid-run, primary commitment)"
      ~columns:[ "keep"; "max retained log"; "snapshots installed"; "KB"; "converged" ]
  in
  List.iter
    (fun keep ->
      let r = run_one ~keep ~duration in
      Table.add_row tbl
        [ r.keep; string_of_int r.max_retained; string_of_int r.snapshots;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1024.0);
          string_of_bool r.converged ])
    [ None; Some 200; Some 50; Some 10 ];
  Table.render tbl
  ^ "expected: smaller retention caps the log's memory footprint; once the \
     lagging replica falls behind the truncation point it catches up via \
     snapshot transfers instead of a write-by-write diff, and always \
     converges.\n"
