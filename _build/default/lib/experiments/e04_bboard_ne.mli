(** E4 — bulletin board: propagation overhead vs absolute numerical error
    bound (the cited TACT evaluation's bandwidth/NE tradeoff).

    Sweeps the declared absolute NE bound of the ["AllMsg"] conit with
    background gossip disabled, so all traffic is compulsory protocol traffic.
    Expected shape: messages, bytes and write latency fall monotonically as
    the bound loosens, while the reader-observed numerical error grows up to
    (but never beyond) the bound. *)

val bounds_swept : float list

val run : ?quick:bool -> unit -> string
