open Tact_util
open Tact_core

let bounds_swept = [ 0.1; 0.5; 1.0; 2.0; 5.0; 15.0; infinity ]

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        "E6 — bulletin board: freshness vs staleness bound on AllMsg (4 \
         replicas, gossip 5s)"
      ~columns:
        [ "ST bound(s)"; "reads"; "mean r-lat(s)"; "ST pulls"; "msgs";
          "mean obs NE"; "violations" ]
  in
  let lat = ref [] and pulls = ref [] in
  List.iter
    (fun b ->
      let r =
        Tact_apps.Bboard.run ~seed:21 ~n:4 ~post_rate:2.0 ~read_rate:1.0
          ~duration ~antientropy:(Some 5.0)
          ~read_bounds:(Bounds.make ~st:b ()) ()
      in
      Table.add_row tbl
        [ (if b = infinity then "inf" else Table.cell_f b);
          string_of_int r.reads;
          Printf.sprintf "%.4f" r.mean_read_latency;
          string_of_int r.st_pulls; string_of_int r.messages;
          Printf.sprintf "%.2f" r.mean_observed_ne; string_of_int r.violations ];
      let x = if b = infinity then 30.0 else b in
      lat := (x, r.mean_read_latency) :: !lat;
      pulls := (x, float_of_int r.st_pulls) :: !pulls)
    bounds_swept;
  Table.render tbl
  ^ Plot.series ~title:"staleness pulls vs ST bound (inf plotted at 30)"
      [ ("pulls", List.rev !pulls) ]
  ^ "expected: pulls and read latency fall as the staleness bound loosens; \
     observed error grows.\n"
