(** E12 — ablation: stability vs primary write commitment (DESIGN.md
    design-choice index).

    Two axes are measured:

    - {b commit progress under partition}: a non-primary replica is
      disconnected for a window.  Stability commitment needs covers from
      {e every} origin, so commitment stalls system-wide until the partition
      heals; primary commitment keeps committing among the connected
      majority.
    - {b semantics}: the stability order is the canonical timestamp order
      (external-order compatible — 1SR+EXT at the strong extreme); the
      primary's arrival order is only 1SR.

    This is exactly the generality/practicality tension of the paper: the
    faster scheme buys availability with a weaker reference order. *)

type row = {
  scheme : string;
  committed_during_partition : int;
  committed_total : int;
  committed_at_end : int;
  writes : int;
  ext_compatible : bool;
  messages : int;
}

val run : ?quick:bool -> unit -> string
