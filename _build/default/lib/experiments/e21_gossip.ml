open Tact_util
open Tact_sim
open Tact_store
open Tact_replica

let clusters = 2
let per_cluster = 3
let n = clusters * per_cluster

let cluster_of i = i / per_cluster

(* Hierarchical plan: mostly-LAN ring; the first replica of each cluster
   additionally bridges to the other cluster's bridge. *)
let hierarchical i =
  let base = cluster_of i * per_cluster in
  let lan = Array.init (per_cluster - 1) (fun k -> base + ((i - base + 1 + k) mod per_cluster)) in
  if i = base then
    let other_bridge = (base + per_cluster) mod n in
    Array.append lan [| other_bridge |]
  else lan

let run_one ~plan ~duration =
  let topology =
    Topology.clustered ~clusters ~per_cluster ~local:0.002 ~wan:0.08
      ~bandwidth:500_000.0
  in
  let config =
    {
      Config.default with
      Config.antientropy_period = Some 0.5;
      gossip_plan = plan;
    }
  in
  let sys = System.create ~seed:211 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:223 in
  let cross_vis = Stats.create () in
  for i = 0 to n - 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        (* Watch when a write from this replica reaches a peer in the other
           cluster. *)
        let peer = ((cluster_of i + 1) mod clusters * per_cluster) + 1 in
        let threshold = Wlog.num_known (Replica.log (System.replica sys peer)) + 1 in
        Replica.submit_write (System.replica sys i) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore;
        let rec poll () =
          if Wlog.num_known (Replica.log (System.replica sys peer)) >= threshold then
            Stats.add cross_vis (Engine.now engine -. t0)
          else Engine.schedule engine ~delay:0.02 poll
        in
        poll ())
  done;
  System.run ~until:(duration +. 90.0) sys;
  let wan =
    Net.traffic_where (System.net sys) (fun ~src ~dst -> cluster_of src <> cluster_of dst)
  in
  let lan =
    Net.traffic_where (System.net sys) (fun ~src ~dst -> cluster_of src = cluster_of dst)
  in
  ( wan.Net.bytes,
    lan.Net.bytes,
    (if Stats.count cross_vis = 0 then 0.0 else Stats.mean cross_vis),
    System.converged sys )

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 45.0 in
  let tbl =
    Table.create
      ~title:
        "E21 — topology-aware gossip (2 clusters of 3; 2ms LAN / 80ms WAN; \
         gossip every 0.5s)"
      ~columns:
        [ "plan"; "WAN KB"; "LAN KB"; "cross-cluster visibility(s)"; "converged" ]
  in
  List.iter
    (fun (label, plan) ->
      let wan, lan, vis, conv = run_one ~plan ~duration in
      Table.add_row tbl
        [ label;
          Printf.sprintf "%.1f" (float_of_int wan /. 1024.0);
          Printf.sprintf "%.1f" (float_of_int lan /. 1024.0);
          Printf.sprintf "%.3f" vis; string_of_bool conv ])
    [ ("flat round-robin", None); ("hierarchical (bridges)", Some hierarchical) ];
  Table.render tbl
  ^ "expected: the hierarchical plan cuts WAN bytes severalfold at a modest \
     cross-cluster freshness cost (one extra relay hop through the \
     bridges); both converge.\n"
