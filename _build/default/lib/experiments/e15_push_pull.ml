open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

type row = {
  ratio : float;
  push_msgs : int;
  pull_msgs : int;
  push_read_lat : float;
  pull_read_lat : float;
}

let bound = 4.0

let run_mode ~push ~write_rate ~read_rate ~duration =
  let n = 4 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        [ (if push then Conit.declare ~ne_bound:bound "c" else Conit.unconstrained "c") ];
      antientropy_period = None;
    }
  in
  let sys = System.create ~seed:139 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:149 in
  let rlat = Stats.create () in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let wrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:wrng ~rate:write_rate ~until:duration
      (fun () ->
        Replica.submit_write r ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 0.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore);
    let rrng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:rrng ~rate:read_rate ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        Replica.submit_read r
          ~deps:[ ("c", Bounds.make ~ne:bound ()) ]
          ~f:(fun db -> Db.get db "x")
          ~k:(fun _ -> Stats.add rlat (Engine.now engine -. t0)))
  done;
  System.run ~until:(duration +. 60.0) sys;
  let violations = List.length (Verify.check sys) in
  assert (violations = 0);
  ( (System.traffic sys).Net.messages,
    (if Stats.count rlat = 0 then 0.0 else Stats.mean rlat) )

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 45.0 in
  let write_rate = 2.0 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E15 — push vs pull enforcement of NE <= %g (4 replicas, write \
            rate %g/s each)"
           bound write_rate)
      ~columns:
        [ "read/write ratio"; "push msgs"; "pull msgs"; "push r-lat(s)";
          "pull r-lat(s)"; "winner" ]
  in
  let series_push = ref [] and series_pull = ref [] in
  List.iter
    (fun ratio ->
      let read_rate = write_rate *. ratio in
      let push_msgs, push_lat =
        run_mode ~push:true ~write_rate ~read_rate ~duration
      in
      let pull_msgs, pull_lat =
        run_mode ~push:false ~write_rate ~read_rate ~duration
      in
      Table.add_row tbl
        [ Printf.sprintf "%.2f" ratio; string_of_int push_msgs;
          string_of_int pull_msgs; Printf.sprintf "%.4f" push_lat;
          Printf.sprintf "%.4f" pull_lat;
          (if push_msgs < pull_msgs then "push" else "pull") ];
      series_push := (ratio, float_of_int push_msgs) :: !series_push;
      series_pull := (ratio, float_of_int pull_msgs) :: !series_pull)
    [ 0.05; 0.1; 0.25; 0.5; 1.0; 2.0 ];
  Table.render tbl
  ^ Plot.series ~title:"messages vs read/write ratio (a = push, b = pull)"
      [ ("push", List.rev !series_push); ("pull", List.rev !series_pull) ]
  ^ "expected: pull costs grow with the read rate (a round per read) while \
     push costs are read-insensitive — the crossover favours pull only when \
     reads are rare.  Push also gives reads local latency; pull charges \
     every read a WAN round trip.\n"
