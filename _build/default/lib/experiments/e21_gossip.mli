(** E21 — extension: topology-aware gossip.

    Flat round-robin gossip treats an 80 ms WAN link like a 2 ms LAN link
    and burns wide-area bandwidth relaying what a cluster already shares.
    A hierarchical plan — every replica gossips within its cluster, one
    designated bridge per cluster crosses the WAN — carries the same
    updates with a fraction of the wide-area traffic.  The table splits
    traffic by link class and reports cross-cluster visibility to show the
    freshness price (one extra relay hop). *)

val run : ?quick:bool -> unit -> string
