(** E15 — extension/ablation: push vs pull enforcement of a numerical-error
    bound (the tradeoff studied in the authors' numerical-bounding work that
    Section 5 builds on).

    The same NE target B can be met two ways:

    - {b push}: declare the bound on the conit, so writers proactively push
      once their unacked weight exceeds their budget share — cost scales with
      the write rate;
    - {b pull}: declare nothing and have every read request [ne <= B],
      triggering a pull round per read (the bound is tighter than the
      declared infinity) — cost scales with the read rate.

    Sweeping the read/write ratio exposes the crossover: pull wins when reads
    are rare, push wins when reads dominate. *)

type row = {
  ratio : float;  (** read rate / write rate *)
  push_msgs : int;
  pull_msgs : int;
  push_read_lat : float;
  pull_read_lat : float;
}

val run : ?quick:bool -> unit -> string
