let even_share ~bound ~n =
  assert (n > 1);
  bound /. float_of_int (n - 1)

let pushes_per_write ~bound ~n ~weight =
  if bound = infinity then 0.0
  else begin
    let share = even_share ~bound ~n in
    let per_peer = if share <= 0.0 then 1.0 else Float.min 1.0 (weight /. share) in
    float_of_int (n - 1) *. per_peer
  end

let pull_round_msgs ~n = 2 * (n - 1)

let pull_read_latency ~n ~one_way =
  ignore n;
  2.0 *. one_way

let conflict_probability ~rel_ne = Float.max 0.0 (Float.min 1.0 rel_ne)

let staleness_pull_rate ~read_rate ~bound ~gossip =
  match gossip with
  | Some period when period <= bound -> 0.0
  | Some _ | None -> read_rate
