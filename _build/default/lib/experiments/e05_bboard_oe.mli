(** E5 — bulletin board: read latency vs order-error bound (the cost of write
    commitment).

    Readers require ["AllMsg"] order error below the swept bound; a tight
    bound forces the stability commitment protocol to run before a read can
    be served.  Expected shape: read latency (and OE-driven sync traffic)
    falls as the bound loosens, reaching local-read latency once the bound
    exceeds the typical tentative backlog. *)

val bounds_swept : float list

val run : ?quick:bool -> unit -> string
