(** E8 — Section 5's scalability claim: protocol cost as a function of the
    number of conits.

    A fixed write workload is spread round-robin over a growing conit
    population (each conit declared with the same absolute NE bound).  The
    claim: bookkeeping is created on demand and the commitment/staleness
    machinery is insensitive to conit count, so per-write protocol cost stays
    near-flat as conits grow from 1 to 10^4 — only the weight-specification
    bytes on the wire grow (each write names its conit). *)

val conit_counts : int list

val run : ?quick:bool -> unit -> string
