open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

type row = {
  policy : string;
  pushes : int;
  messages : int;
  bytes : int;
  mean_write_latency : float;
  max_unseen : float;
}

let conit = "hot"

let run_policy ~policy ~label ~duration =
  let n = 4 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:9.0 conit ];
      budget_policy = policy;
      antientropy_period = None;
    }
  in
  let sys = System.create ~seed:107 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:109 in
  let wlat = Stats.create () in
  let max_unseen = ref 0.0 in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Prng.split rng in
    let rate = if i = 0 then 5.0 else 0.4 in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        Replica.submit_write r ~deps:[]
          ~affects:[ { Write.conit; nweight = 1.0; oweight = 0.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:(fun _ -> Stats.add wlat (Engine.now engine -. t0)))
  done;
  Engine.every engine ~period:0.25 (fun () ->
      for i = 0 to n - 1 do
        let local = Wlog.conit_value (Replica.log (System.replica sys i)) conit in
        let gap = float_of_int (System.write_count sys) -. local in
        if gap > !max_unseen then max_unseen := gap
      done;
      Engine.now engine < duration);
  System.run ~until:(duration +. 60.0) sys;
  let traffic = System.traffic sys in
  let stats = System.total_stats sys in
  {
    policy = label;
    pushes = stats.Replica.pushes_budget;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    mean_write_latency = (if Stats.count wlat = 0 then 0.0 else Stats.mean wlat);
    max_unseen = !max_unseen;
  }

let run ?(quick = false) () =
  let duration = if quick then 20.0 else 60.0 in
  let rows =
    [
      run_policy ~policy:Tact_protocols.Budget.Even ~label:"even" ~duration;
      run_policy ~policy:Tact_protocols.Budget.Adaptive ~label:"adaptive" ~duration;
      run_policy
        ~policy:(Tact_protocols.Budget.Proportional [| 5.0; 0.4; 0.4; 0.4 |])
        ~label:"proportional (oracle)" ~duration;
    ]
  in
  let tbl =
    Table.create
      ~title:
        "E11 — NE budget allocation under 12x write skew (bound 9, 4 replicas)"
      ~columns:
        [ "policy"; "budget pushes"; "msgs"; "KB"; "w-lat(s)"; "max unseen" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ r.policy; string_of_int r.pushes; string_of_int r.messages;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1024.0);
          Printf.sprintf "%.4f" r.mean_write_latency;
          Printf.sprintf "%.1f" r.max_unseen ])
    rows;
  Table.render tbl
  ^ "expected: the adaptive split cuts pushes and traffic versus the even \
     split at equal bounds, at the cost of transient over-runs while rate \
     estimates converge.  Note the pure rate-proportional split can backfire: \
     it shrinks the cold writers' shares below a single write's weight, \
     making every cold write push immediately — the reason adaptive blends \
     toward even when rates are uncertain.\n"
