(** E17 — extension: heterogeneous wide-area deployments.

    The paper's setting is a homogeneous WAN; real deployments are clusters
    of nearby replicas joined by slow links.  Two LAN clusters (2 ms) joined
    by a WAN (80 ms) run the same bounded workload; the table reports how
    long a write takes to become visible to a same-cluster peer versus a
    cross-cluster one, per NE bound.  Expected shape: visibility tracks the
    link a push must cross — tight bounds drag the WAN latency into every
    write, loose bounds amortise it — while the bound still caps cross-
    cluster error. *)

val run : ?quick:bool -> unit -> string
