open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

type side = {
  label : string;
  accesses : int;
  anomalies : int;
  write_latency : float;
  read_latency : float;
  messages : int;
  bytes : int;
  committed_ext_compatible : bool;
  violations : int;
}

let nkeys = 4

let key i = Printf.sprintf "item%d" i
let conit_of i = "item.conit." ^ string_of_int i

let run_side ?(quick = false) ~strong ~seed () =
  let n = 3 in
  let duration = if quick then 15.0 else 40.0 in
  let topology = Topology.uniform ~n ~latency:0.03 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits =
        List.init nkeys (fun i ->
            if strong then Conit.declare ~ne_bound:0.0 (conit_of i)
            else Conit.unconstrained (conit_of i));
      antientropy_period = Some 1.0;
    }
  in
  let sys = System.create ~seed ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed * 17) in
  let bound = if strong then Bounds.strong else Bounds.weak in
  let wlat = Stats.create () and rlat = Stats.create () in
  let accesses = ref 0 in
  (* Reads tag their result with the key so the post-hoc oracle can recompute
     the actual value. *)
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        incr accesses;
        let ki = Prng.int prng nkeys in
        let t0 = Engine.now engine in
        if Prng.bool prng then
          Replica.submit_write r
            ~deps:[ (conit_of ki, bound) ]
            ~affects:[ { Write.conit = conit_of ki; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add (key ki, 1.0))
            ~k:(fun _ -> Stats.add wlat (Engine.now engine -. t0))
        else
          Replica.submit_read r
            ~deps:[ (conit_of ki, bound) ]
            ~f:(fun db -> Value.List [ Value.Str (key ki); Db.get db (key ki) ])
            ~k:(fun _ -> Stats.add rlat (Engine.now engine -. t0)))
  done;
  System.run ~until:(duration +. 60.0) sys;
  (* Oracle: recompute actual results. *)
  let all = System.all_writes sys in
  let return_time = System.return_time sys in
  let anomalies = ref 0 in
  List.iter
    (fun (a : Access.t) ->
      match a.kind with
      | Access.Write_access id -> (
        (* Observed (tentative) vs actual (committed) outcome. *)
        let log0 = Replica.log (System.replica sys a.replica) in
        match Wlog.final_outcome log0 id with
        | Some final ->
          if not (Value.equal (Op.result final) a.observed_result) then incr anomalies
        | None -> ())
      | Access.Read -> (
        match a.observed_result with
        | Value.List [ Value.Str k; observed_v ] ->
          let prefix =
            Ecg.actual_prefix ~all ~return_time ~stime:a.submit_time
              ~observed:(fun id ->
                Version_vector.covers a.observed_vector ~origin:id.Write.origin
                  ~seq:id.Write.seq)
          in
          let oracle = Db.create [] in
          List.iter (fun (w : Write.t) -> ignore (Op.apply w.op oracle)) prefix;
          if not (Value.equal (Db.get oracle k) observed_v) then incr anomalies
        | _ -> ()))
    (System.records sys);
  let committed0 = Wlog.committed (Replica.log (System.replica sys 0)) in
  let traffic = System.traffic sys in
  {
    label = (if strong then "strong (0,0,0)" else "weak (inf,inf,inf)");
    accesses = !accesses;
    anomalies = !anomalies;
    write_latency = (if Stats.count wlat = 0 then 0.0 else Stats.mean wlat);
    read_latency = (if Stats.count rlat = 0 then 0.0 else Stats.mean rlat);
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    committed_ext_compatible =
      Ecg.externally_compatible ~order:committed0 ~return_time;
    violations = List.length (Verify.check ~lcp:true sys);
  }

let run ?(quick = false) () =
  let strong = run_side ~quick ~strong:true ~seed:11 () in
  let weak = run_side ~quick ~strong:false ~seed:11 () in
  let tbl =
    Table.create
      ~title:
        "E2 / Section 3.3 — consistency spectrum extremes (3 replicas, mixed \
         read/write)"
      ~columns:
        [ "config"; "accesses"; "anomalies"; "w-lat(s)"; "r-lat(s)"; "msgs";
          "bytes"; "ext-compat"; "violations" ]
  in
  List.iter
    (fun s ->
      Table.add_row tbl
        [ s.label; string_of_int s.accesses; string_of_int s.anomalies;
          Printf.sprintf "%.4f" s.write_latency;
          Printf.sprintf "%.4f" s.read_latency; string_of_int s.messages;
          string_of_int s.bytes; string_of_bool s.committed_ext_compatible;
          string_of_int s.violations ])
    [ strong; weak ];
  Table.render tbl
  ^ "expected: strong has 0 anomalies / 0 violations at much higher latency \
     and traffic;\nweak is cheap but anomalous under concurrency \
     (Theorem 2 / Corollary 1).\n"
