(** E16 — Section 4.1's distributed games / virtual reality discussion:
    differentiated focus and nimbus via per-access consistency levels.

    One avatar per replica random-walks; observers watch their focus target
    with a tight position bound (paying a pull round per observation) and
    peripheral avatars with a loose bound (served locally for free).  The
    table shows the accuracy/latency split between the two classes under the
    same workload — the self-determination property (Theorem 1) making
    per-access quality of service real. *)

val run : ?quick:bool -> unit -> string
