(** E9 — Section 4.2: prior relaxed-consistency models expressed as conit
    instances, each exercised by a scenario that checks the property the
    original model promises.

    | model | property checked |
    |-------|------------------|
    | conflict matrix | conflicting method invocations behave 1SR (no surprise aborts); non-conflicting ones stay cheap; "bounded conflict" holds |
    | N-ignorant | a replica is never ignorant of more than N returned transactions |
    | lazy replication | forced transactions: identical commit order everywhere and observed = actual; causal ones are cheap but anomalous |
    | cluster consistency | strict operations anomaly-free within their cluster; weak ones unconstrained |
    | timed / delta | no read misses a write older than delta |
    | quasi-copy | version / arithmetic / object conditions hold as conit bounds |
    | memory-model DAG | acceptance order topologically sorts the DAG; every node sees its predecessors' effects |
*)

type row = { model : string; scenario : string; property : string; holds : bool }

val rows : ?quick:bool -> unit -> row list

val run : ?quick:bool -> unit -> string
