(** E7 — QoS load balancing for replicated web servers: routing quality vs
    numerical-error bound on the per-server load conits.

    Expected shape: with a tight bound, load views are accurate — few
    misroutes and low imbalance at high dissemination traffic; loosening the
    bound trades routing quality for traffic. *)

val bounds_swept : float list

val run : ?quick:bool -> unit -> string
