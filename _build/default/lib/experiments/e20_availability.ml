open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

(* One partition window; reads at a disconnected replica with a deadline. *)
let run_one ~bound ~deadline ~duration =
  let n = 3 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare "c" ];
      antientropy_period = Some 0.5;
    }
  in
  let sys = System.create ~seed:197 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:199 in
  (* Writers at the connected majority. *)
  for i = 0 to 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        Replica.submit_write (System.replica sys i) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  done;
  (* Replica 2 is partitioned for the middle half of the run. *)
  Engine.schedule engine ~delay:(duration /. 4.0) (fun () ->
      Net.partition (System.net sys) [ 2 ] [ 0; 1 ]);
  Engine.schedule engine ~delay:(3.0 *. duration /. 4.0) (fun () ->
      Net.heal (System.net sys));
  (* Bounded reads with deadlines at the partitioned replica. *)
  let served = ref 0 and timeouts = ref 0 in
  let rrng = Prng.split rng in
  Tact_workload.Workload.poisson engine ~rng:rrng ~rate:1.0 ~until:duration
    (fun () ->
      Replica.submit_read (System.replica sys 2)
        ~deadline:(Engine.now engine +. deadline)
        ~on_timeout:(fun () -> incr timeouts)
        ~deps:[ ("c", bound) ]
        ~f:(fun db -> Db.get db "x")
        ~k:(fun _ -> incr served));
  System.run ~until:(duration +. 120.0) sys;
  let total = !served + !timeouts in
  if total = 0 then 0.0 else float_of_int !timeouts /. float_of_int total

let run ?(quick = false) () =
  let duration = if quick then 20.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E20 — availability under a %gs partition: read timeout rate at the \
            disconnected replica"
           (duration /. 2.0))
      ~columns:[ "consistency level"; "deadline 1s"; "deadline 5s" ]
  in
  List.iter
    (fun (label, bound) ->
      let cell d = Printf.sprintf "%.0f%%" (100.0 *. run_one ~bound ~deadline:d ~duration) in
      Table.add_row tbl [ label; cell 1.0; cell 5.0 ])
    [
      ("strong (0,0,0)", Bounds.strong);
      (Printf.sprintf "st <= %gs" (duration /. 8.0), Bounds.make ~st:(duration /. 8.0) ());
      ("weak", Bounds.weak);
    ];
  Table.render tbl
  ^ "expected: strong reads are unavailable for the whole partition; bounded \
     staleness buys availability for as long as its bound outlasts the \
     outage; weak reads never time out — the consistency axis of CAP made \
     continuous.\n"
