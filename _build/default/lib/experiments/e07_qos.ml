open Tact_util

let bounds_swept = [ 1.0; 2.0; 4.0; 8.0; infinity ]

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        "E7 — QoS load balancing: routing quality vs NE bound on load conits \
         (4 servers)"
      ~columns:
        [ "NE bound"; "requests"; "misroute rate"; "mean imbalance";
          "mean load err"; "msgs"; "KB" ]
  in
  let series = ref [] in
  List.iter
    (fun b ->
      let r =
        Tact_apps.Qos.run ~seed:7 ~n:4 ~rate:4.0 ~service_time:2.0 ~duration
          ~ne_bound:b ()
      in
      Table.add_row tbl
        [ (if b = infinity then "inf" else Table.cell_f b);
          string_of_int r.requests;
          Printf.sprintf "%.4f" r.misroute_rate;
          Printf.sprintf "%.2f" r.mean_imbalance;
          Printf.sprintf "%.2f" r.mean_load_error;
          string_of_int r.messages;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1024.0) ];
      series := ((if b = infinity then 16.0 else b), r.misroute_rate) :: !series)
    bounds_swept;
  Table.render tbl
  ^ Plot.series ~title:"misroute rate vs NE bound (inf plotted at 16)"
      [ ("misroutes", List.rev !series) ]
  ^ "expected: misroutes and imbalance grow with the bound while traffic \
     falls.\n"
