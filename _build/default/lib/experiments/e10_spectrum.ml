open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

type point = {
  label : string;
  mean_latency : float;
  p99_latency : float;
  messages : int;
  bytes : int;
  mean_obs_ne : float;
  anomalies : int;
  violations : int;
}

let conit = "spectrum"

let run_point ~label ~decl_ne ~(bound : Bounds.t) ~duration =
  let n = 4 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:decl_ne conit ];
      antientropy_period = Some 2.0;
    }
  in
  let sys = System.create ~seed:101 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:103 in
  let lat = Stats.create () in
  let lats = ref [] in
  let obs_ne = Stats.create () in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.5 ~until:duration
      (fun () ->
        let t0 = Engine.now engine in
        let done_ () =
          let l = Engine.now engine -. t0 in
          Stats.add lat l;
          lats := l :: !lats
        in
        let local = Wlog.conit_value (Replica.log r) conit in
        Stats.add obs_ne (float_of_int (System.write_count sys) -. local);
        if Prng.bool prng then
          Replica.submit_write r
            ~deps:[ (conit, bound) ]
            ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", 1.0))
            ~k:(fun _ -> done_ ())
        else
          Replica.submit_read r
            ~deps:[ (conit, bound) ]
            ~f:(fun db -> Db.get db "x")
            ~k:(fun _ -> done_ ()))
  done;
  System.run ~until:(duration +. 90.0) sys;
  (* Anomalies: writes whose committed result differs from the tentative one. *)
  let log0 = Replica.log (System.replica sys 0) in
  let anomalies = ref 0 in
  List.iter
    (fun (a : Access.t) ->
      match a.kind with
      | Access.Write_access id -> (
        match Wlog.final_outcome log0 id with
        | Some final ->
          if not (Value.equal (Op.result final) a.observed_result) then
            incr anomalies
        | None -> ())
      | Access.Read -> ())
    (System.records sys);
  let traffic = System.traffic sys in
  {
    label;
    mean_latency = (if Stats.count lat = 0 then 0.0 else Stats.mean lat);
    p99_latency = Stats.percentile (Array.of_list !lats) 99.0;
    messages = traffic.Net.messages;
    bytes = traffic.Net.bytes;
    mean_obs_ne = (if Stats.count obs_ne = 0 then 0.0 else Stats.mean obs_ne);
    anomalies = !anomalies;
    violations = List.length (Verify.check sys);
  }

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 50.0 in
  let points =
    [
      ("weak", infinity, Bounds.weak);
      ("st<=5", infinity, Bounds.make ~st:5.0 ());
      ("ne<=8", 8.0, Bounds.make ~ne:8.0 ());
      ("oe<=4", infinity, Bounds.make ~oe:4.0 ());
      ("ne<=2,oe<=2,st<=2", 2.0, Bounds.make ~ne:2.0 ~oe:2.0 ~st:2.0 ());
      ("strong (0,0,0)", 0.0, Bounds.strong);
    ]
  in
  let tbl =
    Table.create
      ~title:
        "E10 / Figure 1 — the consistency/performance continuum (4 replicas, \
         mixed workload)"
      ~columns:
        [ "point"; "mean lat(s)"; "p99 lat(s)"; "msgs"; "KB"; "mean obs NE";
          "anomalies"; "violations" ]
  in
  let series = ref [] in
  List.iteri
    (fun i (label, decl_ne, bound) ->
      let p = run_point ~label ~decl_ne ~bound ~duration in
      Table.add_row tbl
        [ p.label;
          Printf.sprintf "%.4f" p.mean_latency;
          Printf.sprintf "%.4f" p.p99_latency;
          string_of_int p.messages;
          Printf.sprintf "%.1f" (float_of_int p.bytes /. 1024.0);
          Printf.sprintf "%.2f" p.mean_obs_ne;
          string_of_int p.anomalies; string_of_int p.violations ];
      series := (float_of_int i, p.mean_latency) :: !series)
    points;
  Table.render tbl
  ^ Plot.series ~title:"mean access latency across the spectrum (weak -> strong)"
      [ ("latency", List.rev !series) ]
  ^ "expected: latency and traffic rise toward the strong end while observed \
     inconsistency and anomalies fall to zero.\n"
