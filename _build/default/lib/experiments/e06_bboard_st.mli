(** E6 — bulletin board: overhead and freshness vs staleness bound.

    Readers require ["AllMsg"] staleness below the swept bound; tight bounds
    force compulsory pulls, loose ones are served from whatever gossip
    delivered.  Expected shape: staleness-driven pulls and read latency fall
    as the bound loosens, while the observed numerical error (unseen posts)
    grows. *)

val bounds_swept : float list

val run : ?quick:bool -> unit -> string
