(** The experiment registry: every table/figure reproduction, indexed by the
    ids used in DESIGN.md and EXPERIMENTS.md. *)

type entry = {
  id : string;  (** e.g. "E3" *)
  name : string;  (** the bench-target name, e.g. "airline" *)
  paper_artifact : string;  (** which paper artifact it regenerates *)
  run : ?quick:bool -> unit -> string;
}

val all : entry list

val find : string -> entry option
(** Lookup by id (case-insensitive) or name. *)
