(** E20 — extension: the consistency/availability face of the tradeoff.

    The paper's continuum trades consistency against {e performance}; under
    partitions the same knob trades it against {e availability}.  Reads with
    a deadline run through a partition window: a strongly consistent read
    cannot be served from a disconnected replica and times out; bounded-
    staleness reads survive if their bound outlasts the partition; weak
    reads are always available.  The table reports timeout rates per
    (bound, deadline) — a CAP curve with the consistency axis made
    continuous. *)

val run : ?quick:bool -> unit -> string
