open Tact_util

let replica_counts = [ 2; 4; 8; 12; 16 ]

let run ?(quick = false) () =
  let duration = if quick then 10.0 else 40.0 in
  let counts = if quick then [ 2; 4; 8 ] else replica_counts in
  let tbl =
    Table.create
      ~title:
        "E13 — cost vs number of replicas (bulletin board, NE bound 4, no \
         gossip)"
      ~columns:
        [ "replicas"; "posts"; "msgs/post"; "KB/post"; "w-lat(s)";
          "mean obs NE"; "violations" ]
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let r =
        Tact_apps.Bboard.run ~seed:3 ~n ~post_rate:1.0 ~read_rate:0.5 ~duration
          ~ne_bound:4.0 ~antientropy:None ()
      in
      let per_post x = x /. float_of_int (max 1 r.posts) in
      Table.add_row tbl
        [ string_of_int n; string_of_int r.posts;
          Printf.sprintf "%.2f" (per_post (float_of_int r.messages));
          Printf.sprintf "%.2f" (per_post (float_of_int r.bytes) /. 1024.0);
          Printf.sprintf "%.4f" r.mean_write_latency;
          Printf.sprintf "%.2f" r.mean_observed_ne; string_of_int r.violations ];
      series :=
        (float_of_int n, per_post (float_of_int r.messages)) :: !series)
    counts;
  Table.render tbl
  ^ Plot.series ~title:"messages per post vs replica count"
      [ ("msgs/post", List.rev !series) ]
  ^ "expected: per-post traffic grows with N (shares shrink as the bound \
     splits N-1 ways) while observed NE stays under the bound.\n"
