open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let items = 8
let bound = 4.0

let item_key i = Printf.sprintf "item%d" i

let run_one ~coarse ~duration =
  let n = 4 in
  let topology = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0 in
  let conit_of i = if coarse then "all" else Printf.sprintf "item.%d" i in
  let config =
    {
      Config.default with
      Config.conits =
        (if coarse then [ Conit.declare ~ne_bound:bound "all" ]
         else List.init items (fun i -> Conit.declare ~ne_bound:bound (conit_of i)));
      antientropy_period = None;
    }
  in
  let sys = System.create ~seed:181 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:191 in
  for r = 0 to n - 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:4.0 ~until:duration
      (fun () ->
        let i = Prng.int prng items in
        Replica.submit_write (System.replica sys r) ~deps:[]
          ~affects:[ { Write.conit = conit_of i; nweight = 1.0; oweight = 0.0 } ]
          ~op:(Op.Add (item_key i, 1.0))
          ~k:ignore)
  done;
  (* Track the worst per-item divergence across replicas (sampled). *)
  let worst_item_gap = ref 0.0 in
  Engine.every engine ~period:0.25 (fun () ->
      for i = 0 to items - 1 do
        let values =
          List.init n (fun r ->
              Tact_store.Db.get_float (Replica.db (System.replica sys r)) (item_key i))
        in
        let hi = List.fold_left Float.max neg_infinity values in
        let lo = List.fold_left Float.min infinity values in
        if hi -. lo > !worst_item_gap then worst_item_gap := hi -. lo
      done;
      Engine.now engine < duration);
  System.run ~until:(duration +. 60.0) sys;
  let traffic = System.traffic sys in
  (traffic.Net.messages, traffic.Net.bytes, !worst_item_gap)

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 45.0 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "E19 — conit granularity: 1 coarse conit vs %d per-item conits \
            (bound %g each, %d items)"
           items bound items)
      ~columns:[ "definition"; "msgs"; "KB"; "worst per-item divergence" ]
  in
  let cm, cb, cgap = run_one ~coarse:true ~duration in
  let fm, fb, fgap = run_one ~coarse:false ~duration in
  Table.add_row tbl
    [ "coarse (1 conit)"; string_of_int cm;
      Printf.sprintf "%.1f" (float_of_int cb /. 1024.0);
      Printf.sprintf "%.1f" cgap ];
  Table.add_row tbl
    [ Printf.sprintf "fine (%d conits)" items; string_of_int fm;
      Printf.sprintf "%.1f" (float_of_int fb /. 1024.0);
      Printf.sprintf "%.1f" fgap ];
  Table.render tbl
  ^ "expected: the coarse definition pays for false sharing (every write \
     consumes the one budget), the fine one spends budget only where there \
     is interest; per-item divergence stays near the bound in both.  How \
     conits are defined IS the tuning knob the model hands applications.\n"
