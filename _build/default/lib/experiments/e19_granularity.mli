(** E19 — conit granularity: one coarse conit versus per-item conits.

    How an application {e defines} its conits is the model's main degree of
    freedom (Sections 3.1, 4.1 — e.g. splitting first-class from coach
    seats).  Here the same multi-item workload runs under (a) one coarse
    conit covering every item with absolute bound B, and (b) one conit per
    item, each with the same bound B.  The coarse definition suffers false
    sharing — every write anywhere consumes the single shared budget, so
    pushes fire constantly — while fine conits spend budget only where
    there is actual interest, at the cost of per-conit bookkeeping.
    Expected shape: fine granularity cuts traffic by about the item count
    while per-item error stays bounded either way. *)

val run : ?quick:bool -> unit -> string
