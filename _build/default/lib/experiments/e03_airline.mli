(** E3 — airline reservations: conflict rate vs relative numerical error
    (Section 4.1).

    Sweeps the declared relative NE bound of the per-flight seat conits and
    reports, for each point, the measured conflict rate of committed
    reservations, the measured mean relative NE at reservation time, and the
    paper's analytic prediction (conflict probability = relative NE for
    uniformly random seat choice).  The expected shape: conflict rate falls
    monotonically as the bound tightens and tracks the measured relative NE
    (the paper reports the formula "verified through experiments"). *)

val bounds_swept : float list

val run : ?quick:bool -> unit -> string
