open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

(* Visibility delay: for each write accepted at replica 0, the time until a
   same-cluster peer (1) and a cross-cluster peer (3) know it. *)
let run_one ~ne_bound ~duration =
  let topology =
    Topology.clustered ~clusters:2 ~per_cluster:2 ~local:0.002 ~wan:0.08
      ~bandwidth:500_000.0
  in
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound "c" ];
      antientropy_period = Some 4.0;
    }
  in
  let sys = System.create ~seed:163 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:167 in
  let local_vis = Stats.create () and remote_vis = Stats.create () in
  Tact_workload.Workload.poisson engine ~rng ~rate:2.0 ~until:duration (fun () ->
      let t0 = Engine.now engine in
      let seq_before = Wlog.num_known (Replica.log (System.replica sys 0)) in
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 0.0 } ]
        ~op:(Op.Add ("x", 1.0))
        ~k:ignore;
      let watch peer stats =
        let threshold = seq_before + 1 in
        let rec poll () =
          if Wlog.num_known (Replica.log (System.replica sys peer)) >= threshold
          then Stats.add stats (Engine.now engine -. t0)
          else Engine.schedule engine ~delay:0.005 poll
        in
        poll ()
      in
      watch 1 local_vis;
      watch 3 remote_vis);
  System.run ~until:(duration +. 60.0) sys;
  ( (if Stats.count local_vis = 0 then 0.0 else Stats.mean local_vis),
    (if Stats.count remote_vis = 0 then 0.0 else Stats.mean remote_vis),
    (System.traffic sys).Net.messages )

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 45.0 in
  let tbl =
    Table.create
      ~title:
        "E17 — heterogeneous WAN: write visibility by cluster distance (2 \
         LAN clusters of 2, 2ms local / 80ms WAN)"
      ~columns:
        [ "NE bound"; "same-cluster visibility(s)"; "cross-cluster visibility(s)";
          "msgs" ]
  in
  List.iter
    (fun b ->
      let local, remote, msgs = run_one ~ne_bound:b ~duration in
      Table.add_row tbl
        [ (if b = infinity then "inf (gossip only)" else Table.cell_f b);
          Printf.sprintf "%.4f" local; Printf.sprintf "%.4f" remote;
          string_of_int msgs ])
    [ 1.0; 4.0; 16.0; infinity ];
  Table.render tbl
  ^ "expected: same-cluster visibility sits near the LAN latency, \
     cross-cluster near the WAN latency, with both growing toward the gossip \
     period as the bound loosens.\n"
