(** Closed-form cost predictions for the consistency protocols, used as
    overlays/oracles in experiments and tests.

    These are first-order models: they predict the compulsory protocol
    traffic from the workload and the bounds, ignoring batching windfalls
    (one push can carry several writes) and retries.  Experiments compare
    simulation against them to confirm the scaling structure, not the exact
    constant. *)

val even_share : bound:float -> n:int -> float
(** A writer's slice of one receiver's NE budget under the even split. *)

val pushes_per_write : bound:float -> n:int -> weight:float -> float
(** Expected budget-forced pushes per write for a single writer under the
    even split: each peer must be pushed to every [share/weight] writes, so
    the rate is [(n-1) * weight / share] pushes per write, capped at [n-1]
    (the eager ceiling, reached when a single write overflows the share). *)

val pull_round_msgs : n:int -> int
(** Messages in one complete pull round: a request and a reply per peer. *)

val pull_read_latency : n:int -> one_way:float -> float
(** Time for a pull round to complete (the slowest peer's round trip);
    homogeneous latency means one RTT. *)

val conflict_probability : rel_ne:float -> float
(** Section 4.1: a reservation aimed at a uniformly random observed-free seat
    conflicts with an unseen reservation with probability equal to the
    relative numerical error (clamped to [0, 1]). *)

val staleness_pull_rate : read_rate:float -> bound:float -> gossip:float option -> float
(** Staleness-forced pulls per second for a reader population issuing
    [read_rate] bounded reads: zero when gossip already delivers within the
    bound, else up to one pull batch per read. *)
