open Tact_util
open Tact_sim
open Tact_replica
open Tact_apps

let run_one ~instability ~duration =
  let n = 3 in
  let topology = Topology.uniform ~n ~latency:0.05 ~bandwidth:500_000.0 in
  let config = { Config.default with Config.antientropy_period = Some 1.0 } in
  let sys = System.create ~seed:173 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:179 in
  (* Authors type 3–12 character edits. *)
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.5 ~until:duration
      (fun () ->
        let len = 3 + Prng.int prng 10 in
        Editor.insert_text session ~para:0 ~author:i
          ~text:(String.make len (Char.chr (97 + i)))
          ~k:ignore)
  done;
  (* A reviewer at replica 0 reads under the instability bound. *)
  let lat = Stats.create () in
  let observed_instability = Stats.create () in
  let reviewer = Session.create (System.replica sys 0) in
  let rrng = Prng.split rng in
  Tact_workload.Workload.poisson engine ~rng:rrng ~rate:1.0 ~until:duration
    (fun () ->
      let t0 = Engine.now engine in
      (* True instability at submission: uncommitted character weight. *)
      Stats.add observed_instability
        (Tact_store.Wlog.tentative_oweight
           (Replica.log (System.replica sys 0))
           (Editor.add_conit ~para:0));
      Editor.read_paragraph reviewer ~para:0 ~max_unseen_chars:infinity
        ~max_instability:instability ~max_delay:infinity ~k:(fun _ ->
          Stats.add lat (Engine.now engine -. t0)));
  System.run ~until:(duration +. 90.0) sys;
  let violations = List.length (Verify.check sys) in
  ( (if Stats.count lat = 0 then 0.0 else Stats.mean lat),
    (if Stats.count observed_instability = 0 then 0.0
     else Stats.mean observed_instability),
    violations )

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 45.0 in
  let tbl =
    Table.create
      ~title:
        "E18 / Section 4.1 — shared editor: read latency vs instability bound \
         (3 authors, 3-12 char edits)"
      ~columns:
        [ "instability bound (chars)"; "mean r-lat(s)";
          "ambient instability (chars)"; "violations" ]
  in
  List.iter
    (fun b ->
      let lat, inst, violations = run_one ~instability:b ~duration in
      Table.add_row tbl
        [ (if b = infinity then "inf" else Table.cell_f b);
          Printf.sprintf "%.4f" lat; Printf.sprintf "%.1f" inst;
          string_of_int violations ])
    [ 0.0; 8.0; 32.0; infinity ];
  Table.render tbl
  ^ "expected: tighter instability bounds make reviewers wait for \
     commitment; the ambient (unbounded) instability shows what they are \
     protected from.\n"
