open Tact_util

let bounds_swept = [ 0.02; 0.05; 0.1; 0.2; 0.4; infinity ]

let run ?(quick = false) () =
  let duration = if quick then 20.0 else 80.0 in
  let tbl =
    Table.create
      ~title:
        "E3 / Section 4.1 — airline reservations: conflict rate vs relative NE \
         (4 replicas, 2 flights)"
      ~columns:
        [ "rel-NE bound"; "attempts"; "final conflicts"; "conflict rate";
          "measured rel-NE"; "w-lat(s)"; "msgs"; "KB" ]
  in
  let series_measured = ref [] and series_bound = ref [] in
  List.iter
    (fun b ->
      let r =
        Tact_apps.Airline.run ~seed:5 ~n:4 ~flights:2 ~seats:150 ~rate:2.0
          ~duration ~ne_rel:b ()
      in
      Table.add_row tbl
        [ (if b = infinity then "inf" else Printf.sprintf "%.2f" b);
          string_of_int r.attempts; string_of_int r.final_conflicts;
          Printf.sprintf "%.4f" r.conflict_rate;
          Printf.sprintf "%.4f" r.mean_rel_ne;
          Printf.sprintf "%.4f" r.mean_write_latency;
          string_of_int r.messages;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1024.0) ];
      series_measured := (r.mean_rel_ne, r.conflict_rate) :: !series_measured;
      if b < infinity then series_bound := (b, b) :: !series_bound)
    bounds_swept;
  Table.render tbl
  ^ Plot.series
      ~title:"conflict rate vs relative NE (a = measured, b = analytic p = NE_rel)"
      [
        ("measured", List.rev !series_measured);
        ("analytic", List.rev !series_bound);
      ]
  ^ "expected: conflict rate falls with the bound and tracks measured \
     relative NE;\ntighter bounds cost write latency and traffic.\n"
