(** E11 — ablation: numerical-error budget allocation policies under skewed
    write rates (DESIGN.md design-choice index).

    One replica writes an order of magnitude faster than the rest; the
    declared NE bound is fixed.  With the {b even} split the hot writer
    exhausts its small share and pushes constantly while the idle writers'
    shares sit unused; the {b adaptive} split reallocates budget toward the
    hot writer, trading the same error bound for less traffic (at the cost
    of transient over-runs while rate estimates disagree). *)

type row = {
  policy : string;
  pushes : int;
  messages : int;
  bytes : int;
  mean_write_latency : float;
  max_unseen : float;  (** max sampled accepted-but-unseen weight at any replica *)
}

val run : ?quick:bool -> unit -> string
