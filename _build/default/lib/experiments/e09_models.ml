open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica
open Tact_models

type row = { model : string; scenario : string; property : string; holds : bool }

let topo n = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0

(* --- N-ignorant ----------------------------------------------------- *)

let n_ignorant_row ~nbound ~duration =
  let n = 4 in
  let config =
    {
      Config.default with
      Config.conits = N_ignorant.conits ~n_bound:nbound;
      antientropy_period = None;
    }
  in
  let sys = System.create ~seed:41 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:43 in
  let sessions = Array.init n (fun i -> Session.create (System.replica sys i)) in
  for i = 0 to n - 1 do
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:2.0 ~until:duration
      (fun () -> N_ignorant.transaction sessions.(i) ~op:(Op.Add ("t", 1.0)) ~k:ignore)
  done;
  (* Sample ignorance of each replica over the run; returned transactions are
     what the invariant covers, so sample against returned counts. *)
  let returned = ref 0 in
  let max_ign = ref 0.0 in
  (* Count returns through a patched workload is intrusive; instead sample
     the accepted-unseen gap and subtract the in-flight allowance observed. *)
  Engine.every engine ~period:0.25 (fun () ->
      ignore !returned;
      for i = 0 to n - 1 do
        let local =
          Wlog.conit_value (Replica.log (System.replica sys i)) N_ignorant.conit_name
        in
        let global = float_of_int (System.write_count sys) in
        if global -. local > !max_ign then max_ign := global -. local
      done;
      Engine.now engine < duration);
  System.run ~until:(duration +. 60.0) sys;
  let slack = 4.0 (* one in-flight unreturned write per replica *) in
  {
    model = "N-ignorant";
    scenario = Printf.sprintf "N=%g, max observed ignorance %.0f" nbound !max_ign;
    property = "ignorance <= N (+ in-flight slack)";
    holds = !max_ign <= nbound +. slack;
  }

(* --- Conflict matrix -------------------------------------------------- *)

let account_deposit amount =
  Op.Proc
    {
      name = "deposit";
      size = 16;
      body =
        (fun db ->
          Db.add db "balance" amount;
          Op.Applied (Db.get db "balance"));
    }

let account_withdraw amount =
  Op.Proc
    {
      name = "withdraw";
      size = 16;
      body =
        (fun db ->
          if Db.get_float db "balance" >= amount then begin
            Db.add db "balance" (-.amount);
            Op.Applied (Db.get db "balance")
          end
          else Op.Conflict "insufficient funds");
    }

let conflict_matrix_run ~with_matrix ~duration =
  (* methods: 0 = deposit, 1 = withdraw; withdraw conflicts with both. *)
  let matrix = [| [| false; true |]; [| true; true |] |] in
  Conflict_matrix.check matrix;
  let n = 3 in
  let config =
    {
      Config.default with
      Config.conits = Conflict_matrix.conits matrix;
      antientropy_period = Some 0.5;
      initial_db = [ ("balance", Value.Float 200.0) ];
    }
  in
  let sys = System.create ~seed:47 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:53 in
  let outcomes = ref [] in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        let m = if Prng.bool prng then 0 else 1 in
        let op = if m = 0 then account_deposit 10.0 else account_withdraw 25.0 in
        let k tentative =
          outcomes := (m, tentative) :: !outcomes
        in
        if with_matrix then Conflict_matrix.invoke session ~matrix ~method_:m ~op ~k
        else
          Replica.submit_write (System.replica sys i) ~deps:[]
            ~affects:(Conflict_matrix.affects_of_method matrix m)
            ~op ~k)
  done;
  System.run ~until:(duration +. 60.0) sys;
  (* Surprise aborts: tentative outcome disagreed with the committed one. *)
  let log0 = Replica.log (System.replica sys 0) in
  let surprises = ref 0 and total = ref 0 in
  List.iter
    (fun (a : Access.t) ->
      match a.kind with
      | Access.Write_access id -> (
        incr total;
        match Wlog.final_outcome log0 id with
        | Some final ->
          (* Account ops return the balance on success and Nil on conflict,
             so a value mismatch captures both kinds of surprise. *)
          if not (Value.equal (Op.result final) a.observed_result) then
            incr surprises
        | None -> incr surprises)
      | Access.Read -> ())
    (System.records sys);
  (!surprises, !total, List.length (Verify.check sys))

let conflict_matrix_rows ~duration =
  let s_with, t_with, viol = conflict_matrix_run ~with_matrix:true ~duration in
  let s_without, t_without, _ = conflict_matrix_run ~with_matrix:false ~duration in
  [
    {
      model = "conflict matrix";
      scenario =
        Printf.sprintf "bank account, %d invocations, matrix deps on" t_with;
      property = "no surprise aborts, no violations";
      holds = s_with = 0 && viol = 0;
    };
    {
      model = "conflict matrix";
      scenario =
        Printf.sprintf "same workload, deps off: %d/%d surprises" s_without t_without;
      property = "baseline shows anomalies (sanity)";
      holds = s_without > 0;
    };
  ]

(* --- Lazy replication -------------------------------------------------- *)

let lazy_replication_rows ~duration =
  let n = 3 in
  let config =
    {
      Config.default with
      Config.conits = Lazy_replication.conits;
      antientropy_period = Some 0.5;
    }
  in
  let sys = System.create ~seed:59 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:61 in
  let forced_anoms = ref 0 and forced_total = ref 0 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        if Prng.bool prng then
          Lazy_replication.forced session ~op:(Op.Add ("seq", 1.0)) ~k:ignore
        else Lazy_replication.causal session ~op:(Op.Add ("notes", 1.0)) ~k:ignore)
  done;
  System.run ~until:(duration +. 60.0) sys;
  let log0 = Replica.log (System.replica sys 0) in
  List.iter
    (fun (a : Access.t) ->
      match a.kind with
      | Access.Write_access id when Access.depends_on a Lazy_replication.forced_conit
        -> (
        incr forced_total;
        match Wlog.final_outcome log0 id with
        | Some final ->
          if not (Value.equal (Op.result final) a.observed_result) then
            incr forced_anoms
        | None -> incr forced_anoms)
      | Access.Write_access _ | Access.Read -> ())
    (System.records sys);
  (* Forced order must be identical at every replica. *)
  let forced_order r =
    List.filter_map
      (fun (w : Write.t) ->
        if Write.affects_conit w Lazy_replication.forced_conit then Some w.id
        else None)
      (Wlog.committed (Replica.log (System.replica sys r)))
  in
  let same_order =
    List.for_all (fun r -> forced_order r = forced_order 0) [ 1; 2 ]
  in
  [
    {
      model = "lazy replication";
      scenario = Printf.sprintf "%d forced txns across 3 replicas" !forced_total;
      property = "forced: same total order everywhere, observed = actual";
      holds = same_order && !forced_anoms = 0;
    };
  ]

(* --- Cluster consistency ------------------------------------------------ *)

let cluster_rows ~duration =
  let n = 4 in
  let clusters = 2 in
  let config =
    {
      Config.default with
      Config.conits = Cluster.conits ~clusters;
      antientropy_period = Some 0.5;
    }
  in
  let sys = System.create ~seed:67 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:71 in
  let strict_anoms = ref 0 and strict_total = ref 0 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        let cl = i mod clusters in
        if Prng.bool prng then
          Cluster.strict_op session ~cluster:cl
            ~op:(Op.Add (Printf.sprintf "cl%d" cl, 1.0))
            ~k:ignore
        else
          Cluster.weak_op session ~cluster:cl
            ~op:(Op.Add (Printf.sprintf "cl%d.weak" cl, 1.0))
            ~k:ignore)
  done;
  System.run ~until:(duration +. 60.0) sys;
  let log0 = Replica.log (System.replica sys 0) in
  List.iter
    (fun (a : Access.t) ->
      match a.kind with
      | Access.Write_access id when a.deps <> [] -> (
        incr strict_total;
        match Wlog.final_outcome log0 id with
        | Some final ->
          if not (Value.equal (Op.result final) a.observed_result) then
            incr strict_anoms
        | None -> incr strict_anoms)
      | Access.Write_access _ | Access.Read -> ())
    (System.records sys);
  [
    {
      model = "cluster consistency";
      scenario = Printf.sprintf "%d strict ops over 2 clusters" !strict_total;
      property = "strict ops observed = actual; weak ops unconstrained";
      holds = !strict_anoms = 0 && List.length (Verify.check sys) = 0;
    };
  ]

(* --- Timed / delta ------------------------------------------------------ *)

let timed_rows ~duration =
  let n = 3 in
  let config = { Config.default with Config.antientropy_period = Some 2.0 } in
  let sys = System.create ~seed:73 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:79 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        if Prng.bool prng then Timed.write session ~op:(Op.Add ("x", 1.0)) ~k:ignore
        else
          Timed.read session ~delta:0.5 ~f:(fun db -> Db.get db "x") ~k:ignore)
  done;
  System.run ~until:(duration +. 60.0) sys;
  [
    {
      model = "timed/delta";
      scenario = "delta = 0.5 s reads against 2 s gossip";
      property = "no read misses a write older than delta";
      holds = Verify.check sys = [];
    };
  ]

(* --- Quasi-copy --------------------------------------------------------- *)

let quasi_copy_rows ~duration =
  let n = 3 in
  let config = { Config.default with Config.antientropy_period = Some 1.0 } in
  let sys = System.create ~seed:83 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:89 in
  for i = 0 to n - 1 do
    let session = Session.create (System.replica sys i) in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.0 ~until:duration
      (fun () ->
        match Prng.int prng 4 with
        | 0 ->
          Quasi_copy.write_numeric session ~key:"quote"
            ~delta:(Prng.uniform_in prng ~lo:(-2.0) ~hi:2.0)
            ~k:ignore
        | 1 -> Quasi_copy.read_version session ~key:"quote" ~versions:3.0 ~k:ignore
        | 2 -> Quasi_copy.read_arithmetic session ~key:"quote" ~epsilon:5.0 ~k:ignore
        | _ -> Quasi_copy.read_delay session ~key:"quote" ~alpha:2.0 ~k:ignore)
  done;
  System.run ~until:(duration +. 60.0) sys;
  [
    {
      model = "quasi-copy";
      scenario = "version<=3, arithmetic<=5, delay<=2s conditions mixed";
      property = "all coherency conditions hold";
      holds = Verify.check sys = [];
    };
  ]

(* --- Memory-model DAG ---------------------------------------------------- *)

let memdag_rows () =
  let dag = { Memdag.nodes = 4; edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] } in
  Memdag.check dag;
  let n = 3 in
  let config = { Config.default with Config.antientropy_period = Some 0.2 } in
  let sys = System.create ~seed:97 ~topology:(topo n) ~config () in
  let engine = System.engine sys in
  let order = ref [] in
  let submit_node ~at ~replica ~node ~k =
    Engine.schedule engine ~delay:at (fun () ->
        let session = Session.create (System.replica sys replica) in
        Memdag.submit session ~dag ~node
          ~op:
            (Op.Proc
               {
                 name = Printf.sprintf "node%d" node;
                 size = 16;
                 body =
                   (fun db ->
                     Db.add db "trace" 1.0;
                     Db.set db (Printf.sprintf "node%d" node)
                       (Value.Float (Db.get_float db "trace"));
                     Op.Applied Value.Nil);
               })
          ~k:(fun _ ->
            order := node :: !order;
            k ()))
  in
  (* The diamond: node 0 at replica 0; 1 and 2 concurrently elsewhere; 3 back
     at replica 0, submitted only after its program-order predecessors
     returned (as a processor would). *)
  submit_node ~at:0.1 ~replica:0 ~node:0 ~k:(fun () ->
      submit_node ~at:0.05 ~replica:1 ~node:1 ~k:(fun () -> ());
      submit_node ~at:0.05 ~replica:2 ~node:2 ~k:(fun () -> ()));
  Engine.schedule engine ~delay:5.0 (fun () ->
      let session = Session.create (System.replica sys 0) in
      Memdag.submit session ~dag ~node:3 ~op:Op.Noop ~k:(fun _ ->
          order := 3 :: !order));
  System.run ~until:60.0 sys;
  let accept_order = List.rev !order in
  [
    {
      model = "memory-model DAG";
      scenario = "diamond DAG across 3 replicas";
      property = "return order topologically sorts the DAG";
      holds =
        List.length accept_order = 4
        && Memdag.execution_respects_dag dag ~accept_order
        && Verify.check sys = [];
    };
  ]

let rows ?(quick = false) () =
  let duration = if quick then 10.0 else 30.0 in
  [ n_ignorant_row ~nbound:1.0 ~duration; n_ignorant_row ~nbound:8.0 ~duration ]
  @ conflict_matrix_rows ~duration
  @ lazy_replication_rows ~duration
  @ cluster_rows ~duration
  @ timed_rows ~duration
  @ quasi_copy_rows ~duration
  @ memdag_rows ()

let run ?(quick = false) () =
  let tbl =
    Table.create
      ~title:"E9 / Section 4.2 — prior consistency models as conit instances"
      ~columns:[ "model"; "scenario"; "property"; "holds" ]
  in
  List.iter
    (fun r -> Table.add_row tbl [ r.model; r.scenario; r.property; string_of_bool r.holds ])
    (rows ~quick ());
  Table.render tbl ^ "expected: every 'holds' column reads true.\n"
