(** E10 — Figure 1 / Section 1: the consistency–performance continuum.

    One mixed workload is run at several points of the joint (NE, OE, ST)
    spectrum, from the weak extreme to the strong one.  For every point the
    table reports access latency and protocol traffic along with the residual
    inconsistency actually observed.  Expected shape: cost (latency, traffic)
    rises monotonically toward the strong end while observed inconsistency
    falls to zero — the tradeoff the continuous model exists to expose. *)

type point = {
  label : string;
  mean_latency : float;
  p99_latency : float;
  messages : int;
  bytes : int;
  mean_obs_ne : float;
  anomalies : int;
  violations : int;
}

val run : ?quick:bool -> unit -> string
