open Tact_util
open Tact_core

let bounds_swept = [ 0.0; 1.0; 2.0; 4.0; 8.0; 16.0; infinity ]

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        "E5 — bulletin board: read latency vs OE bound on AllMsg (4 replicas, \
         gossip 2s)"
      ~columns:
        [ "OE bound"; "reads"; "mean r-lat(s)"; "p99 r-lat(s)"; "OE syncs";
          "msgs"; "violations" ]
  in
  let series = ref [] in
  List.iter
    (fun b ->
      let r =
        Tact_apps.Bboard.run ~seed:9 ~n:4 ~post_rate:2.0 ~read_rate:1.0
          ~duration ~antientropy:(Some 2.0)
          ~read_bounds:(Bounds.make ~oe:b ()) ()
      in
      Table.add_row tbl
        [ (if b = infinity then "inf" else Table.cell_f b);
          string_of_int r.reads;
          Printf.sprintf "%.4f" r.mean_read_latency;
          Printf.sprintf "%.4f" r.p99_read_latency;
          string_of_int r.oe_syncs;
          string_of_int r.messages; string_of_int r.violations ];
      series := ((if b = infinity then 32.0 else b), r.mean_read_latency) :: !series)
    bounds_swept;
  Table.render tbl
  ^ Plot.series ~title:"mean read latency vs OE bound (inf plotted at 32)"
      [ ("latency", List.rev !series) ]
  ^ "expected: read latency falls monotonically as the OE bound loosens.\n"
