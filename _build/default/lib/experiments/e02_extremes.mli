(** E2 — the two extremes of the continuous consistency spectrum
    (Section 3.3, Theorems 2/3, Corollary 1).

    A mixed read/write workload over per-data-item conits runs twice:

    - {b strong}: every conit declared with NE bound 0 and every access
      requiring (0, 0, 0) — the 1SR+EXT extreme.  The checks: the verifier
      reports no violations (including the definitional order-error reading);
      every write's observed (tentative) result equals its actual (committed)
      result; every read's observed result equals the result of replaying its
      actual prefix history (Corollary 1); and the committed order is
      compatible with external and causal order.
    - {b weak}: no constraints — the other extreme, where the same checks are
      expected to fail under concurrency while the cost collapses.

    The rendered table contrasts correctness and cost of the two ends. *)

type side = {
  label : string;
  accesses : int;
  anomalies : int;  (** observed result <> actual result *)
  write_latency : float;
  read_latency : float;
  messages : int;
  bytes : int;
  committed_ext_compatible : bool;
  violations : int;
}

val run_side : ?quick:bool -> strong:bool -> seed:int -> unit -> side

val run : ?quick:bool -> unit -> string
