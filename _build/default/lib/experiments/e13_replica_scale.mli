(** E13 — scalability with the number of replicas.

    The bulletin-board workload (fixed per-replica post rate, NE bound 4,
    no gossip) runs at growing replica counts.  Expected shape: per-write
    protocol cost grows with N — the bound is split N−1 ways, so each
    writer's share shrinks and pushes fire more often — the fundamental
    wide-area scaling cost that motivates bounded inconsistency in the first
    place (Section 1). *)

val replica_counts : int list

val run : ?quick:bool -> unit -> string
