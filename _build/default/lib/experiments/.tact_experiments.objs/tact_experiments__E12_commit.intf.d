lib/experiments/e12_commit.mli:
