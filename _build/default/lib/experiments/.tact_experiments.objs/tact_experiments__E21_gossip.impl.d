lib/experiments/e21_gossip.ml: Array Config Engine List Net Op Printf Prng Replica Stats System Table Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Wlog Write
