lib/experiments/e17_wan.mli:
