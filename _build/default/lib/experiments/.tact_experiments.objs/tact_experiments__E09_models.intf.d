lib/experiments/e09_models.mli:
