lib/experiments/e02_extremes.mli:
