lib/experiments/e06_bboard_st.mli:
