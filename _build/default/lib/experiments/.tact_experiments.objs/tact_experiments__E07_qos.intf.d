lib/experiments/e07_qos.mli:
