lib/experiments/e10_spectrum.mli:
