lib/experiments/e07_qos.ml: List Plot Printf Table Tact_apps Tact_util
