lib/experiments/e05_bboard_oe.mli:
