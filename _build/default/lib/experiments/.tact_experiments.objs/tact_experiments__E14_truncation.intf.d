lib/experiments/e14_truncation.mli:
