lib/experiments/e01_fig4.mli:
