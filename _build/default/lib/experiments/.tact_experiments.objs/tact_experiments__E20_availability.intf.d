lib/experiments/e20_availability.mli:
