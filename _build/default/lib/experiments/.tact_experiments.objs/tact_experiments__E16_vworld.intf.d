lib/experiments/e16_vworld.mli:
