lib/experiments/e17_wan.ml: Config Conit Engine List Net Op Printf Prng Replica Stats System Table Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Wlog Write
