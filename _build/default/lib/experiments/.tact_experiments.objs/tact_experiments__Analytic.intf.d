lib/experiments/analytic.mli:
