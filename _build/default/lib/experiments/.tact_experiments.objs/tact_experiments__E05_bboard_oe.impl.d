lib/experiments/e05_bboard_oe.ml: Bounds List Plot Printf Table Tact_apps Tact_core Tact_util
