lib/experiments/e18_editor.mli:
