lib/experiments/e13_replica_scale.ml: List Plot Printf Table Tact_apps Tact_util
