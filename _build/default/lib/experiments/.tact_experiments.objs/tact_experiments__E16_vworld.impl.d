lib/experiments/e16_vworld.ml: Printf Table Tact_apps Tact_util
