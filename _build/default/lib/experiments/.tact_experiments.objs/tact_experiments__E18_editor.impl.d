lib/experiments/e18_editor.ml: Char Config Editor Engine List Printf Prng Replica Session Stats String System Table Tact_apps Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Verify
