lib/experiments/e21_gossip.mli:
