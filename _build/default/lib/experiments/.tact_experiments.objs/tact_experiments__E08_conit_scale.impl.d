lib/experiments/e08_conit_scale.ml: Config Conit List Net Op Printf Replica Sys System Table Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Write
