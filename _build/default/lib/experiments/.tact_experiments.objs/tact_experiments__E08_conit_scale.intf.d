lib/experiments/e08_conit_scale.mli:
