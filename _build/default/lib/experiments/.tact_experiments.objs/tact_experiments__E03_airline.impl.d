lib/experiments/e03_airline.ml: List Plot Printf Table Tact_apps Tact_util
