lib/experiments/e04_bboard_ne.ml: List Plot Printf Table Tact_apps Tact_util
