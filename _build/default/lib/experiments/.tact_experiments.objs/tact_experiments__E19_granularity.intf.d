lib/experiments/e19_granularity.mli:
