lib/experiments/e20_availability.ml: Bounds Config Conit Db Engine List Net Op Printf Prng Replica System Table Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Write
