lib/experiments/e04_bboard_ne.mli:
