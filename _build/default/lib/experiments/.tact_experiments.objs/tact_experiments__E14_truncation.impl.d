lib/experiments/e14_truncation.ml: Config Engine List Net Op Printf Prng Replica System Table Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Wlog Write
