lib/experiments/e11_budget.mli:
