lib/experiments/e13_replica_scale.mli:
