lib/experiments/e06_bboard_st.ml: Bounds List Plot Printf Table Tact_apps Tact_core Tact_util
