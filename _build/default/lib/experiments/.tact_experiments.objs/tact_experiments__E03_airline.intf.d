lib/experiments/e03_airline.mli:
