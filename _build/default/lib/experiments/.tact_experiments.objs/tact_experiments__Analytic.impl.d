lib/experiments/analytic.ml: Float
