lib/experiments/e15_push_pull.mli:
