lib/experiments/e12_commit.ml: Array Config Engine List Monitor Net Op Plot Prng Replica System Table Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Wlog Write
