lib/experiments/registry.mli:
