lib/experiments/e01_fig4.ml: Buffer List Metrics Op Printf Table Tact_core Tact_store Tact_util Write
