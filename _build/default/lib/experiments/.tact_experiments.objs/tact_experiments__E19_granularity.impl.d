lib/experiments/e19_granularity.ml: Config Conit Engine Float List Net Op Printf Prng Replica System Table Tact_core Tact_replica Tact_sim Tact_store Tact_util Tact_workload Topology Write
