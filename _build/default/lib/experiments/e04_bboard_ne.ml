open Tact_util

let bounds_swept = [ 0.0; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ]

let run ?(quick = false) () =
  let duration = if quick then 15.0 else 60.0 in
  let tbl =
    Table.create
      ~title:
        "E4 — bulletin board: traffic vs absolute NE bound on AllMsg (4 \
         replicas, no gossip)"
      ~columns:
        [ "NE bound"; "posts"; "msgs"; "msgs/post"; "KB"; "w-lat(s)";
          "mean obs NE"; "max obs NE"; "violations" ]
  in
  let series = ref [] in
  List.iter
    (fun b ->
      let r =
        Tact_apps.Bboard.run ~seed:3 ~n:4 ~post_rate:2.0 ~read_rate:1.0
          ~duration ~ne_bound:b ~antientropy:None ()
      in
      Table.add_row tbl
        [ Table.cell_f b; string_of_int r.posts; string_of_int r.messages;
          Printf.sprintf "%.2f" (float_of_int r.messages /. float_of_int (max 1 r.posts));
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1024.0);
          Printf.sprintf "%.4f" r.mean_write_latency;
          Printf.sprintf "%.2f" r.mean_observed_ne;
          Printf.sprintf "%.2f" r.max_observed_ne; string_of_int r.violations ];
      series := (b, float_of_int r.messages) :: !series)
    bounds_swept;
  Table.render tbl
  ^ Plot.series ~title:"messages vs NE bound" [ ("msgs", List.rev !series) ]
  ^ "expected: traffic and write latency fall as the bound loosens; observed \
     NE stays at or below the bound.\n"
