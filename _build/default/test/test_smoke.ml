(* End-to-end smoke tests: a small replicated system over a simulated WAN. *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let topo n = Topology.uniform ~n ~latency:0.04 ~bandwidth:1_000_000.0

let unit_weight conit = { Write.conit; nweight = 1.0; oweight = 1.0 }

(* Weak consistency: writes at every replica, background gossip, eventual
   convergence. *)
let test_eventual_convergence () =
  let config =
    { Config.default with Config.antientropy_period = Some 0.5 }
  in
  let sys = System.create ~topology:(topo 4) ~config () in
  let engine = System.engine sys in
  for i = 0 to 3 do
    let r = System.replica sys i in
    for k = 1 to 5 do
      Engine.schedule engine ~delay:(0.1 *. float_of_int ((i * 5) + k)) (fun () ->
          Replica.submit_write r ~deps:[]
            ~affects:[ unit_weight "all" ]
            ~op:(Op.Add (Printf.sprintf "x%d" i, 1.0))
            ~k:ignore)
    done
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check int) "all writes accepted" 20 (System.write_count sys);
  Alcotest.(check bool) "replicas converged" true (System.converged sys);
  (* With gossip running, stability commitment should eventually commit all. *)
  for i = 0 to 3 do
    let log = Replica.log (System.replica sys i) in
    Alcotest.(check int)
      (Printf.sprintf "replica %d committed all" i)
      20 (Wlog.committed_count log)
  done;
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

(* A strong read (zero bounds) observes every prior write. *)
let test_strong_read () =
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare "all" ];
      antientropy_period = None;
    }
  in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let r0 = System.replica sys 0 and r2 = System.replica sys 2 in
  for k = 1 to 4 do
    Engine.schedule engine ~delay:(0.2 *. float_of_int k) (fun () ->
        Replica.submit_write r0 ~deps:[]
          ~affects:[ unit_weight "all" ]
          ~op:(Op.Add ("counter", 1.0))
          ~k:ignore)
  done;
  let result = ref nan in
  let read_served = ref false in
  Engine.schedule engine ~delay:2.0 (fun () ->
      Replica.submit_read r2
        ~deps:[ ("all", Bounds.strong) ]
        ~f:(fun db -> Db.get db "counter")
        ~k:(fun v ->
          read_served := true;
          result := Value.to_float v));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "read served" true !read_served;
  Alcotest.(check (float 1e-9)) "strong read saw all writes" 4.0 !result;
  Alcotest.(check bool) "no violations" true (Verify.check ~lcp:true sys = [])

(* Reads with a loose NE bound are served instantly from the local image. *)
let test_weak_read_is_local () =
  let config = { Config.default with Config.antientropy_period = None } in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let r0 = System.replica sys 0 and r1 = System.replica sys 1 in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write r0 ~deps:[] ~affects:[ unit_weight "all" ]
        ~op:(Op.Add ("c", 1.0)) ~k:ignore);
  let served_at = ref nan in
  Engine.schedule engine ~delay:0.2 (fun () ->
      Replica.submit_read r1 ~deps:[ ("all", Bounds.weak) ]
        ~f:(fun db -> Db.get db "c")
        ~k:(fun _ -> served_at := Engine.now engine));
  System.run ~until:10.0 sys;
  Alcotest.(check (float 1e-9)) "served immediately" 0.2 !served_at;
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

(* NE budget: with a declared bound of 2 and 3 replicas, a writer may hold at
   most 1 unacked unit per peer, so back-to-back writes push eagerly. *)
let test_ne_budget_pushes () =
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~ne_bound:2.0 "all" ];
      antientropy_period = None;
    }
  in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let r0 = System.replica sys 0 in
  let returns = ref 0 in
  for k = 1 to 6 do
    Engine.schedule engine ~delay:(0.5 *. float_of_int k) (fun () ->
        Replica.submit_write r0 ~deps:[] ~affects:[ unit_weight "all" ]
          ~op:(Op.Add ("c", 1.0))
          ~k:(fun _ -> incr returns))
  done;
  System.run ~until:60.0 sys;
  Alcotest.(check int) "all writes returned" 6 !returns;
  let s = System.total_stats sys in
  Alcotest.(check bool) "budget pushes happened" true (s.Replica.pushes_budget > 0);
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

(* Staleness bound forces a pull that observes the remote write. *)
let test_staleness_pull () =
  let config = { Config.default with Config.antientropy_period = None } in
  let sys = System.create ~topology:(topo 2) ~config () in
  let engine = System.engine sys in
  let r0 = System.replica sys 0 and r1 = System.replica sys 1 in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write r0 ~deps:[] ~affects:[ unit_weight "all" ]
        ~op:(Op.Add ("c", 1.0)) ~k:ignore);
  let seen = ref nan in
  Engine.schedule engine ~delay:5.0 (fun () ->
      Replica.submit_read r1
        ~deps:[ ("all", Bounds.make ~st:1.0 ()) ]
        ~f:(fun db -> Db.get db "c")
        ~k:(fun v -> seen := Value.to_float v));
  System.run ~until:30.0 sys;
  Alcotest.(check (float 1e-9)) "pulled the fresh value" 1.0 !seen;
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

(* Order-error bound 0 forces commitment before serving. *)
let test_oe_commit () =
  let config = { Config.default with Config.antientropy_period = Some 0.3 } in
  let sys = System.create ~topology:(topo 3) ~config () in
  let engine = System.engine sys in
  let r1 = System.replica sys 1 in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write r1 ~deps:[] ~affects:[ unit_weight "all" ]
        ~op:(Op.Add ("c", 1.0)) ~k:ignore);
  let served = ref false in
  Engine.schedule engine ~delay:0.2 (fun () ->
      Replica.submit_read r1
        ~deps:[ ("all", Bounds.make ~oe:0.0 ()) ]
        ~f:(fun db -> Db.get db "c")
        ~k:(fun _ -> served := true));
  System.run ~until:30.0 sys;
  Alcotest.(check bool) "read served after commitment" true !served;
  let log = Replica.log r1 in
  Alcotest.(check bool) "write committed" true (Wlog.committed_count log >= 1);
  Alcotest.(check bool) "no violations" true (Verify.check ~lcp:true sys = [])

let suite =
  [
    Alcotest.test_case "eventual convergence" `Quick test_eventual_convergence;
    Alcotest.test_case "strong read" `Quick test_strong_read;
    Alcotest.test_case "weak read is local" `Quick test_weak_read_is_local;
    Alcotest.test_case "NE budget pushes" `Quick test_ne_budget_pushes;
    Alcotest.test_case "staleness pull" `Quick test_staleness_pull;
    Alcotest.test_case "OE commit" `Quick test_oe_commit;
  ]
