(* Model-based testing of Wlog: the incremental implementation (rollback
   short-cuts, cached conit values, pending buffers, truncation) is compared
   against a naive reference model that recomputes everything from first
   principles after every step. *)

open Tact_store

let feq a b = Float.abs (a -. b) < 1e-6

(* ------------------------------------------------------------------ *)
(* The reference model: a bag of known writes, a commit frontier, and   *)
(* recomputation from scratch for every query.                          *)

module Model = struct
  type t = {
    replicas : int;
    mutable offered : Write.t list;  (** everything ever offered, unordered *)
    mutable committed : Write.id list;  (** commit order *)
  }

  let create ~replicas = { replicas; offered = []; committed = [] }

  let insert t (w : Write.t) =
    if not (List.exists (fun (x : Write.t) -> x.id = w.id) t.offered) then
      t.offered <- w :: t.offered

  (* The log's knowledge is the maximal per-origin contiguous prefix of what
     was offered (gapped writes sit in its pending buffer until the gap
     fills). *)
  let known t =
    List.filter
      (fun (w : Write.t) ->
        let rec prefix_complete seq =
          seq = 0
          || List.exists
               (fun (x : Write.t) -> x.id.origin = w.id.origin && x.id.seq = seq)
               t.offered
             && prefix_complete (seq - 1)
        in
        prefix_complete w.id.seq)
      t.offered

  let canonical t = List.sort Write.ts_compare (known t)

  let tentative t =
    List.filter
      (fun (w : Write.t) -> not (List.mem w.id t.committed))
      (canonical t)

  let commit_stable t ~cover =
    (* Same stability rule, recomputed naively. *)
    let stable (w : Write.t) =
      let ok = ref true in
      Array.iteri
        (fun o c ->
          if o <> w.id.origin then
            if c < w.accept_time || (c = w.accept_time && o < w.id.origin) then
              ok := false)
        cover;
      !ok
    in
    let rec take = function
      | w :: rest when stable w ->
        t.committed <- t.committed @ [ w.Write.id ];
        take rest
      | _ -> ()
    in
    take (tentative t)

  let db t =
    let image = Db.create [] in
    let by_id id = List.find (fun (w : Write.t) -> w.id = id) t.offered in
    List.iter (fun id -> ignore (Op.apply (by_id id).op image)) t.committed;
    List.iter (fun (w : Write.t) -> ignore (Op.apply w.op image)) (tentative t);
    image

  let conit_value t conit =
    List.fold_left (fun acc w -> acc +. Write.nweight w conit) 0.0 (known t)

  let tentative_oweight t conit =
    List.fold_left (fun acc w -> acc +. Write.oweight w conit) 0.0
      (List.filter (fun w -> Write.affects_conit w conit) (tentative t))
end

(* ------------------------------------------------------------------ *)

let conits = [| "a"; "b"; "c" |]

let gen_pool rng ~replicas =
  let pool = ref [] in
  let clock = Array.make replicas 0.0 in
  for origin = 0 to replicas - 1 do
    let count = 1 + Tact_util.Prng.int rng 10 in
    for seq = 1 to count do
      clock.(origin) <- clock.(origin) +. Tact_util.Prng.float rng 4.0 +. 0.01;
      let conit = Tact_util.Prng.pick rng conits in
      let nw = Tact_util.Prng.uniform_in rng ~lo:(-2.0) ~hi:2.0 in
      let ow = Tact_util.Prng.float rng 2.0 in
      pool :=
        {
          Write.id = { origin; seq };
          accept_time = clock.(origin);
          op = Op.Add ("k" ^ conit, 1.0);
          affects = [ { Write.conit; nweight = nw; oweight = ow } ];
        }
        :: !pool
    done
  done;
  Array.of_list !pool

let agree log model =
  Db.equal (Wlog.db log) (Model.db model)
  && List.map (fun (w : Write.t) -> w.Write.id) (Wlog.tentative log)
     = List.map (fun (w : Write.t) -> w.Write.id) (Model.tentative model)
  && Array.for_all
       (fun c ->
         feq (Wlog.conit_value log c) (Model.conit_value model c)
         && feq (Wlog.tentative_oweight log c) (Model.tentative_oweight model c))
       conits

let run_scenario seed =
  let rng = Tact_util.Prng.create ~seed in
  let replicas = 3 in
  let pool = gen_pool rng ~replicas in
  Tact_util.Prng.shuffle rng pool;
  let log = Wlog.create ~replicas ~initial:[] in
  let model = Model.create ~replicas in
  let max_time =
    Array.fold_left (fun acc (w : Write.t) -> Float.max acc w.accept_time) 0.0 pool
  in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      (* Random action mix: mostly inserts, some batch inserts, some commits. *)
      (match Tact_util.Prng.int rng 10 with
      | 0 | 1 ->
        (* Stability commit with a random cover. *)
        let cover =
          Array.init replicas (fun _ -> Tact_util.Prng.float rng (max_time +. 1.0))
        in
        ignore (Wlog.commit_stable log ~cover);
        Model.commit_stable model ~cover
      | 2 ->
        (* Small batch: this write plus the next ones already offered get
           re-offered (duplicates must be ignored). *)
        let batch =
          [ w ] @ (if i > 0 then [ pool.(i - 1) ] else []) @ [ w ]
        in
        ignore (Wlog.insert_batch log batch);
        List.iter (Model.insert model) batch
      | _ ->
        ignore (Wlog.insert log w);
        Model.insert model w);
      if not (agree log model) then ok := false)
    pool;
  (* Finish: insert everything (covering buffered gaps), commit fully. *)
  ignore (Wlog.insert_batch log (Array.to_list pool));
  Array.iter (Model.insert model) pool;
  let full = Array.make replicas (max_time +. 1.0) in
  ignore (Wlog.commit_stable log ~cover:full);
  Model.commit_stable model ~cover:full;
  !ok && agree log model
  && Wlog.committed_count log = List.length model.Model.committed
  && List.length (Wlog.tentative log) = 0

let test_model_equivalence =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"wlog agrees with the naive reference model"
       ~count:120
       QCheck.(int_bound 1_000_000)
       run_scenario)

(* Truncation against the model: after truncation the queryable state is
   unchanged; only diff service shrinks. *)
let test_truncation_preserves_state =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"truncation never changes observable state" ~count:60
       QCheck.(pair (int_bound 1_000_000) (int_bound 10))
       (fun (seed, keep) ->
         let rng = Tact_util.Prng.create ~seed in
         let pool = gen_pool rng ~replicas:3 in
         let log = Wlog.create ~replicas:3 ~initial:[] in
         Array.iter (fun w -> ignore (Wlog.insert log w)) pool;
         let max_time =
           Array.fold_left (fun acc (w : Write.t) -> Float.max acc w.accept_time) 0.0 pool
         in
         ignore (Wlog.commit_stable log ~cover:(Array.make 3 (max_time +. 1.0)));
         let before_db = Db.copy (Wlog.db log) in
         let before_count = Wlog.committed_count log in
         ignore (Wlog.truncate log ~keep);
         Db.equal (Wlog.db log) before_db
         && Wlog.committed_count log = before_count
         && Wlog.retained log <= max keep before_count))

let suite = [ test_model_equivalence; test_truncation_preserves_state ]
