(* The long-haul adversarial soak: everything at once — eight replicas, mixed
   bounds, both commit schemes' stressors, truncation, partitions, crashes,
   message loss — with the full correctness bar at the end: zero verifier
   violations, convergence, full commitment. *)

open Tact_util
open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

let soak ~seed ~scheme () =
  let n = 8 in
  let duration = 60.0 in
  let topology =
    Topology.clustered ~clusters:2 ~per_cluster:4 ~local:0.003 ~wan:0.07
      ~bandwidth:500_000.0
  in
  let config =
    {
      Config.default with
      Config.conits =
        [ Conit.declare ~ne_bound:6.0 "hot"; Conit.unconstrained "cold" ];
      commit_scheme = scheme;
      antientropy_period = Some 0.7;
      truncate_keep = Some 500;
    }
  in
  let sys = System.create ~seed ~loss:0.1 ~topology ~config () in
  let engine = System.engine sys in
  let rng = Prng.create ~seed:(seed * 31) in
  let issued = ref 0 and served = ref 0 and timeouts = ref 0 in
  for i = 0 to n - 1 do
    let r = System.replica sys i in
    let prng = Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:1.2 ~until:duration
      (fun () ->
        incr issued;
        let conit = if Prng.bool prng then "hot" else "cold" in
        let bound =
          match Prng.int prng 4 with
          | 0 -> Bounds.weak
          | 1 -> Bounds.make ~oe:(float_of_int (Prng.int prng 8)) ()
          | 2 -> Bounds.make ~st:(1.0 +. Prng.float prng 5.0) ()
          | _ -> Bounds.make ~ne:(float_of_int (2 + Prng.int prng 8)) ()
        in
        if Prng.bool prng then
          Replica.submit_write r
            ~deps:[ (conit, bound) ]
            ~deadline:(Engine.now engine +. 45.0)
            ~on_timeout:(fun () -> incr timeouts)
            ~affects:[ { Write.conit; nweight = 1.0; oweight = 1.0 } ]
            ~op:(Op.Add ("x", 1.0))
            ~k:(fun _ -> incr served)
        else
          Replica.submit_read r
            ~deps:[ (conit, bound) ]
            ~deadline:(Engine.now engine +. 45.0)
            ~on_timeout:(fun () -> incr timeouts)
            ~f:(fun db -> Db.get db "x")
            ~k:(fun _ -> incr served))
  done;
  (* Fault schedule: a cross-cluster partition, a crash, staggered heals. *)
  Engine.schedule engine ~delay:15.0 (fun () ->
      Net.partition (System.net sys) [ 0; 1; 2; 3 ] [ 4; 5; 6; 7 ]);
  Engine.schedule engine ~delay:25.0 (fun () -> Net.heal (System.net sys));
  Engine.schedule engine ~delay:35.0 (fun () -> Replica.crash (System.replica sys 5));
  Engine.schedule engine ~delay:45.0 (fun () -> Replica.recover (System.replica sys 5));
  System.run ~until:(duration +. 240.0) sys;
  (* The bar. *)
  let violations = Verify.check sys in
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: no violations (%s)" seed (Verify.summarize violations))
    true (violations = []);
  Alcotest.(check bool) "converged" true (System.converged sys);
  Alcotest.(check bool) "some work happened" true (!issued > 200);
  Alcotest.(check int) "every access served or timed out" !issued
    (!served + !timeouts);
  (* Fully committed everywhere after quiescence. *)
  let total = System.write_count sys in
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d committed all" i)
      total
      (Wlog.committed_count (Replica.log (System.replica sys i)))
  done;
  (* And the canonical value is agreed. *)
  let v0 = Db.get_float (Replica.db (System.replica sys 0)) "x" in
  Alcotest.(check bool) "value consistent" true
    (List.for_all
       (fun i -> feq (Db.get_float (Replica.db (System.replica sys i)) "x") v0)
       (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "soak: stability scheme" `Slow (soak ~seed:7 ~scheme:Config.Stability);
    Alcotest.test_case "soak: primary scheme" `Slow (soak ~seed:8 ~scheme:(Config.Primary 2));
    Alcotest.test_case "soak: stability, other seed" `Slow (soak ~seed:99 ~scheme:Config.Stability);
  ]
