(* The verification oracle itself, against hand-computed values on a fully
   deterministic scenario (no jitter, fixed latency). *)

open Tact_sim
open Tact_store
open Tact_core
open Tact_replica

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

(* Scenario (latency 0.1s, no gossip, no jitter):
     t=1.0  W1 at replica 0, nweight 2, oweight 1 on "c"   (returns at 1.0)
     t=2.0  W2 at replica 0, nweight 3, oweight 1 on "c"   (returns at 2.0)
     t=5.0  weak read R at replica 1 — has seen nothing.

   For R and conit "c":
     actual prefix = {W1, W2}  (both returned before 5.0, neither observed)
     NE  = |2 + 3| = 5
     rel = 5 / 5 = 1 -> but with nothing observed, observed value 0
     OE  = 0 at replica 1 (its tentative suffix is empty)
     ST  = age of oldest unseen returned write = 5.0 - 1.0 = 4.0 *)
let build () =
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e9)
      ~config:Config.default ()
  in
  let engine = System.engine sys in
  let submit_w ~delay ~nw =
    Engine.schedule engine ~delay (fun () ->
        Replica.submit_write (System.replica sys 0) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = nw; oweight = 1.0 } ]
          ~op:(Op.Add ("x", nw))
          ~k:ignore)
  in
  submit_w ~delay:1.0 ~nw:2.0;
  submit_w ~delay:2.0 ~nw:3.0;
  Engine.schedule engine ~delay:5.0 (fun () ->
      Replica.submit_read (System.replica sys 1)
        ~deps:[ ("c", Bounds.weak) ]
        ~f:(fun db -> Db.get db "x")
        ~k:ignore);
  System.run ~until:30.0 sys;
  sys

let read_record sys =
  match
    List.filter (fun (a : Access.t) -> a.kind = Access.Read) (System.records sys)
  with
  | [ r ] -> r
  | _ -> Alcotest.fail "expected exactly one read"

let test_exact_metrics () =
  let sys = build () in
  let r = read_record sys in
  match Verify.access_metrics sys r with
  | [ m ] ->
    Alcotest.(check bool) "NE = 5" true (feq m.Verify.ne 5.0);
    Alcotest.(check bool) "relative NE = 1" true (feq m.Verify.ne_rel 1.0);
    Alcotest.(check bool) "OE = 0 (empty local suffix)" true (feq m.Verify.oe_tentative 0.0);
    Alcotest.(check bool) "ST = 4 (oldest unseen returned at 1.0)" true
      (feq m.Verify.st 4.0)
  | _ -> Alcotest.fail "one dep expected"

let test_weak_bound_not_violated () =
  let sys = build () in
  Alcotest.(check bool) "weak bound can't be violated" true (Verify.check sys = [])

let test_oe_lcp_counts_interleaved_gap () =
  (* A replica that saw W1 and a later local write W3, but missed W2 that
     interleaves in the canonical order: the LCP order error charges the
     local writes past the gap. *)
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:2 ~latency:10.0 ~bandwidth:1e9)
      ~config:Config.default ()
  in
  let engine = System.engine sys in
  let w ~delay ~replica =
    Engine.schedule engine ~delay (fun () ->
        Replica.submit_write (System.replica sys replica) ~deps:[]
          ~affects:[ { Write.conit = "c"; nweight = 1.0; oweight = 1.0 } ]
          ~op:(Op.Add ("x", 1.0))
          ~k:ignore)
  in
  w ~delay:1.0 ~replica:0;
  (* W1 local *)
  w ~delay:2.0 ~replica:1;
  (* W2 remote, won't arrive for 10s *)
  w ~delay:3.0 ~replica:0;
  (* W3 local, canonically after W2 *)
  Engine.schedule engine ~delay:4.0 (fun () ->
      Replica.submit_read (System.replica sys 0) ~deps:[ ("c", Bounds.weak) ]
        ~f:(fun db -> Db.get db "x")
        ~k:ignore);
  System.run ~until:60.0 sys;
  let r = read_record sys in
  (match Verify.access_metrics sys r with
  | [ m ] ->
    (* Local projection (W1, W3) vs canonical (W1, W2, W3): LCP = (W1);
       W3 lies beyond it. *)
    Alcotest.(check bool) "lcp OE = 1" true (feq m.Verify.oe_lcp 1.0);
    (* Both local writes are tentative (W2 unseen blocks stability). *)
    Alcotest.(check bool) "tentative OE = 2" true (feq m.Verify.oe_tentative 2.0);
    Alcotest.(check bool) "lcp <= tentative" true (m.Verify.oe_lcp <= m.Verify.oe_tentative)
  | _ -> Alcotest.fail "one dep expected")

let test_summarize () =
  let sys = build () in
  Alcotest.(check string) "clean summary" "no violations" (Verify.summarize []);
  ignore sys

let base_suite =
  [
    Alcotest.test_case "exact metrics" `Quick test_exact_metrics;
    Alcotest.test_case "weak bound unviolable" `Quick test_weak_bound_not_violated;
    Alcotest.test_case "lcp OE interleaved gap" `Quick test_oe_lcp_counts_interleaved_gap;
    Alcotest.test_case "summarize" `Quick test_summarize;
  ]

(* Relative error uses the conit's declared initial value (the airline
   seat-pool pattern). *)
let test_relative_error_with_initial () =
  let config =
    {
      Config.default with
      Config.conits = [ Conit.declare ~initial_value:100.0 "seats" ];
    }
  in
  let sys =
    System.create ~jitter:0.0
      ~topology:(Topology.uniform ~n:2 ~latency:0.1 ~bandwidth:1e9)
      ~config ()
  in
  let engine = System.engine sys in
  Engine.schedule engine ~delay:1.0 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[]
        ~affects:[ { Write.conit = "seats"; nweight = -1.0; oweight = 0.0 } ]
        ~op:(Op.Add ("seats", -1.0))
        ~k:ignore);
  Engine.schedule engine ~delay:2.0 (fun () ->
      Replica.submit_read (System.replica sys 1)
        ~deps:[ ("seats", Bounds.weak) ]
        ~f:(fun db -> Db.get db "seats")
        ~k:ignore);
  System.run ~until:30.0 sys;
  let r =
    List.find (fun (a : Access.t) -> a.kind = Access.Read) (System.records sys)
  in
  match Verify.access_metrics sys r with
  | [ m ] ->
    Alcotest.(check bool) "absolute 1" true (feq m.Verify.ne 1.0);
    (* actual value = 100 - 1 = 99 *)
    Alcotest.(check bool) "relative 1/99" true (feq m.Verify.ne_rel (1.0 /. 99.0))
  | _ -> Alcotest.fail "one dep expected"

let initial_suite =
  [ Alcotest.test_case "relative error with initial value" `Quick test_relative_error_with_initial ]

let suite = base_suite @ initial_suite
