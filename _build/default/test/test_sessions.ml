(* Session guarantees across replica migration (Bayou-style, layered over the
   conit machinery). *)

open Tact_sim
open Tact_store
open Tact_replica

let feq a b = Float.abs (a -. b) < 1e-9

let topo n = Topology.uniform ~n ~latency:0.05 ~bandwidth:1_000_000.0

(* No gossip: replica 1 learns nothing unless a guarantee forces a pull. *)
let quiet_system () = System.create ~topology:(topo 2) ~config:Config.default ()

let test_read_your_writes () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  let s = Session.create ~guarantees:[ Session.Read_your_writes ] (System.replica sys 0) in
  let observed = ref nan and served_at = ref nan in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ ->
          (* Move to a replica that has not seen the write. *)
          Session.migrate s (System.replica sys 1);
          Session.read s
            (fun db -> Db.get db "x")
            ~k:(fun v ->
              observed := Value.to_float v;
              served_at := Engine.now engine)));
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "read waited for propagation" true (!served_at > 0.1);
  Alcotest.(check bool) "own write visible after migration" true (feq !observed 1.0)

let test_without_guarantee_reads_stale () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  let s = Session.create (System.replica sys 0) in
  let observed = ref nan in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ ->
          Session.migrate s (System.replica sys 1);
          Session.read s (fun db -> Db.get db "x") ~k:(fun v ->
              observed := Value.to_float v)));
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "stale read without the guarantee" true (feq !observed 0.0)

let test_monotonic_reads () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  (* An independent writer at replica 0. *)
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[]
        ~op:(Op.Add ("x", 1.0)) ~k:ignore);
  let s = Session.create ~guarantees:[ Session.Monotonic_reads ] (System.replica sys 0) in
  let first = ref nan and second = ref nan and second_at = ref nan in
  Engine.schedule engine ~delay:0.2 (fun () ->
      Session.read s (fun db -> Db.get db "x") ~k:(fun v ->
          first := Value.to_float v;
          Session.migrate s (System.replica sys 1);
          Session.read s (fun db -> Db.get db "x") ~k:(fun v ->
              second := Value.to_float v;
              second_at := Engine.now engine)));
  System.run ~until:60.0 sys;
  Alcotest.(check bool) "first read saw the write" true (feq !first 1.0);
  Alcotest.(check bool) "second read not backwards" true (!second >= !first);
  Alcotest.(check bool) "second read had to wait" true (!second_at > 0.2)

let test_monotonic_writes_causality () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  let s = Session.create ~guarantees:[ Session.Monotonic_writes ] (System.replica sys 0) in
  let second_id = ref None in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ ->
          Session.migrate s (System.replica sys 1);
          Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ -> ())));
  System.run ~until:60.0 sys;
  (* Find the session's second write (origin 1) and check its causal context
     covers the first (origin 0, seq 1). *)
  List.iter
    (fun (w : Write.t) -> if w.id.origin = 1 then second_id := Some w.id)
    (System.all_writes sys);
  (match !second_id with
  | None -> Alcotest.fail "second write missing"
  | Some id ->
    let ctx = System.accept_vector sys id in
    Alcotest.(check bool) "second write causally after first" true
      (Version_vector.covers ctx ~origin:0 ~seq:1));
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

let test_writes_follow_reads () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  (* Someone posts at replica 0; our session reads it there, migrates, and
     replies at replica 1: the reply must be causally after the post. *)
  Engine.schedule engine ~delay:0.1 (fun () ->
      Replica.submit_write (System.replica sys 0) ~deps:[] ~affects:[]
        ~op:(Op.Append ("board", Value.Str "post")) ~k:ignore);
  let s = Session.create ~guarantees:[ Session.Writes_follow_reads ] (System.replica sys 0) in
  let reply_id = ref None in
  Engine.schedule engine ~delay:0.2 (fun () ->
      Session.read s (fun db -> Db.get db "board") ~k:(fun _ ->
          Session.migrate s (System.replica sys 1);
          Session.write s (Op.Append ("board", Value.Str "reply")) ~k:(fun _ -> ())));
  System.run ~until:60.0 sys;
  List.iter
    (fun (w : Write.t) -> if w.id.origin = 1 then reply_id := Some w.id)
    (System.all_writes sys);
  (match !reply_id with
  | None -> Alcotest.fail "reply missing"
  | Some id ->
    let ctx = System.accept_vector sys id in
    Alcotest.(check bool) "reply causally after the post" true
      (Version_vector.covers ctx ~origin:0 ~seq:1));
  (* The migrated replica pulled the post before accepting the reply. *)
  Alcotest.(check bool) "replica 1 has both writes" true
    (Wlog.num_known (Replica.log (System.replica sys 1)) = 2)

let test_guarantees_compose_with_bounds () =
  let sys = quiet_system () in
  let engine = System.engine sys in
  let s =
    Session.create
      ~guarantees:[ Session.Read_your_writes; Session.Monotonic_reads ]
      (System.replica sys 0)
  in
  let done_ = ref false in
  Engine.schedule engine ~delay:0.1 (fun () ->
      Session.affect_conit s "c" ~nweight:1.0 ~oweight:1.0;
      Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ ->
          Session.migrate s (System.replica sys 1);
          Session.dependon_conit s "c" ~oe:0.0 ();
          Session.read s (fun db -> Db.get db "x") ~k:(fun v ->
              Alcotest.(check bool) "value" true (feq (Value.to_float v) 1.0);
              done_ := true)));
  System.run ~until:120.0 sys;
  Alcotest.(check bool) "served" true !done_;
  Alcotest.(check bool) "no violations" true (Verify.check ~lcp:true sys = [])

let base_suite =
  [
    Alcotest.test_case "read your writes" `Quick test_read_your_writes;
    Alcotest.test_case "no guarantee reads stale" `Quick test_without_guarantee_reads_stale;
    Alcotest.test_case "monotonic reads" `Quick test_monotonic_reads;
    Alcotest.test_case "monotonic writes causality" `Quick test_monotonic_writes_causality;
    Alcotest.test_case "writes follow reads" `Quick test_writes_follow_reads;
    Alcotest.test_case "compose with conit bounds" `Quick test_guarantees_compose_with_bounds;
  ]

(* Property: under random migrations, a RYW+MR session's reads are monotone
   and always include every write the session has completed. *)

let test_session_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"RYW+MR hold under random migration" ~count:20
       QCheck.(int_bound 10_000)
       (fun seed ->
         let rng = Tact_util.Prng.create ~seed in
         let n = 3 in
         let sys =
           System.create ~seed
             ~topology:(Topology.uniform ~n ~latency:0.05 ~bandwidth:1e6)
             ~config:{ Config.default with Config.antientropy_period = Some 3.0 }
             ()
         in
         let engine = System.engine sys in
         let s =
           Session.create
             ~guarantees:[ Session.Read_your_writes; Session.Monotonic_reads ]
             (System.replica sys 0)
         in
         let my_writes = ref 0 and ok = ref true and last_seen = ref 0.0 in
         (* A chain of random session steps, each starting when the previous
            completed. *)
         let rec step k =
           if k = 0 then ()
           else
             match Tact_util.Prng.int rng 3 with
             | 0 ->
               Session.migrate s (System.replica sys (Tact_util.Prng.int rng n));
               step (k - 1)
             | 1 ->
               incr my_writes;
               Session.write s (Op.Add ("x", 1.0)) ~k:(fun _ -> step (k - 1))
             | _ ->
               Session.read s
                 (fun db -> Db.get db "x")
                 ~k:(fun v ->
                   let seen = Value.to_float v in
                   if seen < !last_seen then ok := false (* monotonic reads *);
                   if seen < float_of_int !my_writes then ok := false (* RYW *);
                   last_seen := seen;
                   step (k - 1))
         in
         Engine.schedule engine ~delay:0.1 (fun () -> step 20);
         System.run ~until:600.0 sys;
         !ok))

let property_suite = [ test_session_property ]

let suite = base_suite @ property_suite
