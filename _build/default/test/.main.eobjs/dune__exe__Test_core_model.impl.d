test/test_core_model.ml: Access Alcotest Bounds Conit Ecg Float List Metrics Op QCheck QCheck_alcotest Tact_core Tact_experiments Tact_store Tact_util Value Version_vector Write
