test/main.mli:
