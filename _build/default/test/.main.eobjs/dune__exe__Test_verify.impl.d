test/test_verify.ml: Access Alcotest Bounds Config Conit Db Engine Float List Op Replica System Tact_core Tact_replica Tact_sim Tact_store Topology Verify Write
