test/test_wlog_model.ml: Array Db Float List Op QCheck QCheck_alcotest Tact_store Tact_util Wlog Write
