test/test_scenario.ml: Alcotest Array Config Float List Monitor Op Scenario System Tact_core Tact_replica Tact_sim Tact_store Tact_workload Topology Value Verify
