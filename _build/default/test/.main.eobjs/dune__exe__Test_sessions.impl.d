test/test_sessions.ml: Alcotest Config Db Engine Float List Op QCheck QCheck_alcotest Replica Session System Tact_replica Tact_sim Tact_store Tact_util Topology Value Verify Version_vector Wlog Write
