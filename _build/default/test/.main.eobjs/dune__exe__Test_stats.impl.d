test/test_stats.ml: Alcotest Array Float Histogram List Plot Prng Stats String Table Tact_util Vec
