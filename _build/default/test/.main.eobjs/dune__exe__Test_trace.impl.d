test/test_trace.ml: Alcotest Config Engine List Op Replica String System Tact_replica Tact_sim Tact_store Tact_util Topology Trace Write
