test/test_spec.ml: Access Alcotest Bounds Config Db Float List Op Session Spec System Tact_core Tact_replica Tact_sim Tact_store Topology Value Write
