test/test_crash.ml: Alcotest Bounds Config Conit Db Engine Float Net Op Replica System Tact_core Tact_replica Tact_sim Tact_store Topology Wlog Write
