test/test_wlog.ml: Alcotest Array Db Float List Op Printf QCheck QCheck_alcotest Tact_store Tact_util Value Version_vector Wlog Write
