test/test_analytic.ml: Alcotest Analytic Config Engine Float Op Printf Replica System Tact_core Tact_experiments Tact_replica Tact_sim Tact_store Tact_workload Topology Value Write
