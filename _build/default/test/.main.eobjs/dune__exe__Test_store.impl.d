test/test_store.ml: Alcotest Db Float List Op QCheck QCheck_alcotest String Tact_store Value Version_vector Write
