test/test_sim.ml: Alcotest Engine Float Heap List Net QCheck QCheck_alcotest Tact_sim Tact_util Topology
