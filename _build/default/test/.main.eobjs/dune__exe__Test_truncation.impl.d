test/test_truncation.ml: Alcotest Config Db Engine Float List Net Op Replica System Tact_replica Tact_sim Tact_store Topology Version_vector Wlog Write
