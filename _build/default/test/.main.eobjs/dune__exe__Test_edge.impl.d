test/test_edge.ml: Alcotest Bounds Config Conit Db Engine Float List Net Op Printf Replica System Tact_core Tact_protocols Tact_replica Tact_sim Tact_store Topology Value Verify Wlog Write
