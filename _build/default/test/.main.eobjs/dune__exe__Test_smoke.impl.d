test/test_smoke.ml: Alcotest Bounds Config Conit Db Engine Op Printf Replica System Tact_core Tact_replica Tact_sim Tact_store Topology Value Verify Wlog Write
