test/test_protocols.ml: Alcotest Array Budget Csn_buffer Float Gen List QCheck QCheck_alcotest Tact_protocols Tact_store Tact_util
