test/test_experiments.ml: Alcotest E01_fig4 E02_extremes E09_models E11_budget E12_commit List Printf Registry String Tact_apps Tact_core Tact_experiments
