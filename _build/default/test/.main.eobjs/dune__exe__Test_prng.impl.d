test/test_prng.ml: Alcotest Array Float Fun Printf Prng Stats Tact_util
