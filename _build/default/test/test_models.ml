(* Section 4.2 model emulations: unit-level checks of the encodings plus the
   full scenario battery from experiment E9. *)

open Tact_store
open Tact_core
open Tact_models

let feq a b = Float.abs (a -. b) < 1e-9

(* --- Conflict matrix ----------------------------------------------------- *)

let test_matrix_validation () =
  Alcotest.(check bool) "not square" true
    (try
       Conflict_matrix.check [| [| true |]; [| true |] |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "not symmetric" true
    (try
       Conflict_matrix.check [| [| false; true |]; [| false; false |] |];
       false
     with Invalid_argument _ -> true);
  Conflict_matrix.check [| [| true; false |]; [| false; true |] |]

let test_matrix_encoding () =
  (* deposit(0) / withdraw(1): withdraw conflicts with both. *)
  let m = [| [| false; true |]; [| true; true |] |] in
  (* A deposit affects row 1 (withdraw's conit) only. *)
  let dep_affects = Conflict_matrix.affects_of_method m 0 in
  Alcotest.(check int) "deposit affects 1 conit" 1 (List.length dep_affects);
  Alcotest.(check string) "which is row 1" (Conflict_matrix.row_conit 1)
    (List.hd dep_affects).Write.conit;
  (* A withdraw affects both rows. *)
  Alcotest.(check int) "withdraw affects 2" 2
    (List.length (Conflict_matrix.affects_of_method m 1));
  (* Deps: a method depends on its own row with zero NE. *)
  (match Conflict_matrix.deps_of_method m 1 with
  | [ (c, b) ] ->
    Alcotest.(check string) "own row" (Conflict_matrix.row_conit 1) c;
    Alcotest.(check bool) "zero ne and oe" true
      (feq b.Bounds.ne 0.0 && feq b.Bounds.oe 0.0)
  | _ -> Alcotest.fail "one dep expected");
  (* Bounded conflict: finite ne, order unconstrained. *)
  (match Conflict_matrix.deps_of_method ~ne:50.0 m 0 with
  | [ (_, b) ] ->
    Alcotest.(check bool) "bounded" true
      (feq b.Bounds.ne 50.0 && b.Bounds.oe = infinity)
  | _ -> Alcotest.fail "one dep expected");
  Alcotest.(check int) "conits per row" 2 (List.length (Conflict_matrix.conits m))

(* --- N-ignorant ---------------------------------------------------------- *)

let test_n_ignorant_conits () =
  match N_ignorant.conits ~n_bound:5.0 with
  | [ c ] ->
    Alcotest.(check string) "name" N_ignorant.conit_name c.Conit.name;
    Alcotest.(check bool) "bound" true (feq c.Conit.ne_bound 5.0)
  | _ -> Alcotest.fail "one conit"

(* --- Lazy replication ----------------------------------------------------- *)

let test_lazy_conits () =
  Alcotest.(check int) "two conits" 2 (List.length Lazy_replication.conits)

(* --- Cluster --------------------------------------------------------------- *)

let test_cluster_conits () =
  Alcotest.(check int) "per cluster" 3 (List.length (Cluster.conits ~clusters:3))

(* --- Quasi-copy ------------------------------------------------------------ *)

let test_quasi_copy_names () =
  Alcotest.(check string) "upd" "qc.upd.k" (Quasi_copy.update_conit "k");
  Alcotest.(check string) "val" "qc.val.k" (Quasi_copy.value_conit "k");
  Alcotest.(check string) "obj count" "qc.obj.o.count"
    (Quasi_copy.Object_condition.count_conit "o");
  Alcotest.(check string) "obj sub" "qc.obj.o.sub.s"
    (Quasi_copy.Object_condition.sub_conit "o" "s")

(* --- Memdag ---------------------------------------------------------------- *)

let diamond = { Memdag.nodes = 4; edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] }

let test_memdag_validation () =
  Memdag.check diamond;
  Alcotest.(check bool) "self edge" true
    (try
       Memdag.check { Memdag.nodes = 2; edges = [ (1, 1) ] };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try
       Memdag.check { Memdag.nodes = 2; edges = [ (0, 5) ] };
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cycle" true
    (try
       Memdag.check { Memdag.nodes = 3; edges = [ (0, 1); (1, 2); (2, 0) ] };
       false
     with Invalid_argument _ -> true)

let test_memdag_encoding () =
  Alcotest.(check int) "node 0 affects its out-edges" 2
    (List.length (Memdag.affects_of_node diamond 0));
  Alcotest.(check int) "node 3 depends on its in-edges" 2
    (List.length (Memdag.deps_of_node diamond 3));
  Alcotest.(check int) "node 0 has no deps" 0
    (List.length (Memdag.deps_of_node diamond 0));
  List.iter
    (fun (_, (b : Bounds.t)) ->
      Alcotest.(check bool) "zero ne deps" true (feq b.Bounds.ne 0.0))
    (Memdag.deps_of_node diamond 3)

let test_memdag_order_check () =
  Alcotest.(check bool) "topological accepted" true
    (Memdag.execution_respects_dag diamond ~accept_order:[ 0; 2; 1; 3 ]);
  Alcotest.(check bool) "violation caught" false
    (Memdag.execution_respects_dag diamond ~accept_order:[ 0; 3; 1; 2 ]);
  Alcotest.(check bool) "missing node caught" false
    (Memdag.execution_respects_dag diamond ~accept_order:[ 0; 1; 2 ])

(* --- The full E9 scenario battery ----------------------------------------- *)

let test_e9_scenarios () =
  List.iter
    (fun (r : Tact_experiments.E09_models.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" r.model r.property)
        true r.holds)
    (Tact_experiments.E09_models.rows ~quick:true ())

let base_suite =
  [
    Alcotest.test_case "matrix validation" `Quick test_matrix_validation;
    Alcotest.test_case "matrix encoding" `Quick test_matrix_encoding;
    Alcotest.test_case "n-ignorant conits" `Quick test_n_ignorant_conits;
    Alcotest.test_case "lazy replication conits" `Quick test_lazy_conits;
    Alcotest.test_case "cluster conits" `Quick test_cluster_conits;
    Alcotest.test_case "quasi-copy names" `Quick test_quasi_copy_names;
    Alcotest.test_case "memdag validation" `Quick test_memdag_validation;
    Alcotest.test_case "memdag encoding" `Quick test_memdag_encoding;
    Alcotest.test_case "memdag order check" `Quick test_memdag_order_check;
    Alcotest.test_case "E9 scenario battery" `Slow test_e9_scenarios;
  ]

(* --- ESR ------------------------------------------------------------------ *)

let test_esr_bounded_import () =
  let open Tact_sim in
  let open Tact_replica in
  let epsilon = 5.0 in
  let config =
    {
      Config.default with
      Config.conits = Esr.conits ~items:[ "acct" ] ~epsilon;
      antientropy_period = None;
    }
  in
  let sys =
    System.create ~topology:(Topology.uniform ~n:3 ~latency:0.03 ~bandwidth:1e6)
      ~config ()
  in
  let engine = System.engine sys in
  let rng = Tact_util.Prng.create ~seed:157 in
  (* Updates of magnitude <= 2 stream in at replicas 0 and 1. *)
  let true_total = ref 0.0 in
  for i = 0 to 1 do
    let s = Session.create (System.replica sys i) in
    let prng = Tact_util.Prng.split rng in
    Tact_workload.Workload.poisson engine ~rng:prng ~rate:3.0 ~until:20.0
      (fun () ->
        let delta = Tact_util.Prng.uniform_in prng ~lo:(-2.0) ~hi:2.0 in
        true_total := !true_total +. delta;
        Esr.update s ~item:"acct" ~delta ~k:ignore)
  done;
  (* Epsilon-queries at replica 2 must never import more than epsilon of
     inconsistency (plus the in-flight single-update allowance). *)
  let worst = ref 0.0 in
  let s2 = Session.create (System.replica sys 2) in
  Tact_workload.Workload.staggered engine ~start:1.0 ~gap:1.0 ~count:18 (fun _ ->
      let truth = !true_total in
      Esr.epsilon_query s2 ~items:[ "acct" ] ~epsilon ~k:(function
        | [ v ] -> worst := Float.max !worst (Float.abs (v -. truth))
        | _ -> ()));
  System.run ~until:60.0 sys;
  Alcotest.(check bool)
    (Printf.sprintf "imported inconsistency %.2f <= epsilon + slack" !worst)
    true
    (!worst <= epsilon +. 2.0);
  Alcotest.(check bool) "no violations" true (Verify.check sys = [])

let esr_suite =
  [ Alcotest.test_case "esr bounded import" `Quick test_esr_bounded_import ]

let suite = base_suite @ esr_suite
