(* Deterministic PRNG: reproducibility, ranges, distribution sanity. *)

open Tact_util

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_int_range () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_int_covers_range () =
  let rng = Prng.create ~seed:2 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 10) <- true
  done;
  Alcotest.(check bool) "every value drawn" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_exponential_mean () =
  let rng = Prng.create ~seed:4 in
  let s = Stats.create () in
  for _ = 1 to 20_000 do
    Stats.add s (Prng.exponential rng ~mean:3.0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mean ~ 3 (got %.3f)" (Stats.mean s))
    true
    (Float.abs (Stats.mean s -. 3.0) < 0.1)

let test_exponential_positive () =
  let rng = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.exponential rng ~mean:1.0 >= 0.0)
  done

let test_uniform_in () =
  let rng = Prng.create ~seed:6 in
  for _ = 1 to 1000 do
    let x = Prng.uniform_in rng ~lo:5.0 ~hi:6.0 in
    Alcotest.(check bool) "in [5,6)" true (x >= 5.0 && x < 6.0)
  done

let test_zipf_skew () =
  let rng = Prng.create ~seed:7 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let x = Prng.zipf rng ~n:100 ~theta:1.0 in
    counts.(x) <- counts.(x) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(1));
  Alcotest.(check bool) "heavy head" true (counts.(0) > 10 * counts.(50))

let test_zipf_zero_theta_uniformish () =
  let rng = Prng.create ~seed:8 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Prng.zipf rng ~n:10 ~theta:0.0 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 200)) counts

let test_zipf_range () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Prng.zipf rng ~n:7 ~theta:0.9 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_split_independence () =
  let rng = Prng.create ~seed:10 in
  let a = Prng.split rng in
  let b = Prng.split rng in
  (* Streams from two splits should not be identical. *)
  let same = ref true in
  for _ = 1 to 20 do
    if Prng.bits64 a <> Prng.bits64 b then same := false
  done;
  Alcotest.(check bool) "split streams differ" false !same

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick () =
  let rng = Prng.create ~seed:12 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Prng.pick rng arr) arr)
  done

let test_bool_balance () =
  let rng = Prng.create ~seed:13 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 4500 && !trues < 5500)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "uniform_in range" `Quick test_uniform_in;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf theta=0 uniform" `Quick test_zipf_zero_theta_uniformish;
    Alcotest.test_case "zipf range" `Quick test_zipf_range;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
  ]
