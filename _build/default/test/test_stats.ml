(* Stats, Histogram, Table, Plot, Vec. *)

open Tact_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_mean_variance () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check bool) "mean" true (feq (Stats.mean s) 5.0);
  Alcotest.(check bool) "variance (unbiased)" true
    (feq (Stats.variance s) (32.0 /. 7.0));
  Alcotest.(check int) "count" 8 (Stats.count s);
  Alcotest.(check bool) "total" true (feq (Stats.total s) 40.0);
  Alcotest.(check bool) "min" true (feq (Stats.min s) 2.0);
  Alcotest.(check bool) "max" true (feq (Stats.max s) 9.0)

let test_empty_stats () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "variance 0" true (feq (Stats.variance s) 0.0)

let test_single_observation () =
  let s = Stats.create () in
  Stats.add s 3.0;
  Alcotest.(check bool) "mean" true (feq (Stats.mean s) 3.0);
  Alcotest.(check bool) "variance 0" true (feq (Stats.variance s) 0.0)

let test_welford_matches_naive () =
  let rng = Prng.create ~seed:99 in
  let xs = Array.init 500 (fun _ -> Prng.float rng 100.0) in
  let s = Stats.create () in
  Array.iter (Stats.add s) xs;
  let n = float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
  in
  Alcotest.(check bool) "mean matches" true (feq ~eps:1e-6 (Stats.mean s) mean);
  Alcotest.(check bool) "variance matches" true (feq ~eps:1e-6 (Stats.variance s) var)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check bool) "p0" true (feq (Stats.percentile xs 0.0) 1.0);
  Alcotest.(check bool) "p50" true (feq (Stats.percentile xs 50.0) 3.0);
  Alcotest.(check bool) "p100" true (feq (Stats.percentile xs 100.0) 5.0);
  Alcotest.(check bool) "p25 interpolates" true (feq (Stats.percentile xs 25.0) 2.0);
  Alcotest.(check bool) "unsorted input ok" true
    (feq (Stats.percentile [| 5.0; 1.0; 3.0; 2.0; 4.0 |] 50.0) 3.0)

let test_percentile_edge () =
  Alcotest.(check bool) "empty nan" true (Float.is_nan (Stats.percentile [||] 50.0));
  Alcotest.(check bool) "singleton" true (feq (Stats.percentile [| 7.0 |] 99.0) 7.0);
  Alcotest.(check bool) "median alias" true (feq (Stats.median [| 1.0; 2.0 |]) 1.5)

let test_histogram_buckets () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -3.0; 42.0 ];
  let counts = Histogram.bucket_counts h in
  Alcotest.(check int) "bucket 0 (incl. underflow)" 2 counts.(0);
  Alcotest.(check int) "bucket 1" 2 counts.(1);
  Alcotest.(check int) "bucket 9 (incl. overflow)" 2 counts.(9);
  Alcotest.(check int) "total" 6 (Histogram.count h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~buckets:4 in
  let bounds = Histogram.bucket_bounds h in
  Alcotest.(check int) "4 buckets" 4 (Array.length bounds);
  Alcotest.(check bool) "first bound" true (feq (fst bounds.(0)) 0.0);
  Alcotest.(check bool) "last bound" true (feq (snd bounds.(3)) 4.0)

let test_histogram_render () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:5 in
  List.iter (Histogram.add h) [ 1.0; 1.0; 5.0 ];
  let r = Histogram.render h in
  Alcotest.(check bool) "mentions counts" true
    (String.length r > 0 && String.contains r '#')

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "long-header"; "c" ] in
  Table.add_row t [ "1"; "2"; "3" ];
  Table.add_rowf t [ 1.5; 42.0; 0.333333 ];
  let r = Table.render t in
  Alcotest.(check bool) "has title" true (contains_sub r "demo");
  Alcotest.(check bool) "has header" true (contains_sub r "long-header");
  Alcotest.(check bool) "has float cell" true (contains_sub r "0.3333");
  Alcotest.(check int) "five lines" 5
    (List.length (String.split_on_char '\n' (String.trim r)))

let test_table_cell_f () =
  Alcotest.(check string) "integral" "42" (Table.cell_f 42.0);
  Alcotest.(check string) "fractional" "0.3333" (Table.cell_f (1.0 /. 3.0))

let test_plot_series () =
  let p =
    Plot.series ~title:"t" [ ("s", [ (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) ]) ]
  in
  Alcotest.(check bool) "nonempty" true (String.length p > 100);
  let p2 = Plot.series ~title:"empty" [] in
  Alcotest.(check bool) "empty handled" true (String.length p2 > 0)

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 37 (Vec.get v 37);
  Alcotest.(check (list int)) "sub_list" [ 97; 98; 99 ] (Vec.sub_list v ~pos:97);
  Alcotest.(check (list int)) "sub_list past end" [] (Vec.sub_list v ~pos:200);
  Alcotest.(check int) "to_list length" 100 (List.length (Vec.to_list v));
  let acc = ref 0 in
  Vec.iter (fun x -> acc := !acc + x) v;
  Alcotest.(check int) "iter sums" 4950 !acc

let test_vec_get_out_of_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let base_suite =
  [
    Alcotest.test_case "mean/variance" `Quick test_mean_variance;
    Alcotest.test_case "empty stats" `Quick test_empty_stats;
    Alcotest.test_case "single observation" `Quick test_single_observation;
    Alcotest.test_case "welford matches naive" `Quick test_welford_matches_naive;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile edges" `Quick test_percentile_edge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "histogram bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table cell_f" `Quick test_table_cell_f;
    Alcotest.test_case "plot series" `Quick test_plot_series;
    Alcotest.test_case "vec basics" `Quick test_vec;
    Alcotest.test_case "vec bounds" `Quick test_vec_get_out_of_bounds;
  ]

let test_plot_single_point () =
  let p = Plot.series ~title:"one" [ ("s", [ (1.0, 1.0) ]) ] in
  Alcotest.(check bool) "degenerate ranges handled" true (String.length p > 0)

let test_plot_negative_values () =
  let p = Plot.series ~title:"neg" [ ("s", [ (0.0, -5.0); (1.0, 5.0) ]) ] in
  Alcotest.(check bool) "negative axis handled" true (String.length p > 0)

let test_table_arity_checked () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.(check bool) "arity mismatch trips assertion" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Assert_failure _ -> true)

let test_histogram_single_bucket () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~buckets:1 in
  Histogram.add h 0.5;
  Histogram.add h 99.0;
  Alcotest.(check int) "everything in the one bucket" 2 (Histogram.bucket_counts h).(0)

let edge_suite =
  [
    Alcotest.test_case "plot single point" `Quick test_plot_single_point;
    Alcotest.test_case "plot negative values" `Quick test_plot_negative_values;
    Alcotest.test_case "table arity" `Quick test_table_arity_checked;
    Alcotest.test_case "histogram single bucket" `Quick test_histogram_single_bucket;
  ]

let suite = base_suite @ edge_suite
